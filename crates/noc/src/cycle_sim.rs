//! Cycle-driven virtual-cut-through (VCT) NoC simulation.
//!
//! [`crate::sim::NocSim`] is an analytic contention model: fast enough to
//! sit inside the engine's per-kernel loop, but it serializes resources in
//! message-injection order. This module provides the slower ground truth —
//! an event-driven VCT simulation where every directed link transfers one
//! flit per cycle, messages buffer whole at intermediate routers
//! (cut-through with packet-granularity switching, which is deadlock-free
//! with unbounded buffers), and link arbitration is FIFO by arrival time.
//! Cross-validation tests assert the analytic model stays within a bounded
//! factor of this simulation and preserves its cross-topology ordering.

use crate::routing::{Mode, RoutingTable};
use crate::topology::{NodeId, TopologyGraph};
use crate::traffic::Message;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Result of a cycle-driven simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleSimReport {
    /// Cycle at which the last tail flit arrived.
    pub completion_cycles: u64,
    /// Per-message arrival cycles, in input order.
    pub arrivals: Vec<u64>,
    /// Total flit-hops moved.
    pub total_flit_hops: u64,
}

impl CycleSimReport {
    /// Mean message latency (injection at cycle 0 or dependency release).
    pub fn mean_arrival(&self) -> f64 {
        if self.arrivals.is_empty() {
            0.0
        } else {
            self.arrivals.iter().sum::<u64>() as f64 / self.arrivals.len() as f64
        }
    }
}

/// Event: a message becomes ready to request its next link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ready {
    at: u64,
    msg: usize,
    hop: usize,
}

impl Ord for Ready {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by (time, message id, hop) via Reverse at the call site.
        (self.at, self.msg, self.hop).cmp(&(other.at, other.msg, other.hop))
    }
}

impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Cycle-driven VCT simulator over one fabric.
#[derive(Debug, Clone)]
pub struct CycleAccurateSim {
    graph: TopologyGraph,
    tables: HashMap<Mode, RoutingTable>,
}

impl CycleAccurateSim {
    /// Builds the simulator (precomputing routing for all modes).
    pub fn new(graph: TopologyGraph) -> Self {
        let tables = Mode::ALL
            .iter()
            .map(|&m| (m, RoutingTable::build(&graph, m)))
            .collect();
        Self { graph, tables }
    }

    /// The fabric.
    pub fn graph(&self) -> &TopologyGraph {
        &self.graph
    }

    /// Runs `messages` to completion under `mode`.
    ///
    /// Messages with `depends_on` wait for their dependency's tail flit.
    /// Each directed link moves one flit per cycle and serves whole packets
    /// FIFO (by ready time, ties by message index). A packet is buffered
    /// completely at a node before requesting the next link, and each hop
    /// adds one router traversal cycle.
    ///
    /// # Panics
    ///
    /// Panics if a message is unroutable in `mode` or a dependency index is
    /// out of range.
    pub fn run(&self, mode: Mode, messages: &[Message]) -> CycleSimReport {
        let table = &self.tables[&mode];
        let paths: Vec<Vec<NodeId>> = messages
            .iter()
            .map(|m| {
                let mut p = table
                    .path(m.src, m.dst)
                    .unwrap_or_else(|| panic!("{:?} -> {:?} unroutable in {mode:?}", m.src, m.dst));
                // A tile has one injection port into its router; model it
                // as a pseudo-link (src, src) every non-trivial message
                // must pass first (mirrors the analytic model's
                // source-serialization constraint).
                if p.len() > 1 {
                    p.insert(0, m.src);
                }
                p
            })
            .collect();

        let mut arrivals = vec![0u64; messages.len()];
        let mut total_flit_hops = 0u64;
        // Per-link FIFO of pending packets and the cycle the link frees.
        let mut link_queue: HashMap<(NodeId, NodeId), VecDeque<Ready>> = HashMap::new();
        let mut link_free: HashMap<(NodeId, NodeId), u64> = HashMap::new();
        let mut heap: BinaryHeap<Reverse<Ready>> = BinaryHeap::new();
        // Dependents woken when a message completes.
        let mut waiting: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut done = vec![false; messages.len()];

        for (i, m) in messages.iter().enumerate() {
            match m.depends_on {
                None => heap.push(Reverse(Ready { at: 0, msg: i, hop: 0 })),
                Some(dep) => {
                    assert!(dep < messages.len(), "dependency {dep} out of range");
                    waiting.entry(dep).or_default().push(i);
                }
            }
        }

        let mut delivered = 0usize;
        while let Some(Reverse(ev)) = heap.pop() {
            let path = &paths[ev.msg];
            if ev.hop + 1 >= path.len() {
                // Arrived (zero-hop messages arrive immediately).
                if !done[ev.msg] {
                    done[ev.msg] = true;
                    arrivals[ev.msg] = ev.at;
                    delivered += 1;
                    if let Some(deps) = waiting.remove(&ev.msg) {
                        for d in deps {
                            heap.push(Reverse(Ready { at: ev.at, msg: d, hop: 0 }));
                        }
                    }
                }
                continue;
            }

            let link = (path[ev.hop], path[ev.hop + 1]);
            // FIFO service: queue the request; serve when the link frees.
            let queue = link_queue.entry(link).or_default();
            queue.push_back(ev);
            // Serve the head of the queue if the link is free at its ready
            // time. Because the heap pops in time order, serving lazily
            // here preserves FIFO.
            while let Some(&head) = queue.front() {
                let free = *link_free.get(&link).unwrap_or(&0);
                let start = head.at.max(free);
                let flits = messages[head.msg].flits.max(1);
                // Transfer the whole packet: flits cycles + 1 router cycle.
                let arrive = start + flits + 1;
                link_free.insert(link, start + flits);
                if link.0 != link.1 {
                    // Injection pseudo-links are not network hops.
                    total_flit_hops += messages[head.msg].flits;
                }
                heap.push(Reverse(Ready { at: arrive, msg: head.msg, hop: head.hop + 1 }));
                queue.pop_front();
            }
        }

        assert_eq!(delivered, messages.len(), "all messages must be delivered");
        CycleSimReport {
            completion_cycles: arrivals.iter().copied().max().unwrap_or(0),
            arrivals,
            total_flit_hops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::NocSim;
    use crate::topology::Topology;
    use crate::traffic::TrafficPattern;

    fn sims(topo: Topology, pts: usize) -> (CycleAccurateSim, NocSim) {
        let g = TopologyGraph::build(topo, pts);
        (CycleAccurateSim::new(g.clone()), NocSim::new(g))
    }

    #[test]
    fn single_message_latency() {
        let (cs, _) = sims(Topology::Star, 2);
        let g = cs.graph();
        let rep = cs.run(Mode::Full, &[Message::new(g.pts()[0], g.pts()[1], 8)]);
        // Injection port (8+1) then two hops of (8 flits + 1 router cycle),
        // each starting after the packet is fully buffered.
        assert_eq!(rep.completion_cycles, 27);
        assert_eq!(rep.total_flit_hops, 16, "injection is not a network hop");
    }

    #[test]
    fn zero_hop_messages_arrive_at_zero() {
        let (cs, _) = sims(Topology::Mesh, 4);
        let g = cs.graph();
        let rep = cs.run(Mode::Full, &[Message::new(g.pts()[0], g.pts()[0], 100)]);
        assert_eq!(rep.completion_cycles, 0);
    }

    #[test]
    fn shared_link_serializes_fifo() {
        let (cs, _) = sims(Topology::Star, 3);
        let g = cs.graph();
        // Both messages traverse hub -> PT2.
        let msgs = [
            Message::new(g.pts()[0], g.pts()[2], 4),
            Message::new(g.pts()[1], g.pts()[2], 4),
        ];
        let rep = cs.run(Mode::Full, &msgs);
        // First: injection (4+1), PT0->hub (4+1), hub->PT2 (4+1) = 15.
        // Second reaches the hub at 10 but the shared hub->PT2 link is
        // busy until 14, so it arrives at 14 + 4 + 1 = 19.
        assert_eq!(rep.arrivals[0], 15);
        assert_eq!(rep.arrivals[1], 19);
    }

    #[test]
    fn dependencies_release_on_completion() {
        let (cs, _) = sims(Topology::Star, 2);
        let g = cs.graph();
        let msgs = [
            Message::new(g.pts()[0], g.ct(), 5),
            Message::after(g.ct(), g.pts()[1], 5, 0),
        ];
        let rep = cs.run(Mode::Full, &msgs);
        // Injection (5+1) + one hop (5+1) = 12; the dependent repeats that
        // starting at cycle 12.
        assert_eq!(rep.arrivals[0], 12);
        assert_eq!(rep.arrivals[1], 24);
    }

    #[test]
    fn conservation_all_patterns_all_topologies() {
        for topo in Topology::ALL {
            let (cs, _) = sims(topo, 9);
            for pattern in TrafficPattern::ALL {
                let msgs = pattern.messages(cs.graph(), 3);
                let rep = cs.run(Mode::Full, &msgs);
                assert_eq!(rep.arrivals.len(), msgs.len(), "{topo:?}/{pattern:?}");
                // Every multi-hop message takes at least flits+1 cycles.
                for (m, &a) in msgs.iter().zip(&rep.arrivals) {
                    if m.src != m.dst {
                        assert!(a > m.flits, "{topo:?}/{pattern:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn analytic_model_tracks_cycle_sim_within_bounds() {
        // The fast analytic model must stay within a bounded factor of the
        // cycle-driven ground truth on every topology and pattern.
        for topo in Topology::ALL {
            let (cs, ns) = sims(topo, 16);
            for pattern in [TrafficPattern::Broadcast, TrafficPattern::Collect, TrafficPattern::Transpose] {
                let msgs = pattern.messages(cs.graph(), 8);
                let truth = cs.run(Mode::Full, &msgs).completion_cycles.max(1);
                let fast = ns.run(Mode::Full, &msgs).completion_cycles.max(1);
                let ratio = fast as f64 / truth as f64;
                assert!(
                    (0.2..5.0).contains(&ratio),
                    "{topo:?}/{pattern:?}: analytic {fast} vs cycle {truth}"
                );
            }
        }
    }

    #[test]
    fn cycle_sim_preserves_topology_ordering_on_transpose() {
        // The headline qualitative claim of Fig. 5 must hold in the ground
        // truth too: HiMA beats the H-tree on transpose traffic.
        let (htree, _) = sims(Topology::HTree, 16);
        let (hima, _) = sims(Topology::Hima, 16);
        let msgs_h = TrafficPattern::Transpose.messages(htree.graph(), 16);
        let msgs_m = TrafficPattern::Transpose.messages(hima.graph(), 16);
        let t_htree = htree.run(Mode::Full, &msgs_h).completion_cycles;
        let t_hima = hima.run(Mode::Diagonal, &msgs_m).completion_cycles;
        assert!(t_hima < t_htree, "hima {t_hima} !< htree {t_htree}");
    }

    #[test]
    fn ring_chain_is_sequential_in_cycle_sim() {
        let (cs, _) = sims(Topology::Hima, 8);
        let msgs = TrafficPattern::RingAccumulate.messages(cs.graph(), 4);
        let rep = cs.run(Mode::Full, &msgs);
        // Arrivals must be strictly increasing along the chain.
        for w in rep.arrivals.windows(2) {
            assert!(w[1] > w[0], "{:?}", rep.arrivals);
        }
    }

    #[test]
    fn deterministic_runs() {
        let (cs, _) = sims(Topology::Mesh, 12);
        let msgs = TrafficPattern::AllToAll.messages(cs.graph(), 2);
        assert_eq!(cs.run(Mode::Full, &msgs), cs.run(Mode::Full, &msgs));
    }

    #[test]
    fn empty_run_is_zero() {
        let (cs, _) = sims(Topology::Mesh, 4);
        let rep = cs.run(Mode::Full, &[]);
        assert_eq!(rep.completion_cycles, 0);
        assert_eq!(rep.mean_arrival(), 0.0);
    }
}
