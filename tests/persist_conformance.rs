//! Persistence conformance: the durable session tier's correctness
//! contract, pinned.
//!
//! A session that is evicted to the store and rehydrated — or whose
//! process dies and is recovered from snapshot + delta-log replay on the
//! next boot — must be **bit-identical** to a session that was never
//! persisted at all, across topology × datapath × backend. The suite
//! drives real loopback servers with a real store directory, asserts the
//! evictions/recoveries actually happened (via the `store.*` metric
//! catalog, so no test passes vacuously), and compares every output and
//! read row against solo single-lane replay.

use hima::prelude::*;
use hima_serve::loadgen::synth_input;
use hima_serve::RawSessionSpec;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn params() -> DncParams {
    DncParams::new(24, 6, 2).with_hidden(20).with_io(5, 5)
}

fn spec_grid() -> Vec<(&'static str, EngineSpec)> {
    vec![
        ("monolithic/f32", EngineSpec::monolithic()),
        ("sharded(3)/f32", EngineSpec::sharded(3)),
        (
            "monolithic/Q16.16",
            EngineSpec::monolithic().with_datapath(Datapath::Quantized(QFormat::q16_16())),
        ),
        (
            "sharded(3)/Q16.16",
            EngineSpec::sharded(3).with_datapath(Datapath::Quantized(QFormat::q16_16())),
        ),
        (
            "monolithic/blocked",
            EngineSpec::monolithic().with_backend(hima::tensor::Backend::Blocked),
        ),
    ]
}

/// A unique scratch store directory (no `tempfile` crate in the
/// hermetic build; unique names keep parallel tests apart). Removed by
/// the caller on success; stray directories from a failed run land in
/// the OS temp dir.
fn store_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("hima-persist-{}-{tag}-{n}", std::process::id()))
}

/// Solo reference: a single-lane engine stepped sequentially.
fn solo_outputs(spec: &EngineSpec, session: usize, steps: usize) -> Vec<Vec<f32>> {
    let p = params();
    let mut engine = EngineBuilder::new(p).with_spec(*spec).lanes(1).seed(42).build();
    (0..steps)
        .map(|t| {
            let input = synth_input(session, t, p.input_size);
            let y = engine.step_batch(&Matrix::from_rows(&[input.as_slice()]));
            y.row(0).to_vec()
        })
        .collect()
}

/// The solo engine's carried read row after `steps` steps.
fn solo_read_row(spec: &EngineSpec, session: usize, steps: usize) -> Vec<f32> {
    let p = params();
    let mut engine = EngineBuilder::new(p).with_spec(*spec).lanes(1).seed(42).build();
    for t in 0..steps {
        let input = synth_input(session, t, p.input_size);
        engine.step_batch(&Matrix::from_rows(&[input.as_slice()]));
    }
    engine.last_read_row(0).to_vec()
}

fn counter(server: &Server, name: &str) -> u64 {
    server.hub().metrics().snapshot().counter(name).unwrap_or(0)
}

/// Evict → rehydrate → continue ≡ never evicted, bit for bit, for every
/// topology × datapath × backend: the idle sweep spills the session to
/// disk (asserted via `store.evictions`), and its next command pulls it
/// back through snapshot decode + log replay without perturbing a
/// single bit of the stream.
#[test]
fn evicted_sessions_continue_bit_identically() {
    let p = params();
    for (label, spec) in spec_grid() {
        let dir = store_dir("evict");
        let cfg = ServeConfig {
            grid_lanes: 2,
            tick: Duration::from_micros(200),
            idle_timeout: Some(Duration::from_millis(40)),
            ..ServeConfig::default()
        };
        // Snapshot every 3 steps so periodic compaction interleaves
        // with the stream before the eviction takes its final full
        // snapshot (eviction snapshots at the current seq, so the
        // rehydrate below restores state with an empty replay window —
        // the kill-recovery test covers the replaying variant).
        let store = StoreConfig { dir: dir.clone(), snapshot_every: 3, max_parked: 64, faults: None };
        let server = Server::bind_with_store("127.0.0.1:0", cfg, Some(store)).expect("bind");
        let mut client = Client::connect(server.addr()).unwrap();
        let raw = RawSessionSpec::from_parts(&p, &spec, 42);
        let session = client.open(&raw).unwrap();

        let total = 14;
        let want = solo_outputs(&spec, 0, total);
        let mut got: Vec<Vec<f32>> = Vec::new();
        for t in 0..7 {
            got.push(client.step(session, &synth_input(0, t, p.input_size)).unwrap());
        }
        // Go idle long enough for the sweep to evict (not reap: the id
        // must stay routable).
        std::thread::sleep(Duration::from_millis(250));
        assert!(
            counter(&server, "store.evictions") > 0,
            "{label}: idle session was never evicted — the test would be vacuous"
        );
        assert_eq!(server.hub().live_sessions(), 1, "{label}: eviction dropped the route");

        // The next commands transparently rehydrate and continue.
        for t in 7..total {
            got.push(client.step(session, &synth_input(0, t, p.input_size)).unwrap());
        }
        assert!(counter(&server, "store.rehydrations") > 0, "{label}: never rehydrated");
        assert_eq!(counter(&server, "store.errors"), 0, "{label}: store errors");
        for (t, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g, w, "{label}: step {t} diverged across evict/rehydrate");
        }
        let read = client.read_rows(session).unwrap();
        assert_eq!(read, solo_read_row(&spec, 0, total), "{label}: read row");
        client.close_session(session).unwrap();
        drop(client);
        drop(server);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A `ReadRows` as the *first* command after eviction: the read row
/// must come back exactly as the snapshot carried it — the rehydrated
/// session answers reads without ever touching the grid.
#[test]
fn read_rows_after_eviction_restores_the_snapshot_read_row() {
    let p = params();
    let spec = EngineSpec::sharded(3);
    let dir = store_dir("readrows");
    let cfg = ServeConfig {
        grid_lanes: 2,
        tick: Duration::from_micros(200),
        idle_timeout: Some(Duration::from_millis(40)),
        ..ServeConfig::default()
    };
    // Never compact periodically: the eviction's own snapshot is the
    // only one, so the restored read row comes from exactly one place.
    let store = StoreConfig { dir: dir.clone(), snapshot_every: 1_000_000, max_parked: 64, faults: None };
    let server = Server::bind_with_store("127.0.0.1:0", cfg, Some(store)).expect("bind");
    let mut client = Client::connect(server.addr()).unwrap();
    let raw = RawSessionSpec::from_parts(&p, &spec, 42);
    let session = client.open(&raw).unwrap();
    let steps = 10;
    for t in 0..steps {
        client.step(session, &synth_input(0, t, p.input_size)).unwrap();
    }
    std::thread::sleep(Duration::from_millis(250));
    assert!(counter(&server, "store.evictions") > 0, "never evicted");

    // First command after eviction is the read itself: it triggers the
    // rehydration and must see the restored state.
    let read = client.read_rows(session).unwrap();
    assert_eq!(read, solo_read_row(&spec, 0, steps), "deferred read row");
    client.close_session(session).unwrap();
    drop(client);
    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}

/// Kill-and-recover: a server dies (dropped with sessions open — the
/// store is left exactly as a SIGKILL would leave it, snapshot plus
/// un-compacted delta-log tail), a fresh server boots on the same
/// directory, adopts the session under its old id, replays, and the
/// stream continues bit-identically to one uninterrupted run.
#[test]
fn killed_server_recovers_sessions_from_snapshot_and_log() {
    let p = params();
    for (label, spec) in [("sharded(3)/f32", EngineSpec::sharded(3)),
        (
            "monolithic/Q16.16",
            EngineSpec::monolithic().with_datapath(Datapath::Quantized(QFormat::q16_16())),
        )]
    {
        let dir = store_dir("kill");
        let cfg = ServeConfig {
            grid_lanes: 2,
            tick: Duration::from_micros(200),
            idle_timeout: None,
            ..ServeConfig::default()
        };
        // snapshot_every 4 over 10 steps: compaction at 4 and 8, so the
        // store holds snapshot@8 + log records 9..10 at the "kill".
        let mk_store =
            || StoreConfig { dir: dir.clone(), snapshot_every: 4, max_parked: 64, faults: None };
        let raw = RawSessionSpec::from_parts(&p, &spec, 42);
        let total = 16;
        let want = solo_outputs(&spec, 0, total);

        let first = Server::bind_with_store("127.0.0.1:0", cfg.clone(), Some(mk_store())).expect("bind");
        let mut client = Client::connect(first.addr()).unwrap();
        let session = client.open(&raw).unwrap();
        let mut got: Vec<Vec<f32>> = Vec::new();
        for t in 0..10 {
            got.push(client.step(session, &synth_input(0, t, p.input_size)).unwrap());
        }
        assert!(counter(&first, "store.log_appends") > 0, "{label}: nothing logged");
        // "Kill": tear the server down without closing the session. The
        // clean drop takes no extra snapshot, so recovery genuinely
        // exercises the log-replay path for steps 9..10.
        drop(client);
        drop(first);

        let second = Server::bind_with_store("127.0.0.1:0", cfg.clone(), Some(mk_store())).expect("rebind");
        assert_eq!(counter(&second, "store.recovered"), 1, "{label}: adoption count");
        assert_eq!(second.hub().live_sessions(), 1, "{label}: adopted id not routable");
        let mut client = Client::connect(second.addr()).unwrap();
        // The old id keeps working on the new process.
        for t in 10..total {
            got.push(client.step(session, &synth_input(0, t, p.input_size)).unwrap());
        }
        assert!(counter(&second, "store.rehydrations") > 0, "{label}: never rehydrated");
        assert_eq!(counter(&second, "store.errors"), 0, "{label}: store errors");
        for (t, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g, w, "{label}: step {t} diverged across the restart");
        }
        let read = client.read_rows(session).unwrap();
        assert_eq!(read, solo_read_row(&spec, 0, total), "{label}: read row after recovery");

        // New sessions on the recovered server never alias the old id.
        let fresh = client.open(&raw).unwrap();
        assert_ne!(fresh, session, "{label}: recovered id reused");
        client.close_session(fresh).unwrap();
        client.close_session(session).unwrap();
        drop(client);
        drop(second);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A spilled session's delta log survives with a torn tail (simulating
/// a crash mid-append): recovery keeps the acknowledged prefix, flags
/// the tear in `store.torn_tails`, and the session still serves.
#[test]
fn torn_log_tail_recovers_the_acknowledged_prefix() {
    let p = params();
    let spec = EngineSpec::monolithic();
    let dir = store_dir("torn");
    let cfg = ServeConfig {
        grid_lanes: 2,
        tick: Duration::from_micros(200),
        idle_timeout: None,
        ..ServeConfig::default()
    };
    let mk_store = || StoreConfig { dir: dir.clone(), snapshot_every: 1_000_000, max_parked: 64, faults: None };
    let raw = RawSessionSpec::from_parts(&p, &spec, 42);

    let first = Server::bind_with_store("127.0.0.1:0", cfg.clone(), Some(mk_store())).expect("bind");
    let mut client = Client::connect(first.addr()).unwrap();
    let session = client.open(&raw).unwrap();
    let steps = 6;
    for t in 0..steps {
        client.step(session, &synth_input(0, t, p.input_size)).unwrap();
    }
    drop(client);
    drop(first);

    // Tear the log mid-record: chop 5 bytes off the end. The final
    // append is lost; every record before it must recover.
    let log_path = dir.join(format!("sess-{session}.log"));
    let bytes = std::fs::read(&log_path).unwrap();
    std::fs::write(&log_path, &bytes[..bytes.len() - 5]).unwrap();

    let second = Server::bind_with_store("127.0.0.1:0", cfg.clone(), Some(mk_store())).expect("rebind");
    let mut client = Client::connect(second.addr()).unwrap();
    let read = client.read_rows(session).unwrap();
    assert!(counter(&second, "store.torn_tails") > 0, "tear not observed");
    // The recovered state is the stream *minus the torn final step*.
    assert_eq!(read, solo_read_row(&spec, 0, steps - 1), "prefix state after torn tail");
    // And the session keeps serving from there.
    let y = client.step(session, &synth_input(0, steps - 1, p.input_size)).unwrap();
    assert_eq!(&y, solo_outputs(&spec, 0, steps).last().unwrap(), "step after tear");
    client.close_session(session).unwrap();
    drop(client);
    drop(second);
    std::fs::remove_dir_all(&dir).ok();
}
