//! Parser and encoder for the bAbI text format (Weston et al. 2015).
//!
//! The real dataset is not redistributable here, but a downstream user who
//! has it can run the accuracy harness on it directly: this module parses
//! the standard format
//!
//! ```text
//! 1 Mary moved to the bathroom.
//! 2 John went to the hallway.
//! 3 Where is Mary?\tbathroom\t1
//! ```
//!
//! (line numbers restart at 1 for each new story; question lines carry a
//! tab-separated answer and supporting-fact ids), builds a vocabulary, and
//! encodes stories into the same [`Episode`] representation the synthetic
//! suite uses — bag-of-words sentence vectors with store/query flags.

use crate::episode::Episode;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One line of a bAbI story.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BabiLine {
    /// A declarative fact.
    Statement {
        /// Whitespace-tokenized, lower-cased words (punctuation stripped).
        words: Vec<String>,
    },
    /// A question with its answer and supporting-fact line numbers.
    Question {
        /// Question words.
        words: Vec<String>,
        /// The answer token (bAbI answers are single words or
        /// comma-separated lists; kept verbatim, lower-cased).
        answer: String,
        /// Supporting fact line numbers within the story.
        supports: Vec<usize>,
    },
}

impl BabiLine {
    /// Whether this is a question line.
    pub fn is_question(&self) -> bool {
        matches!(self, BabiLine::Question { .. })
    }

    /// The line's words.
    pub fn words(&self) -> &[String] {
        match self {
            BabiLine::Statement { words } => words,
            BabiLine::Question { words, .. } => words,
        }
    }
}

/// A story: a sequence of numbered lines ending (usually) in questions.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Story {
    /// Lines in order (index `i` is the story's line `i + 1`).
    pub lines: Vec<BabiLine>,
}

impl Story {
    /// Number of question lines.
    pub fn question_count(&self) -> usize {
        self.lines.iter().filter(|l| l.is_question()).count()
    }
}

/// Errors from parsing bAbI text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBabiError {
    /// A line did not start with a number.
    MissingLineNumber {
        /// The offending line (truncated).
        line: String,
    },
    /// A question line lacked its tab-separated answer.
    MissingAnswer {
        /// The offending line (truncated).
        line: String,
    },
}

impl std::fmt::Display for ParseBabiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseBabiError::MissingLineNumber { line } => {
                write!(f, "bAbI line has no leading number: {line:?}")
            }
            ParseBabiError::MissingAnswer { line } => {
                write!(f, "bAbI question has no answer field: {line:?}")
            }
        }
    }
}

impl std::error::Error for ParseBabiError {}

fn tokenize(text: &str) -> Vec<String> {
    text.split_whitespace()
        .map(|w| {
            w.trim_matches(|c: char| !c.is_alphanumeric())
                .to_lowercase()
        })
        .filter(|w| !w.is_empty())
        .collect()
}

/// Parses bAbI-format text into stories.
///
/// # Errors
///
/// Returns [`ParseBabiError`] on malformed lines; blank lines are skipped.
pub fn parse_stories(text: &str) -> Result<Vec<Story>, ParseBabiError> {
    let mut stories = Vec::new();
    let mut current = Story::default();
    for raw in text.lines() {
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let (num, rest) = raw
            .split_once(' ')
            .ok_or_else(|| ParseBabiError::MissingLineNumber { line: truncate(raw) })?;
        let index: usize = num
            .parse()
            .map_err(|_| ParseBabiError::MissingLineNumber { line: truncate(raw) })?;
        if index == 1 && !current.lines.is_empty() {
            stories.push(std::mem::take(&mut current));
        }

        if rest.contains('\t') {
            let mut parts = rest.split('\t');
            let question = parts.next().unwrap_or_default();
            let answer = parts
                .next()
                .map(|a| a.trim().to_lowercase())
                .filter(|a| !a.is_empty())
                .ok_or_else(|| ParseBabiError::MissingAnswer { line: truncate(raw) })?;
            let supports = parts
                .next()
                .map(|s| s.split_whitespace().filter_map(|n| n.parse().ok()).collect())
                .unwrap_or_default();
            current.lines.push(BabiLine::Question { words: tokenize(question), answer, supports });
        } else {
            current.lines.push(BabiLine::Statement { words: tokenize(rest) });
        }
    }
    if !current.lines.is_empty() {
        stories.push(current);
    }
    Ok(stories)
}

fn truncate(s: &str) -> String {
    s.chars().take(60).collect()
}

/// A word → token-id mapping built from a corpus.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    ids: BTreeMap<String, usize>,
}

impl Vocabulary {
    /// Builds the vocabulary from stories (words + answers, sorted for
    /// determinism).
    pub fn build(stories: &[Story]) -> Self {
        let mut ids = BTreeMap::new();
        let mut insert = |w: &str| {
            let next = ids.len();
            ids.entry(w.to_string()).or_insert(next);
        };
        for story in stories {
            for line in &story.lines {
                for w in line.words() {
                    insert(w);
                }
                if let BabiLine::Question { answer, .. } = line {
                    insert(answer);
                }
            }
        }
        Self { ids }
    }

    /// Number of distinct words.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Token id of `word`, if known.
    pub fn id(&self, word: &str) -> Option<usize> {
        self.ids.get(&word.to_lowercase()).copied()
    }
}

/// An encoded story: the episode plus the expected answer token per query
/// step (aligned with `episode.query_steps`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedStory {
    /// The token-vector episode (width = vocab + 2 flags).
    pub episode: Episode,
    /// Answer token ids, one per query step.
    pub answers: Vec<usize>,
}

/// Encodes a story as bag-of-words sentence vectors with store/query
/// flags (the same layout as the synthetic suite: `vocab` one-hot lanes
/// plus a store flag and a query flag).
///
/// Words or answers missing from `vocab` are skipped (facts) or drop the
/// query (questions), so encoding never panics on out-of-vocabulary text.
pub fn encode_story(story: &Story, vocab: &Vocabulary) -> EncodedStory {
    let width = vocab.len() + 2;
    let (store_flag, query_flag) = (vocab.len(), vocab.len() + 1);
    let mut inputs = Vec::with_capacity(story.lines.len());
    let mut query_steps = Vec::new();
    let mut answers = Vec::new();

    for line in &story.lines {
        let mut v = vec![0.0f32; width];
        for w in line.words() {
            if let Some(id) = vocab.id(w) {
                v[id] = 1.0;
            }
        }
        match line {
            BabiLine::Statement { .. } => v[store_flag] = 1.0,
            BabiLine::Question { answer, .. } => {
                if let Some(ans_id) = vocab.id(answer) {
                    v[query_flag] = 1.0;
                    query_steps.push(inputs.len());
                    answers.push(ans_id);
                }
            }
        }
        inputs.push(v);
    }
    EncodedStory { episode: Episode::new(inputs, query_steps), answers }
}

/// Renders a story back into bAbI text format (round-trip support and
/// synthetic-corpus export).
pub fn render_story(story: &Story) -> String {
    let mut out = String::new();
    for (i, line) in story.lines.iter().enumerate() {
        match line {
            BabiLine::Statement { words } => {
                out.push_str(&format!("{} {}.\n", i + 1, words.join(" ")));
            }
            BabiLine::Question { words, answer, supports } => {
                let supports: Vec<String> = supports.iter().map(|s| s.to_string()).collect();
                out.push_str(&format!(
                    "{} {}?\t{}\t{}\n",
                    i + 1,
                    words.join(" "),
                    answer,
                    supports.join(" ")
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
1 Mary moved to the bathroom.
2 John went to the hallway.
3 Where is Mary?\tbathroom\t1
1 Daniel took the apple.
2 Where is the apple?\tdaniel\t1
";

    #[test]
    fn parses_two_stories() {
        let stories = parse_stories(SAMPLE).unwrap();
        assert_eq!(stories.len(), 2);
        assert_eq!(stories[0].lines.len(), 3);
        assert_eq!(stories[0].question_count(), 1);
        assert_eq!(stories[1].lines.len(), 2);
    }

    #[test]
    fn question_fields_parsed() {
        let stories = parse_stories(SAMPLE).unwrap();
        match &stories[0].lines[2] {
            BabiLine::Question { words, answer, supports } => {
                assert_eq!(words, &["where", "is", "mary"]);
                assert_eq!(answer, "bathroom");
                assert_eq!(supports, &[1]);
            }
            other => panic!("expected question, got {other:?}"),
        }
    }

    #[test]
    fn statements_lowercased_and_depunctuated() {
        let stories = parse_stories("1 Mary moved to the BATHROOM.\n").unwrap();
        assert_eq!(
            stories[0].lines[0].words(),
            &["mary", "moved", "to", "the", "bathroom"]
        );
    }

    #[test]
    fn rejects_missing_line_number() {
        let err = parse_stories("Mary moved.\n").unwrap_err();
        assert!(matches!(err, ParseBabiError::MissingLineNumber { .. }));
        assert!(err.to_string().contains("no leading number"));
    }

    #[test]
    fn rejects_missing_answer() {
        let err = parse_stories("1 Where is Mary?\t\t1\n").unwrap_err();
        assert!(matches!(err, ParseBabiError::MissingAnswer { .. }));
    }

    #[test]
    fn vocabulary_is_deterministic_and_complete() {
        let stories = parse_stories(SAMPLE).unwrap();
        let vocab = Vocabulary::build(&stories);
        assert!(vocab.id("mary").is_some());
        assert!(vocab.id("bathroom").is_some());
        assert!(vocab.id("daniel").is_some(), "answers must enter the vocabulary");
        assert!(vocab.id("zebra").is_none());
        // Case-insensitive lookup.
        assert_eq!(vocab.id("MARY"), vocab.id("mary"));
        let again = Vocabulary::build(&stories);
        assert_eq!(vocab, again);
    }

    #[test]
    fn encoding_produces_flagged_episode() {
        let stories = parse_stories(SAMPLE).unwrap();
        let vocab = Vocabulary::build(&stories);
        let enc = encode_story(&stories[0], &vocab);
        assert_eq!(enc.episode.len(), 3);
        assert_eq!(enc.episode.width(), vocab.len() + 2);
        assert_eq!(enc.episode.query_steps, vec![2]);
        assert_eq!(enc.answers, vec![vocab.id("bathroom").unwrap()]);
        // Store flag on facts, query flag on questions.
        let store = vocab.len();
        let query = vocab.len() + 1;
        assert_eq!(enc.episode.inputs[0][store], 1.0);
        assert_eq!(enc.episode.inputs[0][query], 0.0);
        assert_eq!(enc.episode.inputs[2][query], 1.0);
        // The word "mary" is set in the question's bag of words.
        assert_eq!(enc.episode.inputs[2][vocab.id("mary").unwrap()], 1.0);
    }

    #[test]
    fn out_of_vocabulary_answer_drops_query() {
        let stories = parse_stories("1 Mary ran.\n2 Where is Mary?\tbathroom\t1\n").unwrap();
        // Build the vocabulary WITHOUT the answer by using only line 1.
        let vocab = Vocabulary::build(&parse_stories("1 Mary ran.\n").unwrap());
        let enc = encode_story(&stories[0], &vocab);
        assert!(enc.episode.query_steps.is_empty());
        assert!(enc.answers.is_empty());
    }

    #[test]
    fn round_trip_render_parse() {
        let stories = parse_stories(SAMPLE).unwrap();
        let rendered: String = stories.iter().map(render_story).collect();
        let reparsed = parse_stories(&rendered).unwrap();
        assert_eq!(stories, reparsed);
    }

    #[test]
    fn encoded_story_runs_through_the_dnc() {
        let stories = parse_stories(SAMPLE).unwrap();
        let vocab = Vocabulary::build(&stories);
        let enc = encode_story(&stories[0], &vocab);
        let width = enc.episode.width();
        let params = hima_dnc::DncParams::new(32, 8, 1).with_hidden(16).with_io(width, width);
        let mut dnc = hima_dnc::Dnc::new(params, 3);
        let outputs = dnc.run_sequence(&enc.episode.inputs);
        assert_eq!(outputs.len(), enc.episode.len());
        assert!(outputs.iter().flatten().all(|x| x.is_finite()));
    }
}
