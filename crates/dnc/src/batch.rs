//! Batched, data-parallel execution of the DNC and DNC-D models.
//!
//! The single-example [`Dnc::step`](crate::Dnc::step) path processes one
//! token through one set of state memories. Serving-style workloads run
//! *many independent sequences* through the **same weights**, which admits
//! two structural speedups:
//!
//! 1. **Shared-weight batching** — the controller, interface and output
//!    projections become one `B × K` by `N × K`ᵀ product per step
//!    ([`hima_tensor::Matrix::matmul_nt`]) instead of `B` mat-vecs, and
//!    the LSTM gates are activated as whole `B × H` row-blocks
//!    ([`crate::lstm::Lstm::step_batch`]).
//! 2. **Lane × shard data-parallelism** — each lane's memory units are
//!    independent of every other lane's, and within a DNC-D lane the
//!    `N_t` shards are independent of each other too. [`BatchDncD`]
//!    flattens the whole `B × N_t` grid into **one** rayon task list per
//!    step (the 2-D decomposition mirroring the hardware tiling), so a
//!    single sharded lane still fans out across threads.
//!
//! Both engines support the fixed-point [`Datapath`] axis: with
//! [`Datapath::Quantized`] every lane's memory unit is a
//! [`QuantizedMemoryUnit`] that rounds its inputs and stored state to the
//! Q-format each step (the controller and projections stay f32 — HiMA is
//! the *memory-access* engine; the controller lives outside it).
//!
//! Both engines also run **ragged** batches: `step_batch_masked` takes a
//! [`LaneMask`] naming the lanes still inside their episodes, advances
//! only those (masked rows of every kernel are skipped, not
//! zeroed-and-recomputed) and freezes the rest — so unequal-length
//! episodes share one lane grid, each lane dropping out as its episode
//! ends. The uniform `step_batch` is the fully-active special case of
//! the same kernel.
//!
//! Both [`BatchDnc`] and [`BatchDncD`] are **bit-compatible** with running
//! their `B` lanes through the sequential models: the batched kernels use
//! the same per-row accumulation order as `matvec`, and the per-lane
//! memory step is the very same [`MemoryUnit`] code. The equivalence is
//! asserted across every topology × lanes × datapath combination by the
//! trait-level conformance suite in `crates/dnc/tests/conformance.rs`
//! (uniform) and the workspace-level `tests/ragged_conformance.rs`
//! (masked).
//!
//! Construct these engines through
//! [`EngineBuilder`](crate::EngineBuilder); the type-specific
//! constructors are deprecated shims.

use crate::builder::Datapath;
use crate::distributed::{DncD, ReadMerge};
use crate::dnc::Dnc;
use crate::interface::InterfaceVector;
use crate::lstm::{Lstm, LstmState};
use crate::memory::{MemoryConfig, MemoryUnit};
use crate::profile::KernelProfile;
use crate::quantized::QuantizedMemoryUnit;
use crate::workspace::StepWorkspace;
use crate::DncParams;
use hima_tensor::{Backend, LaneMask, Matrix};
use rayon::prelude::*;

/// A lane's memory unit on either datapath.
#[derive(Debug, Clone)]
pub(crate) enum LaneMemory {
    /// Exact f32 unit.
    F32(MemoryUnit),
    /// Fixed-point unit (state rounded to the Q-format every step).
    Quantized(QuantizedMemoryUnit),
}

impl LaneMemory {
    pub(crate) fn new(cfg: MemoryConfig, datapath: Datapath) -> Self {
        match datapath {
            Datapath::F32 => LaneMemory::F32(MemoryUnit::new(cfg)),
            Datapath::Quantized(q) => {
                LaneMemory::Quantized(QuantizedMemoryUnit::with_format(cfg, q))
            }
        }
    }

    /// Steps the unit, writing the flattened read vectors into `out` —
    /// allocation-free on either datapath.
    fn step_into(&mut self, iv: &InterfaceVector, out: &mut [f32]) {
        match self {
            LaneMemory::F32(u) => u.step_into(iv, out),
            LaneMemory::Quantized(q) => q.step_into(iv, out),
        }
    }

    fn reset(&mut self) {
        match self {
            LaneMemory::F32(u) => u.reset(),
            LaneMemory::Quantized(q) => q.reset(),
        }
    }

    /// The wrapped unit, for state inspection and profiling.
    pub(crate) fn unit(&self) -> &MemoryUnit {
        match self {
            LaneMemory::F32(u) => u,
            LaneMemory::Quantized(q) => q.inner(),
        }
    }

    /// Switches wall-clock kernel sampling on or off in the wrapped unit.
    fn set_profiling(&mut self, on: bool) {
        match self {
            LaneMemory::F32(u) => u.set_profiling(on),
            LaneMemory::Quantized(q) => q.set_profiling(on),
        }
    }

    /// Whether this unit runs the given datapath (same variant, and for
    /// fixed point the same Q-format) — the splice-compatibility check of
    /// [`LaneState`].
    fn matches_datapath(&self, datapath: Datapath) -> bool {
        match (self, datapath) {
            (LaneMemory::F32(_), Datapath::F32) => true,
            (LaneMemory::Quantized(q), Datapath::Quantized(fmt)) => q.format() == fmt,
            _ => false,
        }
    }
}

/// A detached snapshot of one batch lane's complete session state: the
/// lane's recurrent LSTM state, its per-shard memory units (external
/// memory, usage, linkage, read/write weightings — one shard for
/// monolithic engines, `N_t` for DNC-D) and the carried read-vector and
/// hidden rows the next step's controller consumes.
///
/// This is the **state-splice** currency of the serving layer:
/// [`BatchDnc::export_lane`] detaches a session's state from a lane grid,
/// [`BatchDnc::import_lane`] re-attaches it to any lane of any engine
/// built from the *same* spec and hyper-parameters (weights are a
/// function of the seed alone, so lane slots are interchangeable), and
/// the round trip is bit-exact — a session swapped out of a grid and
/// back in continues precisely where it left off. The snapshot also
/// carries the unit's accumulated kernel profile, so per-session
/// profiling travels with the session.
///
/// The fields are intentionally private: a `LaneState` is an opaque
/// value that only the engine that understands its geometry can consume.
/// For durability the opaque value still crosses a process boundary —
/// [`LaneState::encode`]/[`LaneState::decode`] (in [`crate::persist`])
/// are the versioned binary codec the session store persists, and the
/// round trip is bit-exact on every topology × datapath combination.
#[derive(Debug, Clone)]
pub struct LaneState {
    pub(crate) lstm: LstmState,
    /// One `(memory unit, flattened shard read vector)` per shard.
    pub(crate) shards: Vec<(LaneMemory, Vec<f32>)>,
    /// The lane's merged `R·W` read-vector row (`last_read`).
    pub(crate) read: Vec<f32>,
    /// The lane's held `H` hidden row (`last_hidden`).
    pub(crate) hidden: Vec<f32>,
}

impl LaneState {
    /// Number of memory shards the snapshot carries (1 for monolithic
    /// engines, `N_t` for sharded ones).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The lane's merged `R·W` read-vector row — what `ReadRows` reports
    /// for the session while its state is detached from any grid.
    pub fn read_row(&self) -> &[f32] {
        &self.read
    }

    /// Approximate heap footprint of the snapshot in `f32` elements —
    /// what a session cache pays to hold a detached session.
    pub fn state_elems(&self) -> usize {
        let mem: usize = self
            .shards
            .iter()
            .map(|(m, read)| {
                let u = m.unit();
                let n = u.memory().rows();
                u.memory().rows() * u.memory().cols()
                    + n * (2 + n) // usage + precedence + linkage
                    + n * (1 + u.read_weightings().len()) // write + read weightings
                    + read.len()
            })
            .sum();
        mem + 2 * self.lstm.hidden.len() + self.read.len() + self.hidden.len()
    }
}

/// One batch lane of a centralized DNC: the lane-private memory unit, the
/// lane's last flattened read vector, and the lane's reusable
/// interface-parse scratch (lanes step in parallel, so per-lane scratch
/// cannot live in the shared [`StepWorkspace`]).
#[derive(Debug, Clone)]
struct Lane {
    memory: LaneMemory,
    read: Vec<f32>,
    iv: InterfaceVector,
}

/// `B` independent DNC lanes sharing one set of weights.
///
/// Lanes start from blank (reset) state; the weights are identical to a
/// [`Dnc`] constructed with the same parameters and seed, so lane `b` of
/// [`BatchDnc::step_batch`] reproduces `Dnc::step` on lane `b`'s input
/// stream exactly.
///
/// # Example
///
/// ```
/// use hima_dnc::{Dnc, DncParams, EngineBuilder, MemoryEngine};
/// use hima_tensor::Matrix;
///
/// let params = DncParams::new(16, 4, 1).with_io(3, 3);
/// let mut batch = EngineBuilder::new(params).lanes(2).seed(7).build();
/// let x = Matrix::from_rows(&[&[1.0, 0.0, 0.0][..], &[0.0, 1.0, 0.0][..]]);
/// let y = batch.step_batch(&x);
/// assert_eq!(y.shape(), (2, 3));
///
/// // Lane 0 matches a sequential DNC fed lane 0's input.
/// let mut dnc = Dnc::new(params, 7);
/// let y0 = dnc.step(&[1.0, 0.0, 0.0]);
/// hima_tensor::assert_close(y.row(0), &y0, 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct BatchDnc {
    params: DncParams,
    controller: Lstm,
    interface_proj: Matrix,
    output_proj: Matrix,
    datapath: Datapath,
    /// Kernel tier of the shared-weight projections and the controller
    /// product — the same tier the lane memory units read from their
    /// [`MemoryConfig`], so one engine runs one tier end to end.
    backend: Backend,
    lstm_states: Vec<LstmState>,
    lanes: Vec<Lane>,
    last_read: Matrix,
    last_hidden: Matrix,
    ws: StepWorkspace,
}

impl BatchDnc {
    /// Creates `batch` blank lanes with weights identical to
    /// `Dnc::new(params, seed)` and an exact memory unit per lane.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    #[deprecated(note = "compose with `EngineBuilder::new(params).lanes(batch).seed(seed).build()`")]
    pub fn new(params: DncParams, batch: usize, seed: u64) -> Self {
        let mem_cfg = MemoryConfig::new(params.memory_size, params.word_size, params.read_heads);
        Dnc::with_memory_config(params, mem_cfg, seed).batched_with(batch, Datapath::F32)
    }

    /// Creates `batch` blank lanes with weights identical to
    /// `Dnc::with_memory_config(params, mem_cfg, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or the memory geometry disagrees with
    /// `params`.
    #[deprecated(
        note = "compose with `EngineBuilder` (`.skim()`, `.sorter()`, `.approx_softmax()` cover the MemoryConfig features)"
    )]
    pub fn with_memory_config(
        params: DncParams,
        mem_cfg: MemoryConfig,
        batch: usize,
        seed: u64,
    ) -> Self {
        // Reuse the sequential constructor so weight init stays defined in
        // exactly one place.
        Dnc::with_memory_config(params, mem_cfg, seed).batched_with(batch, Datapath::F32)
    }

    /// Internal constructor used by [`Dnc::batched`] and the builder:
    /// shares weights with an existing model and starts every lane blank.
    pub(crate) fn from_parts(
        params: DncParams,
        controller: Lstm,
        interface_proj: Matrix,
        output_proj: Matrix,
        mem_cfg: MemoryConfig,
        batch: usize,
        datapath: Datapath,
    ) -> Self {
        assert!(batch > 0, "need at least one batch lane");
        let read_width = params.read_heads * params.word_size;
        let lanes = (0..batch)
            .map(|_| Lane {
                memory: LaneMemory::new(mem_cfg, datapath),
                read: vec![0.0; read_width],
                iv: InterfaceVector::zeroed(params.word_size, params.read_heads),
            })
            .collect();
        let mut ws = StepWorkspace::new();
        ws.ensure(&params, batch, 1);
        Self {
            params,
            controller,
            interface_proj,
            output_proj,
            datapath,
            backend: mem_cfg.backend,
            lstm_states: vec![LstmState::zeros(params.hidden_size); batch],
            lanes,
            last_read: Matrix::zeros(batch, read_width),
            last_hidden: Matrix::zeros(batch, params.hidden_size),
            ws,
        }
    }

    /// Number of batch lanes `B`.
    pub fn batch(&self) -> usize {
        self.lanes.len()
    }

    /// The model hyper-parameters.
    pub fn params(&self) -> &DncParams {
        &self.params
    }

    /// The numeric datapath of the lane memory units.
    pub fn datapath(&self) -> Datapath {
        self.datapath
    }

    /// The kernel execution tier this engine runs on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Lane `b`'s memory unit (for state inspection).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= batch()`.
    pub fn memory(&self, lane: usize) -> &MemoryUnit {
        self.lanes[lane].memory.unit()
    }

    /// The `B × R·W` block of read vectors fed to the controller at the
    /// next step (row `b` is lane `b`'s flattened read vectors).
    pub fn last_read(&self) -> &Matrix {
        &self.last_read
    }

    /// The `B × (H + R·W)` feature block `[h_t ; v_r]` per lane — the
    /// batched analogue of [`Dnc::last_features`].
    pub fn last_features(&self) -> Matrix {
        Matrix::hcat(&self.last_hidden, &self.last_read)
    }

    /// Kernel profile aggregated across every lane's memory unit.
    pub fn profile(&self) -> KernelProfile {
        let mut p = KernelProfile::new();
        for lane in &self.lanes {
            p.merge(lane.memory.unit().profile());
        }
        p
    }

    /// Switches wall-clock kernel sampling on or off for every lane.
    pub fn set_profiling(&mut self, on: bool) {
        for lane in &mut self.lanes {
            lane.memory.set_profiling(on);
        }
    }

    /// Resets every lane's memory and recurrent state (weights unchanged)
    /// **in place** — no buffer is reallocated, so reuse across episodes
    /// (harnesses, pipeline engine workers) stays allocation-free.
    pub fn reset(&mut self) {
        for lane in &mut self.lanes {
            lane.memory.reset();
            lane.read.fill(0.0);
        }
        for state in &mut self.lstm_states {
            state.clear();
        }
        self.last_read.as_mut_slice().fill(0.0);
        self.last_hidden.as_mut_slice().fill(0.0);
    }

    /// Runs one time step for every lane: `inputs` is `B × input_size`
    /// (row `b` is lane `b`'s token) and the result is `B × output_size`.
    ///
    /// The controller and both projections run as single shared-weight
    /// batched products; the per-lane memory units step in parallel across
    /// rayon worker threads.
    ///
    /// Allocating convenience over [`BatchDnc::step_batch_into`] (the one
    /// allocation is the returned output block).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is not `B × input_size`.
    pub fn step_batch(&mut self, inputs: &Matrix) -> Matrix {
        let mut y = Matrix::zeros(self.lanes.len(), self.params.output_size);
        self.step_batch_into(inputs, &mut y);
        y
    }

    /// Output-buffer form of [`BatchDnc::step_batch`]: the uniform
    /// (fully-active) step writing into `y` — **zero heap allocations**
    /// in the steady state, using the engine's cached full mask.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is not `B × input_size`.
    pub fn step_batch_into(&mut self, inputs: &Matrix, y: &mut Matrix) {
        // Validate caller input *before* taking the cached mask, so a
        // caller-triggered panic cannot strand the workspace with the
        // 0-lane placeholder.
        assert_eq!(inputs.rows(), self.lanes.len(), "batch size mismatch");
        assert_eq!(inputs.cols(), self.params.input_size, "input width mismatch");
        self.ws.ensure(&self.params, self.lanes.len(), 1);
        // Borrow dance: the cached full mask cannot be borrowed while
        // `self` is, so take it (a move — no allocation) and put it back.
        let mask = std::mem::take(&mut self.ws.full_mask);
        self.step_batch_masked_into(inputs, &mask, y);
        self.ws.full_mask = mask;
    }

    /// Masked form of [`BatchDnc::step_batch`] for ragged batches: only
    /// the lanes `mask` marks active advance — their controller rows,
    /// interface/output projection rows and memory units run exactly as
    /// in the uniform path — while an inactive lane's entire state
    /// (LSTM, memory, last read vector) stays **frozen** and its kernel
    /// rows are skipped, not zeroed-and-recomputed. The input rows of
    /// inactive lanes are padding and never read.
    ///
    /// Active lanes are bit-identical to stepping each lane's episode
    /// alone through a single-lane engine (the ragged conformance
    /// property); a fully-active mask *is* [`BatchDnc::step_batch`].
    /// Inactive rows of the returned output block are zero.
    ///
    /// Allocating convenience over [`BatchDnc::step_batch_masked_into`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is not `B × input_size` or
    /// `mask.lanes() != B`.
    pub fn step_batch_masked(&mut self, inputs: &Matrix, mask: &LaneMask) -> Matrix {
        let mut y = Matrix::zeros(self.lanes.len(), self.params.output_size);
        self.step_batch_masked_into(inputs, mask, &mut y);
        y
    }

    /// Output-buffer form of [`BatchDnc::step_batch_masked`]: writes the
    /// `B × output_size` block into `y` (resized in place if its shape
    /// differs). Every transient comes from the engine's
    /// [`StepWorkspace`] or the per-lane scratch, so the steady state
    /// performs **zero heap allocations** — and the result is bit-for-bit
    /// what the allocating form returns.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is not `B × input_size` or
    /// `mask.lanes() != B`.
    pub fn step_batch_masked_into(&mut self, inputs: &Matrix, mask: &LaneMask, y: &mut Matrix) {
        let b = self.lanes.len();
        assert_eq!(inputs.rows(), b, "batch size mismatch");
        assert_eq!(inputs.cols(), self.params.input_size, "input width mismatch");
        assert_eq!(mask.lanes(), b, "lane mask size mismatch");
        self.ws.ensure(&self.params, b, 1);
        if y.shape() != (b, self.params.output_size) {
            *y = Matrix::zeros(b, self.params.output_size);
        }
        let ws = &mut self.ws;

        // Controller on [x_t ; v_r^{t-1}], all active lanes at once
        // (frozen lanes surface their held hidden state).
        Matrix::hcat_into(inputs, &self.last_read, &mut ws.ctrl_in);
        self.controller.step_batch_masked_into_with(
            &mut self.lstm_states,
            &ws.ctrl_in,
            mask,
            &mut ws.lstm,
            &mut ws.hidden,
            self.backend,
        );

        // Interface projection + parse (input skip connection), batched
        // over the active rows.
        Matrix::hcat_into(&ws.hidden, inputs, &mut ws.iface_in);
        self.backend.matmul_nt_masked_into(
            &ws.iface_in,
            &self.interface_proj,
            mask,
            &mut ws.raw_shards[0],
        );

        // Memory unit step: active lanes are independent — fan out
        // across threads; frozen lanes hold their memory state. Each
        // lane parses into and steps through its own scratch, so the
        // loop is allocation-free on every worker.
        let (w, r) = (self.params.word_size, self.params.read_heads);
        let raw = &ws.raw_shards[0];
        self.lanes.par_iter_mut().enumerate().for_each(|(b, lane)| {
            if !mask.is_active(b) {
                return;
            }
            lane.iv.parse_into(raw.row(b), w, r);
            lane.memory.step_into(&lane.iv, &mut lane.read);
        });
        for (b, lane) in self.lanes.iter().enumerate() {
            if mask.is_active(b) {
                self.last_read.row_mut(b).copy_from_slice(&lane.read);
            }
        }

        // Output projection over [h ; v_r], batched over the active rows
        // (inactive output rows stay zero).
        Matrix::hcat_into(&ws.hidden, &self.last_read, &mut ws.out_in);
        self.backend.matmul_nt_masked_into(&ws.out_in, &self.output_proj, mask, y);
        self.last_hidden.as_mut_slice().copy_from_slice(ws.hidden.as_slice());
    }

    /// Runs a whole synchronized sequence: `steps[t]` is the `B ×
    /// input_size` block for time `t`; the result holds one `B ×
    /// output_size` block per step.
    pub fn run_sequence_batch(&mut self, steps: &[Matrix]) -> Vec<Matrix> {
        steps.iter().map(|x| self.step_batch(x)).collect()
    }

    /// Detaches a snapshot of lane `lane`'s complete session state (LSTM
    /// state, memory unit, carried read vector and hidden row). The lane
    /// itself is untouched; re-attaching the snapshot with
    /// [`BatchDnc::import_lane`] — to any lane of any engine built from
    /// the same spec/params/seed — is a bit-exact round trip.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= batch()`.
    pub fn export_lane(&self, lane: usize) -> LaneState {
        let l = &self.lanes[lane];
        LaneState {
            lstm: self.lstm_states[lane].clone(),
            shards: vec![(l.memory.clone(), l.read.clone())],
            read: self.last_read.row(lane).to_vec(),
            hidden: self.last_hidden.row(lane).to_vec(),
        }
    }

    /// Replaces lane `lane`'s session state with a snapshot previously
    /// detached by [`BatchDnc::export_lane`] (possibly from a different
    /// lane or a different engine of the same configuration). After the
    /// splice the lane steps bit-identically to the engine the snapshot
    /// was exported from.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= batch()` or the snapshot's geometry/datapath
    /// disagrees with this engine (shard count, memory config, Q-format,
    /// read/hidden widths).
    pub fn import_lane(&mut self, lane: usize, state: &LaneState) {
        assert_eq!(state.shards.len(), 1, "lane state shard count mismatch");
        let l = &mut self.lanes[lane];
        let (mem, shard_read) = &state.shards[0];
        assert!(mem.matches_datapath(self.datapath), "lane state datapath mismatch");
        assert_eq!(mem.unit().config(), l.memory.unit().config(), "memory config mismatch");
        assert_eq!(shard_read.len(), l.read.len(), "read width mismatch");
        assert_eq!(state.read.len(), self.last_read.cols(), "read width mismatch");
        assert_eq!(state.hidden.len(), self.params.hidden_size, "hidden width mismatch");
        assert_eq!(state.lstm.hidden.len(), self.params.hidden_size, "hidden width mismatch");
        self.lstm_states[lane] = state.lstm.clone();
        l.memory = mem.clone();
        l.read.copy_from_slice(shard_read);
        self.last_read.row_mut(lane).copy_from_slice(&state.read);
        self.last_hidden.row_mut(lane).copy_from_slice(&state.hidden);
    }

    /// Resets a *single* lane to blank state (memory, recurrent state and
    /// carried rows), leaving every other lane untouched — how a serving
    /// grid recycles a freed lane slot for a fresh session. A reset lane
    /// steps bit-identically to a lane of a freshly built engine.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= batch()`.
    pub fn reset_lane(&mut self, lane: usize) {
        let l = &mut self.lanes[lane];
        l.memory.reset();
        l.read.fill(0.0);
        self.lstm_states[lane].clear();
        self.last_read.row_mut(lane).fill(0.0);
        self.last_hidden.row_mut(lane).fill(0.0);
    }
}

/// One shard of one DNC-D batch lane: the shard's memory unit, its last
/// flattened read vector and its reusable interface-parse scratch — the
/// unit of work of the 2-D (lane × shard) parallel decomposition.
#[derive(Debug, Clone)]
struct ShardLane {
    memory: LaneMemory,
    read: Vec<f32>,
    iv: InterfaceVector,
}

/// `B` independent DNC-D lanes sharing one set of weights (controller,
/// per-shard interface projections, output projection and the read-merge
/// `α`).
///
/// Lanes start from blank state; lane `b` of
/// [`BatchDncD::step_batch`] reproduces [`DncD::step`] on lane `b`'s
/// input stream exactly. Each step fans the flattened `B × N_t` grid of
/// shard memory units out across rayon worker threads — the ROADMAP's
/// 2-D lane × shard decomposition — so even a single sharded lane
/// (`lanes(1)`) parallelizes across its shards.
#[derive(Debug, Clone)]
pub struct BatchDncD {
    params: DncParams,
    controller: Lstm,
    interface_projs: Vec<Matrix>,
    output_proj: Matrix,
    merge: ReadMerge,
    datapath: Datapath,
    /// Kernel tier of the shared-weight products (see [`BatchDnc`]);
    /// derived from the shard memory configs.
    backend: Backend,
    lstm_states: Vec<LstmState>,
    batch: usize,
    /// The flat `B × N_t` shard grid, lane-major: lane `b`'s shards are
    /// `shards[b·N_t .. (b+1)·N_t]`. Flat storage *is* the 2-D parallel
    /// decomposition — one `par_iter_mut` over this slice is the per-step
    /// task list, with no per-step collection of task references.
    shards: Vec<ShardLane>,
    last_read: Matrix,
    last_hidden: Matrix,
    ws: StepWorkspace,
}

impl BatchDncD {
    /// Creates `batch` blank lanes with weights identical to
    /// `DncD::new(params, tiles, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`, `tiles == 0` or `tiles >
    /// params.memory_size`.
    #[deprecated(
        note = "compose with `EngineBuilder::new(params).sharded(tiles).lanes(batch).seed(seed).build()`"
    )]
    pub fn new(params: DncParams, tiles: usize, batch: usize, seed: u64) -> Self {
        DncD::new(params, tiles, seed).batched_with(batch, Datapath::F32)
    }

    /// Internal constructor used by [`DncD::batched`] and the builder.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        params: DncParams,
        controller: Lstm,
        interface_projs: Vec<Matrix>,
        output_proj: Matrix,
        merge: ReadMerge,
        shard_cfgs: Vec<MemoryConfig>,
        batch: usize,
        datapath: Datapath,
    ) -> Self {
        assert!(batch > 0, "need at least one batch lane");
        let read_width = params.read_heads * params.word_size;
        let tiles = interface_projs.len();
        let backend = shard_cfgs.first().map_or(Backend::Scalar, |cfg| cfg.backend);
        let shards = (0..batch)
            .flat_map(|_| {
                shard_cfgs.iter().map(|cfg| ShardLane {
                    memory: LaneMemory::new(*cfg, datapath),
                    read: vec![0.0; read_width],
                    iv: InterfaceVector::zeroed(params.word_size, params.read_heads),
                })
            })
            .collect();
        let mut ws = StepWorkspace::new();
        ws.ensure(&params, batch, tiles);
        Self {
            params,
            controller,
            interface_projs,
            output_proj,
            merge,
            datapath,
            backend,
            lstm_states: vec![LstmState::zeros(params.hidden_size); batch],
            batch,
            shards,
            last_read: Matrix::zeros(batch, read_width),
            last_hidden: Matrix::zeros(batch, params.hidden_size),
            ws,
        }
    }

    /// Number of batch lanes `B`.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Number of distributed shards `N_t` per lane.
    pub fn tiles(&self) -> usize {
        self.interface_projs.len()
    }

    /// The model hyper-parameters.
    pub fn params(&self) -> &DncParams {
        &self.params
    }

    /// The numeric datapath of the shard memory units.
    pub fn datapath(&self) -> Datapath {
        self.datapath
    }

    /// The kernel execution tier this engine runs on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The `B × R·W` block of merged read vectors (row `b` is lane `b`).
    pub fn last_read(&self) -> &Matrix {
        &self.last_read
    }

    /// The `B × (H + R·W)` feature block `[h_t ; v_r]` per lane — the
    /// batched analogue of [`DncD::last_features`].
    pub fn last_features(&self) -> Matrix {
        Matrix::hcat(&self.last_hidden, &self.last_read)
    }

    /// Kernel profile aggregated across every lane's shard memory units.
    pub fn profile(&self) -> KernelProfile {
        let mut p = KernelProfile::new();
        for shard in &self.shards {
            p.merge(shard.memory.unit().profile());
        }
        p
    }

    /// Switches wall-clock kernel sampling on or off for every shard of
    /// every lane.
    pub fn set_profiling(&mut self, on: bool) {
        for shard in &mut self.shards {
            shard.memory.set_profiling(on);
        }
    }

    /// Replaces the read-merge weights used by every lane.
    ///
    /// # Panics
    ///
    /// Panics if the shard count disagrees.
    pub fn set_merge(&mut self, merge: ReadMerge) {
        assert_eq!(merge.shards(), self.tiles(), "merge shard count mismatch");
        self.merge = merge;
    }

    /// Resets every lane's shard memories and recurrent state **in
    /// place** (no reallocation; weights and merge unchanged).
    pub fn reset(&mut self) {
        for shard in &mut self.shards {
            shard.memory.reset();
            shard.read.fill(0.0);
        }
        for state in &mut self.lstm_states {
            state.clear();
        }
        self.last_read.as_mut_slice().fill(0.0);
        self.last_hidden.as_mut_slice().fill(0.0);
    }

    /// Runs one time step for every lane (`inputs` is `B × input_size`),
    /// returning the `B × output_size` block of outputs.
    ///
    /// The controller and every shard's interface projection run batched
    /// over all lanes; the `B × N_t` grid of shard memory units is then
    /// flattened into **one** parallel task list (each task is one
    /// shard of one lane), and the per-lane shard reads are merged
    /// (Eq. 4) deterministically afterwards. The flat grid keeps every
    /// worker busy even when `B < threads` — the case the sequential
    /// shard loop used to leave on the table.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is not `B × input_size`.
    pub fn step_batch(&mut self, inputs: &Matrix) -> Matrix {
        let mut y = Matrix::zeros(self.batch, self.params.output_size);
        self.step_batch_into(inputs, &mut y);
        y
    }

    /// Output-buffer form of [`BatchDncD::step_batch`]: the uniform
    /// (fully-active) step writing into `y` — **zero heap allocations**
    /// in the steady state, using the engine's cached full mask.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is not `B × input_size`.
    pub fn step_batch_into(&mut self, inputs: &Matrix, y: &mut Matrix) {
        // Validate caller input before taking the cached mask (see
        // [`BatchDnc::step_batch_into`]).
        assert_eq!(inputs.rows(), self.batch, "batch size mismatch");
        assert_eq!(inputs.cols(), self.params.input_size, "input width mismatch");
        self.ws.ensure(&self.params, self.batch, self.interface_projs.len());
        let mask = std::mem::take(&mut self.ws.full_mask);
        self.step_batch_masked_into(inputs, &mask, y);
        self.ws.full_mask = mask;
    }

    /// Masked form of [`BatchDncD::step_batch`] for ragged batches: the
    /// flat parallel shard grid advances only the shards of **active**
    /// lanes, so a lane whose episode has ended costs (almost) nothing —
    /// its shard memories, merged read vector and recurrent state stay
    /// frozen while live lanes advance.
    ///
    /// Active lanes are bit-identical to stepping each lane's episode
    /// alone (ragged conformance suite); a fully-active mask *is*
    /// [`BatchDncD::step_batch`]. Inactive rows of the returned output
    /// block are zero.
    ///
    /// Allocating convenience over
    /// [`BatchDncD::step_batch_masked_into`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is not `B × input_size` or
    /// `mask.lanes() != B`.
    pub fn step_batch_masked(&mut self, inputs: &Matrix, mask: &LaneMask) -> Matrix {
        let mut y = Matrix::zeros(self.batch, self.params.output_size);
        self.step_batch_masked_into(inputs, mask, &mut y);
        y
    }

    /// Output-buffer form of [`BatchDncD::step_batch_masked`]: writes the
    /// `B × output_size` block into `y` (resized in place if its shape
    /// differs). Transients come from the engine's [`StepWorkspace`]
    /// (one raw-interface block per shard) and the per-shard scratch, so
    /// the steady state performs **zero heap allocations**, bit-identical
    /// to the allocating form.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is not `B × input_size` or
    /// `mask.lanes() != B`.
    pub fn step_batch_masked_into(&mut self, inputs: &Matrix, mask: &LaneMask, y: &mut Matrix) {
        let (b, nt) = (self.batch, self.interface_projs.len());
        assert_eq!(inputs.rows(), b, "batch size mismatch");
        assert_eq!(inputs.cols(), self.params.input_size, "input width mismatch");
        assert_eq!(mask.lanes(), b, "lane mask size mismatch");
        self.ws.ensure(&self.params, b, nt);
        if y.shape() != (b, self.params.output_size) {
            *y = Matrix::zeros(b, self.params.output_size);
        }
        let ws = &mut self.ws;

        Matrix::hcat_into(inputs, &self.last_read, &mut ws.ctrl_in);
        self.controller.step_batch_masked_into_with(
            &mut self.lstm_states,
            &ws.ctrl_in,
            mask,
            &mut ws.lstm,
            &mut ws.hidden,
            self.backend,
        );

        // One batched projection per shard (each shard has its own
        // interface weights but shares them across lanes), over the
        // active rows only.
        Matrix::hcat_into(&ws.hidden, inputs, &mut ws.iface_in);
        for (proj, raw) in self.interface_projs.iter().zip(ws.raw_shards.iter_mut()) {
            self.backend.matmul_nt_masked_into(&ws.iface_in, proj, mask, raw);
        }

        // 2-D decomposition: the flat lane-major shard grid is the task
        // list; each task recovers its (b, s) coordinates from its index
        // and inactive lanes' shards return immediately.
        let (w, r) = (self.params.word_size, self.params.read_heads);
        let raws = &ws.raw_shards;
        self.shards.par_iter_mut().enumerate().for_each(|(i, shard)| {
            let (bi, s) = (i / nt, i % nt);
            if !mask.is_active(bi) {
                return;
            }
            shard.iv.parse_into(raws[s].row(bi), w, r);
            shard.memory.step_into(&shard.iv, &mut shard.read);
        });

        // Merge shard reads per active lane (Eq. 4), straight into the
        // lane's last-read row — sequential and deterministic regardless
        // of task scheduling above.
        for bi in 0..b {
            if !mask.is_active(bi) {
                continue;
            }
            let lane_shards = &self.shards[bi * nt..(bi + 1) * nt];
            self.merge.merge_iter_into(
                lane_shards.iter().map(|s| s.read.as_slice()),
                self.last_read.row_mut(bi),
            );
        }

        Matrix::hcat_into(&ws.hidden, &self.last_read, &mut ws.out_in);
        self.backend.matmul_nt_masked_into(&ws.out_in, &self.output_proj, mask, y);
        self.last_hidden.as_mut_slice().copy_from_slice(ws.hidden.as_slice());
    }

    /// Runs a whole synchronized sequence (`steps[t]` is `B ×
    /// input_size`), returning one `B × output_size` block per step.
    pub fn run_sequence_batch(&mut self, steps: &[Matrix]) -> Vec<Matrix> {
        steps.iter().map(|x| self.step_batch(x)).collect()
    }

    /// Detaches a snapshot of lane `lane`'s complete session state: LSTM
    /// state, all `N_t` shard memory units with their per-shard read
    /// vectors, and the carried merged-read/hidden rows. See
    /// [`BatchDnc::export_lane`]; the round trip through
    /// [`BatchDncD::import_lane`] is bit-exact.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= batch()`.
    pub fn export_lane(&self, lane: usize) -> LaneState {
        let nt = self.tiles();
        assert!(lane < self.batch, "lane index out of range");
        let shards = self.shards[lane * nt..(lane + 1) * nt]
            .iter()
            .map(|s| (s.memory.clone(), s.read.clone()))
            .collect();
        LaneState {
            lstm: self.lstm_states[lane].clone(),
            shards,
            read: self.last_read.row(lane).to_vec(),
            hidden: self.last_hidden.row(lane).to_vec(),
        }
    }

    /// Replaces lane `lane`'s session state with a snapshot detached by
    /// [`BatchDncD::export_lane`] from any engine of the same
    /// configuration. See [`BatchDnc::import_lane`].
    ///
    /// # Panics
    ///
    /// Panics if `lane >= batch()` or the snapshot's geometry/datapath
    /// disagrees with this engine (shard count, per-shard memory config,
    /// Q-format, read/hidden widths).
    pub fn import_lane(&mut self, lane: usize, state: &LaneState) {
        let nt = self.tiles();
        assert!(lane < self.batch, "lane index out of range");
        assert_eq!(state.shards.len(), nt, "lane state shard count mismatch");
        assert_eq!(state.read.len(), self.last_read.cols(), "read width mismatch");
        assert_eq!(state.hidden.len(), self.params.hidden_size, "hidden width mismatch");
        assert_eq!(state.lstm.hidden.len(), self.params.hidden_size, "hidden width mismatch");
        let lane_shards = &mut self.shards[lane * nt..(lane + 1) * nt];
        for (dst, (mem, shard_read)) in lane_shards.iter_mut().zip(&state.shards) {
            assert!(mem.matches_datapath(self.datapath), "lane state datapath mismatch");
            assert_eq!(mem.unit().config(), dst.memory.unit().config(), "memory config mismatch");
            assert_eq!(shard_read.len(), dst.read.len(), "read width mismatch");
        }
        self.lstm_states[lane] = state.lstm.clone();
        for (dst, (mem, shard_read)) in lane_shards.iter_mut().zip(&state.shards) {
            dst.memory = mem.clone();
            dst.read.copy_from_slice(shard_read);
        }
        self.last_read.row_mut(lane).copy_from_slice(&state.read);
        self.last_hidden.row_mut(lane).copy_from_slice(&state.hidden);
    }

    /// Resets a *single* lane (all its shards, recurrent state and
    /// carried rows) to blank state, leaving every other lane untouched.
    /// See [`BatchDnc::reset_lane`].
    ///
    /// # Panics
    ///
    /// Panics if `lane >= batch()`.
    pub fn reset_lane(&mut self, lane: usize) {
        let nt = self.tiles();
        assert!(lane < self.batch, "lane index out of range");
        for shard in &mut self.shards[lane * nt..(lane + 1) * nt] {
            shard.memory.reset();
            shard.read.fill(0.0);
        }
        self.lstm_states[lane].clear();
        self.last_read.row_mut(lane).fill(0.0);
        self.last_hidden.row_mut(lane).fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EngineBuilder;

    fn params() -> DncParams {
        DncParams::new(16, 4, 2).with_hidden(24).with_io(5, 6)
    }

    /// Stacks per-lane inputs for one time step into a `B × I` block.
    fn step_block(lanes: &[Vec<Vec<f32>>], t: usize) -> Matrix {
        let rows: Vec<&[f32]> = lanes.iter().map(|lane| lane[t].as_slice()).collect();
        Matrix::from_rows(&rows)
    }

    fn lane_inputs(batch: usize, steps: usize, width: usize) -> Vec<Vec<Vec<f32>>> {
        (0..batch)
            .map(|b| {
                (0..steps)
                    .map(|t| {
                        (0..width)
                            .map(|i| (((b * 131 + t * 17 + i * 7) as f32) * 0.13).sin())
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn batch_dnc_matches_sequential_lanes_exactly() {
        let (batch, steps) = (4, 6);
        let lanes = lane_inputs(batch, steps, 5);
        let mut batched = Dnc::new(params(), 11).batched_with(batch, Datapath::F32);
        let mut sequential: Vec<_> = (0..batch).map(|_| Dnc::new(params(), 11)).collect();
        for t in 0..steps {
            let y = batched.step_batch(&step_block(&lanes, t));
            for (b, dnc) in sequential.iter_mut().enumerate() {
                let want = dnc.step(&lanes[b][t]);
                assert_eq!(y.row(b), &want[..], "lane {b} t {t}");
            }
        }
    }

    #[test]
    fn batch_dncd_matches_sequential_lanes_exactly() {
        let (batch, steps) = (3, 5);
        let lanes = lane_inputs(batch, steps, 5);
        let mut batched = DncD::new(params(), 4, 23).batched_with(batch, Datapath::F32);
        let mut sequential: Vec<_> = (0..batch).map(|_| DncD::new(params(), 4, 23)).collect();
        for t in 0..steps {
            let y = batched.step_batch(&step_block(&lanes, t));
            for (b, dncd) in sequential.iter_mut().enumerate() {
                let want = dncd.step(&lanes[b][t]);
                assert_eq!(y.row(b), &want[..], "lane {b} t {t}");
            }
        }
    }

    #[test]
    fn reset_restores_blank_lanes() {
        let lanes = lane_inputs(2, 3, 5);
        let mut batched = Dnc::new(params(), 9).batched_with(2, Datapath::F32);
        let first = batched.step_batch(&step_block(&lanes, 0));
        for t in 1..3 {
            batched.step_batch(&step_block(&lanes, t));
        }
        batched.reset();
        let again = batched.step_batch(&step_block(&lanes, 0));
        assert_eq!(first, again);
    }

    #[test]
    fn builder_matches_direct_batched_construction() {
        // `EngineBuilder::build` and the internal `batched_with` plumbing
        // are the same construction path; pin that they stay bit-equal so
        // the builder remains the canonical constructor.
        let x = Matrix::filled(2, 5, 0.25);
        let mut direct = Dnc::new(params(), 31).batched_with(2, Datapath::F32);
        let mut built = EngineBuilder::new(params()).lanes(2).seed(31).build();
        assert_eq!(direct.step_batch(&x), built.step_batch(&x));

        let mut direct_d = DncD::new(params(), 4, 31).batched_with(2, Datapath::F32);
        let mut built_d = EngineBuilder::new(params()).sharded(4).lanes(2).seed(31).build();
        assert_eq!(direct_d.step_batch(&x), built_d.step_batch(&x));
    }

    #[test]
    fn batched_from_existing_model_shares_weights() {
        let dnc = Dnc::new(params(), 31);
        let mut batched = dnc.batched_with(2, Datapath::F32);
        let mut fresh = Dnc::new(params(), 31);
        let x = vec![0.25f32; 5];
        let block = Matrix::from_rows(&[x.as_slice(), x.as_slice()]);
        let y = batched.step_batch(&block);
        let want = fresh.step(&x);
        assert_eq!(y.row(0), &want[..]);
        assert_eq!(y.row(1), &want[..]);
    }

    #[test]
    fn profile_aggregates_all_lanes() {
        let mut batched = Dnc::new(params(), 1).batched_with(3, Datapath::F32);
        let x = Matrix::zeros(3, 5);
        batched.step_batch(&x);
        let p = batched.profile();
        assert_eq!(p.calls(crate::profile::KernelId::MemoryRead), 3 * 2, "3 lanes × 2 heads");
    }

    #[test]
    fn dncd_profile_aggregates_lanes_and_shards() {
        let mut batched = DncD::new(params(), 4, 1).batched_with(2, Datapath::F32);
        batched.step_batch(&Matrix::zeros(2, 5));
        let p = batched.profile();
        assert_eq!(
            p.calls(crate::profile::KernelId::MemoryRead),
            2 * 4 * 2,
            "2 lanes × 4 shards × 2 heads"
        );
    }

    #[test]
    fn quantized_datapath_lanes_hold_representable_state() {
        let q = hima_tensor::QFormat::q16_16();
        let mut batched = Dnc::new(params(), 3).batched_with(2, Datapath::Quantized(q));
        assert_eq!(batched.datapath(), Datapath::Quantized(q));
        let lanes = lane_inputs(2, 3, 5);
        for t in 0..3 {
            batched.step_batch(&step_block(&lanes, t));
        }
        for lane in 0..2 {
            for &x in batched.memory(lane).memory().as_slice() {
                assert!(q.is_representable(x), "lane {lane} holds non-Q16.16 value {x}");
            }
        }
    }

    /// Pads lane `b`'s input with zeros once its stream has ended and
    /// returns the block plus the step's mask.
    fn masked_block(lanes: &[Vec<Vec<f32>>], t: usize, width: usize) -> (Matrix, LaneMask) {
        let lens: Vec<usize> = lanes.iter().map(Vec::len).collect();
        let zero = vec![0.0f32; width];
        let rows: Vec<&[f32]> = lanes
            .iter()
            .map(|lane| lane.get(t).map_or(zero.as_slice(), Vec::as_slice))
            .collect();
        (Matrix::from_rows(&rows), LaneMask::for_step(&lens, t))
    }

    /// Per-lane streams of *unequal* lengths.
    fn ragged_lane_inputs(lens: &[usize], width: usize) -> Vec<Vec<Vec<f32>>> {
        lens.iter()
            .enumerate()
            .map(|(b, &len)| {
                (0..len)
                    .map(|t| {
                        (0..width)
                            .map(|i| (((b * 131 + t * 17 + i * 7) as f32) * 0.13).sin())
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn masked_batch_dnc_matches_sequential_ragged_lanes_exactly() {
        let lens = [5usize, 2, 4];
        let lanes = ragged_lane_inputs(&lens, 5);
        let mut batched = Dnc::new(params(), 11).batched_with(3, Datapath::F32);
        let mut sequential: Vec<_> = (0..3).map(|_| Dnc::new(params(), 11)).collect();
        for t in 0..5 {
            let (block, mask) = masked_block(&lanes, t, 5);
            let y = batched.step_batch_masked(&block, &mask);
            for (b, dnc) in sequential.iter_mut().enumerate() {
                if t < lens[b] {
                    let want = dnc.step(&lanes[b][t]);
                    assert_eq!(y.row(b), &want[..], "lane {b} t {t}");
                    assert_eq!(batched.last_read().row(b), dnc.last_read(), "lane {b} t {t}");
                } else {
                    assert!(y.row(b).iter().all(|&x| x == 0.0), "ended lane {b} outputs zero");
                    assert_eq!(
                        batched.last_read().row(b),
                        dnc.last_read(),
                        "ended lane {b} read vector frozen at t {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn masked_batch_dncd_matches_sequential_ragged_lanes_exactly() {
        let lens = [1usize, 4, 3];
        let lanes = ragged_lane_inputs(&lens, 5);
        let mut batched = DncD::new(params(), 4, 23).batched_with(3, Datapath::F32);
        let mut sequential: Vec<_> = (0..3).map(|_| DncD::new(params(), 4, 23)).collect();
        for t in 0..4 {
            let (block, mask) = masked_block(&lanes, t, 5);
            let y = batched.step_batch_masked(&block, &mask);
            for (b, dncd) in sequential.iter_mut().enumerate() {
                if t < lens[b] {
                    let want = dncd.step(&lanes[b][t]);
                    assert_eq!(y.row(b), &want[..], "lane {b} t {t}");
                } else {
                    assert_eq!(
                        batched.last_read().row(b),
                        dncd.last_read(),
                        "ended lane {b} read vector frozen at t {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn full_mask_is_bit_identical_to_step_batch() {
        let lanes = lane_inputs(3, 2, 5);
        let mut a = Dnc::new(params(), 7).batched_with(3, Datapath::F32);
        let mut b = Dnc::new(params(), 7).batched_with(3, Datapath::F32);
        for t in 0..2 {
            let block = step_block(&lanes, t);
            assert_eq!(a.step_batch(&block), b.step_batch_masked(&block, &LaneMask::full(3)));
        }
    }

    #[test]
    fn fully_inactive_mask_is_a_frozen_no_op() {
        let lanes = lane_inputs(2, 2, 5);
        let mut batched = Dnc::new(params(), 9).batched_with(2, Datapath::F32);
        batched.step_batch(&step_block(&lanes, 0));
        let read_before = batched.last_read().clone();
        let y = batched
            .step_batch_masked(&step_block(&lanes, 1), &LaneMask::from(vec![false, false]));
        assert!(y.as_slice().iter().all(|&x| x == 0.0), "no lane advanced");
        assert_eq!(batched.last_read(), &read_before, "state untouched");
        // The next real step behaves as if the no-op never happened.
        let mut control = Dnc::new(params(), 9).batched_with(2, Datapath::F32);
        control.step_batch(&step_block(&lanes, 0));
        assert_eq!(
            batched.step_batch(&step_block(&lanes, 1)),
            control.step_batch(&step_block(&lanes, 1))
        );
    }

    #[test]
    #[should_panic(expected = "lane mask size mismatch")]
    fn masked_step_rejects_wrong_mask_length() {
        Dnc::new(params(), 1)
            .batched_with(2, Datapath::F32)
            .step_batch_masked(&Matrix::zeros(2, 5), &LaneMask::full(3));
    }

    #[test]
    #[should_panic(expected = "need at least one batch lane")]
    fn rejects_zero_batch() {
        Dnc::new(params(), 1).batched_with(0, Datapath::F32);
    }

    #[test]
    #[should_panic(expected = "batch size mismatch")]
    fn rejects_wrong_batch_rows() {
        Dnc::new(params(), 1).batched_with(2, Datapath::F32).step_batch(&Matrix::zeros(3, 5));
    }

    /// Engines warmed differently per lane, then lane states swapped
    /// across engines: each lane must continue bit-identically to the
    /// engine its state came from. Covers monolithic and sharded
    /// topologies on both datapaths — the splice contract the serving
    /// grid's session swaps rest on.
    #[test]
    fn export_import_swap_is_bit_exact() {
        use crate::builder::EngineBuilder;
        use hima_tensor::QFormat;

        let build = |sharded: bool, quantized: bool| {
            let mut b = EngineBuilder::new(params()).lanes(2).seed(33);
            if sharded {
                b = b.sharded(4);
            }
            if quantized {
                b = b.quantized(QFormat::new(16, 16));
            }
            b.build()
        };
        for (sharded, quantized) in
            [(false, false), (false, true), (true, false), (true, true)]
        {
            let lanes = lane_inputs(2, 4, 5);
            let mut a = build(sharded, quantized);
            let mut c = build(sharded, quantized);
            for t in 0..2 {
                a.step_batch(&step_block(&lanes, t));
                // Engine `c` sees the lanes in swapped order.
                let swapped =
                    Matrix::from_rows(&[lanes[1][t].as_slice(), lanes[0][t].as_slice()]);
                c.step_batch(&swapped);
            }
            // Swap lane states across engines: a's lane 0 state came from
            // the same stream as c's lane 1 state.
            let a0 = a.export_lane(0);
            let c1 = c.export_lane(1);
            a.import_lane(0, &c1);
            c.import_lane(1, &a0);
            // Round trip is bit-exact: both engines now hold the same
            // per-stream state, so they continue identically (mod lane
            // order).
            for t in 2..4 {
                let ya = a.step_batch(&step_block(&lanes, t));
                let swapped =
                    Matrix::from_rows(&[lanes[1][t].as_slice(), lanes[0][t].as_slice()]);
                let yc = c.step_batch(&swapped);
                assert_eq!(ya.row(0), yc.row(1), "sharded={sharded} quant={quantized} t={t}");
                assert_eq!(ya.row(1), yc.row(0), "sharded={sharded} quant={quantized} t={t}");
                assert_eq!(a.last_read_row(0), c.last_read_row(1));
            }
        }
    }

    /// `reset_lane` returns exactly one lane to blank state: the reset
    /// lane matches a freshly built engine bit-for-bit while its
    /// neighbour's in-flight state is untouched.
    #[test]
    fn reset_lane_is_a_fresh_lane_and_leaves_neighbours_alone() {
        use crate::builder::EngineBuilder;
        for tiles in [None, Some(4)] {
            let lanes = lane_inputs(2, 4, 5);
            let mut b = EngineBuilder::new(params()).lanes(2).seed(5);
            if let Some(nt) = tiles {
                b = b.sharded(nt);
            }
            let mut warmed = b.clone().build();
            let mut fresh = b.build();
            for t in 0..2 {
                warmed.step_batch(&step_block(&lanes, t));
            }
            let lane1 = warmed.export_lane(1);
            warmed.reset_lane(0);
            // Lane 1 untouched by the reset.
            assert_eq!(warmed.last_read_row(1), &lane1.read[..]);
            // Lane 0 now behaves as a blank lane: replay lane 0's stream
            // from scratch on both engines.
            for t in 0..2 {
                let yw = warmed.step_batch(&step_block(&lanes, t));
                let yf = fresh.step_batch(&step_block(&lanes, t));
                assert_eq!(yw.row(0), yf.row(0), "tiles={tiles:?} t={t}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "shard count mismatch")]
    fn import_rejects_wrong_shard_count() {
        use crate::builder::EngineBuilder;
        let mono = EngineBuilder::new(params()).lanes(1).seed(1).build();
        let mut sharded = EngineBuilder::new(params()).sharded(4).lanes(1).seed(1).build();
        let state = mono.export_lane(0);
        sharded.import_lane(0, &state);
    }

    #[test]
    #[should_panic(expected = "datapath mismatch")]
    fn import_rejects_wrong_datapath() {
        use crate::builder::EngineBuilder;
        use hima_tensor::QFormat;
        let f32e = EngineBuilder::new(params()).lanes(1).seed(1).build();
        let mut quant =
            EngineBuilder::new(params()).lanes(1).quantized(QFormat::new(16, 16)).seed(1).build();
        let state = f32e.export_lane(0);
        quant.import_lane(0, &state);
    }

    #[test]
    fn lane_state_reports_geometry() {
        use crate::builder::EngineBuilder;
        let e = EngineBuilder::new(params()).sharded(4).lanes(1).seed(1).build();
        let state = e.export_lane(0);
        assert_eq!(state.shard_count(), 4);
        assert!(state.state_elems() > 0);
    }
}
