//! Fig. 4: Kernel runtime breakdown on a general-purpose platform.
//!
//! The paper profiles DNC inference on an Nvidia 3080Ti and an
//! i7-9700K: >95% of the runtime is the memory unit, with history-based
//! write weighting dominating the GPU (72%, sort-bound). Our instrumented
//! functional DNC plays the general-purpose-platform role (it *is* a
//! centralized software implementation); the paper's numbers are printed
//! alongside.

use hima::prelude::*;
use hima_bench::{bar, header};

fn main() {
    header("Fig. 4: kernel runtime breakdown (centralized software DNC, N x W = 1024 x 64)");

    let params = DncParams::paper_babi();
    let mut dnc = Dnc::new(params, 2021);
    let steps = 12;
    for t in 0..steps {
        let x: Vec<f32> = (0..params.input_size)
            .map(|i| ((t * 13 + i * 7) as f32 * 0.113).sin())
            .collect();
        dnc.step(&x);
    }
    let profile = dnc.profile();
    let total_ms = profile.total_nanos() as f64 / 1e6;
    println!("{steps} DNC steps in {total_ms:.1} ms on this machine\n");

    // Paper's reference shares (GPU / CPU), Fig. 4.
    let paper: &[(&str, f64, f64)] = &[
        ("History-based Wr. Weighting", 72.0, 11.0),
        ("History-based Rd. Weighting", 9.0, 10.0),
        ("Content-based Weighting", 12.0, 22.0),
        ("Write/Read Mem. Access", 4.0, 53.0),
        ("NN (LSTM)", 3.0, 4.0),
    ];

    println!("{:<30} {:>9} {:>10} {:>10}", "category", "measured", "paper GPU", "paper CPU");
    for (cat, share) in profile.category_shares() {
        let (gpu, cpu) = paper
            .iter()
            .find(|(name, _, _)| *name == cat.label())
            .map(|(_, g, c)| (*g, *c))
            .unwrap_or((0.0, 0.0));
        println!(
            "{:<30} {:>8.1}% {:>9.1}% {:>9.1}%  {}",
            cat.label(),
            share * 100.0,
            gpu,
            cpu,
            bar(share, 30)
        );
    }

    let controller = profile.category_nanos(hima::dnc::KernelCategory::Controller) as f64;
    let memory_unit_share = 1.0 - controller / profile.total_nanos() as f64;
    println!(
        "\nMemory unit share of runtime: {:.1}% (paper: >95% on both platforms)",
        memory_unit_share * 100.0
    );
}
