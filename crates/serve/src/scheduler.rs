//! The continuous-batching scheduler: one tick loop per engine group.
//!
//! A **group** is every live session that shares one engine configuration
//! (equal [`SessionSpec`](crate::protocol::SessionSpec) group keys). The
//! group thread owns a single batched engine whose lane count is the
//! grid capacity, and each **tick** coalesces the pending step requests
//! of resident sessions into one `step_batch_masked_into` call:
//!
//! * sessions **join** a lane when they have queued steps (fresh lanes
//!   are recycled with `reset_lane`, swapped-in sessions re-attached with
//!   `import_lane`),
//! * sessions with no work are **frozen** in place by the
//!   [`LaneMask`] — a parked resident costs (almost) nothing and its
//!   state stays bit-identical while co-tenants advance,
//! * when the grid is full, the least-recently-active idle resident is
//!   **swapped out** through `export_lane` to a detached
//!   [`LaneState`](hima_dnc::LaneState) and its lane slot returns to the
//!   free list.
//!
//! Because weights are a function of the seed alone and masked stepping
//! of an active lane is bit-identical to stepping that lane solo (the
//! ragged conformance contract), a session served through this grid
//! produces **bit-identical** outputs to a dedicated single-lane engine
//! fed the same inputs — regardless of co-tenants, joins, leaves or
//! swaps. `tests/serve_conformance.rs` pins that end to end.
//!
//! # Durability tier
//!
//! With a [`SessionStore`] configured, the in-RAM park tier gains a
//! disk tier below it:
//!
//! * every served step is appended to the session's CRC-guarded delta
//!   log **before** the engine steps it (write-ahead): an acknowledged
//!   step is always re-derivable after a process kill. If the append
//!   fails, the step is *not* applied — the command fails with a typed
//!   store error instead of acknowledging state the disk never saw,
//! * every `snapshot_every` steps the lane state is snapshotted (which
//!   compacts the log),
//! * the idle-timeout sweep **evicts** instead of reaping: the session's
//!   state is snapshotted to disk, dropped from RAM, and the id stays
//!   routable — its next command transparently **rehydrates** it
//!   (snapshot decode + replay of unapplied log records through the
//!   grid), bit-identically. If the eviction snapshot fails, the state
//!   is *never* discarded: the session degrades to the in-RAM parked
//!   tier (counted under `store.evict_refusals`) and stays servable,
//! * when more than `max_parked` detached states accumulate in RAM, the
//!   least-recently-active ones spill to disk the same way.
//!
//! Replayed steps run through the ordinary masked grid but answer no
//! client and append no log records; a `ReadRows` that arrives while a
//! replay is draining is deferred until the recovered state is current.
//!
//! # Overload protection and deadlines
//!
//! Step admission enforces two queue budgets — per session
//! ([`ServeConfig::session_queue_limit`]) and across all groups
//! ([`ServeConfig::global_queue_limit`]) — answering
//! [`ServeError::Overloaded`] with a drain-time estimate instead of
//! queueing without bound. Each in-flight command may carry a deadline;
//! the tick sheds expired commands (oldest deadline first, the order
//! [`crate::retry::shed_order`] pins) with a typed
//! [`ServeError::DeadlineExceeded`] — never a silent drop.
//!
//! # Supervision
//!
//! The group thread body is re-entrant: the supervisor in
//! [`SessionHub`](crate::session::SessionHub) wraps [`run_group`] in
//! `catch_unwind` and calls it again with `resume = true` after a panic.
//! The restarted group resurrects store-backed sessions from their
//! snapshot + delta log and fails unpersisted ones with a typed
//! [`ServeError::GroupFailed`]; the [`GroupShared`] contribution
//! counters let the supervisor repair the shared gauges a dying group
//! left dangling.

use crate::metrics::ServeMetrics;
use crate::protocol::{Response, ServeError, SessionSpec};
use crate::server::ServeConfig;
use hima_chaos::{FaultKind, FaultSite};
use hima_dnc::{BoxedEngine, EngineBuilder, KernelId, KernelProfile, LaneState};
use hima_store::SessionStore;
use hima_telemetry::{Histogram, TraceKind};
use hima_tensor::{LaneMask, Matrix};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// With sampled engine timing on, fold the engine's accumulated
/// [`KernelProfile`] into the registry every this many stepped ticks.
const PROFILE_SAMPLE_TICKS: u32 = 64;

/// Locks a mutex, ignoring poisoning: a panicked group thread must not
/// wedge the hub (or the next incarnation of the group) out of the
/// shared maps — the data under these locks stays consistent because
/// every critical section is a plain insert/remove.
pub(crate) fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A command routed to a group thread by the
/// [`SessionHub`](crate::session::SessionHub).
pub(crate) enum GroupCmd {
    /// Register a hub-allocated session id with this group.
    Open { session: u64, reply: Sender<Response> },
    /// Queue `inputs.len()` steps; one reply carries all output rows.
    /// `deadline` (if any) bounds how long the rows may sit queued.
    Step { session: u64, inputs: Vec<Vec<f32>>, deadline: Option<Instant>, reply: Sender<Response> },
    /// Query the session's current read-vector row.
    ReadRows { session: u64, reply: Sender<Response> },
    /// Reset the session to blank state.
    Reset { session: u64, reply: Sender<Response> },
    /// Close the session.
    Close { session: u64, reply: Sender<Response> },
    /// Register a session found in the store at hub boot as spilled; it
    /// rehydrates lazily on its first command. Fire-and-forget.
    Adopt { session: u64 },
}

/// Store wiring handed to a group at spawn (see
/// [`StoreConfig`](crate::session::StoreConfig) for the policy knobs).
#[derive(Clone)]
pub(crate) struct GroupStore {
    /// The shared on-disk session store.
    pub store: Arc<SessionStore>,
    /// Snapshot + compact a session's log every this many logged steps.
    pub snapshot_every: u64,
    /// Spill LRU detached states to disk beyond this many parked in RAM.
    pub max_parked: usize,
}

/// State shared between a group thread, its supervisor, and the hub.
///
/// The `queued`/`parked` counters track this group's *contribution* to
/// the corresponding shared gauges. When the group thread panics those
/// gauge contributions would otherwise dangle forever; the supervisor
/// swaps them to zero and subtracts them back out before restarting.
#[derive(Clone)]
pub(crate) struct GroupShared {
    /// The hub's session → group routing table.
    pub index: Arc<Mutex<HashMap<u64, Sender<GroupCmd>>>>,
    /// Server-wide metric handles and lifecycle trace.
    pub metrics: Arc<ServeMetrics>,
    /// Steps queued across every group (the global admission budget).
    pub global_queued: Arc<AtomicI64>,
    /// Session ids this group owns (RAM or spilled) — what the restarted
    /// group scans for resurrection after a panic.
    pub roster: Arc<Mutex<HashSet<u64>>>,
    /// This group's contribution to `serve.scheduler.queue_depth` (and
    /// to `global_queued`).
    pub queued: Arc<AtomicI64>,
    /// This group's contribution to `serve.sessions.parked`.
    pub parked: Arc<AtomicI64>,
}

impl GroupShared {
    fn queue_add(&self, n: i64) {
        self.metrics.queue_depth.add(n);
        self.queued.fetch_add(n, Ordering::Relaxed);
        self.global_queued.fetch_add(n, Ordering::Relaxed);
    }

    fn queue_sub(&self, n: i64) {
        self.metrics.queue_depth.sub(n);
        self.queued.fetch_sub(n, Ordering::Relaxed);
        self.global_queued.fetch_sub(n, Ordering::Relaxed);
    }

    fn park_add(&self, n: i64) {
        self.metrics.sessions_parked.add(n);
        self.parked.fetch_add(n, Ordering::Relaxed);
    }

    fn park_sub(&self, n: i64) {
        self.metrics.sessions_parked.sub(n);
        self.parked.fetch_sub(n, Ordering::Relaxed);
    }
}

/// Per-session scheduler state.
struct Sess {
    /// Resident lane slot, if currently on the grid.
    lane: Option<usize>,
    /// Detached state while swapped out (`None` for a blank session —
    /// attaching then recycles the lane with `reset_lane`).
    parked: Option<LaneState>,
    /// Pending step inputs in step order, each with its enqueue instant
    /// (the start of the measured enqueue→output step latency).
    queue: VecDeque<(Vec<f32>, Instant)>,
    /// The in-flight step command: reply channel, outputs accumulated so
    /// far, and how many are expected. At most one per session.
    reply: Option<(Sender<Response>, Vec<Vec<f32>>, usize)>,
    /// The in-flight command's deadline: queued rows still unserved when
    /// it passes are shed with `DeadlineExceeded`.
    deadline: Option<Instant>,
    /// Copy of the session's current read-vector row, maintained across
    /// swaps so `ReadRows` never needs to touch the grid.
    last_read: Vec<f32>,
    /// Refreshed by every command and every stepped tick; drives
    /// idle-timeout reaping.
    last_activity: Instant,
    /// This session's `serve.session.<id>.step_latency_us` histogram
    /// (registered on open, dropped on close/reap).
    latency: Histogram,
    /// Steps applied to this session over its whole life (survives
    /// evict/rehydrate) — the delta-log sequence number of the latest
    /// step and the `step_seq` a snapshot is stamped with.
    seq: u64,
    /// Logged steps since the last snapshot; drives periodic compaction.
    since_snapshot: u64,
    /// Queued rows at the front of `queue` that are recovery replay:
    /// they step the grid but answer no client and append no log record.
    replay_left: usize,
    /// `ReadRows` replies deferred until `replay_left` drains.
    pending_reads: Vec<Sender<Response>>,
    /// Open delta-log writer (lazy; dropped before compaction, because
    /// compaction deletes the log file out from under stale handles).
    log: Option<hima_store::LogWriter>,
}

impl Sess {
    fn idle(&self) -> bool {
        self.queue.is_empty() && self.reply.is_none()
    }
}

/// The state owned by one group thread.
struct Group {
    cfg: ServeConfig,
    engine: BoxedEngine,
    /// `lanes[slot]` = resident session id.
    lanes: Vec<Option<u64>>,
    free: Vec<usize>,
    sessions: HashMap<u64, Sess>,
    /// Hub/supervisor shared state: routing index, metrics, budgets,
    /// roster, gauge contributions.
    shared: GroupShared,
    /// Reused per-tick input/output blocks.
    x: Matrix,
    y: Matrix,
    read_width: usize,
    /// Server-wide metric handles and lifecycle trace (clone of
    /// `shared.metrics`, kept separate for borrow-splitting ergonomics).
    metrics: Arc<ServeMetrics>,
    /// Sampled engine timing: the profile totals already folded into the
    /// registry (`None` when the opt-in path is off).
    profile_base: Option<KernelProfile>,
    /// Stepped ticks since the last profile sample.
    ticks_since_sample: u32,
    /// The durability tier (`None` = RAM only; idle-reap then discards).
    store: Option<GroupStore>,
    /// This group's canonical spec key — what its sessions' store files
    /// are stamped with.
    spec_key: Vec<u8>,
    /// Sessions living only in the store right now; still routable, and
    /// rehydrated on their next command.
    spilled: HashSet<u64>,
    /// Sessions lost to a group panic (no durable state to resurrect
    /// from). Their next command answers `GroupFailed` exactly once.
    failed: HashSet<u64>,
    /// A blank lane's state, for non-panicking geometry checks against
    /// decoded snapshots before `import_lane` (which asserts), and as
    /// the canonical state of a blank session being evicted.
    template: Option<LaneState>,
}

/// Runs a group's tick loop until its command channel disconnects (server
/// shutdown) **and** every queued step has been served — pending work is
/// drained, never dropped.
///
/// Re-entrant: the supervisor calls it again after a panic with
/// `resume = true`, and the fresh incarnation resurrects store-backed
/// sessions from the roster (unpersisted ones move to the failed set).
pub(crate) fn run_group(
    cfg: ServeConfig,
    spec: SessionSpec,
    rx: &Receiver<GroupCmd>,
    shared: GroupShared,
    store: Option<GroupStore>,
    resume: bool,
) {
    let lanes = cfg.grid_lanes.max(1);
    let metrics = Arc::clone(&shared.metrics);
    let profiling = metrics.engine_profiling();
    let spec_key = spec.group_key();
    let engine = EngineBuilder::new(spec.params)
        .with_spec(spec.spec)
        .lanes(lanes)
        .seed(spec.seed)
        .profiling(profiling)
        .build();
    let read_width = spec.params.read_heads * spec.params.word_size;
    let template = store.as_ref().map(|_| engine.export_lane(0));
    let mut group = Group {
        cfg,
        engine,
        lanes: vec![None; lanes],
        free: (0..lanes).rev().collect(),
        sessions: HashMap::new(),
        shared,
        x: Matrix::zeros(lanes, spec.params.input_size),
        y: Matrix::zeros(lanes, spec.params.output_size),
        read_width,
        metrics,
        profile_base: profiling.then(KernelProfile::new),
        ticks_since_sample: 0,
        store,
        spec_key,
        spilled: HashSet::new(),
        failed: HashSet::new(),
        template,
    };
    if resume {
        group.resurrect();
    }

    let mut disconnected = false;
    loop {
        let has_work = group.sessions.values().any(|s| !s.queue.is_empty());
        if has_work || disconnected {
            // Work pending (or draining): poll without blocking so the
            // grid keeps ticking at full rate.
            loop {
                match rx.try_recv() {
                    Ok(cmd) => group.handle(cmd),
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        disconnected = true;
                        break;
                    }
                }
            }
        } else {
            // Idle: block for up to one tick waiting for a command.
            match rx.recv_timeout(group.cfg.tick) {
                Ok(cmd) => {
                    group.handle(cmd);
                    while let Ok(cmd) = rx.try_recv() {
                        group.handle(cmd);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => disconnected = true,
            }
        }
        group.step_tick();
        group.reap();
        group.spill_lru();
        if disconnected && group.sessions.values().all(Sess::idle) {
            break;
        }
    }
    // Fold any engine time accumulated since the last periodic sample.
    group.sample_profile(true);
}

impl Group {
    /// A fresh blank session record (open, or reset-from-spilled).
    fn blank_sess(&self, session: u64) -> Sess {
        Sess {
            lane: None,
            parked: None,
            queue: VecDeque::new(),
            reply: None,
            deadline: None,
            last_read: vec![0.0; self.read_width],
            last_activity: Instant::now(),
            latency: self.metrics.session_histogram(session),
            seq: 0,
            since_snapshot: 0,
            replay_left: 0,
            pending_reads: Vec::new(),
            log: None,
        }
    }

    /// Post-panic recovery: every roster session either resurrects from
    /// its store files (as spilled — the lazy rehydration path does the
    /// heavy lifting on its next command) or moves to the failed set.
    fn resurrect(&mut self) {
        let roster: Vec<u64> = lock_clean(&self.shared.roster).iter().copied().collect();
        let mut resurrected = 0u64;
        for id in roster {
            let stored = self
                .store
                .as_ref()
                .and_then(|gs| gs.store.spec_key(id).ok().flatten())
                .is_some_and(|key| key == self.spec_key);
            if stored {
                self.spilled.insert(id);
                self.metrics.supervisor_resurrected.inc();
                resurrected += 1;
            } else {
                lock_clean(&self.shared.roster).remove(&id);
                self.failed.insert(id);
                self.metrics.sessions_live.sub(1);
                self.metrics.supervisor_failed_sessions.inc();
                self.metrics.drop_session_histogram(id);
                self.metrics.trace(TraceKind::SessionFailed, id, 0);
            }
        }
        self.metrics.trace(TraceKind::GroupRestart, 0, resurrected);
    }

    /// Deletes a session's store files, counting failures.
    fn drop_store_files(&self, session: u64) {
        if let Some(gs) = &self.store {
            if gs.store.remove(session).is_err() {
                self.metrics.store_errors.inc();
            }
        }
    }

    /// How long an overloaded client should wait before retrying: the
    /// estimated drain time of the current global backlog through this
    /// group's grid, in whole ticks.
    fn retry_after_estimate(&self) -> u64 {
        let backlog = self.shared.global_queued.load(Ordering::Relaxed).max(0) as u64;
        let lanes = self.engine.batch().max(1) as u64;
        let tick_ms = self.cfg.tick.as_millis().max(1) as u64;
        ((backlog / lanes + 1) * tick_ms).clamp(1, 30_000)
    }

    fn handle(&mut self, cmd: GroupCmd) {
        // A session the supervisor could not resurrect answers its next
        // command with a typed GroupFailed, then unregisters.
        let failed_target = match &cmd {
            GroupCmd::Open { .. } => None,
            GroupCmd::Step { session, .. }
            | GroupCmd::ReadRows { session, .. }
            | GroupCmd::Reset { session, .. }
            | GroupCmd::Close { session, .. }
            | GroupCmd::Adopt { session } => Some(*session),
        };
        if let Some(session) = failed_target {
            if self.failed.remove(&session) {
                lock_clean(&self.shared.index).remove(&session);
                let resp = Response::Error(ServeError::GroupFailed(session));
                match cmd {
                    GroupCmd::Step { reply, .. }
                    | GroupCmd::ReadRows { reply, .. }
                    | GroupCmd::Reset { reply, .. }
                    | GroupCmd::Close { reply, .. } => {
                        let _ = reply.send(resp);
                    }
                    _ => {}
                }
                return;
            }
        }
        // Step and read commands addressed to a spilled session pull it
        // back into RAM first; close/reset only touch the store files.
        let target = match &cmd {
            GroupCmd::Step { session, .. } | GroupCmd::ReadRows { session, .. } => Some(*session),
            _ => None,
        };
        if let Some(session) = target {
            if self.spilled.contains(&session) {
                if let Err(e) = self.rehydrate(session) {
                    let (GroupCmd::Step { reply, .. } | GroupCmd::ReadRows { reply, .. }) = cmd
                    else {
                        unreachable!()
                    };
                    let _ = reply.send(Response::Error(e));
                    return;
                }
            }
        }
        match cmd {
            GroupCmd::Open { session, reply } => {
                let blank = self.blank_sess(session);
                self.sessions.insert(session, blank);
                lock_clean(&self.shared.roster).insert(session);
                self.metrics.sessions_opened.inc();
                self.metrics.sessions_live.add(1);
                self.metrics.trace(TraceKind::Open, session, 0);
                let _ = reply.send(Response::Opened { session });
            }
            GroupCmd::Step { session, inputs, deadline, reply } => {
                let input_size = self.engine.params().input_size;
                let retry_after_ms = self.retry_after_estimate();
                let global_queued = self.shared.global_queued.load(Ordering::Relaxed).max(0) as usize;
                let Some(sess) = self.sessions.get_mut(&session) else {
                    let _ = reply.send(Response::Error(ServeError::UnknownSession(session)));
                    return;
                };
                if sess.reply.is_some() {
                    let _ = reply.send(Response::Error(ServeError::SessionBusy(session)));
                    return;
                }
                if inputs.is_empty() {
                    let _ = reply.send(Response::Stepped { outputs: Vec::new() });
                    return;
                }
                if let Some(bad) = inputs.iter().find(|row| row.len() != input_size) {
                    let _ = reply.send(Response::Error(ServeError::BadInput(format!(
                        "input rows must be {input_size} wide, got {}",
                        bad.len()
                    ))));
                    return;
                }
                // Admission control: bounded queues, typed rejection.
                let over_session =
                    sess.queue.len() + inputs.len() > self.cfg.session_queue_limit.max(1);
                let over_global =
                    global_queued.saturating_add(inputs.len()) > self.cfg.global_queue_limit.max(1);
                if over_session || over_global {
                    self.metrics.overload_shed.inc();
                    self.metrics.trace(TraceKind::Shed, session, inputs.len() as u64);
                    let _ = reply.send(Response::Error(ServeError::Overloaded { retry_after_ms }));
                    return;
                }
                let now = Instant::now();
                sess.last_activity = now;
                let expected = inputs.len();
                sess.queue.extend(inputs.into_iter().map(|row| (row, now)));
                sess.reply = Some((reply, Vec::with_capacity(expected), expected));
                sess.deadline = deadline;
                self.shared.queue_add(expected as i64);
            }
            GroupCmd::ReadRows { session, reply } => {
                let Some(sess) = self.sessions.get_mut(&session) else {
                    let _ = reply.send(Response::Error(ServeError::UnknownSession(session)));
                    return;
                };
                sess.last_activity = Instant::now();
                if sess.replay_left > 0 {
                    // Recovery replay still draining: answer once the
                    // re-applied log has caught the state up.
                    sess.pending_reads.push(reply);
                    return;
                }
                let _ = reply.send(Response::Rows { read: sess.last_read.clone() });
            }
            GroupCmd::Reset { session, reply } => {
                if self.spilled.remove(&session) {
                    // Reset of a spilled session never rehydrates: the
                    // stored state is discarded and it restarts blank.
                    self.drop_store_files(session);
                    let blank = self.blank_sess(session);
                    self.sessions.insert(session, blank);
                    let _ = reply.send(Response::Done);
                    return;
                }
                let Some(sess) = self.sessions.get_mut(&session) else {
                    let _ = reply.send(Response::Error(ServeError::UnknownSession(session)));
                    return;
                };
                if sess.reply.is_some() {
                    let _ = reply.send(Response::Error(ServeError::SessionBusy(session)));
                    return;
                }
                if let Some(lane) = sess.lane {
                    self.engine.reset_lane(lane);
                    self.metrics.lane_resets.inc();
                }
                let was_parked = sess.parked.take().is_some();
                let queued = sess.queue.len();
                sess.queue.clear();
                sess.deadline = None;
                sess.last_read.fill(0.0);
                sess.last_activity = Instant::now();
                sess.seq = 0;
                sess.since_snapshot = 0;
                sess.replay_left = 0;
                sess.log = None;
                for deferred in sess.pending_reads.drain(..) {
                    let _ = deferred.send(Response::Rows { read: sess.last_read.clone() });
                }
                if was_parked {
                    self.shared.park_sub(1);
                }
                self.shared.queue_sub(queued as i64);
                self.drop_store_files(session);
                let _ = reply.send(Response::Done);
            }
            GroupCmd::Close { session, reply } => {
                match self.sessions.remove(&session) {
                    Some(mut sess) => {
                        if let Some(lane) = sess.lane {
                            self.lanes[lane] = None;
                            self.free.push(lane);
                        }
                        if sess.parked.is_some() {
                            self.shared.park_sub(1);
                        }
                        self.shared.queue_sub(sess.queue.len() as i64);
                        // Abort any queued-but-unserved steps (cannot
                        // happen through the synchronous client, which
                        // holds the session busy until the reply).
                        if let Some((reply, outputs, _)) = sess.reply {
                            let _ = reply.send(Response::Stepped { outputs });
                        }
                        for deferred in sess.pending_reads.drain(..) {
                            let _ = deferred.send(Response::Rows { read: sess.last_read.clone() });
                        }
                        // Drop the log writer before deleting its file.
                        sess.log = None;
                        self.drop_store_files(session);
                        lock_clean(&self.shared.index).remove(&session);
                        lock_clean(&self.shared.roster).remove(&session);
                        self.metrics.sessions_closed.inc();
                        self.metrics.sessions_live.sub(1);
                        self.metrics.drop_session_histogram(session);
                        self.metrics.trace(TraceKind::Close, session, 0);
                        let _ = reply.send(Response::Done);
                    }
                    None if self.spilled.remove(&session) => {
                        // Closing a spilled session never rehydrates it;
                        // its store files are simply deleted.
                        self.drop_store_files(session);
                        lock_clean(&self.shared.index).remove(&session);
                        lock_clean(&self.shared.roster).remove(&session);
                        self.metrics.sessions_closed.inc();
                        self.metrics.sessions_live.sub(1);
                        self.metrics.trace(TraceKind::Close, session, 0);
                        let _ = reply.send(Response::Done);
                    }
                    None => {
                        let _ = reply.send(Response::Error(ServeError::UnknownSession(session)));
                    }
                }
            }
            GroupCmd::Adopt { session } => {
                self.spilled.insert(session);
                lock_clean(&self.shared.roster).insert(session);
            }
        }
    }

    /// Grants a lane slot: from the free list, else by swapping out the
    /// least-recently-active idle resident. `None` if every resident is
    /// mid-request this tick (the requester stays queued and retries next
    /// tick — by then at least one resident has drained or parked).
    fn alloc_lane(&mut self) -> Option<usize> {
        if let Some(lane) = self.free.pop() {
            return Some(lane);
        }
        let victim = self
            .lanes
            .iter()
            .filter_map(|&slot| slot)
            .filter(|id| self.sessions[id].idle())
            .min_by_key(|id| self.sessions[id].last_activity)?;
        let sess = self.sessions.get_mut(&victim).unwrap();
        let lane = sess.lane.take().unwrap();
        sess.parked = Some(self.engine.export_lane(lane));
        self.lanes[lane] = None;
        self.metrics.parks.inc();
        self.shared.park_add(1);
        self.metrics.trace(TraceKind::Park, victim, lane as u64);
        Some(lane)
    }

    /// Sheds every in-flight command whose deadline has passed, oldest
    /// deadline first (ties by session id — the order
    /// [`crate::retry::shed_order`] property-tests). The whole command
    /// fails with a typed `DeadlineExceeded`; rows already stepped are
    /// dropped with it (the session state keeps them — only the reply is
    /// truncated). Recovery-replay rows are never shed: they are owed to
    /// durability, not to a client.
    fn shed_expired(&mut self) {
        let now = Instant::now();
        let mut expired: Vec<(Instant, u64)> = self
            .sessions
            .iter()
            .filter_map(|(&id, s)| match s.deadline {
                Some(d) if d <= now && s.reply.is_some() => Some((d, id)),
                _ => None,
            })
            .collect();
        if expired.is_empty() {
            return;
        }
        expired.sort_unstable();
        for (_, id) in expired {
            let sess = self.sessions.get_mut(&id).unwrap();
            let shed = sess.queue.len() - sess.replay_left;
            sess.queue.truncate(sess.replay_left);
            sess.deadline = None;
            let (reply, _outputs, _) = sess.reply.take().unwrap();
            let _ = reply.send(Response::Error(ServeError::DeadlineExceeded { session: id }));
            self.shared.queue_sub(shed as i64);
            self.metrics.overload_deadline_expired.inc();
            self.metrics.trace(TraceKind::Shed, id, shed as u64);
        }
    }

    /// One grid tick: shed expired commands, seat sessions with pending
    /// work, coalesce one queued step per seated session into a masked
    /// batch, step, fan the outputs back out.
    fn step_tick(&mut self) {
        self.shed_expired();
        // Deterministic seating order (session id) keeps swap decisions
        // reproducible under identical command interleavings.
        let mut pending: Vec<u64> =
            self.sessions.iter().filter(|(_, s)| !s.queue.is_empty()).map(|(&id, _)| id).collect();
        if pending.is_empty() {
            return;
        }
        pending.sort_unstable();

        // The scheduler fault site: consulted once per tick that has
        // pending work, *before* any queue entry is popped — a panic
        // here leaves every command intact for the restarted group.
        if let Some(plan) = self.cfg.faults.as_deref() {
            match plan.check(FaultSite::SchedTick) {
                Some(FaultKind::Panic) => panic!("injected scheduler panic"),
                Some(kind) => {
                    // Latency sleeps inside; error kinds are meaningless
                    // at this site and ignored.
                    let _ = hima_chaos::io_error_for(kind);
                }
                None => {}
            }
        }

        let mut mask = vec![false; self.engine.batch()];
        let mut stepping: Vec<(u64, usize, Instant, bool)> = Vec::with_capacity(pending.len());
        for id in pending {
            let lane = match self.sessions[&id].lane {
                Some(lane) => lane,
                None => match self.alloc_lane() {
                    Some(lane) => {
                        let sess = self.sessions.get_mut(&id).unwrap();
                        sess.lane = Some(lane);
                        self.lanes[lane] = Some(id);
                        match sess.parked.take() {
                            Some(state) => {
                                self.engine.import_lane(lane, &state);
                                self.metrics.splices.inc();
                                self.shared.park_sub(1);
                                self.metrics.trace(TraceKind::Splice, id, lane as u64);
                            }
                            None => {
                                self.engine.reset_lane(lane);
                                self.metrics.lane_resets.inc();
                            }
                        }
                        lane
                    }
                    // Grid saturated by mid-request residents: wait a
                    // tick.
                    None => continue,
                },
            };
            let sess = self.sessions.get_mut(&id).unwrap();
            let is_replay = sess.replay_left > 0;
            if let Some(gs) = self.store.as_ref().filter(|_| !is_replay) {
                // Write-ahead: the step input must be durable *before*
                // the engine applies it — an acknowledged step is then
                // always re-derivable after a kill. On failure the step
                // is not applied and the command fails typed.
                if sess.log.is_none() {
                    if let Ok(w) = gs.store.log_writer(id, &self.spec_key) {
                        sess.log = Some(w);
                    }
                }
                let next_seq = sess.seq + 1;
                let appended = match &mut sess.log {
                    Some(log) => {
                        let input = &sess.queue.front().unwrap().0;
                        log.append(next_seq, input).is_ok()
                    }
                    None => false,
                };
                if !appended {
                    self.metrics.store_errors.inc();
                    sess.log = None;
                    let dropped = sess.queue.len();
                    sess.queue.clear();
                    sess.deadline = None;
                    if let Some((reply, _, _)) = sess.reply.take() {
                        let _ = reply.send(Response::Error(ServeError::Store(format!(
                            "session {id}: delta-log append failed; step not applied"
                        ))));
                    }
                    self.shared.queue_sub(dropped as i64);
                    continue;
                }
                self.metrics.store_log_appends.inc();
                sess.seq = next_seq;
                sess.since_snapshot += 1;
            }
            let (input, enqueued) = sess.queue.pop_front().unwrap();
            self.x.row_mut(lane).copy_from_slice(&input);
            mask[lane] = true;
            stepping.push((id, lane, enqueued, is_replay));
        }
        if stepping.is_empty() {
            return;
        }

        let mask = LaneMask::from(mask);
        let tick_start = Instant::now();
        self.engine.step_batch_masked_into(&self.x, &mask, &mut self.y);
        let tick_ns = tick_start.elapsed().as_nanos() as u64;

        let n = stepping.len();
        self.metrics.ticks.inc();
        self.metrics.steps.add(n as u64);
        self.metrics.tick_ns.observe(tick_ns);
        self.metrics.batch_size.observe(n as u64);
        self.metrics.occupancy_pct.observe((n * 100 / self.engine.batch()) as u64);
        self.metrics.active_lanes.set(n as i64);
        self.shared.queue_sub(n as i64);

        let now = Instant::now();
        let mut compact: Vec<u64> = Vec::new();
        for (id, lane, enqueued, is_replay) in stepping {
            let sess = self.sessions.get_mut(&id).unwrap();
            sess.last_read.copy_from_slice(self.engine.last_read_row(lane));
            sess.last_activity = now;
            if is_replay {
                // A recovery-replay row: it advanced the lane state but
                // answers no client, counts no latency and appends no
                // log record (it came *from* the log or predates the
                // snapshot's coverage).
                sess.replay_left -= 1;
                if sess.replay_left == 0 {
                    for deferred in sess.pending_reads.drain(..) {
                        let _ = deferred.send(Response::Rows { read: sess.last_read.clone() });
                    }
                }
                continue;
            }
            if let Some(gs) = &self.store {
                if sess.since_snapshot >= gs.snapshot_every {
                    compact.push(id);
                }
            }
            let latency_us = now.duration_since(enqueued).as_micros() as u64;
            sess.latency.observe(latency_us);
            self.metrics.step_latency_us.observe(latency_us);
            let (reply, mut outputs, expected) = sess.reply.take().unwrap();
            outputs.push(self.y.row(lane).to_vec());
            if outputs.len() == expected {
                sess.deadline = None;
                let _ = reply.send(Response::Stepped { outputs });
            } else {
                sess.reply = Some((reply, outputs, expected));
            }
        }
        for id in compact {
            self.compact(id);
        }

        self.ticks_since_sample += 1;
        self.sample_profile(false);
    }

    /// With sampled engine timing on, folds the delta between the
    /// engine's cumulative [`KernelProfile`] and the last sampled
    /// baseline into the registry's per-category counters. Runs every
    /// [`PROFILE_SAMPLE_TICKS`] stepped ticks and once (`force`) at group
    /// shutdown.
    fn sample_profile(&mut self, force: bool) {
        let Some(base) = &self.profile_base else { return };
        if !force && self.ticks_since_sample < PROFILE_SAMPLE_TICKS {
            return;
        }
        let cur = self.engine.profile();
        let mut delta = KernelProfile::new();
        for k in KernelId::ALL {
            delta.record(
                k,
                cur.nanos(k).saturating_sub(base.nanos(k)),
                cur.calls(k).saturating_sub(base.calls(k)),
            );
        }
        self.metrics.record_profile_delta(&delta);
        self.profile_base = Some(cur);
        self.ticks_since_sample = 0;
    }

    /// Periodic compaction of one resident session: snapshot the lane
    /// state at its current `seq`, which truncates the delta log.
    fn compact(&mut self, id: u64) {
        let Some(gs) = &self.store else { return };
        let store = Arc::clone(&gs.store);
        let sess = self.sessions.get_mut(&id).unwrap();
        let Some(lane) = sess.lane else { return };
        let seq = sess.seq;
        // The snapshot deletes the log file; a stale writer would append
        // into the unlinked inode and lose records.
        sess.log = None;
        let t0 = Instant::now();
        let state = self.engine.export_lane(lane);
        let bytes = state.encode();
        match store.save_snapshot(id, &self.spec_key, seq, &bytes) {
            Ok(()) => {
                self.metrics.store_snapshot_bytes.observe(bytes.len() as u64);
                self.metrics.store_snapshot_us.observe(t0.elapsed().as_micros() as u64);
                self.sessions.get_mut(&id).unwrap().since_snapshot = 0;
            }
            Err(_) => self.metrics.store_errors.inc(),
        }
    }

    /// Spills one idle session to the store: snapshot its full state,
    /// drop it from RAM, keep its id routable (the routing index entry
    /// survives; [`Group::rehydrate`] rebuilds it on the next command).
    ///
    /// Returns false — with the session's newest state still in RAM —
    /// if the store write fails: state newer than the last durable
    /// snapshot is **never** discarded. The refused victim degrades to
    /// the parked tier (freeing its lane) and the refusal is counted
    /// under `store.evict_refusals`.
    fn evict(&mut self, id: u64) -> bool {
        let Some(gs) = &self.store else { return false };
        let store = Arc::clone(&gs.store);
        let sess = self.sessions.get_mut(&id).unwrap();
        debug_assert!(sess.idle(), "only idle sessions evict");
        sess.log = None;
        let seq = sess.seq;
        let was_parked = sess.parked.is_some();
        let state = match sess.parked.take() {
            Some(state) => state,
            None => match sess.lane {
                Some(lane) => self.engine.export_lane(lane),
                // A blank session (never stepped, nothing on the grid):
                // its canonical state is the blank template.
                None => self.template.clone().expect("store implies a template lane state"),
            },
        };
        let t0 = Instant::now();
        let bytes = state.encode();
        if store.save_snapshot(id, &self.spec_key, seq, &bytes).is_err() {
            self.metrics.store_errors.inc();
            self.metrics.store_evict_refusals.inc();
            // Refuse to discard: keep the newest state in RAM, parked
            // (the lane frees up either way — the detached copy is the
            // state now).
            let sess = self.sessions.get_mut(&id).unwrap();
            if let Some(lane) = sess.lane.take() {
                self.lanes[lane] = None;
                self.free.push(lane);
            }
            sess.parked = Some(state);
            if !was_parked {
                self.shared.park_add(1);
            }
            return false;
        }
        self.metrics.store_snapshot_bytes.observe(bytes.len() as u64);
        self.metrics.store_snapshot_us.observe(t0.elapsed().as_micros() as u64);
        let sess = self.sessions.remove(&id).unwrap();
        if let Some(lane) = sess.lane {
            self.lanes[lane] = None;
            self.free.push(lane);
        }
        if was_parked {
            self.shared.park_sub(1);
        }
        self.spilled.insert(id);
        self.metrics.store_evictions.inc();
        self.metrics.drop_session_histogram(id);
        self.metrics.trace(TraceKind::Evict, id, seq);
        true
    }

    /// Rebuilds a spilled session in RAM: decode its snapshot (geometry-
    /// checked against this group's engines), queue the unapplied delta-
    /// log steps as replay, and make it schedulable again. Replay runs
    /// through the ordinary masked grid, so the recovered state is
    /// bit-identical to never having been evicted.
    fn rehydrate(&mut self, id: u64) -> Result<(), ServeError> {
        let gs = self.store.as_ref().expect("spilled sessions imply a store");
        let store = Arc::clone(&gs.store);
        let rec = match store.load(id) {
            Ok(Some(rec)) => rec,
            Ok(None) => {
                self.metrics.store_errors.inc();
                return Err(ServeError::Store(format!("session {id}: store files missing")));
            }
            Err(e) => {
                self.metrics.store_errors.inc();
                return Err(ServeError::Store(e.to_string()));
            }
        };
        if rec.torn_tail {
            // Tolerated: the valid prefix still recovers; the torn
            // records were never acknowledged to any client.
            self.metrics.store_torn_tails.inc();
        }
        if rec.spec_key != self.spec_key {
            self.metrics.store_errors.inc();
            return Err(ServeError::Store(format!("session {id}: stored under a different spec")));
        }
        let parked = match &rec.snapshot {
            Some(snap) => match LaneState::decode(&snap.state) {
                Ok(state) if self.template.as_ref().is_some_and(|t| t.same_geometry(&state)) => {
                    Some(state)
                }
                Ok(_) => {
                    self.metrics.store_errors.inc();
                    return Err(ServeError::Store(format!(
                        "session {id}: snapshot geometry does not match the group engine"
                    )));
                }
                Err(e) => {
                    self.metrics.store_errors.inc();
                    return Err(ServeError::Store(format!("session {id}: {e}")));
                }
            },
            None => None,
        };
        let input_size = self.engine.params().input_size;
        let now = Instant::now();
        let mut queue = VecDeque::new();
        for step in rec.replay_steps() {
            if step.input.len() != input_size {
                self.metrics.store_errors.inc();
                return Err(ServeError::Store(format!(
                    "session {id}: logged step is {} wide, engine wants {input_size}",
                    step.input.len()
                )));
            }
            queue.push_back((step.input.clone(), now));
        }
        let replay_left = queue.len();
        let seq = rec.last_seq();
        let snap_seq = rec.snapshot.as_ref().map_or(0, |s| s.step_seq);
        let mut last_read = vec![0.0; self.read_width];
        if let Some(state) = &parked {
            last_read.copy_from_slice(state.read_row());
        }
        let has_state = parked.is_some();
        self.spilled.remove(&id);
        self.sessions.insert(
            id,
            Sess {
                lane: None,
                parked,
                queue,
                reply: None,
                deadline: None,
                last_read,
                last_activity: now,
                latency: self.metrics.session_histogram(id),
                seq,
                since_snapshot: seq - snap_seq,
                replay_left,
                pending_reads: Vec::new(),
                log: None,
            },
        );
        if has_state {
            self.shared.park_add(1);
        }
        self.shared.queue_add(replay_left as i64);
        self.metrics.store_rehydrations.inc();
        self.metrics.store_replay_steps.observe(replay_left as u64);
        self.metrics.trace(TraceKind::Rehydrate, id, replay_left as u64);
        Ok(())
    }

    /// Caps the in-RAM parked tier: beyond `max_parked` detached states,
    /// the least-recently-active idle ones spill to the store.
    fn spill_lru(&mut self) {
        let Some(gs) = &self.store else { return };
        let max_parked = gs.max_parked;
        loop {
            let parked: Vec<u64> = self
                .sessions
                .iter()
                .filter(|(_, s)| s.parked.is_some())
                .map(|(&id, _)| id)
                .collect();
            if parked.len() <= max_parked {
                return;
            }
            let Some(victim) = parked
                .into_iter()
                .filter(|id| self.sessions[id].idle())
                .min_by_key(|id| self.sessions[id].last_activity)
            else {
                return;
            };
            if !self.evict(victim) {
                return;
            }
        }
    }

    /// Sweeps sessions idle past the configured timeout. Without a store
    /// this *discards* them (reap); with one it *evicts* them to disk,
    /// keeping the id routable. A session with queued steps or an
    /// unanswered reply is never swept, so an in-flight stream outlives
    /// any idle timeout — `last_activity` is refreshed on every stepped
    /// tick.
    fn reap(&mut self) {
        let Some(timeout) = self.cfg.idle_timeout else { return };
        let now = Instant::now();
        let dead: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.idle() && now.duration_since(s.last_activity) > timeout)
            .map(|(&id, _)| id)
            .collect();
        if dead.is_empty() {
            return;
        }
        if self.store.is_some() {
            for id in dead {
                self.evict(id);
            }
            return;
        }
        for id in dead {
            let sess = self.sessions.remove(&id).unwrap();
            if let Some(lane) = sess.lane {
                self.lanes[lane] = None;
                self.free.push(lane);
            }
            if sess.parked.is_some() {
                self.shared.park_sub(1);
            }
            lock_clean(&self.shared.index).remove(&id);
            lock_clean(&self.shared.roster).remove(&id);
            self.metrics.sessions_reaped.inc();
            self.metrics.sessions_live.sub(1);
            self.metrics.drop_session_histogram(id);
            self.metrics.trace(TraceKind::Reap, id, 0);
        }
    }
}
