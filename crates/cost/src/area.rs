//! Component-level silicon area model (40 nm), calibrated to Fig. 11(e).
//!
//! The paper's area table:
//!
//! | mm²        | baseline | HiMA-DNC | HiMA-DNC-D |
//! |------------|----------|----------|------------|
//! | PT         | 4.92     | 5.01     | 4.22       |
//! | PT memory  | 2.07     | 2.07     | 1.53       |
//! | CT         | 0.43     | 0.52     | 0.18       |
//! | Total      | 79.14    | 80.69    | 67.71      |
//!
//! Decomposition used here (documented calibration):
//!
//! * PT memory = fixed periphery/buffers + per-KB SRAM. Solving the two
//!   published points (281 KB → 2.07 mm², 34 KB → 1.53 mm²) gives
//!   ≈ 1.456 mm² fixed + 2.19e-3 mm²/KB.
//! * PT logic (M-M engine + buffers/other) = 1.98 mm²; the multi-mode
//!   router + MDSA sorter add 0.09 mm² (the paper's "1.8% overhead");
//!   DNC-D drops the multi-mode router for a simple CT-PT port (−0.16 mm²
//!   relative to the full router).
//! * CT = 0.18 mm² of LSTM/interface logic, +0.25 mm² for the centralized
//!   merge sorter and buffers (baseline), +0.34 mm² for the global
//!   usage-buffer + PMS stage (HiMA-DNC).

use hima_engine::{EngineConfig, Topology};
use hima_mem::{Partition, TileMemoryMap};
use serde::{Deserialize, Serialize};

/// Fixed SRAM periphery + buffers per PT (mm²).
pub const PT_MEM_FIXED_MM2: f64 = 1.454;
/// SRAM macro density (mm² per KB, 40 nm).
pub const SRAM_MM2_PER_KB: f64 = 0.002_25;
/// M-M engine + matrix buffers + misc PT logic (mm²).
pub const PT_LOGIC_MM2: f64 = 1.98;
/// Multi-mode router + MDSA sorter overhead on a PT (mm²).
pub const PT_ARCH_FEATURES_MM2: f64 = 0.09;
/// Simple CT-PT-only router on a DNC-D PT, relative saving vs the full
/// 8-way router (mm²).
pub const PT_SIMPLE_ROUTER_SAVING_MM2: f64 = 0.16;
/// Base H-tree router on a baseline PT (mm²).
pub const PT_BASE_ROUTER_MM2: f64 = 0.87;
/// CT LSTM + interface logic (mm²).
pub const CT_BASE_MM2: f64 = 0.18;
/// CT centralized merge sorter + usage buffers (mm²).
pub const CT_CENTRAL_SORTER_MM2: f64 = 0.25;
/// CT global PMS + usage buffers for the two-stage sort (mm²).
pub const CT_PMS_MM2: f64 = 0.34;

/// Area report for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaReport {
    /// One PT, total (mm²).
    pub pt_mm2: f64,
    /// The PT's memory system (mm²).
    pub pt_mem_mm2: f64,
    /// The CT (mm²).
    pub ct_mm2: f64,
    /// Number of PTs.
    pub tiles: usize,
}

impl AreaReport {
    /// Whole-chip area: `N_t` PTs plus the CT (mm²).
    pub fn total_mm2(&self) -> f64 {
        self.pt_mm2 * self.tiles as f64 + self.ct_mm2
    }
}

/// The component-level area model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AreaModel;

impl AreaModel {
    /// Estimates areas for an engine configuration.
    pub fn estimate(cfg: &EngineConfig) -> AreaReport {
        let linkage = if cfg.dncd {
            // DNC-D keeps only the local (N/N_t)² linkage.
            None
        } else if cfg.submatrix_linkage {
            Some(hima_mem::optimizer::best_linkage_partition(cfg.tiles))
        } else {
            Some(Partition::row_wise(cfg.tiles))
        };

        let map = TileMemoryMap::new(
            cfg.memory_size,
            cfg.word_size,
            cfg.read_heads,
            cfg.tiles,
            Partition::row_wise(cfg.tiles),
            linkage.unwrap_or_else(|| Partition::row_wise(cfg.tiles)),
        );
        let linkage_bytes = match linkage {
            Some(_) => map.linkage_bytes(),
            None => map.dncd_linkage_bytes(),
        };
        let mem_kb = (map.external_bytes() + linkage_bytes + 3 * map.state_vector_bytes()
            + map.read_weight_bytes()) as f64
            / 1024.0;
        let pt_mem = PT_MEM_FIXED_MM2 + SRAM_MM2_PER_KB * mem_kb;

        let router = if cfg.dncd {
            PT_BASE_ROUTER_MM2 - PT_SIMPLE_ROUTER_SAVING_MM2
        } else {
            PT_BASE_ROUTER_MM2
        };
        let features = if cfg.two_stage_sort || cfg.topology == Topology::Hima {
            PT_ARCH_FEATURES_MM2
        } else {
            0.0
        };
        // DNC-D still carries the local MDSA sorter but a simpler PT
        // datapath (no global-psum paths).
        let pt_logic = if cfg.dncd { PT_LOGIC_MM2 - 0.09 } else { PT_LOGIC_MM2 };
        let pt = pt_mem + pt_logic + router + features;

        let ct = if cfg.dncd {
            CT_BASE_MM2
        } else if cfg.two_stage_sort {
            CT_BASE_MM2 + CT_PMS_MM2
        } else {
            CT_BASE_MM2 + CT_CENTRAL_SORTER_MM2
        };

        AreaReport { pt_mm2: pt, pt_mem_mm2: pt_mem, ct_mm2: ct, tiles: cfg.tiles }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cfg: EngineConfig) -> AreaReport {
        AreaModel::estimate(&cfg)
    }

    #[test]
    fn baseline_matches_fig11e() {
        let r = report(EngineConfig::baseline(16));
        assert!((r.pt_mm2 - 4.92).abs() < 0.08, "PT {:.3}", r.pt_mm2);
        assert!((r.pt_mem_mm2 - 2.07).abs() < 0.03, "PT mem {:.3}", r.pt_mem_mm2);
        assert!((r.ct_mm2 - 0.43).abs() < 0.01, "CT {:.3}", r.ct_mm2);
        assert!((r.total_mm2() - 79.14).abs() < 1.5, "total {:.2}", r.total_mm2());
    }

    #[test]
    fn hima_dnc_matches_fig11e() {
        let r = report(EngineConfig::hima_dnc(16));
        assert!((r.pt_mm2 - 5.01).abs() < 0.08, "PT {:.3}", r.pt_mm2);
        assert!((r.pt_mem_mm2 - 2.07).abs() < 0.03, "PT mem {:.3}", r.pt_mem_mm2);
        assert!((r.ct_mm2 - 0.52).abs() < 0.01, "CT {:.3}", r.ct_mm2);
        assert!((r.total_mm2() - 80.69).abs() < 1.5, "total {:.2}", r.total_mm2());
    }

    #[test]
    fn hima_dncd_matches_fig11e() {
        let r = report(EngineConfig::hima_dncd(16));
        assert!((r.pt_mm2 - 4.22).abs() < 0.1, "PT {:.3}", r.pt_mm2);
        assert!((r.pt_mem_mm2 - 1.53).abs() < 0.03, "PT mem {:.3}", r.pt_mem_mm2);
        assert!((r.ct_mm2 - 0.18).abs() < 0.01, "CT {:.3}", r.ct_mm2);
        assert!((r.total_mm2() - 67.71).abs() < 2.0, "total {:.2}", r.total_mm2());
    }

    #[test]
    fn arch_features_cost_under_two_percent() {
        // §7.3: "the architectural features cost an overhead of 1.8% for
        // the PT over the baseline PT".
        let base = report(EngineConfig::baseline(16)).pt_mm2;
        let dnc = report(EngineConfig::hima_dnc(16)).pt_mm2;
        let overhead = dnc / base - 1.0;
        assert!((0.005..0.03).contains(&overhead), "overhead {overhead:.4}");
    }

    #[test]
    fn dncd_saves_double_digit_area() {
        // §7.3: HiMA-DNC-D uses 16.1% less silicon area than HiMA-DNC.
        let dnc = report(EngineConfig::hima_dnc(16)).total_mm2();
        let dncd = report(EngineConfig::hima_dncd(16)).total_mm2();
        let saving = 1.0 - dncd / dnc;
        assert!((0.10..0.22).contains(&saving), "saving {saving:.3}");
    }

    #[test]
    fn area_grows_with_tiles() {
        // Fig. 12(a): more tiles -> more total area, sublinearly per tile
        // (each PT's memory shrinks).
        let mut prev = 0.0;
        for nt in [4usize, 8, 16, 32] {
            let total = report(EngineConfig::hima_dnc(nt)).total_mm2();
            assert!(total > prev, "N_t={nt}: {total:.1} <= {prev:.1}");
            prev = total;
        }
        let a4 = report(EngineConfig::hima_dnc(4)).total_mm2();
        let a32 = report(EngineConfig::hima_dnc(32)).total_mm2();
        assert!(a32 / a4 < 8.0, "8x tiles must cost < 8x area");
    }

    #[test]
    fn linkage_dominates_pt_memory_area() {
        // §7.3: linkage 81.3% of PT memory area. With the fixed periphery
        // term the variable share is smaller; check the SRAM-macro share.
        let cfg = EngineConfig::hima_dnc(16);
        let map = TileMemoryMap::optimized(cfg.memory_size, cfg.word_size, cfg.read_heads, cfg.tiles);
        let linkage_macro = map.linkage_bytes() as f64 / 1024.0 * SRAM_MM2_PER_KB;
        let total_macro = (map.external_bytes() + map.linkage_bytes()
            + 3 * map.state_vector_bytes() + map.read_weight_bytes()) as f64
            / 1024.0
            * SRAM_MM2_PER_KB;
        assert!(linkage_macro / total_macro > 0.8);
    }
}
