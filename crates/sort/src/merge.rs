//! Centralized merge sorter — the baseline the two-stage sort replaces.
//!
//! Farm-style DNC accelerators sort the usage vector with a single merge
//! sorter at the controller; the paper models its latency as `N log₂ N`
//! cycles for a length-`N` vector (§4.3). The functional implementation is a
//! real bottom-up merge sort (not a call into `std`), so tests can cross-check
//! the hardware models against an independently written algorithm.

use crate::{keyed_cmp, Keyed, SortEngine};
use serde::{Deserialize, Serialize};

/// Centralized merge sorter with `N log₂ N` cycle latency.
///
/// # Example
///
/// ```
/// use hima_sort::{CentralizedMergeSorter, SortEngine};
///
/// assert_eq!(CentralizedMergeSorter.latency_cycles(1024), 10 * 1024);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CentralizedMergeSorter;

impl CentralizedMergeSorter {
    /// Merges two sorted runs into one sorted output.
    pub fn merge_runs(a: &[Keyed], b: &[Keyed]) -> Vec<Keyed> {
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if keyed_cmp(&a[i], &b[j]) != std::cmp::Ordering::Greater {
                out.push(a[i]);
                i += 1;
            } else {
                out.push(b[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        out
    }
}

impl SortEngine for CentralizedMergeSorter {
    fn name(&self) -> &'static str {
        "centralized-merge"
    }

    fn sort_pairs(&self, input: &[Keyed]) -> Vec<Keyed> {
        // Bottom-up merge sort.
        if input.len() <= 1 {
            return input.to_vec();
        }
        let mut runs: Vec<Vec<Keyed>> = input.iter().map(|&p| vec![p]).collect();
        while runs.len() > 1 {
            let mut next = Vec::with_capacity(runs.len().div_ceil(2));
            let mut iter = runs.chunks(2);
            for chunk in &mut iter {
                match chunk {
                    [a, b] => next.push(Self::merge_runs(a, b)),
                    [a] => next.push(a.clone()),
                    _ => unreachable!("chunks(2) yields 1 or 2 runs"),
                }
            }
            runs = next;
        }
        runs.pop().unwrap_or_default()
    }

    /// `N · ⌈log₂ N⌉` cycles (paper §4.3): 10 240 cycles at `N = 1024`.
    fn latency_cycles(&self, n: usize) -> u64 {
        if n <= 1 {
            return n as u64;
        }
        let log = (n.next_power_of_two().trailing_zeros()) as u64;
        n as u64 * log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(keys: &[f32]) -> Vec<Keyed> {
        keys.iter().copied().zip(0..).collect()
    }

    #[test]
    fn paper_latency_at_1024() {
        assert_eq!(CentralizedMergeSorter.latency_cycles(1024), 10240);
    }

    #[test]
    fn latency_edge_cases() {
        assert_eq!(CentralizedMergeSorter.latency_cycles(0), 0);
        assert_eq!(CentralizedMergeSorter.latency_cycles(1), 1);
        assert_eq!(CentralizedMergeSorter.latency_cycles(2), 2);
        // Non-power-of-two rounds the log up.
        assert_eq!(CentralizedMergeSorter.latency_cycles(1000), 10_000);
    }

    #[test]
    fn sorts_random_input() {
        let keys: Vec<f32> = (0..137).map(|i| ((i * 89 + 7) % 137) as f32).collect();
        let out = CentralizedMergeSorter.sort_pairs(&pairs(&keys));
        assert!(crate::is_sorted(&out));
        assert_eq!(out.len(), 137);
    }

    #[test]
    fn merge_runs_interleaves() {
        let a = [(1.0, 0), (3.0, 1)];
        let b = [(2.0, 2), (4.0, 3)];
        let m = CentralizedMergeSorter::merge_runs(&a, &b);
        let keys: Vec<f32> = m.iter().map(|p| p.0).collect();
        assert_eq!(keys, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn merge_runs_handles_empty() {
        let a = [(1.0, 0)];
        assert_eq!(CentralizedMergeSorter::merge_runs(&a, &[]), a.to_vec());
        assert_eq!(CentralizedMergeSorter::merge_runs(&[], &a), a.to_vec());
    }

    #[test]
    fn stable_on_equal_keys() {
        let input = [(1.0, 2), (1.0, 0), (1.0, 1)];
        let out = CentralizedMergeSorter.sort_pairs(&input);
        assert_eq!(out, vec![(1.0, 0), (1.0, 1), (1.0, 2)]);
    }

    #[test]
    fn trivial_inputs() {
        assert!(CentralizedMergeSorter.sort_pairs(&[]).is_empty());
        assert_eq!(CentralizedMergeSorter.sort_pairs(&[(9.0, 4)]), vec![(9.0, 4)]);
    }
}
