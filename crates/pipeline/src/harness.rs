//! Pipelined entry points for the eval/train harnesses.
//!
//! Each function here is the producer/consumer counterpart of a
//! synchronous `hima-tasks` harness entry point, **bit-identical** to it
//! for the same seed (conformance-tested across worker counts, batch
//! sizes and channel depths in `tests/conformance.rs`):
//!
//! * [`relative_error_pipelined`] ↔ [`hima_tasks::relative_error`],
//! * [`collect_query_samples_pipelined`] ↔
//!   [`hima_tasks::collect_query_samples`],
//! * [`readout_accuracy_pipelined`] ↔ [`hima_tasks::readout_accuracy`].
//!
//! The identity holds because both paths share their per-episode units
//! (same episode RNG streams via [`TaskSpec::episode_at`], same
//! per-episode partials via [`hima_tasks::episode_query_stats`] /
//! [`hima_tasks::episode_query_rows`] /
//! [`hima_tasks::episode_readout_counts`]) and fold them in episode-index
//! order — and because an episode's features are independent of its
//! batch-mates (the batched-equals-sequential conformance property of
//! the engines).

use crate::spec::PipelineSpec;
use crate::stages::{run_pipeline, EpisodeJob};
use hima_dnc::EngineBuilder;
use hima_tasks::{
    episode_query_rows, episode_query_stats, episode_readout_counts, task_error_from_stats,
    EvalConfig, TaskError, TaskSpec, TrainedReadout, TASKS,
};
use hima_tensor::Matrix;

/// Pipelined [`hima_tasks::relative_error`]: runs the full 20-task
/// Fig. 10 suite as one pipeline — all tasks' episodes interleave through
/// the stages, each stepped by the shared-weight reference engine and the
/// calibrated engine under test — and folds the per-episode
/// [`QueryStats`](hima_tasks::QueryStats) into per-task errors.
///
/// Bit-identical to the synchronous harness for the same config.
pub fn relative_error_pipelined(config: &EvalConfig, spec: &PipelineSpec) -> Vec<TaskError> {
    let jobs: Vec<EpisodeJob> = TASKS
        .iter()
        .map(|task| {
            EpisodeJob::new(
                *task,
                config.eval_episodes,
                config.evaluation_seed(),
                vec![config.reference_builder(), config.calibrated_engine_builder(task)],
            )
            .queries_only()
        })
        .collect();
    let stats = run_pipeline(spec, &jobs, |ctx| {
        episode_query_stats(ctx.episode, &ctx.features[0], &ctx.features[1])
    });
    TASKS.iter().zip(&stats).map(|(task, s)| task_error_from_stats(task, s)).collect()
}

/// Pipelined [`hima_tasks::collect_query_samples`] over `episodes`
/// episodes of `task` rooted at `seed`: generation, stepping and row
/// extraction overlap, and the sample matrices assemble in episode-index
/// order — bit-identical to the synchronous
/// `collect_query_samples(builder, &task.generate(episodes, seed).episodes)`.
///
/// # Panics
///
/// Panics if the episodes contain no query steps (matching the
/// synchronous contract).
pub fn collect_query_samples_pipelined(
    builder: &EngineBuilder,
    task: &TaskSpec,
    episodes: usize,
    seed: u64,
    spec: &PipelineSpec,
) -> (Matrix, Matrix) {
    let jobs =
        [EpisodeJob::new(*task, episodes, seed, vec![builder.clone()]).queries_only()];
    let rows = run_pipeline(spec, &jobs, |ctx| episode_query_rows(ctx.episode, &ctx.features[0]));
    let mut feats: Vec<Vec<f32>> = Vec::new();
    let mut targets: Vec<Vec<f32>> = Vec::new();
    for (f, y) in rows.into_iter().next().expect("one job") {
        feats.extend(f);
        targets.extend(y);
    }
    assert!(!feats.is_empty(), "episodes contained no query steps");
    (Matrix::from_rows(&feats), Matrix::from_rows(&targets))
}

/// Pipelined [`hima_tasks::readout_accuracy`] over `episodes` episodes of
/// `task` rooted at `seed` — bit-identical to the synchronous
/// `readout_accuracy(builder, readout, &task.generate(episodes, seed).episodes)`
/// (the counts are integers, so the fold is exactly order-free).
pub fn readout_accuracy_pipelined(
    builder: &EngineBuilder,
    readout: &TrainedReadout,
    task: &TaskSpec,
    episodes: usize,
    seed: u64,
    spec: &PipelineSpec,
) -> f64 {
    let jobs =
        [EpisodeJob::new(*task, episodes, seed, vec![builder.clone()]).queries_only()];
    let counts = run_pipeline(spec, &jobs, |ctx| {
        episode_readout_counts(readout, ctx.episode, &ctx.features[0])
    });
    let (mut correct, mut total) = (0usize, 0usize);
    for (c, n) in &counts[0] {
        correct += c;
        total += n;
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}
