//! A tiny fixed-width f32 SIMD vector for the blocked kernel backend.
//!
//! [`F32x8`] is eight `f32` lanes with unrolled lane arithmetic. There is
//! no crates.io dependency and no `std::simd` here. The portable bodies
//! are straight-line array expressions; on `x86_64` the lane ops are
//! specialized to baseline SSE2 intrinsics (`core::arch::x86_64`), which
//! every `x86_64` target guarantees — no runtime feature detection.
//!
//! The specialization exists because the portable form is *correct* but
//! not *reliably fast*: LLVM's SLP vectorizer sometimes folds the
//! unrolled arrays into clean packed instructions and sometimes — in
//! particular when several rows of one contiguous matrix buffer are
//! processed per pass, so it can prove the rows adjacent — "vectorizes"
//! across the independent accumulators instead, emitting transpose
//! shuffle chains that run no faster than scalar code. Spelling the lane
//! ops as `_mm_*` intrinsics pins the instruction selection the struct
//! was designed around. Both bodies compute the identical IEEE f32
//! result per lane for finite inputs: `_mm_add_ps`/`_mm_mul_ps` are the
//! same rounded operations as the scalar `+`/`*`.
//!
//! Semantics are plain IEEE f32 per lane — `mul_add` is written as a
//! multiply then an add (two roundings), never `f32::mul_add`, so debug
//! and release agree and no libm `fmaf` call sneaks onto FMA-less
//! targets.

#[cfg(target_arch = "x86_64")]
use core::arch::x86_64::{__m128, _mm_add_ps, _mm_loadu_ps, _mm_max_ps, _mm_mul_ps, _mm_storeu_ps, _mm_sub_ps};

/// Eight f32 lanes with unrolled element-wise arithmetic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F32x8(pub [f32; 8]);

// `add`/`sub`/`mul` intentionally mirror the `std::ops` names without the
// trait: inherent methods keep call sites monomorphic and `#[inline(always)]`.
#[allow(clippy::should_implement_trait)]
impl F32x8 {
    /// Number of lanes.
    pub const LANES: usize = 8;

    /// All lanes zero.
    pub const ZERO: Self = Self([0.0; 8]);

    /// Broadcasts `v` to all lanes.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        Self([v; 8])
    }

    /// Loads eight lanes from the front of `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s.len() < 8`.
    #[inline(always)]
    pub fn load(s: &[f32]) -> Self {
        let a: [f32; 8] = s[..8].try_into().expect("F32x8::load needs 8 elements");
        Self(a)
    }

    /// Stores the lanes into the front of `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d.len() < 8`.
    #[inline(always)]
    pub fn store(self, d: &mut [f32]) {
        d[..8].copy_from_slice(&self.0);
    }

    /// The two 4-lane SSE halves of this vector.
    #[cfg(target_arch = "x86_64")]
    #[inline(always)]
    fn halves(self) -> (__m128, __m128) {
        // SAFETY: `self.0` is 8 contiguous f32s, so both unaligned loads
        // read in-bounds; SSE2 is part of the x86_64 baseline ABI.
        unsafe { (_mm_loadu_ps(self.0.as_ptr()), _mm_loadu_ps(self.0.as_ptr().add(4))) }
    }

    /// Reassembles a vector from its two 4-lane SSE halves.
    #[cfg(target_arch = "x86_64")]
    #[inline(always)]
    fn from_halves(lo: __m128, hi: __m128) -> Self {
        let mut out = [0.0f32; 8];
        // SAFETY: `out` is 8 contiguous f32s, so both unaligned stores
        // write in-bounds; SSE2 is part of the x86_64 baseline ABI.
        unsafe {
            _mm_storeu_ps(out.as_mut_ptr(), lo);
            _mm_storeu_ps(out.as_mut_ptr().add(4), hi);
        }
        Self(out)
    }

    /// Lane-wise `self + o`.
    #[inline(always)]
    pub fn add(self, o: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            let (alo, ahi) = self.halves();
            let (blo, bhi) = o.halves();
            // SAFETY: SSE2 is statically enabled on every x86_64 target.
            let (lo, hi) = unsafe { (_mm_add_ps(alo, blo), _mm_add_ps(ahi, bhi)) };
            Self::from_halves(lo, hi)
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let (a, b) = (self.0, o.0);
            Self([
                a[0] + b[0],
                a[1] + b[1],
                a[2] + b[2],
                a[3] + b[3],
                a[4] + b[4],
                a[5] + b[5],
                a[6] + b[6],
                a[7] + b[7],
            ])
        }
    }

    /// Lane-wise `self - o`.
    #[inline(always)]
    pub fn sub(self, o: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            let (alo, ahi) = self.halves();
            let (blo, bhi) = o.halves();
            // SAFETY: SSE2 is statically enabled on every x86_64 target.
            let (lo, hi) = unsafe { (_mm_sub_ps(alo, blo), _mm_sub_ps(ahi, bhi)) };
            Self::from_halves(lo, hi)
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let (a, b) = (self.0, o.0);
            Self([
                a[0] - b[0],
                a[1] - b[1],
                a[2] - b[2],
                a[3] - b[3],
                a[4] - b[4],
                a[5] - b[5],
                a[6] - b[6],
                a[7] - b[7],
            ])
        }
    }

    /// Lane-wise `self * o`.
    #[inline(always)]
    pub fn mul(self, o: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            let (alo, ahi) = self.halves();
            let (blo, bhi) = o.halves();
            // SAFETY: SSE2 is statically enabled on every x86_64 target.
            let (lo, hi) = unsafe { (_mm_mul_ps(alo, blo), _mm_mul_ps(ahi, bhi)) };
            Self::from_halves(lo, hi)
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let (a, b) = (self.0, o.0);
            Self([
                a[0] * b[0],
                a[1] * b[1],
                a[2] * b[2],
                a[3] * b[3],
                a[4] * b[4],
                a[5] * b[5],
                a[6] * b[6],
                a[7] * b[7],
            ])
        }
    }

    /// Lane-wise `self * o + acc` as two rounded ops (`mul` then `add`),
    /// not a fused multiply-add — bit-stable across targets.
    #[inline(always)]
    pub fn mul_add(self, o: Self, acc: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            let (alo, ahi) = self.halves();
            let (blo, bhi) = o.halves();
            let (clo, chi) = acc.halves();
            // SAFETY: SSE2 is statically enabled on every x86_64 target.
            let (lo, hi) = unsafe {
                (
                    _mm_add_ps(_mm_mul_ps(alo, blo), clo),
                    _mm_add_ps(_mm_mul_ps(ahi, bhi), chi),
                )
            };
            Self::from_halves(lo, hi)
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let (a, b, c) = (self.0, o.0, acc.0);
            Self([
                a[0] * b[0] + c[0],
                a[1] * b[1] + c[1],
                a[2] * b[2] + c[2],
                a[3] * b[3] + c[3],
                a[4] * b[4] + c[4],
                a[5] * b[5] + c[5],
                a[6] * b[6] + c[6],
                a[7] * b[7] + c[7],
            ])
        }
    }

    /// Lane-wise maximum. For finite inputs this is `f32::max` per lane;
    /// on `x86_64` the `_mm_max_ps` convention applies to the exotic
    /// cases (a NaN lane or a `±0.0` tie yields the `o` operand), which
    /// is indistinguishable everywhere the backend uses it (softmax max
    /// scans over finite logits).
    #[inline(always)]
    pub fn max(self, o: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            let (alo, ahi) = self.halves();
            let (blo, bhi) = o.halves();
            // SAFETY: SSE2 is statically enabled on every x86_64 target.
            let (lo, hi) = unsafe { (_mm_max_ps(alo, blo), _mm_max_ps(ahi, bhi)) };
            Self::from_halves(lo, hi)
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let (a, b) = (self.0, o.0);
            Self([
                a[0].max(b[0]),
                a[1].max(b[1]),
                a[2].max(b[2]),
                a[3].max(b[3]),
                a[4].max(b[4]),
                a[5].max(b[5]),
                a[6].max(b[6]),
                a[7].max(b[7]),
            ])
        }
    }

    /// Pairwise-tree sum of the eight lanes:
    /// `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`.
    #[inline(always)]
    pub fn horizontal_sum(self) -> f32 {
        let a = self.0;
        let s04 = a[0] + a[4];
        let s15 = a[1] + a[5];
        let s26 = a[2] + a[6];
        let s37 = a[3] + a[7];
        (s04 + s26) + (s15 + s37)
    }

    /// Maximum over the eight lanes.
    #[inline(always)]
    pub fn horizontal_max(self) -> f32 {
        let a = self.0;
        let m04 = a[0].max(a[4]);
        let m15 = a[1].max(a[5]);
        let m26 = a[2].max(a[6]);
        let m37 = a[3].max(a[7]);
        (m04.max(m26)).max(m15.max(m37))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_load_store_round_trip() {
        let mut d = [0.0f32; 8];
        F32x8::splat(3.5).store(&mut d);
        assert_eq!(d, [3.5; 8]);
        let v = F32x8::load(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(v.0[7], 8.0);
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = F32x8::load(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let b = F32x8::splat(2.0);
        assert_eq!(a.add(b).0[0], 3.0);
        assert_eq!(a.sub(b).0[0], -1.0);
        assert_eq!(a.mul(b).0[3], 8.0);
        assert_eq!(a.mul_add(b, F32x8::splat(1.0)).0[1], 5.0);
        assert_eq!(a.max(F32x8::splat(4.5)).0, [4.5, 4.5, 4.5, 4.5, 5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn horizontal_reductions() {
        let v = F32x8::load(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, -9.0]);
        assert_eq!(v.horizontal_sum(), 19.0);
        assert_eq!(v.horizontal_max(), 7.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn load_rejects_short_slices() {
        F32x8::load(&[1.0; 7]);
    }
}
