//! Episodic QA inference — the workload the paper's introduction motivates.
//!
//! Runs the 20-task synthetic bAbI-style suite through both the
//! centralized DNC and the distributed DNC-D, reporting the per-task
//! relative error (the Fig. 10 quantity) for a couple of shard counts.
//!
//! Run with `cargo run --release --example babi_qa`.

use hima::prelude::*;

fn main() {
    println!("Synthetic bAbI-style suite: DNC-D error relative to DNC");
    println!("(argmax disagreement on query steps; alpha calibrated per task)\n");

    for tiles in [2usize, 4, 8] {
        let config = EvalConfig::small(tiles);
        let errors = relative_error(&config);
        let mean: f64 = errors.iter().map(|e| e.error).sum::<f64>() / errors.len() as f64;
        println!("-- N_t = {tiles}: mean relative error {:.1}% --", mean * 100.0);
        for e in &errors {
            let bar = "#".repeat((e.error * 40.0).round() as usize);
            println!("  task {:>2} {:<24} {:>5.1}%  {bar}", e.task_id, e.name, e.error * 100.0);
        }
        println!();
    }

    println!("-- usage skimming at N_t = 4 --");
    for k in [0.0f32, 0.2, 0.5] {
        let config = if k == 0.0 {
            EvalConfig::small(4)
        } else {
            EvalConfig::small(4).with_skim(SkimRate::new(k))
        };
        let errors = relative_error(&config);
        let mean: f64 = errors.iter().map(|e| e.error).sum::<f64>() / errors.len() as f64;
        println!("  K = {:>3.0}%: mean relative error {:.1}%", k * 100.0, mean * 100.0);
    }
}
