//! Batched-path throughput: lane-steps/sec of the data-parallel
//! `BatchDnc` at batch sizes {1, 8, 32, 128}, at 1 thread and at all
//! machine threads, against the sequential per-example `Dnc::step` loop.
//!
//! Two effects are measured separately:
//!
//! * **batching** — the controller/interface/output projections run as one
//!   shared-weight `B × K · Wᵀ` product per step instead of `B` mat-vecs
//!   (visible already at 1 thread), and
//! * **lane parallelism** — the `B` independent memory units fan out
//!   across rayon worker threads (visible in the N-thread column on
//!   multi-core hosts).
//!
//! The batched path is bit-compatible with the sequential one (property
//! tested in `crates/dnc/tests/properties.rs`), so every speedup reported
//! here is a pure execution-path win.

use hima::dnc::BatchDnc;
use hima::prelude::*;
use hima::tensor::Matrix;
use rayon::ThreadPoolBuilder;
use std::time::{Duration, Instant};

const BATCH_SIZES: [usize; 4] = [1, 8, 32, 128];
const MEASURE: Duration = Duration::from_millis(400);

fn params() -> DncParams {
    DncParams::new(128, 16, 2).with_hidden(64).with_io(16, 16)
}

/// One `B × input` token block with per-lane variation.
fn input_block(batch: usize, width: usize, t: usize) -> Matrix {
    Matrix::from_fn(batch, width, |b, i| (((b * 131 + t * 17 + i * 7) as f32) * 0.13).sin())
}

/// Lane-steps/sec of the sequential path: `batch` independent `Dnc`s
/// stepped one after another.
fn sequential_rate(batch: usize) -> f64 {
    let mut models: Vec<Dnc> = (0..batch).map(|_| Dnc::new(params(), 7)).collect();
    let width = params().input_size;
    // Warm-up step primes allocations.
    for (b, m) in models.iter_mut().enumerate() {
        m.step(input_block(batch, width, 0).row(b));
    }
    let start = Instant::now();
    let mut t = 1usize;
    while start.elapsed() < MEASURE {
        let x = input_block(batch, width, t);
        for (b, m) in models.iter_mut().enumerate() {
            m.step(x.row(b));
        }
        t += 1;
    }
    (t - 1) as f64 * batch as f64 / start.elapsed().as_secs_f64()
}

/// Lane-steps/sec of the batched path at a given worker-thread count.
fn batched_rate(batch: usize, threads: usize) -> f64 {
    let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
    let mut model = BatchDnc::new(params(), batch, 7);
    let width = params().input_size;
    pool.install(|| {
        model.step_batch(&input_block(batch, width, 0));
        let start = Instant::now();
        let mut t = 1usize;
        while start.elapsed() < MEASURE {
            model.step_batch(&input_block(batch, width, t));
            t += 1;
        }
        (t - 1) as f64 * batch as f64 / start.elapsed().as_secs_f64()
    })
}

fn main() {
    let machine_threads = std::thread::available_parallelism().map_or(1, usize::from);
    let p = params();
    hima_bench::header(&format!(
        "Batched DNC throughput — N={} W={} R={} H={}, {} machine threads",
        p.memory_size, p.word_size, p.read_heads, p.hidden_size, machine_threads
    ));

    println!(
        "{:>6} {:>16} {:>16} {:>16} {:>10} {:>10}",
        "batch", "seq steps/s", "batch@1T", &format!("batch@{machine_threads}T"), "x @1T", "x @NT"
    );
    for &batch in &BATCH_SIZES {
        let seq = sequential_rate(batch);
        let one = batched_rate(batch, 1);
        let many = if machine_threads > 1 { batched_rate(batch, machine_threads) } else { one };
        println!(
            "{:>6} {:>16.0} {:>16.0} {:>16.0} {:>10} {:>10}",
            batch,
            seq,
            one,
            many,
            hima_bench::times(one / seq),
            hima_bench::times(many / seq),
        );
    }
    println!(
        "\nlane-steps/sec; 'x' columns are speedup of the batched path over\n\
         the sequential per-example loop at the same batch size."
    );
}
