//! Episodic QA sequences: token streams with designated query steps.

use hima_tensor::{LaneMask, Matrix};
use serde::{Deserialize, Serialize};

/// One episodic sequence: a stream of token vectors with query positions.
///
/// Facts are presented as one-hot-ish token vectors; at query steps the
/// input carries a query marker plus a key, and the model's output is read
/// out. All vectors share the episode's `width`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Episode {
    /// Input vector per time step.
    pub inputs: Vec<Vec<f32>>,
    /// Indices of the steps whose outputs are evaluated.
    pub query_steps: Vec<usize>,
}

impl Episode {
    /// Creates an episode, validating shape consistency.
    ///
    /// # Panics
    ///
    /// Panics if inputs are ragged, empty, or a query index is out of
    /// range.
    pub fn new(inputs: Vec<Vec<f32>>, query_steps: Vec<usize>) -> Self {
        assert!(!inputs.is_empty(), "episode needs at least one step");
        let width = inputs[0].len();
        assert!(inputs.iter().all(|v| v.len() == width), "ragged episode inputs");
        for &q in &query_steps {
            assert!(q < inputs.len(), "query step {q} beyond episode length {}", inputs.len());
        }
        Self { inputs, query_steps }
    }

    /// Number of time steps.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the episode has zero steps (never true for validated
    /// episodes).
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Input width (token vector size).
    pub fn width(&self) -> usize {
        self.inputs[0].len()
    }
}

/// A batch of episodes from one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeBatch {
    /// Task identifier (1-20).
    pub task_id: usize,
    /// The episodes.
    pub episodes: Vec<Episode>,
}

impl EpisodeBatch {
    /// Total query steps across the batch.
    pub fn total_queries(&self) -> usize {
        self.episodes.iter().map(|e| e.query_steps.len()).sum()
    }

    /// The common episode length, if every episode in the batch has the
    /// same number of steps (the condition for lock-step batched
    /// execution). `None` for ragged batches or an empty batch.
    pub fn uniform_len(&self) -> Option<usize> {
        uniform_len(&self.episodes)
    }
}

/// The common episode length of a slice of episodes, if uniform (see
/// [`EpisodeBatch::uniform_len`]).
pub fn uniform_len(episodes: &[Episode]) -> Option<usize> {
    let len = episodes.first()?.len();
    episodes.iter().all(|e| e.len() == len).then_some(len)
}

/// The longest episode length in the slice — the number of masked steps
/// a padded ragged batch runs — or `None` for an empty slice.
pub fn max_len(episodes: &[Episode]) -> Option<usize> {
    episodes.iter().map(Episode::len).max()
}

/// Why a step block cannot be assembled from an episode slice — see
/// [`try_step_block`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepBlockError {
    /// The episode slice is empty: a step block has one row per episode,
    /// so there is no width to infer.
    Empty,
    /// An episode is too short for the requested step — the slice is
    /// non-uniform in length (or `t` is beyond even the longest episode).
    /// Uniformity is the precondition for lock-step batched execution;
    /// check it up front with [`uniform_len`], or pad and mask with
    /// [`try_masked_step_block`].
    StepOutOfRange {
        /// Index (within the slice) of the offending episode.
        episode: usize,
        /// That episode's length.
        len: usize,
        /// The requested time step.
        t: usize,
    },
    /// The requested step lies beyond even the longest episode of the
    /// slice, so not a single lane would be active — a masked ragged
    /// batch has nothing left to step. Raised only by
    /// [`try_masked_step_block`] (the uniform [`try_step_block`] reports
    /// the first too-short episode instead).
    StepBeyondLongest {
        /// Length of the longest episode in the slice.
        max_len: usize,
        /// The requested time step.
        t: usize,
    },
}

impl std::fmt::Display for StepBlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepBlockError::Empty => {
                write!(f, "cannot build a step block from zero episodes")
            }
            StepBlockError::StepOutOfRange { episode, len, t } => write!(
                f,
                "episode {episode} has {len} steps but step {t} was requested \
                 (non-uniform episode slice? check uniform_len() first)"
            ),
            StepBlockError::StepBeyondLongest { max_len, t } => write!(
                f,
                "step {t} is beyond every episode (longest has {max_len} steps); \
                 no lane would be active"
            ),
        }
    }
}

impl std::error::Error for StepBlockError {}

/// Stacks time step `t` of every episode into a `B × width` input block
/// (row `b` is episode `b`'s token at time `t`) — the bridge between an
/// [`EpisodeBatch`] and the batched `step_batch` model APIs, or an error
/// if the slice is empty or any episode is shorter than `t + 1` steps.
///
/// Callers stepping a slice in lock step should gate on [`uniform_len`]
/// and then iterate `t` up to that length; this function is the checked
/// fallback when that invariant is not established.
pub fn try_step_block(episodes: &[Episode], t: usize) -> Result<Matrix, StepBlockError> {
    if episodes.is_empty() {
        return Err(StepBlockError::Empty);
    }
    for (episode, e) in episodes.iter().enumerate() {
        if t >= e.len() {
            return Err(StepBlockError::StepOutOfRange { episode, len: e.len(), t });
        }
    }
    let rows: Vec<&[f32]> = episodes.iter().map(|e| e.inputs[t].as_slice()).collect();
    Ok(Matrix::from_rows(&rows))
}

/// Stacks time step `t` of every episode into a `B × width` input block
/// (row `b` is episode `b`'s token at time `t`) — the panicking form of
/// [`try_step_block`].
///
/// # Panics
///
/// Panics if `episodes` is empty or any episode has fewer than `t + 1`
/// steps (in particular, when a non-uniform-length slice is stepped past
/// its shortest episode). The panic message names the offending episode;
/// use [`try_step_block`] to handle the condition instead.
pub fn step_block(episodes: &[Episode], t: usize) -> Matrix {
    match try_step_block(episodes, t) {
        Ok(block) => block,
        Err(e) => panic!("step_block: {e}"),
    }
}

/// Stacks time step `t` of a **ragged** episode slice into a padded
/// `B × width` block plus the step's [`LaneMask`]: lane `b` carries
/// episode `b`'s token while `t < episodes[b].len()` and a zero padding
/// row (inactive in the mask, never read by the masked engines) once its
/// episode has ended — the bridge between a ragged [`EpisodeBatch`] and
/// `step_batch_masked`.
///
/// # Errors
///
/// [`StepBlockError::Empty`] for an empty slice, and
/// [`StepBlockError::StepBeyondLongest`] when `t` is past every episode
/// (the mask would have no active lane).
pub fn try_masked_step_block(
    episodes: &[Episode],
    t: usize,
) -> Result<(Matrix, LaneMask), StepBlockError> {
    if episodes.is_empty() {
        return Err(StepBlockError::Empty);
    }
    let max_len = max_len(episodes).expect("non-empty slice");
    if t >= max_len {
        return Err(StepBlockError::StepBeyondLongest { max_len, t });
    }
    let width = episodes[0].width();
    let zero = vec![0.0f32; width];
    let rows: Vec<&[f32]> = episodes
        .iter()
        .map(|e| e.inputs.get(t).map_or(zero.as_slice(), Vec::as_slice))
        .collect();
    let lens: Vec<usize> = episodes.iter().map(Episode::len).collect();
    Ok((Matrix::from_rows(&rows), LaneMask::for_step(&lens, t)))
}

/// Stacks time step `t` of a ragged episode slice into a padded block
/// plus its [`LaneMask`] — the panicking form of
/// [`try_masked_step_block`].
///
/// # Panics
///
/// Panics if `episodes` is empty or `t` is beyond even the longest
/// episode; the panic message carries the longest length.
pub fn masked_step_block(episodes: &[Episode], t: usize) -> (Matrix, LaneMask) {
    match try_masked_step_block(episodes, t) {
        Ok(pair) => pair,
        Err(e) => panic!("masked_step_block: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episode_shape_checks() {
        let e = Episode::new(vec![vec![1.0, 0.0], vec![0.0, 1.0]], vec![1]);
        assert_eq!(e.len(), 2);
        assert_eq!(e.width(), 2);
        assert!(!e.is_empty());
    }

    #[test]
    #[should_panic(expected = "ragged episode inputs")]
    fn rejects_ragged() {
        Episode::new(vec![vec![1.0], vec![1.0, 2.0]], vec![]);
    }

    #[test]
    #[should_panic(expected = "beyond episode length")]
    fn rejects_bad_query() {
        Episode::new(vec![vec![1.0]], vec![3]);
    }

    #[test]
    fn batch_counts_queries() {
        let e1 = Episode::new(vec![vec![0.0]; 4], vec![2, 3]);
        let e2 = Episode::new(vec![vec![0.0]; 2], vec![1]);
        let b = EpisodeBatch { task_id: 1, episodes: vec![e1, e2] };
        assert_eq!(b.total_queries(), 3);
    }

    fn ep(steps: usize, queries: Vec<usize>) -> Episode {
        Episode::new(vec![vec![0.0, 1.0]; steps], queries)
    }

    #[test]
    fn empty_batch_has_no_queries_and_no_uniform_len() {
        let b = EpisodeBatch { task_id: 3, episodes: vec![] };
        assert_eq!(b.total_queries(), 0);
        assert_eq!(b.uniform_len(), None, "an empty batch has no common length");
    }

    #[test]
    fn single_episode_batch_is_uniform() {
        let b = EpisodeBatch { task_id: 3, episodes: vec![ep(4, vec![3])] };
        assert_eq!(b.uniform_len(), Some(4));
        assert_eq!(b.total_queries(), 1);
    }

    #[test]
    fn mixed_length_batch_is_not_uniform() {
        let b = EpisodeBatch { task_id: 3, episodes: vec![ep(4, vec![]), ep(2, vec![1])] };
        assert_eq!(b.uniform_len(), None);
        assert_eq!(b.total_queries(), 1, "queries still count on ragged batches");
        // Same-length episodes with different query layouts stay uniform.
        let u = EpisodeBatch { task_id: 3, episodes: vec![ep(4, vec![0]), ep(4, vec![1, 2])] };
        assert_eq!(u.uniform_len(), Some(4));
    }

    #[test]
    fn try_step_block_stacks_uniform_slices() {
        let eps = [ep(3, vec![]), ep(3, vec![2])];
        let block = try_step_block(&eps, 2).expect("uniform slice");
        assert_eq!(block.shape(), (2, 2));
        assert_eq!(step_block(&eps, 0), try_step_block(&eps, 0).unwrap());
    }

    #[test]
    fn try_step_block_rejects_empty_and_short_episodes() {
        assert_eq!(try_step_block(&[], 0), Err(StepBlockError::Empty));
        let eps = [ep(4, vec![]), ep(2, vec![])];
        // Steps 0..2 exist in both episodes; step 2 only in the first.
        assert!(try_step_block(&eps, 1).is_ok());
        assert_eq!(
            try_step_block(&eps, 2),
            Err(StepBlockError::StepOutOfRange { episode: 1, len: 2, t: 2 })
        );
        let msg = StepBlockError::StepOutOfRange { episode: 1, len: 2, t: 2 }.to_string();
        assert!(msg.contains("episode 1"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "episode 1 has 2 steps but step 2 was requested")]
    fn step_block_panics_with_the_offending_episode() {
        let eps = [ep(4, vec![]), ep(2, vec![])];
        step_block(&eps, 2);
    }

    #[test]
    #[should_panic(expected = "zero episodes")]
    fn step_block_panics_on_empty_slice() {
        step_block(&[], 0);
    }

    #[test]
    fn max_len_tracks_longest_episode() {
        assert_eq!(max_len(&[]), None);
        assert_eq!(max_len(&[ep(2, vec![]), ep(5, vec![]), ep(3, vec![])]), Some(5));
    }

    #[test]
    fn masked_step_block_pads_and_masks_the_tail() {
        let eps = [ep(4, vec![]), ep(2, vec![1]), ep(3, vec![2])];
        // All lanes live: identical to the uniform block.
        let (b0, m0) = masked_step_block(&eps, 1);
        assert_eq!(b0, step_block(&eps, 1));
        assert!(m0.is_full());
        // Tail step: episode 1 has ended — its row is zero padding and
        // its lane inactive.
        let (b2, m2) = masked_step_block(&eps, 2);
        assert_eq!(m2.as_bools(), &[true, false, true]);
        assert_eq!(b2.row(0), eps[0].inputs[2].as_slice());
        assert!(b2.row(1).iter().all(|&x| x == 0.0), "ended lane padded with zeros");
        assert_eq!(b2.row(2), eps[2].inputs[2].as_slice());
        // Last step: only the longest episode remains.
        let (_, m3) = masked_step_block(&eps, 3);
        assert_eq!(m3.active_lanes().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn try_masked_step_block_error_contracts() {
        assert_eq!(try_masked_step_block(&[], 0), Err(StepBlockError::Empty));
        let eps = [ep(2, vec![]), ep(4, vec![])];
        assert!(try_masked_step_block(&eps, 3).is_ok(), "last live step of the longest");
        assert_eq!(
            try_masked_step_block(&eps, 4),
            Err(StepBlockError::StepBeyondLongest { max_len: 4, t: 4 })
        );
        let msg = StepBlockError::StepBeyondLongest { max_len: 4, t: 4 }.to_string();
        assert!(msg.contains("longest has 4 steps"), "{msg}");
        assert!(msg.contains("step 4"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "step 5 is beyond every episode (longest has 4 steps)")]
    fn masked_step_block_panics_past_the_longest_episode() {
        masked_step_block(&[ep(4, vec![]), ep(2, vec![])], 5);
    }

    #[test]
    #[should_panic(expected = "zero episodes")]
    fn masked_step_block_panics_on_empty_slice() {
        masked_step_block(&[], 0);
    }
}
