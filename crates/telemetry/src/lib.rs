//! **hima-telemetry**: the std-only observability substrate of the
//! serving stack.
//!
//! The offline bench bins reproduce the paper's runtime breakdowns with
//! [`KernelProfile`](../hima_dnc/profile/index.html)-style wall-clock
//! instrumentation, but the *living* system (the `hima-serve` grid
//! scheduler) needs the production twin: always-on counters that cost a
//! handful of atomic adds per tick, latency distributions that never
//! allocate on the record path, and a bounded trace of session-lifecycle
//! events for post-hoc debugging. This crate provides exactly three
//! primitives:
//!
//! * [`MetricsRegistry`] — a named registry of [`Counter`]s, [`Gauge`]s
//!   and fixed-bucket log₂ [`Histogram`]s. Registration (startup, session
//!   open) takes a lock and may allocate; **recording is lock-free and
//!   allocation-free** — handles are `Arc`'d atomics, so the instrumented
//!   hot path stays compatible with the workspace's zero-allocation
//!   stepping contract (`tests/zero_alloc.rs`).
//! * [`TraceRing`] — a bounded ring buffer of [`TraceEvent`]s (open /
//!   close / park / splice / reap / busy / error) with monotone sequence
//!   numbers and coarse microsecond timestamps. Recording overwrites the
//!   oldest slot and never allocates after construction.
//! * [`MetricsSnapshot`] — a point-in-time copy of every registered
//!   metric: mergeable (saturating, so counter roll-ups never overflow),
//!   queryable by name, and renderable as JSON. The wire encoding lives
//!   with the `hima-serve` protocol (the vendored `serde` derive is a
//!   no-op stand-in, so serialization is hand-rolled at the boundary).
//!
//! No external dependencies, no background threads, no `unsafe`.

pub mod metrics;
pub mod trace;

pub use metrics::{
    bucket_bound, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry,
    MetricsSnapshot, HIST_BUCKETS,
};
pub use trace::{TraceEvent, TraceKind, TraceRing};
