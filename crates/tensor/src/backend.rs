//! Kernel backend selection: bit-exact scalar reference vs. blocked SIMD.
//!
//! [`Backend`] is the execution-tier axis of the engine: every hot kernel of
//! the DNC dataflow (`matmul_nt[_masked]_into`, `matvec[_t]_into`,
//! `row_norms_into`, the softmaxes) exists in two implementations behind one
//! dispatching method.
//!
//! * [`Backend::Scalar`] — the original kernels on [`Matrix`] and
//!   [`mod@crate::softmax`], unchanged. This tier is the **bit-exact
//!   reference**: all bit-equality conformance suites (batched ≡ solo,
//!   masked ≡ unmasked, `_into` ≡ allocating) are stated against it.
//! * [`Backend::Blocked`] — cache-blocked loops over [`F32x8`] lanes with
//!   multiple independent accumulators. Reductions (dot products, row
//!   norms, softmax normalization) **re-associate** floating-point sums, so
//!   this tier is *not* bit-identical to scalar; it is pinned to the
//!   reference by a tolerance contract instead: each reduction over `n`
//!   terms differs from the scalar result by at most O(`n·ε`) relative to
//!   the sum of absolute summands (property-tested in this crate, and
//!   end-to-end in the workspace `backend_conformance` suite). Kernels
//!   without reductions (`matvec_t_into`'s column-wise accumulation, the
//!   linkage-style element-wise updates) keep scalar's per-element
//!   expression order and stay bit-identical even on this tier.
//!
//! Both tiers are allocation-free on the `_into` paths, so either can sit
//! under the zero-allocation steady-state stepping contract.

use crate::lane_mask::LaneMask;
use crate::matrix::Matrix;
use crate::simd::F32x8;
use serde::{Deserialize, Serialize};

/// Which kernel implementation tier executes the hot numeric kernels.
///
/// Serializes with [`Backend::Scalar`] as the default, so engine specs
/// written before this axis existed deserialize to the bit-exact tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Backend {
    /// The original scalar kernels — the bit-exact reference tier.
    #[default]
    Scalar,
    /// Cache-blocked, 8-lane vectorized kernels with unrolled independent
    /// accumulators — faster, equal to scalar within re-association
    /// tolerance on reduction kernels.
    Blocked,
}

impl Backend {
    /// Short label used in spec labels and bench output.
    pub fn label(&self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Blocked => "blocked",
        }
    }

    /// Dot product `a · b` on this tier.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Backend::Scalar => crate::vector::dot(a, b),
            Backend::Blocked => {
                assert_eq!(a.len(), b.len(), "dot length mismatch");
                dot_blocked(a, b)
            }
        }
    }

    /// Matrix-vector product `m · v` into `out` on this tier.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != m.cols()` or `out.len() != m.rows()`.
    pub fn matvec_into(&self, m: &Matrix, v: &[f32], out: &mut [f32]) {
        match self {
            Backend::Scalar => m.matvec_into(v, out),
            Backend::Blocked => {
                assert_eq!(v.len(), m.cols(), "matvec shape mismatch");
                assert_eq!(out.len(), m.rows(), "matvec output length mismatch");
                // `out[i] = m.row(i) · v` is one output row of `v · mᵀ`.
                nt_row_blocked(v, m, out);
            }
        }
    }

    /// Transposed matrix-vector product `mᵀ · v` into `out` on this tier.
    ///
    /// Blocked keeps scalar's per-element accumulation order (the `i` loop
    /// is the reduction and is traversed identically; only the `j` loop is
    /// widened), so both tiers are bit-identical here.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != m.rows()` or `out.len() != m.cols()`.
    pub fn matvec_t_into(&self, m: &Matrix, v: &[f32], out: &mut [f32]) {
        match self {
            Backend::Scalar => m.matvec_t_into(v, out),
            Backend::Blocked => {
                assert_eq!(v.len(), m.rows(), "matvec_t shape mismatch");
                assert_eq!(out.len(), m.cols(), "matvec_t output length mismatch");
                out.fill(0.0);
                for (i, &w) in v.iter().enumerate() {
                    if w == 0.0 {
                        continue;
                    }
                    axpy_blocked(w, m.row(i), out);
                }
            }
        }
    }

    /// Batched projection `lhs · otherᵀ` into `out` on this tier.
    ///
    /// # Panics
    ///
    /// Panics if `lhs.cols() != other.cols()` or `out` is not
    /// `lhs.rows() × other.rows()`.
    pub fn matmul_nt_into(&self, lhs: &Matrix, other: &Matrix, out: &mut Matrix) {
        match self {
            Backend::Scalar => lhs.matmul_nt_into(other, out),
            Backend::Blocked => {
                lhs.assert_nt_shapes(other, out);
                for i in 0..lhs.rows() {
                    nt_row_blocked(lhs.row(i), other, out.row_mut(i));
                }
            }
        }
    }

    /// Masked batched projection: row `i` of `out` is computed iff
    /// `mask.is_active(i)`, inactive rows are zeroed — the ragged-batch
    /// contract of [`Matrix::matmul_nt_masked_into`], on this tier.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or if `mask.lanes() != lhs.rows()`.
    pub fn matmul_nt_masked_into(
        &self,
        lhs: &Matrix,
        other: &Matrix,
        mask: &LaneMask,
        out: &mut Matrix,
    ) {
        match self {
            Backend::Scalar => lhs.matmul_nt_masked_into(other, mask, out),
            Backend::Blocked => {
                lhs.assert_nt_shapes(other, out);
                assert_eq!(mask.lanes(), lhs.rows(), "lane mask size mismatch");
                for i in 0..lhs.rows() {
                    let dst = out.row_mut(i);
                    if mask.is_active(i) {
                        nt_row_blocked(lhs.row(i), other, dst);
                    } else {
                        dst.fill(0.0);
                    }
                }
            }
        }
    }

    /// Per-row L2 norms of `m` into `out` on this tier.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != m.rows()`.
    pub fn row_norms_into(&self, m: &Matrix, out: &mut [f32]) {
        match self {
            Backend::Scalar => m.row_norms_into(out),
            Backend::Blocked => {
                assert_eq!(out.len(), m.rows(), "row_norms output length mismatch");
                for (i, o) in out.iter_mut().enumerate() {
                    let row = m.row(i);
                    *o = dot_blocked(row, row).sqrt();
                }
            }
        }
    }

    /// In-place stabilized softmax on this tier.
    ///
    /// Blocked vectorizes the max scan (exact — `max` is order-invariant)
    /// and normalizes by a single reciprocal multiply instead of per-element
    /// division (≤ 1 ulp per element); the exponential loop and its
    /// left-to-right sum match scalar exactly.
    pub fn softmax_inplace(&self, xs: &mut [f32]) {
        match self {
            Backend::Scalar => crate::softmax::softmax_inplace(xs),
            Backend::Blocked => softmax_inplace_blocked(xs),
        }
    }

    /// Masked row-block softmax on this tier: active rows normalized,
    /// inactive rows untouched.
    ///
    /// # Panics
    ///
    /// Panics if `mask.lanes() != m.rows()`.
    pub fn softmax_rows_masked(&self, m: &mut Matrix, mask: &LaneMask) {
        match self {
            Backend::Scalar => crate::softmax::softmax_rows_masked(m, mask),
            Backend::Blocked => {
                assert_eq!(mask.lanes(), m.rows(), "lane mask size mismatch");
                for i in mask.active_lanes() {
                    softmax_inplace_blocked(m.row_mut(i));
                }
            }
        }
    }
}

/// Blocked dot product: four [`F32x8`] accumulators over 32-element
/// chunks (32 independent add chains), an 8-wide cleanup loop, pairwise
/// accumulator merge, then a scalar tail.
#[inline]
fn dot_blocked(a: &[f32], b: &[f32]) -> f32 {
    let mut acc0 = F32x8::ZERO;
    let mut acc1 = F32x8::ZERO;
    let mut acc2 = F32x8::ZERO;
    let mut acc3 = F32x8::ZERO;
    let mut ac = a.chunks_exact(32);
    let mut bc = b.chunks_exact(32);
    for (ca, cb) in (&mut ac).zip(&mut bc) {
        acc0 = F32x8::load(&ca[0..8]).mul_add(F32x8::load(&cb[0..8]), acc0);
        acc1 = F32x8::load(&ca[8..16]).mul_add(F32x8::load(&cb[8..16]), acc1);
        acc2 = F32x8::load(&ca[16..24]).mul_add(F32x8::load(&cb[16..24]), acc2);
        acc3 = F32x8::load(&ca[24..32]).mul_add(F32x8::load(&cb[24..32]), acc3);
    }
    let ra = ac.remainder();
    let rb = bc.remainder();
    let mut ra8 = ra.chunks_exact(8);
    let mut rb8 = rb.chunks_exact(8);
    for (ca, cb) in (&mut ra8).zip(&mut rb8) {
        acc0 = F32x8::load(ca).mul_add(F32x8::load(cb), acc0);
    }
    let mut sum = (acc0.add(acc1)).add(acc2.add(acc3)).horizontal_sum();
    for (x, y) in ra8.remainder().iter().zip(rb8.remainder()) {
        sum += x * y;
    }
    sum
}

/// One output row of `lhs · otherᵀ`, blocked: four output columns per
/// pass (so `lhs` chunks load once per four dot products), each column
/// reduced through its own [`F32x8`] accumulator.
fn nt_row_blocked(lhs: &[f32], other: &Matrix, dst: &mut [f32]) {
    let n = other.rows();
    let k = lhs.len();
    let k8 = k - k % 8;
    let mut j = 0;
    while j + 4 <= n {
        let r0 = other.row(j);
        let r1 = other.row(j + 1);
        let r2 = other.row(j + 2);
        let r3 = other.row(j + 3);
        let mut a0 = F32x8::ZERO;
        let mut a1 = F32x8::ZERO;
        let mut a2 = F32x8::ZERO;
        let mut a3 = F32x8::ZERO;
        let mut kk = 0;
        while kk < k8 {
            let lv = F32x8::load(&lhs[kk..kk + 8]);
            a0 = lv.mul_add(F32x8::load(&r0[kk..kk + 8]), a0);
            a1 = lv.mul_add(F32x8::load(&r1[kk..kk + 8]), a1);
            a2 = lv.mul_add(F32x8::load(&r2[kk..kk + 8]), a2);
            a3 = lv.mul_add(F32x8::load(&r3[kk..kk + 8]), a3);
            kk += 8;
        }
        let mut s0 = a0.horizontal_sum();
        let mut s1 = a1.horizontal_sum();
        let mut s2 = a2.horizontal_sum();
        let mut s3 = a3.horizontal_sum();
        for kk in k8..k {
            let l = lhs[kk];
            s0 += l * r0[kk];
            s1 += l * r1[kk];
            s2 += l * r2[kk];
            s3 += l * r3[kk];
        }
        dst[j] = s0;
        dst[j + 1] = s1;
        dst[j + 2] = s2;
        dst[j + 3] = s3;
        j += 4;
    }
    for (d, jr) in dst[j..].iter_mut().zip(j..n) {
        *d = dot_blocked(lhs, other.row(jr));
    }
}

/// Vectorized `out += w * row`, element-wise — the same per-element
/// expression as the scalar loop, so results are bit-identical.
#[inline]
fn axpy_blocked(w: f32, row: &[f32], out: &mut [f32]) {
    let wv = F32x8::splat(w);
    let mut oc = out.chunks_exact_mut(8);
    let mut rc = row.chunks_exact(8);
    for (o, r) in (&mut oc).zip(&mut rc) {
        wv.mul_add(F32x8::load(r), F32x8::load(o)).store(o);
    }
    for (o, r) in oc.into_remainder().iter_mut().zip(rc.remainder()) {
        *o += w * r;
    }
}

/// Blocked softmax: vectorized max scan, scalar exponential pass with the
/// scalar tier's left-to-right sum, reciprocal-multiply normalization.
fn softmax_inplace_blocked(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let mut mv = F32x8::splat(f32::NEG_INFINITY);
    let mut c = xs.chunks_exact(8);
    for ch in &mut c {
        mv = mv.max(F32x8::load(ch));
    }
    let mut max = mv.horizontal_max();
    for &x in c.remainder() {
        max = max.max(x);
    }
    let mut total = 0.0f32;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        total += *x;
    }
    let inv = 1.0 / total;
    let iv = F32x8::splat(inv);
    let mut c = xs.chunks_exact_mut(8);
    for ch in &mut c {
        F32x8::load(ch).mul(iv).store(ch);
    }
    for x in c.into_remainder() {
        *x *= inv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::softmax::{softmax_inplace, softmax_rows_masked};

    /// Re-association tolerance for reduction kernels, stated relative to
    /// the sum of absolute summands (`1` floors the scale for tiny sums).
    fn assert_reduction_close(got: f32, want: f32, abs_scale: f32) {
        let tol = 1e-4 * (1.0 + abs_scale);
        assert!(
            (got - want).abs() <= tol,
            "blocked {got} vs scalar {want} exceeds re-association tol {tol}"
        );
    }

    fn mat(rows: usize, cols: usize, phase: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| ((i * cols + j) as f32 * 0.37 + phase).sin())
    }

    fn vec_of(n: usize, phase: f32) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.61 + phase).cos()).collect()
    }

    #[test]
    fn labels_and_default() {
        assert_eq!(Backend::default(), Backend::Scalar);
        assert_eq!(Backend::Scalar.label(), "scalar");
        assert_eq!(Backend::Blocked.label(), "blocked");
    }

    #[test]
    fn blocked_dot_matches_scalar_within_tolerance() {
        // Lengths straddling every code path: scalar tail only, 8-chunk
        // cleanup, full 32-chunks, and combinations.
        for n in [0, 1, 5, 8, 9, 16, 31, 32, 33, 40, 64, 100, 128, 257] {
            let a = vec_of(n, 0.1);
            let b = vec_of(n, 1.7);
            let want = crate::vector::dot(&a, &b);
            let got = Backend::Blocked.dot(&a, &b);
            let scale: f32 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
            assert_reduction_close(got, want, scale);
        }
    }

    #[test]
    fn blocked_matvec_matches_scalar_within_tolerance() {
        // Engine shapes (linkage 128×128, content 128×16) plus
        // non-multiple-of-block widths (17, 63).
        for (r, c) in [(128, 128), (128, 16), (4, 17), (7, 63), (1, 9), (9, 1)] {
            let m = mat(r, c, 0.3);
            let v = vec_of(c, 2.2);
            let mut want = vec![0.0; r];
            let mut got = vec![f32::NAN; r];
            Backend::Scalar.matvec_into(&m, &v, &mut want);
            Backend::Blocked.matvec_into(&m, &v, &mut got);
            for i in 0..r {
                assert_reduction_close(got[i], want[i], c as f32);
            }
        }
    }

    #[test]
    fn blocked_matvec_t_is_bit_identical() {
        // No re-association in the column-accumulation kernel: the `i`
        // reduction order matches scalar exactly.
        for (r, c) in [(128, 16), (17, 63), (1, 8), (8, 1), (5, 19)] {
            let m = mat(r, c, 0.9);
            let mut v = vec_of(r, 0.4);
            v[0] = 0.0; // exercise the sparsity skip
            let mut want = vec![f32::NAN; c];
            let mut got = vec![f32::NAN; c];
            Backend::Scalar.matvec_t_into(&m, &v, &mut want);
            Backend::Blocked.matvec_t_into(&m, &v, &mut got);
            assert_eq!(got, want, "{r}x{c}");
        }
    }

    #[test]
    fn blocked_matmul_nt_matches_scalar_within_tolerance() {
        for (b, n, k) in [(32, 256, 112), (3, 5, 17), (1, 1, 63), (8, 93, 80)] {
            let lhs = mat(b, k, 0.2);
            let other = mat(n, k, 1.1);
            let mut want = Matrix::zeros(b, n);
            let mut got = Matrix::filled(b, n, f32::NAN);
            Backend::Scalar.matmul_nt_into(&lhs, &other, &mut want);
            Backend::Blocked.matmul_nt_into(&lhs, &other, &mut got);
            for i in 0..b {
                for j in 0..n {
                    assert_reduction_close(got[(i, j)], want[(i, j)], k as f32);
                }
            }
        }
    }

    #[test]
    fn blocked_masked_matmul_nt_zeroes_inactive_rows() {
        let lhs = mat(6, 40, 0.5);
        let other = mat(10, 40, 1.9);
        let mask = LaneMask::from(vec![true, false, true, true, false, true]);
        let mut out = Matrix::filled(6, 10, f32::NAN); // stale scratch
        Backend::Blocked.matmul_nt_masked_into(&lhs, &other, &mask, &mut out);
        let mut full = Matrix::zeros(6, 10);
        Backend::Blocked.matmul_nt_into(&lhs, &other, &mut full);
        for i in 0..6 {
            if mask.is_active(i) {
                assert_eq!(out.row(i), full.row(i), "active row {i}");
            } else {
                assert!(out.row(i).iter().all(|&x| x == 0.0), "inactive row {i}");
            }
        }
    }

    #[test]
    fn blocked_masked_matmul_nt_handles_empty_mask() {
        let lhs = mat(4, 12, 0.8);
        let other = mat(6, 12, 0.1);
        let mask = LaneMask::from(vec![false; 4]);
        let mut out = Matrix::filled(4, 6, f32::NAN);
        Backend::Blocked.matmul_nt_masked_into(&lhs, &other, &mask, &mut out);
        assert!(out.as_slice().iter().all(|&x| x == 0.0), "all-inactive mask zeroes out");
    }

    #[test]
    fn blocked_row_norms_match_scalar_within_tolerance() {
        for (r, c) in [(128, 16), (128, 17), (3, 63), (1, 1), (5, 8)] {
            let m = mat(r, c, 1.4);
            let mut want = vec![f32::NAN; r];
            let mut got = vec![f32::NAN; r];
            Backend::Scalar.row_norms_into(&m, &mut want);
            Backend::Blocked.row_norms_into(&m, &mut got);
            for i in 0..r {
                assert_reduction_close(got[i], want[i], c as f32);
            }
        }
    }

    #[test]
    fn blocked_softmax_matches_scalar_within_tolerance() {
        for n in [1, 2, 7, 8, 9, 16, 128, 129] {
            let mut want = vec_of(n, 0.6);
            let mut got = want.clone();
            softmax_inplace(&mut want);
            Backend::Blocked.softmax_inplace(&mut got);
            for (g, w) in got.iter().zip(&want) {
                // Reciprocal-multiply vs divide: ≤ a few ulps around
                // values in (0, 1].
                assert!((g - w).abs() <= 1e-6, "{g} vs {w} (n={n})");
            }
            assert!((got.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
        Backend::Blocked.softmax_inplace(&mut []); // empty is a no-op
    }

    #[test]
    fn blocked_masked_softmax_skips_inactive_rows() {
        let src = mat(4, 11, 0.2);
        let mask = LaneMask::from(vec![true, false, false, true]);
        let mut got = src.clone();
        Backend::Blocked.softmax_rows_masked(&mut got, &mask);
        let mut want = src.clone();
        softmax_rows_masked(&mut want, &mask);
        for i in 0..4 {
            if mask.is_active(i) {
                for (g, w) in got.row(i).iter().zip(want.row(i)) {
                    assert!((g - w).abs() <= 1e-6, "row {i}");
                }
            } else {
                assert_eq!(got.row(i), src.row(i), "inactive row {i} untouched");
            }
        }
    }

    #[test]
    fn single_row_and_single_column_edges() {
        // 1×1 through 1×n and n×1: the j-remainder and k-tail paths alone.
        for backend in [Backend::Scalar, Backend::Blocked] {
            let m = mat(1, 1, 0.0);
            let mut out = vec![f32::NAN; 1];
            backend.matvec_into(&m, &[2.0], &mut out);
            assert!((out[0] - 2.0 * m[(0, 0)]).abs() < 1e-6, "{}", backend.label());

            let col = mat(9, 1, 0.7);
            let mut out = vec![f32::NAN; 9];
            backend.matvec_into(&col, &[1.5], &mut out);
            for i in 0..9 {
                assert!((out[i] - 1.5 * col[(i, 0)]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn scalar_dispatch_is_the_reference_bitwise() {
        // The Scalar arms must route to the original kernels, not copies.
        let m = mat(5, 7, 0.3);
        let v = vec_of(7, 0.9);
        let mut a = vec![0.0; 5];
        let mut b = vec![0.0; 5];
        Backend::Scalar.matvec_into(&m, &v, &mut a);
        m.matvec_into(&v, &mut b);
        assert_eq!(a, b);
        assert_eq!(Backend::Scalar.dot(&v, &v), crate::vector::dot(&v, &v));
    }

    #[test]
    #[should_panic(expected = "matvec shape mismatch")]
    fn blocked_matvec_rejects_bad_shapes() {
        let m = Matrix::zeros(2, 3);
        Backend::Blocked.matvec_into(&m, &[1.0, 2.0], &mut [0.0, 0.0]);
    }
}
