//! Fig. 6(c)/(d): inter-tile traffic vs memory partition.
//!
//! Sweeps the submatrix partition `N_t^h × N_t^w` for the memory-read
//! kernel on the external memory (Eq. 2, Fig. 6(c)) and the
//! forward-backward kernel on the linkage memory (Eq. 3, Fig. 6(d)),
//! for the paper's tile counts.

use hima::mem::optimizer::{
    best_external_partition, best_linkage_partition, forward_backward_sweep, memory_read_sweep,
};
use hima::mem::traffic::content_weighting_transfers;
use hima::prelude::*;
use hima_bench::header;

fn main() {
    header("Fig. 6(c): memory-read kernel traffic vs external-memory partition (N x W = 1024 x 64)");
    println!("{:<8} columns = log2(N_t^w): 0 (row-wise) ... log2(N_t) (column-wise)", "");
    for nt in [4usize, 16, 32, 48, 64] {
        let sweep = memory_read_sweep(1024, 64, nt);
        let min = sweep.iter().map(|(_, t)| *t).min().unwrap().max(1);
        print!("N_t={nt:<4}");
        for (p, t) in &sweep {
            print!("  {}:{:.1}x", p, *t as f64 / min as f64);
        }
        println!();
    }
    println!(
        "\nOptimizer external-memory choice at N_t=16: {} (paper: row-wise)",
        best_external_partition(1024, 64, 16)
    );

    header("Fig. 6(a): content-weighting traffic per partition (N = 1024, N_t = 4)");
    for p in Partition::factorizations(4) {
        println!(
            "  {:<5} -> {:>6} transfers (row-wise: 2(N_t-1)=6; col-wise: 2N(N_t-1)=6144)",
            p.to_string(),
            content_weighting_transfers(1024, p)
        );
    }

    header("Fig. 6(d): forward-backward traffic vs linkage partition (normalized)");
    for nt in [4usize, 16, 32, 48, 64] {
        let sweep = forward_backward_sweep(nt);
        let min = sweep.iter().map(|(_, t)| *t).fold(f64::INFINITY, f64::min);
        print!("N_t={nt:<4}");
        for (p, t) in &sweep {
            print!("  {}:{:.2}x", p, t / min);
        }
        println!();
    }
    println!(
        "\nOptimizer linkage choice at N_t=16: {} (paper: 4x4)",
        best_linkage_partition(16)
    );
    println!("Paper: both extremes are suboptimal; the minimum falls in the interior.");
}
