//! The continuous-batching scheduler: one tick loop per engine group.
//!
//! A **group** is every live session that shares one engine configuration
//! (equal [`SessionSpec`](crate::protocol::SessionSpec) group keys). The
//! group thread owns a single batched engine whose lane count is the
//! grid capacity, and each **tick** coalesces the pending step requests
//! of resident sessions into one `step_batch_masked_into` call:
//!
//! * sessions **join** a lane when they have queued steps (fresh lanes
//!   are recycled with `reset_lane`, swapped-in sessions re-attached with
//!   `import_lane`),
//! * sessions with no work are **frozen** in place by the
//!   [`LaneMask`] — a parked resident costs (almost) nothing and its
//!   state stays bit-identical while co-tenants advance,
//! * when the grid is full, the least-recently-active idle resident is
//!   **swapped out** through `export_lane` to a detached
//!   [`LaneState`](hima_dnc::LaneState) and its lane slot returns to the
//!   free list.
//!
//! Because weights are a function of the seed alone and masked stepping
//! of an active lane is bit-identical to stepping that lane solo (the
//! ragged conformance contract), a session served through this grid
//! produces **bit-identical** outputs to a dedicated single-lane engine
//! fed the same inputs — regardless of co-tenants, joins, leaves or
//! swaps. `tests/serve_conformance.rs` pins that end to end.

use crate::metrics::ServeMetrics;
use crate::protocol::{Response, ServeError, SessionSpec};
use crate::server::ServeConfig;
use hima_dnc::{BoxedEngine, EngineBuilder, KernelId, KernelProfile, LaneState};
use hima_telemetry::{Histogram, TraceKind};
use hima_tensor::{LaneMask, Matrix};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// With sampled engine timing on, fold the engine's accumulated
/// [`KernelProfile`] into the registry every this many stepped ticks.
const PROFILE_SAMPLE_TICKS: u32 = 64;

/// A command routed to a group thread by the
/// [`SessionHub`](crate::session::SessionHub).
pub(crate) enum GroupCmd {
    /// Register a hub-allocated session id with this group.
    Open { session: u64, reply: Sender<Response> },
    /// Queue `inputs.len()` steps; one reply carries all output rows.
    Step { session: u64, inputs: Vec<Vec<f32>>, reply: Sender<Response> },
    /// Query the session's current read-vector row.
    ReadRows { session: u64, reply: Sender<Response> },
    /// Reset the session to blank state.
    Reset { session: u64, reply: Sender<Response> },
    /// Close the session.
    Close { session: u64, reply: Sender<Response> },
}

/// Per-session scheduler state.
struct Sess {
    /// Resident lane slot, if currently on the grid.
    lane: Option<usize>,
    /// Detached state while swapped out (`None` for a blank session —
    /// attaching then recycles the lane with `reset_lane`).
    parked: Option<LaneState>,
    /// Pending step inputs in step order, each with its enqueue instant
    /// (the start of the measured enqueue→output step latency).
    queue: VecDeque<(Vec<f32>, Instant)>,
    /// The in-flight step command: reply channel, outputs accumulated so
    /// far, and how many are expected. At most one per session.
    reply: Option<(Sender<Response>, Vec<Vec<f32>>, usize)>,
    /// Copy of the session's current read-vector row, maintained across
    /// swaps so `ReadRows` never needs to touch the grid.
    last_read: Vec<f32>,
    /// Refreshed by every command and every stepped tick; drives
    /// idle-timeout reaping.
    last_activity: Instant,
    /// This session's `serve.session.<id>.step_latency_us` histogram
    /// (registered on open, dropped on close/reap).
    latency: Histogram,
}

impl Sess {
    fn idle(&self) -> bool {
        self.queue.is_empty() && self.reply.is_none()
    }
}

/// The state owned by one group thread.
struct Group {
    cfg: ServeConfig,
    engine: BoxedEngine,
    /// `lanes[slot]` = resident session id.
    lanes: Vec<Option<u64>>,
    free: Vec<usize>,
    sessions: HashMap<u64, Sess>,
    /// The hub's session → group routing table; reaped and closed
    /// sessions are unregistered here.
    index: Arc<Mutex<HashMap<u64, Sender<GroupCmd>>>>,
    /// Reused per-tick input/output blocks.
    x: Matrix,
    y: Matrix,
    read_width: usize,
    /// Server-wide metric handles and lifecycle trace.
    metrics: Arc<ServeMetrics>,
    /// Sampled engine timing: the profile totals already folded into the
    /// registry (`None` when the opt-in path is off).
    profile_base: Option<KernelProfile>,
    /// Stepped ticks since the last profile sample.
    ticks_since_sample: u32,
}

/// Runs a group's tick loop until its command channel disconnects (server
/// shutdown) **and** every queued step has been served — pending work is
/// drained, never dropped.
pub(crate) fn run_group(
    cfg: ServeConfig,
    spec: SessionSpec,
    rx: Receiver<GroupCmd>,
    index: Arc<Mutex<HashMap<u64, Sender<GroupCmd>>>>,
    metrics: Arc<ServeMetrics>,
) {
    let lanes = cfg.grid_lanes.max(1);
    let profiling = metrics.engine_profiling();
    let engine = EngineBuilder::new(spec.params)
        .with_spec(spec.spec)
        .lanes(lanes)
        .seed(spec.seed)
        .profiling(profiling)
        .build();
    let read_width = spec.params.read_heads * spec.params.word_size;
    let mut group = Group {
        cfg,
        engine,
        lanes: vec![None; lanes],
        free: (0..lanes).rev().collect(),
        sessions: HashMap::new(),
        index,
        x: Matrix::zeros(lanes, spec.params.input_size),
        y: Matrix::zeros(lanes, spec.params.output_size),
        read_width,
        metrics,
        profile_base: profiling.then(KernelProfile::new),
        ticks_since_sample: 0,
    };

    let mut disconnected = false;
    loop {
        let has_work = group.sessions.values().any(|s| !s.queue.is_empty());
        if has_work || disconnected {
            // Work pending (or draining): poll without blocking so the
            // grid keeps ticking at full rate.
            loop {
                match rx.try_recv() {
                    Ok(cmd) => group.handle(cmd),
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        disconnected = true;
                        break;
                    }
                }
            }
        } else {
            // Idle: block for up to one tick waiting for a command.
            match rx.recv_timeout(group.cfg.tick) {
                Ok(cmd) => {
                    group.handle(cmd);
                    while let Ok(cmd) = rx.try_recv() {
                        group.handle(cmd);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => disconnected = true,
            }
        }
        group.step_tick();
        group.reap();
        if disconnected && group.sessions.values().all(Sess::idle) {
            break;
        }
    }
    // Fold any engine time accumulated since the last periodic sample.
    group.sample_profile(true);
}

impl Group {
    fn handle(&mut self, cmd: GroupCmd) {
        match cmd {
            GroupCmd::Open { session, reply } => {
                self.sessions.insert(
                    session,
                    Sess {
                        lane: None,
                        parked: None,
                        queue: VecDeque::new(),
                        reply: None,
                        last_read: vec![0.0; self.read_width],
                        last_activity: Instant::now(),
                        latency: self.metrics.session_histogram(session),
                    },
                );
                self.metrics.sessions_opened.inc();
                self.metrics.sessions_live.add(1);
                self.metrics.trace(TraceKind::Open, session, 0);
                let _ = reply.send(Response::Opened { session });
            }
            GroupCmd::Step { session, inputs, reply } => {
                let input_size = self.engine.params().input_size;
                let Some(sess) = self.sessions.get_mut(&session) else {
                    let _ = reply.send(Response::Error(ServeError::UnknownSession(session)));
                    return;
                };
                if sess.reply.is_some() {
                    let _ = reply.send(Response::Error(ServeError::SessionBusy(session)));
                    return;
                }
                if inputs.is_empty() {
                    let _ = reply.send(Response::Stepped { outputs: Vec::new() });
                    return;
                }
                if let Some(bad) = inputs.iter().find(|row| row.len() != input_size) {
                    let _ = reply.send(Response::Error(ServeError::BadInput(format!(
                        "input rows must be {input_size} wide, got {}",
                        bad.len()
                    ))));
                    return;
                }
                let now = Instant::now();
                sess.last_activity = now;
                let expected = inputs.len();
                sess.queue.extend(inputs.into_iter().map(|row| (row, now)));
                sess.reply = Some((reply, Vec::with_capacity(expected), expected));
                self.metrics.queue_depth.add(expected as i64);
            }
            GroupCmd::ReadRows { session, reply } => {
                let Some(sess) = self.sessions.get_mut(&session) else {
                    let _ = reply.send(Response::Error(ServeError::UnknownSession(session)));
                    return;
                };
                sess.last_activity = Instant::now();
                let _ = reply.send(Response::Rows { read: sess.last_read.clone() });
            }
            GroupCmd::Reset { session, reply } => {
                let Some(sess) = self.sessions.get_mut(&session) else {
                    let _ = reply.send(Response::Error(ServeError::UnknownSession(session)));
                    return;
                };
                if sess.reply.is_some() {
                    let _ = reply.send(Response::Error(ServeError::SessionBusy(session)));
                    return;
                }
                if let Some(lane) = sess.lane {
                    self.engine.reset_lane(lane);
                    self.metrics.lane_resets.inc();
                }
                if sess.parked.take().is_some() {
                    self.metrics.sessions_parked.sub(1);
                }
                self.metrics.queue_depth.sub(sess.queue.len() as i64);
                sess.queue.clear();
                sess.last_read.fill(0.0);
                sess.last_activity = Instant::now();
                let _ = reply.send(Response::Done);
            }
            GroupCmd::Close { session, reply } => {
                match self.sessions.remove(&session) {
                    Some(sess) => {
                        if let Some(lane) = sess.lane {
                            self.lanes[lane] = None;
                            self.free.push(lane);
                        }
                        if sess.parked.is_some() {
                            self.metrics.sessions_parked.sub(1);
                        }
                        self.metrics.queue_depth.sub(sess.queue.len() as i64);
                        // Abort any queued-but-unserved steps (cannot
                        // happen through the synchronous client, which
                        // holds the session busy until the reply).
                        if let Some((reply, outputs, _)) = sess.reply {
                            let _ = reply.send(Response::Stepped { outputs });
                        }
                        self.index.lock().unwrap().remove(&session);
                        self.metrics.sessions_closed.inc();
                        self.metrics.sessions_live.sub(1);
                        self.metrics.drop_session_histogram(session);
                        self.metrics.trace(TraceKind::Close, session, 0);
                        let _ = reply.send(Response::Done);
                    }
                    None => {
                        let _ = reply.send(Response::Error(ServeError::UnknownSession(session)));
                    }
                }
            }
        }
    }

    /// Grants a lane slot: from the free list, else by swapping out the
    /// least-recently-active idle resident. `None` if every resident is
    /// mid-request this tick (the requester stays queued and retries next
    /// tick — by then at least one resident has drained or parked).
    fn alloc_lane(&mut self) -> Option<usize> {
        if let Some(lane) = self.free.pop() {
            return Some(lane);
        }
        let victim = self
            .lanes
            .iter()
            .filter_map(|&slot| slot)
            .filter(|id| self.sessions[id].idle())
            .min_by_key(|id| self.sessions[id].last_activity)?;
        let sess = self.sessions.get_mut(&victim).unwrap();
        let lane = sess.lane.take().unwrap();
        sess.parked = Some(self.engine.export_lane(lane));
        self.lanes[lane] = None;
        self.metrics.parks.inc();
        self.metrics.sessions_parked.add(1);
        self.metrics.trace(TraceKind::Park, victim, lane as u64);
        Some(lane)
    }

    /// One grid tick: seat sessions with pending work, coalesce one
    /// queued step per seated session into a masked batch, step, fan the
    /// outputs back out.
    fn step_tick(&mut self) {
        // Deterministic seating order (session id) keeps swap decisions
        // reproducible under identical command interleavings.
        let mut pending: Vec<u64> =
            self.sessions.iter().filter(|(_, s)| !s.queue.is_empty()).map(|(&id, _)| id).collect();
        pending.sort_unstable();

        let mut mask = vec![false; self.engine.batch()];
        let mut stepping: Vec<(u64, usize, Instant)> = Vec::with_capacity(pending.len());
        for id in pending {
            let lane = match self.sessions[&id].lane {
                Some(lane) => lane,
                None => match self.alloc_lane() {
                    Some(lane) => {
                        let sess = self.sessions.get_mut(&id).unwrap();
                        sess.lane = Some(lane);
                        self.lanes[lane] = Some(id);
                        match sess.parked.take() {
                            Some(state) => {
                                self.engine.import_lane(lane, &state);
                                self.metrics.splices.inc();
                                self.metrics.sessions_parked.sub(1);
                                self.metrics.trace(TraceKind::Splice, id, lane as u64);
                            }
                            None => {
                                self.engine.reset_lane(lane);
                                self.metrics.lane_resets.inc();
                            }
                        }
                        lane
                    }
                    // Grid saturated by mid-request residents: wait a
                    // tick.
                    None => continue,
                },
            };
            let sess = self.sessions.get_mut(&id).unwrap();
            let (input, enqueued) = sess.queue.pop_front().unwrap();
            self.x.row_mut(lane).copy_from_slice(&input);
            mask[lane] = true;
            stepping.push((id, lane, enqueued));
        }
        if stepping.is_empty() {
            return;
        }

        let mask = LaneMask::from(mask);
        let tick_start = Instant::now();
        self.engine.step_batch_masked_into(&self.x, &mask, &mut self.y);
        let tick_ns = tick_start.elapsed().as_nanos() as u64;

        let n = stepping.len();
        self.metrics.ticks.inc();
        self.metrics.steps.add(n as u64);
        self.metrics.tick_ns.observe(tick_ns);
        self.metrics.batch_size.observe(n as u64);
        self.metrics.occupancy_pct.observe((n * 100 / self.engine.batch()) as u64);
        self.metrics.active_lanes.set(n as i64);
        self.metrics.queue_depth.sub(n as i64);

        let now = Instant::now();
        for (id, lane, enqueued) in stepping {
            let sess = self.sessions.get_mut(&id).unwrap();
            sess.last_read.copy_from_slice(self.engine.last_read_row(lane));
            sess.last_activity = now;
            let latency_us = now.duration_since(enqueued).as_micros() as u64;
            sess.latency.observe(latency_us);
            self.metrics.step_latency_us.observe(latency_us);
            let (reply, mut outputs, expected) = sess.reply.take().unwrap();
            outputs.push(self.y.row(lane).to_vec());
            if outputs.len() == expected {
                let _ = reply.send(Response::Stepped { outputs });
            } else {
                sess.reply = Some((reply, outputs, expected));
            }
        }

        self.ticks_since_sample += 1;
        self.sample_profile(false);
    }

    /// With sampled engine timing on, folds the delta between the
    /// engine's cumulative [`KernelProfile`] and the last sampled
    /// baseline into the registry's per-category counters. Runs every
    /// [`PROFILE_SAMPLE_TICKS`] stepped ticks and once (`force`) at group
    /// shutdown.
    fn sample_profile(&mut self, force: bool) {
        let Some(base) = &self.profile_base else { return };
        if !force && self.ticks_since_sample < PROFILE_SAMPLE_TICKS {
            return;
        }
        let cur = self.engine.profile();
        let mut delta = KernelProfile::new();
        for k in KernelId::ALL {
            delta.record(
                k,
                cur.nanos(k).saturating_sub(base.nanos(k)),
                cur.calls(k).saturating_sub(base.calls(k)),
            );
        }
        self.metrics.record_profile_delta(&delta);
        self.profile_base = Some(cur);
        self.ticks_since_sample = 0;
    }

    /// Evicts sessions idle past the configured timeout. A session with
    /// queued steps or an unanswered reply is *never* reaped, so an
    /// in-flight stream outlives any idle timeout — `last_activity` is
    /// refreshed on every stepped tick.
    fn reap(&mut self) {
        let Some(timeout) = self.cfg.idle_timeout else { return };
        let now = Instant::now();
        let dead: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.idle() && now.duration_since(s.last_activity) > timeout)
            .map(|(&id, _)| id)
            .collect();
        if dead.is_empty() {
            return;
        }
        let mut index = self.index.lock().unwrap();
        for id in dead {
            let sess = self.sessions.remove(&id).unwrap();
            if let Some(lane) = sess.lane {
                self.lanes[lane] = None;
                self.free.push(lane);
            }
            if sess.parked.is_some() {
                self.metrics.sessions_parked.sub(1);
            }
            index.remove(&id);
            self.metrics.sessions_reaped.inc();
            self.metrics.sessions_live.sub(1);
            self.metrics.drop_session_histogram(id);
            self.metrics.trace(TraceKind::Reap, id, 0);
        }
    }
}
