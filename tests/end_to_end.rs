//! End-to-end scenarios exercising the full stack the way a user of the
//! library would: model → engine → cost, over non-default geometries.

use hima::prelude::*;

/// Sweep of geometries: every subsystem must stay consistent away from the
/// paper's reference point.
#[test]
fn stack_holds_across_geometries() {
    for (n, w, r, nt) in [(128usize, 16usize, 1usize, 4usize), (256, 32, 2, 8), (512, 64, 4, 32)] {
        // Functional model.
        let params = DncParams::new(n, w, r).with_hidden(32).with_io(8, 8);
        let mut dnc = Dnc::new(params, 11);
        for t in 0..5 {
            let x: Vec<f32> = (0..8).map(|i| ((t + i) as f32 * 0.3).sin()).collect();
            let y = dnc.step(&x);
            assert!(y.iter().all(|v| v.is_finite()), "NaN at {n}x{w}");
        }
        assert!(dnc.memory().check_invariants(1e-3));

        // Architectural model.
        let cfg = EngineConfig::hima_dnc(nt).with_geometry(n, w, r);
        let engine = Engine::new(cfg);
        assert!(engine.step_cycles() > 0);
        let dncd_cfg = EngineConfig::hima_dncd(nt).with_geometry(n, w, r);
        assert!(
            Engine::new(dncd_cfg).step_cycles() < engine.step_cycles(),
            "DNC-D must win at {n}x{w}, N_t={nt}"
        );

        // Cost model.
        let area = AreaModel::estimate(&cfg);
        assert!(area.total_mm2() > 0.0);
        assert!(area.pt_mem_mm2 < area.pt_mm2);
    }
}

/// Bigger memories must cost more cycles, area and traffic — monotonicity
/// of the whole stack in `N`.
#[test]
fn stack_is_monotone_in_memory_size() {
    let mut prev_cycles = 0;
    let mut prev_area = 0.0;
    for n in [256usize, 512, 1024, 2048] {
        let cfg = EngineConfig::hima_dnc(16).with_geometry(n, 64, 4);
        let cycles = Engine::new(cfg).step_cycles();
        let area = AreaModel::estimate(&cfg).total_mm2();
        assert!(cycles > prev_cycles, "N={n}: {cycles} cycles");
        assert!(area > prev_area, "N={n}: {area} mm2");
        prev_cycles = cycles;
        prev_area = area;
    }
}

/// A full mini-study: run the accuracy harness and the engine at matched
/// shard counts and confirm the speed/accuracy trade-off is coherent.
#[test]
fn speed_accuracy_tradeoff_is_coherent() {
    let mut speeds = Vec::new();
    let mut errors = Vec::new();
    for tiles in [2usize, 8] {
        speeds.push(Engine::new(EngineConfig::hima_dncd(tiles)).step_cycles());
        errors.push(hima::tasks::eval::mean_error(&relative_error(&EvalConfig::small(tiles))));
    }
    assert!(speeds[1] < speeds[0], "more shards must be faster: {speeds:?}");
    assert!(errors[1] >= errors[0], "more shards must not be more accurate: {errors:?}");
}

/// The sequence API and the step API must agree (users mix both).
#[test]
fn sequence_and_step_apis_agree() {
    let params = DncParams::new(64, 16, 2).with_io(8, 8);
    let inputs: Vec<Vec<f32>> =
        (0..10).map(|t| (0..8).map(|i| ((t * 3 + i) as f32 * 0.21).cos()).collect()).collect();
    let mut a = Dnc::new(params, 23);
    let seq = a.run_sequence(&inputs);
    let mut b = Dnc::new(params, 23);
    for (x, want) in inputs.iter().zip(&seq) {
        assert_eq!(&b.step(x), want);
    }
    // Same agreement for a sharded engine built through the unified API.
    let blocks: Vec<Matrix> = inputs.iter().map(|x| Matrix::from_rows(&[x.as_slice()])).collect();
    let mut da = EngineBuilder::new(params).sharded(4).seed(23).build();
    let dseq = da.run_sequence_batch(&blocks);
    let mut db = EngineBuilder::new(params).sharded(4).seed(23).build();
    for (x, want) in inputs.iter().zip(&dseq) {
        assert_eq!(&db.step(x), want.row(0));
    }
}

/// Profiles from the functional model cover every kernel after a full
/// episode — the instrumentation the Fig. 4 harness depends on.
#[test]
fn functional_profile_covers_every_kernel() {
    let params = DncParams::new(64, 16, 2).with_io(8, 8);
    let mut dnc = Dnc::new(params, 31);
    for t in 0..8 {
        let x: Vec<f32> = (0..8).map(|i| ((t + i) as f32 * 0.4).sin()).collect();
        dnc.step(&x);
    }
    let profile = dnc.profile();
    for k in hima::dnc::KernelId::ALL {
        assert!(profile.calls(k) > 0, "{k:?} never profiled");
    }
}
