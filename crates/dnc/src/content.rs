//! Content-based addressing — the CW/CR kernels of Fig. 2.
//!
//! `C(M, k, β)[i] = softmax_i(β · cos(M[i,·], k))`: memory rows and the key
//! are L2-normalized, their inner products scaled by the strength `β`, and a
//! softmax turns the similarities into a weighting over slots. The softmax
//! can optionally run through the PLA+LUT hardware approximation (§5.2).

use hima_tensor::softmax::{softmax, PlaSoftmax};
use hima_tensor::vector::{dot, norm};
use hima_tensor::Matrix;

/// Guard added to norms so zero rows/keys produce zero similarity instead of
/// NaN (same role as the ε in Graves et al.'s cosine distance).
pub const NORM_EPSILON: f32 = 1e-6;

/// Content weighting `C(M, k, β)` over the rows of `memory`.
///
/// `approx` selects the exact or PLA+LUT softmax.
///
/// # Panics
///
/// Panics if `key.len() != memory.cols()`.
///
/// # Example
///
/// ```
/// use hima_tensor::Matrix;
/// use hima_dnc::content::content_weighting;
///
/// let m = Matrix::from_rows(&[&[1.0, 0.0][..], &[0.0, 1.0][..]]);
/// let w = content_weighting(&m, &[1.0, 0.0], 10.0, None);
/// assert!(w[0] > 0.99, "strong beta concentrates on the matching row");
/// ```
pub fn content_weighting(
    memory: &Matrix,
    key: &[f32],
    beta: f32,
    approx: Option<&PlaSoftmax>,
) -> Vec<f32> {
    let sims = similarities(memory, key);
    let scaled: Vec<f32> = sims.iter().map(|s| s * beta).collect();
    match approx {
        Some(p) => p.softmax(&scaled),
        None => softmax(&scaled),
    }
}

/// Cosine similarities between each memory row and `key` (the normalize +
/// similarity steps, before the softmax).
///
/// # Panics
///
/// Panics if `key.len() != memory.cols()`.
pub fn similarities(memory: &Matrix, key: &[f32]) -> Vec<f32> {
    assert_eq!(key.len(), memory.cols(), "key width must match memory word size");
    let key_norm = norm(key);
    (0..memory.rows())
        .map(|i| {
            let row = memory.row(i);
            dot(row, key) / (norm(row) * key_norm + NORM_EPSILON)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_rows() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, 0.0, 0.0][..],
            &[0.0, 1.0, 0.0][..],
            &[0.0, 0.0, 1.0][..],
        ])
    }

    #[test]
    fn matching_row_wins() {
        let w = content_weighting(&unit_rows(), &[0.0, 1.0, 0.0], 20.0, None);
        assert!(w[1] > 0.99);
        assert!(w[0] < 0.01 && w[2] < 0.01);
    }

    #[test]
    fn weighting_is_distribution() {
        let m = Matrix::from_fn(8, 4, |i, j| ((i * 3 + j) as f32 * 0.7).sin());
        let w = content_weighting(&m, &[0.3, -0.2, 0.8, 0.1], 2.0, None);
        assert!((w.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(w.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn beta_one_is_diffuse_beta_large_is_sharp() {
        let m = unit_rows();
        let diffuse = content_weighting(&m, &[1.0, 0.2, 0.1], 1.0, None);
        let sharp = content_weighting(&m, &[1.0, 0.2, 0.1], 50.0, None);
        assert!(sharp[0] > diffuse[0]);
    }

    #[test]
    fn zero_key_gives_uniform_weighting() {
        let w = content_weighting(&unit_rows(), &[0.0, 0.0, 0.0], 5.0, None);
        for &x in &w {
            assert!((x - 1.0 / 3.0).abs() < 1e-5);
        }
    }

    #[test]
    fn zero_memory_row_is_not_nan() {
        let m = Matrix::from_rows(&[&[0.0, 0.0][..], &[1.0, 0.0][..]]);
        let w = content_weighting(&m, &[1.0, 0.0], 3.0, None);
        assert!(w.iter().all(|x| x.is_finite()));
        assert!(w[1] > w[0]);
    }

    #[test]
    fn approx_softmax_close_to_exact() {
        let m = Matrix::from_fn(16, 8, |i, j| ((i * 5 + j * 3) as f32 * 0.31).cos());
        let key: Vec<f32> = (0..8).map(|j| (j as f32 * 0.5).sin()).collect();
        let exact = content_weighting(&m, &key, 3.0, None);
        let pla = PlaSoftmax::default();
        let approx = content_weighting(&m, &key, 3.0, Some(&pla));
        for (e, a) in exact.iter().zip(&approx) {
            assert!((e - a).abs() < 0.02);
        }
    }

    #[test]
    fn similarities_bounded_by_one() {
        let m = Matrix::from_fn(6, 5, |i, j| ((i + j) as f32).sin());
        let key: Vec<f32> = (0..5).map(|j| (j as f32).cos()).collect();
        for s in similarities(&m, &key) {
            assert!(s.abs() <= 1.0 + 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "key width must match")]
    fn rejects_mismatched_key() {
        similarities(&unit_rows(), &[1.0]);
    }
}
