//! Retention and usage — the first two HW kernels of Fig. 2.
//!
//! The retention vector `ψ` determines how much each slot survives the free
//! gates: `ψ[i] = Π_r (1 − g_f^r · w_r^{t−1}[i, r])`. The usage vector then
//! tracks which slots hold live data:
//! `u_t = (u_{t−1} + w_w^{t−1} − u_{t−1} ∘ w_w^{t−1}) ∘ ψ`.
//! Both stay inside `[0, 1]` by construction — a property the tests and the
//! crate's proptests pin down.

/// Retention vector `ψ` from the free gates and the previous read
/// weightings (`read_weights[r][i]` = head `r`, slot `i`).
///
/// # Panics
///
/// Panics if `free_gates.len() != read_weights.len()` or heads disagree on
/// slot count.
pub fn retention(free_gates: &[f32], read_weights: &[Vec<f32>]) -> Vec<f32> {
    let n = read_weights.first().map_or(0, Vec::len);
    let mut psi = vec![0.0f32; n];
    retention_into(free_gates, read_weights, &mut psi);
    psi
}

/// Output-buffer form of [`retention`]: writes `ψ` into `psi` without
/// allocating (the steady-state path).
///
/// # Panics
///
/// Panics if `free_gates.len() != read_weights.len()`, heads disagree on
/// slot count, or `psi.len()` differs from the slot count.
pub fn retention_into(free_gates: &[f32], read_weights: &[Vec<f32>], psi: &mut [f32]) {
    assert_eq!(free_gates.len(), read_weights.len(), "one free gate per read head");
    let n = read_weights.first().map_or(0, Vec::len);
    assert_eq!(psi.len(), n, "retention output length mismatch");
    psi.fill(1.0);
    for (gate, w_r) in free_gates.iter().zip(read_weights) {
        assert_eq!(w_r.len(), n, "read heads must agree on slot count");
        for (p, &w) in psi.iter_mut().zip(w_r) {
            *p *= 1.0 - gate * w;
        }
    }
}

/// Usage update `u ← (u + w_w − u ∘ w_w) ∘ ψ`.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn update_usage(usage: &[f32], write_weighting: &[f32], psi: &[f32]) -> Vec<f32> {
    let mut out = usage.to_vec();
    update_usage_inplace(&mut out, write_weighting, psi);
    out
}

/// In-place form of [`update_usage`]: each slot's update reads only its
/// own previous value, so the steady-state path rewrites the carried
/// usage vector directly — same per-element expression, no allocation.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn update_usage_inplace(usage: &mut [f32], write_weighting: &[f32], psi: &[f32]) {
    assert_eq!(usage.len(), write_weighting.len(), "usage/write length mismatch");
    assert_eq!(usage.len(), psi.len(), "usage/retention length mismatch");
    for ((u, &w), &p) in usage.iter_mut().zip(write_weighting).zip(psi) {
        *u = (*u + w - *u * w) * p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retention_all_gates_closed_is_ones() {
        let psi = retention(&[0.0, 0.0], &[vec![0.5, 0.5], vec![0.9, 0.1]]);
        assert_eq!(psi, vec![1.0, 1.0]);
    }

    #[test]
    fn retention_open_gate_frees_read_slots() {
        let psi = retention(&[1.0], &[vec![1.0, 0.0, 0.5]]);
        assert_eq!(psi, vec![0.0, 1.0, 0.5]);
    }

    #[test]
    fn retention_multiplies_across_heads() {
        let psi = retention(&[1.0, 1.0], &[vec![0.5], vec![0.5]]);
        assert!((psi[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn retention_stays_in_unit_interval() {
        let heads = vec![vec![0.3, 0.9, 0.0], vec![0.7, 0.1, 1.0]];
        let psi = retention(&[0.8, 0.6], &heads);
        assert!(psi.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn usage_rises_with_writes() {
        let u = update_usage(&[0.0, 0.5], &[1.0, 0.5], &[1.0, 1.0]);
        assert_eq!(u[0], 1.0);
        assert!((u[1] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn usage_freed_by_retention() {
        let u = update_usage(&[0.9, 0.9], &[0.0, 0.0], &[0.0, 1.0]);
        assert_eq!(u[0], 0.0);
        assert_eq!(u[1], 0.9);
    }

    #[test]
    fn usage_bounded_in_unit_interval() {
        let u = update_usage(&[0.99, 0.01], &[0.99, 0.99], &[1.0, 1.0]);
        assert!(u.iter().all(|&x| (0.0..=1.0).contains(&x)), "{u:?}");
    }

    #[test]
    fn usage_without_write_or_free_is_unchanged() {
        let u0 = vec![0.2, 0.7, 0.4];
        let u = update_usage(&u0, &[0.0; 3], &[1.0; 3]);
        assert_eq!(u, u0);
    }

    #[test]
    fn into_forms_match_allocating_forms() {
        let heads = vec![vec![0.3, 0.9, 0.0], vec![0.7, 0.1, 1.0]];
        let gates = [0.8, 0.6];
        let mut psi = vec![f32::NAN; 3];
        retention_into(&gates, &heads, &mut psi);
        assert_eq!(psi, retention(&gates, &heads));

        let mut usage = vec![0.2, 0.7, 0.4];
        let expect = update_usage(&usage, &[0.5, 0.0, 0.25], &psi);
        update_usage_inplace(&mut usage, &[0.5, 0.0, 0.25], &psi);
        assert_eq!(usage, expect);
    }

    #[test]
    #[should_panic(expected = "one free gate per read head")]
    fn retention_validates_heads() {
        retention(&[0.5], &[vec![0.1], vec![0.2]]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn usage_validates_lengths() {
        update_usage(&[0.1], &[0.1, 0.2], &[1.0]);
    }
}
