//! `N_t`-input parallel merge sorter (PMS), after Mashimo et al. (FCCM 2017),
//! used by the controller tile for the global stage of the two-stage sort.
//!
//! The PMS consumes `N_t` pre-sorted runs held in per-bank usage buffers and
//! emits up to `N_t` sorted outputs per cycle once its pipeline is full. The
//! paper pipelines the 4-input PMS into `D_PMS = 7` stages and reports the
//! global merge of `N_t = 4` runs of `n = 256` completing in
//! `n + D_PMS = 263` cycles.

use crate::{keyed_cmp, Keyed};
use serde::{Deserialize, Serialize};

/// A `k`-input parallel merge sorter emitting `k` elements per cycle.
///
/// # Example
///
/// ```
/// use hima_sort::ParallelMergeSorter;
///
/// let pms = ParallelMergeSorter::new(4);
/// assert_eq!(pms.pipeline_depth(), 7); // paper §4.3
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelMergeSorter {
    ways: usize,
}

impl ParallelMergeSorter {
    /// Creates a `k`-way PMS.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "PMS needs at least one input run");
        Self { ways: k }
    }

    /// Number of input runs merged concurrently (= outputs per cycle).
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Pipeline depth `D_PMS = 3·log₂(k) + 1` — 7 stages for the paper's
    /// 4-input PMS.
    pub fn pipeline_depth(&self) -> u64 {
        let log = self.ways.next_power_of_two().trailing_zeros() as u64;
        3 * log + 1
    }

    /// Merges `runs` (each must be sorted ascending) into one sorted output,
    /// also returning the modeled cycle count
    /// `⌈total / k⌉ + D_PMS`.
    ///
    /// # Panics
    ///
    /// Panics if more than `ways` runs are supplied or any run is unsorted.
    pub fn merge(&self, runs: &[Vec<Keyed>]) -> (Vec<Keyed>, u64) {
        assert!(runs.len() <= self.ways, "{} runs exceed a {}-way PMS", runs.len(), self.ways);
        for (i, run) in runs.iter().enumerate() {
            assert!(crate::is_sorted(run), "input run {i} is not sorted");
        }

        // k-way merge with read pointers per bank — mirrors the rd_ptr
        // bookkeeping in Fig. 7(b).
        let total: usize = runs.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        let mut ptrs = vec![0usize; runs.len()];
        while out.len() < total {
            let mut best: Option<(usize, Keyed)> = None;
            for (bank, run) in runs.iter().enumerate() {
                if ptrs[bank] < run.len() {
                    let cand = run[ptrs[bank]];
                    match best {
                        None => best = Some((bank, cand)),
                        Some((_, cur)) if keyed_cmp(&cand, &cur) == std::cmp::Ordering::Less => {
                            best = Some((bank, cand));
                        }
                        _ => {}
                    }
                }
            }
            let (bank, v) = best.expect("non-empty banks remain while out < total");
            ptrs[bank] += 1;
            out.push(v);
        }

        let cycles = (total as u64).div_ceil(self.ways as u64) + self.pipeline_depth();
        (out, cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(keys: &[f32]) -> Vec<Keyed> {
        keys.iter().copied().enumerate().map(|(i, k)| (k, i)).collect()
    }

    #[test]
    fn paper_pipeline_depth_and_cycles() {
        let pms = ParallelMergeSorter::new(4);
        assert_eq!(pms.pipeline_depth(), 7);
        // 4 runs of 256: 1024/4 + 7 = 263 cycles (paper §4.3).
        let runs: Vec<Vec<Keyed>> = (0..4)
            .map(|b| (0..256).map(|i| ((i * 4 + b) as f32, b * 256 + i)).collect())
            .collect();
        let (out, cycles) = pms.merge(&runs);
        assert_eq!(cycles, 263);
        assert!(crate::is_sorted(&out));
        assert_eq!(out.len(), 1024);
    }

    #[test]
    fn merges_unequal_runs() {
        let pms = ParallelMergeSorter::new(3);
        let (out, _) = pms.merge(&[run(&[1.0, 4.0]), run(&[2.0]), run(&[0.0, 3.0, 5.0])]);
        let keys: Vec<f32> = out.iter().map(|p| p.0).collect();
        assert_eq!(keys, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn merges_with_empty_runs() {
        let pms = ParallelMergeSorter::new(4);
        let (out, _) = pms.merge(&[run(&[1.0]), vec![], run(&[0.5]), vec![]]);
        let keys: Vec<f32> = out.iter().map(|p| p.0).collect();
        assert_eq!(keys, vec![0.5, 1.0]);
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        let pms = ParallelMergeSorter::new(2);
        let (out, cycles) = pms.merge(&[]);
        assert!(out.is_empty());
        assert_eq!(cycles, pms.pipeline_depth());
    }

    #[test]
    fn ties_resolve_by_index() {
        let pms = ParallelMergeSorter::new(2);
        let (out, _) = pms.merge(&[vec![(1.0, 5)], vec![(1.0, 2)]]);
        assert_eq!(out, vec![(1.0, 2), (1.0, 5)]);
    }

    #[test]
    #[should_panic(expected = "is not sorted")]
    fn rejects_unsorted_run() {
        ParallelMergeSorter::new(2).merge(&[run(&[2.0, 1.0])]);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn rejects_too_many_runs() {
        ParallelMergeSorter::new(1).merge(&[run(&[1.0]), run(&[2.0])]);
    }

    #[test]
    fn depth_scales_with_ways() {
        assert_eq!(ParallelMergeSorter::new(2).pipeline_depth(), 4);
        assert_eq!(ParallelMergeSorter::new(8).pipeline_depth(), 10);
        assert_eq!(ParallelMergeSorter::new(16).pipeline_depth(), 13);
    }
}
