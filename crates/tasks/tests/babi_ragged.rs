//! bAbI-format round trip on genuinely **variable-length** stories.
//!
//! The unit tests in `babi_format` exercise a fixed two-story sample;
//! real bAbI files interleave stories of very different lengths. This
//! integration target builds a synthetic corpus whose stories vary in
//! statement count, question count and question placement, and pins:
//!
//! * render → parse is the identity on every story shape,
//! * encoding yields a **ragged** episode batch (the real-data shape the
//!   masked batched path exists for) with aligned answers,
//! * the ragged encoded episodes run through the padded-and-masked
//!   batched feature path bit-identically to per-episode sequential
//!   stepping — bAbI traffic is first-class batched traffic.

use hima_dnc::{DncParams, EngineBuilder};
use hima_tasks::babi_format::{
    encode_story, parse_stories, render_story, BabiLine, Story, Vocabulary,
};
use hima_tasks::episode::uniform_len;
use hima_tasks::train::{episode_features, sequential_episode_features};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ACTORS: [&str; 5] = ["mary", "john", "daniel", "sandra", "fred"];
const PLACES: [&str; 6] = ["bathroom", "hallway", "kitchen", "garden", "office", "bedroom"];

/// One variable-length story: `facts` movement statements followed by
/// `questions` where-is questions, each supported by the most recent
/// fact about the probed actor.
fn story(rng: &mut StdRng, facts: usize, questions: usize) -> Story {
    let mut lines = Vec::new();
    let mut last_place: Vec<Option<(usize, &str)>> = vec![None; ACTORS.len()];
    for _ in 0..facts {
        let a = rng.gen_range(0..ACTORS.len());
        let p = PLACES[rng.gen_range(0..PLACES.len())];
        last_place[a] = Some((lines.len() + 1, p));
        lines.push(BabiLine::Statement {
            words: vec![ACTORS[a].to_string(), "moved".into(), "to".into(), "the".into(), p.into()],
        });
    }
    for _ in 0..questions {
        // Probe an actor that has a stored fact.
        let known: Vec<usize> =
            (0..ACTORS.len()).filter(|&a| last_place[a].is_some()).collect();
        let a = known[rng.gen_range(0..known.len())];
        let (support, place) = last_place[a].expect("picked from known actors");
        lines.push(BabiLine::Question {
            words: vec!["where".into(), "is".into(), ACTORS[a].to_string()],
            answer: place.to_string(),
            supports: vec![support],
        });
    }
    Story { lines }
}

/// A corpus whose story lengths spread widely (2..=12 facts, 1..=3
/// questions) — the ragged workload under test.
fn ragged_corpus(seed: u64, stories: usize) -> Vec<Story> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..stories)
        .map(|_| {
            let facts = rng.gen_range(2..13);
            let questions = rng.gen_range(1..4);
            story(&mut rng, facts, questions)
        })
        .collect()
}

#[test]
fn variable_length_stories_round_trip_through_the_text_format() {
    let stories = ragged_corpus(7, 12);
    let lens: Vec<usize> = stories.iter().map(|s| s.lines.len()).collect();
    assert!(lens.iter().any(|&l| l != lens[0]), "corpus must vary in length: {lens:?}");
    // Every story shape survives render → parse, jointly and alone.
    let rendered: String = stories.iter().map(render_story).collect();
    let reparsed = parse_stories(&rendered).expect("rendered corpus parses");
    assert_eq!(stories, reparsed);
    for s in &stories {
        assert_eq!(parse_stories(&render_story(s)).unwrap(), vec![s.clone()]);
    }
}

#[test]
fn encoded_ragged_stories_keep_queries_and_answers_aligned() {
    let stories = ragged_corpus(21, 10);
    let vocab = Vocabulary::build(&stories);
    let encoded: Vec<_> = stories.iter().map(|s| encode_story(s, &vocab)).collect();
    let episodes: Vec<_> = encoded.iter().map(|e| e.episode.clone()).collect();
    assert_eq!(uniform_len(&episodes), None, "encoded corpus must be ragged");
    for (s, e) in stories.iter().zip(&encoded) {
        assert_eq!(e.episode.len(), s.lines.len(), "one step per line");
        assert_eq!(e.episode.query_steps.len(), s.question_count());
        assert_eq!(e.answers.len(), e.episode.query_steps.len());
        for (&q, &ans) in e.episode.query_steps.iter().zip(&e.answers) {
            assert_eq!(e.episode.inputs[q][vocab.len() + 1], 1.0, "query flag");
            assert!(ans < vocab.len(), "answer token in vocabulary");
        }
    }
}

#[test]
fn ragged_babi_episodes_run_masked_batched_bit_identically_to_sequential() {
    let stories = ragged_corpus(33, 8);
    let vocab = Vocabulary::build(&stories);
    let episodes: Vec<_> =
        stories.iter().map(|s| encode_story(s, &vocab).episode).collect();
    assert_eq!(uniform_len(&episodes), None, "workload must be ragged");
    let width = episodes[0].width();
    let params = DncParams::new(32, 8, 2).with_hidden(16).with_io(width, width);
    for builder in [
        EngineBuilder::new(params).seed(9),
        EngineBuilder::new(params).sharded(4).seed(9),
    ] {
        let batched = episode_features(&builder, &episodes);
        let mut single = builder.clone().lanes(1).build();
        let sequential = sequential_episode_features(&mut *single, &episodes);
        assert_eq!(batched, sequential, "masked batched ≡ sequential on bAbI episodes");
    }
}
