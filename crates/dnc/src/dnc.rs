//! The complete DNC: LSTM controller + memory unit + output projection.
//!
//! One [`Dnc::step`] performs: controller inference on the input
//! concatenated with the previous read vectors, interface-vector projection
//! and parsing, one memory-unit soft write + soft read, and the output
//! projection over `[h_t ; v_r]`.

use crate::interface::InterfaceVector;
use crate::lstm::Lstm;
use crate::memory::{MemoryConfig, MemoryUnit, ReadResult};
use crate::profile::{KernelId, KernelProfile};
use crate::DncParams;
use hima_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a scaled-uniform projection matrix; shared with the distributed
/// model so `DncD` with one shard is weight-identical to `Dnc`.
pub(crate) fn projection(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let scale = 1.0 / (cols as f32).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-scale..scale))
}

/// Seed offsets so each weight block draws an independent stream.
pub(crate) const SEED_LSTM: u64 = 0x11;
pub(crate) const SEED_INTERFACE: u64 = 0x22;
pub(crate) const SEED_OUTPUT: u64 = 0x33;

/// A complete Differentiable Neural Computer.
///
/// # Example
///
/// ```
/// use hima_dnc::{Dnc, DncParams};
///
/// let mut dnc = Dnc::new(DncParams::new(16, 4, 1).with_io(3, 3), 7);
/// let y1 = dnc.step(&[1.0, 0.0, 0.0]);
/// let y2 = dnc.step(&[0.0, 1.0, 0.0]);
/// assert_eq!(y1.len(), 3);
/// assert_ne!(y1, y2, "memory state makes steps differ");
/// ```
#[derive(Debug, Clone)]
pub struct Dnc {
    params: DncParams,
    controller: Lstm,
    interface_proj: Matrix,
    output_proj: Matrix,
    memory: MemoryUnit,
    last_read: Vec<f32>,
    last_hidden: Vec<f32>,
    profile: KernelProfile,
}

impl Dnc {
    /// Creates a DNC with procedurally initialized weights and an exact
    /// (centralized-sorter, exact-softmax) memory unit.
    pub fn new(params: DncParams, seed: u64) -> Self {
        let mem_cfg = MemoryConfig::new(params.memory_size, params.word_size, params.read_heads);
        Self::with_memory_config(params, mem_cfg, seed)
    }

    /// Creates a DNC with a custom memory-unit configuration (sorter model,
    /// skimming, softmax approximation).
    ///
    /// # Panics
    ///
    /// Panics if `mem_cfg` geometry disagrees with `params`.
    pub fn with_memory_config(params: DncParams, mem_cfg: MemoryConfig, seed: u64) -> Self {
        assert_eq!(mem_cfg.memory_size, params.memory_size, "memory geometry mismatch");
        assert_eq!(mem_cfg.word_size, params.word_size, "word size mismatch");
        assert_eq!(mem_cfg.read_heads, params.read_heads, "read head mismatch");

        let read_width = params.read_heads * params.word_size;
        let controller = Lstm::new(params.input_size + read_width, params.hidden_size, seed ^ SEED_LSTM);
        // The interface vector projects from [h_t ; x_t]: the input skip
        // connection keeps write/read keys directly conditioned on the
        // current token (Graves et al.'s controller emits the interface
        // from all layer outputs, input included).
        let interface_proj = projection(
            params.interface_size(),
            params.hidden_size + params.input_size,
            seed ^ SEED_INTERFACE,
        );
        let output_proj =
            projection(params.output_size, params.hidden_size + read_width, seed ^ SEED_OUTPUT);
        Self {
            params,
            controller,
            interface_proj,
            output_proj,
            memory: MemoryUnit::new(mem_cfg),
            last_read: vec![0.0; read_width],
            last_hidden: vec![0.0; params.hidden_size],
            profile: KernelProfile::new(),
        }
    }

    /// The model hyper-parameters.
    pub fn params(&self) -> &DncParams {
        &self.params
    }

    /// The memory unit (for state inspection).
    pub fn memory(&self) -> &MemoryUnit {
        &self.memory
    }

    /// The read vectors fed to the controller at the next step.
    pub fn last_read(&self) -> &[f32] {
        &self.last_read
    }

    /// The feature vector `[h_t ; v_r]` the output projection consumes —
    /// also the features a trained readout regresses on.
    pub fn last_features(&self) -> Vec<f32> {
        let mut f = Vec::with_capacity(self.last_hidden.len() + self.last_read.len());
        f.extend_from_slice(&self.last_hidden);
        f.extend_from_slice(&self.last_read);
        f
    }

    /// Merged kernel profile (controller + memory unit).
    pub fn profile(&self) -> KernelProfile {
        let mut p = self.profile.clone();
        p.merge(self.memory.profile());
        p
    }

    /// Clears all profiling counters.
    pub fn reset_profile(&mut self) {
        self.profile.reset();
        self.memory.reset_profile();
    }

    /// Switches wall-clock kernel sampling on or off for controller and
    /// memory unit alike.
    pub fn set_profiling(&mut self, on: bool) {
        self.profile.set_enabled(on);
        self.memory.set_profiling(on);
    }

    /// Resets memory and recurrent state (weights unchanged).
    pub fn reset(&mut self) {
        self.controller.reset();
        self.memory.reset();
        self.last_read = vec![0.0; self.params.read_heads * self.params.word_size];
        self.last_hidden = vec![0.0; self.params.hidden_size];
    }

    /// Runs one time step and returns the output vector.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != params.input_size`.
    pub fn step(&mut self, input: &[f32]) -> Vec<f32> {
        let (_, y) = self.step_detailed(input);
        y
    }

    /// Runs one time step, returning the memory read result and the output.
    pub fn step_detailed(&mut self, input: &[f32]) -> (ReadResult, Vec<f32>) {
        assert_eq!(input.len(), self.params.input_size, "input width mismatch");

        // Controller on [x_t ; v_r^{t-1}].
        let mut ctrl_in = Vec::with_capacity(input.len() + self.last_read.len());
        ctrl_in.extend_from_slice(input);
        ctrl_in.extend_from_slice(&self.last_read);
        let controller = &mut self.controller;
        let hidden = self.profile.time(KernelId::Lstm, || controller.step(&ctrl_in));

        // Interface projection + parse (input skip connection).
        let mut iface_in = Vec::with_capacity(hidden.len() + input.len());
        iface_in.extend_from_slice(&hidden);
        iface_in.extend_from_slice(input);
        let raw_iface = self.interface_proj.matvec(&iface_in);
        let iv = InterfaceVector::parse(&raw_iface, self.params.word_size, self.params.read_heads);

        // Memory unit step.
        let read = self.memory.step(&iv);
        self.last_read = read.flattened();

        // Output projection over [h ; v_r].
        let mut out_in = Vec::with_capacity(hidden.len() + self.last_read.len());
        out_in.extend_from_slice(&hidden);
        out_in.extend_from_slice(&self.last_read);
        let y = self.output_proj.matvec(&out_in);
        self.last_hidden = hidden;

        (read, y)
    }

    /// Runs a whole input sequence, returning one output per step.
    pub fn run_sequence(&mut self, inputs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        inputs.iter().map(|x| self.step(x)).collect()
    }

    /// Creates a [`crate::BatchDnc`] of `batch` blank lanes sharing this
    /// model's weights and memory configuration.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    #[deprecated(note = "compose with `EngineBuilder::new(params).lanes(batch).seed(seed).build()`")]
    pub fn batched(&self, batch: usize) -> crate::BatchDnc {
        self.batched_with(batch, crate::Datapath::F32)
    }

    /// Builder plumbing: `batch` blank lanes sharing this model's weights,
    /// with the lane memory units on the given datapath.
    pub(crate) fn batched_with(&self, batch: usize, datapath: crate::Datapath) -> crate::BatchDnc {
        crate::BatchDnc::from_parts(
            self.params,
            self.controller.clone(),
            self.interface_proj.clone(),
            self.output_proj.clone(),
            *self.memory.config(),
            batch,
            datapath,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::SkimRate;
    use crate::memory::SorterKind;

    fn params() -> DncParams {
        DncParams::new(16, 4, 2).with_hidden(24).with_io(5, 6)
    }

    #[test]
    fn output_width_matches_params() {
        let mut dnc = Dnc::new(params(), 3);
        assert_eq!(dnc.step(&[0.1; 5]).len(), 6);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let mut a = Dnc::new(params(), 11);
        let mut b = Dnc::new(params(), 11);
        for t in 0..5 {
            let x: Vec<f32> = (0..5).map(|i| ((t * 5 + i) as f32 * 0.3).sin()).collect();
            assert_eq!(a.step(&x), b.step(&x), "t={t}");
        }
    }

    #[test]
    fn different_seeds_give_different_models() {
        let mut a = Dnc::new(params(), 1);
        let mut b = Dnc::new(params(), 2);
        assert_ne!(a.step(&[0.5; 5]), b.step(&[0.5; 5]));
    }

    #[test]
    fn reset_restores_initial_behaviour() {
        let mut dnc = Dnc::new(params(), 5);
        let first = dnc.step(&[1.0, 0.0, 0.0, 0.0, 0.0]);
        for _ in 0..10 {
            dnc.step(&[0.3; 5]);
        }
        dnc.reset();
        let again = dnc.step(&[1.0, 0.0, 0.0, 0.0, 0.0]);
        assert_eq!(first, again);
    }

    #[test]
    fn memory_state_influences_outputs() {
        let mut dnc = Dnc::new(params(), 9);
        let y1 = dnc.step(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let y2 = dnc.step(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_ne!(y1, y2, "same input must give different output once state evolves");
    }

    #[test]
    fn invariants_hold_through_a_long_run() {
        let mut dnc = Dnc::new(params(), 13);
        for t in 0..60 {
            let x: Vec<f32> = (0..5).map(|i| ((t * 3 + i * 7) as f32 * 0.11).cos()).collect();
            dnc.step(&x);
            assert!(dnc.memory().check_invariants(1e-3), "t={t}");
        }
    }

    #[test]
    fn profile_includes_controller_and_memory() {
        let mut dnc = Dnc::new(params(), 4);
        dnc.step(&[0.2; 5]);
        let p = dnc.profile();
        assert_eq!(p.calls(KernelId::Lstm), 1);
        assert!(p.calls(KernelId::MemoryRead) > 0);
    }

    #[test]
    fn run_sequence_matches_stepping() {
        let inputs: Vec<Vec<f32>> = (0..6).map(|t| vec![t as f32 * 0.1; 5]).collect();
        let mut a = Dnc::new(params(), 21);
        let seq = a.run_sequence(&inputs);
        let mut b = Dnc::new(params(), 21);
        for (x, want) in inputs.iter().zip(&seq) {
            assert_eq!(&b.step(x), want);
        }
    }

    #[test]
    fn hardware_features_are_close_to_exact() {
        let exact_params = params();
        let mut exact = Dnc::new(exact_params, 17);
        let cfg = MemoryConfig::new(16, 4, 2)
            .with_sorter(SorterKind::TwoStage { tiles: 4 })
            .with_skim(SkimRate::new(0.2))
            .with_approx_softmax(true);
        let mut hw = Dnc::with_memory_config(exact_params, cfg, 17);
        let mut max_err = 0.0f32;
        for t in 0..20 {
            let x: Vec<f32> = (0..5).map(|i| ((t * 7 + i) as f32 * 0.23).sin()).collect();
            let ye = exact.step(&x);
            let yh = hw.step(&x);
            for (a, b) in ye.iter().zip(&yh) {
                max_err = max_err.max((a - b).abs());
            }
        }
        assert!(max_err < 0.5, "hardware approximations diverged: {max_err}");
        assert!(max_err > 0.0, "approximations should not be bit-identical");
    }
}
