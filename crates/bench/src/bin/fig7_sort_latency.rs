//! Fig. 7 / §4.3: the two-stage usage sort.
//!
//! Reproduces the worked example — `N = 1024`, `N_t = 4`, 16×16 MDSA per
//! PT, 4-input PMS at the CT — and sweeps tile counts and vector lengths.
//! Also verifies functionally that the hardware models sort correctly.

use hima::prelude::*;
use hima_bench::header;

fn main() {
    header("Fig. 7 / §4.3: two-stage usage sort (N = 1024, N_t = 4)");
    let two = TwoStageSorter::new(4, 1024);
    let mdsa = two.local_sorter();
    let pms = two.global_merger();
    println!("stage 1 (per-PT MDSA, {}x{} RF, DPBS depth {}):", mdsa.p(), mdsa.p(), mdsa.dpbs().pipeline_depth());
    println!(
        "  {} phases x ({} + {}) = {} cycles   (paper: 6 x (16 + 5) = 126)",
        mdsa.modeled_phases(),
        mdsa.p(),
        mdsa.dpbs().pipeline_depth(),
        two.stage1_cycles()
    );
    println!("stage 2 ({}-input PMS, depth {}):", pms.ways(), pms.pipeline_depth());
    println!(
        "  n + D_PMS = {} + {} = {} cycles        (paper: 256 + 7 = 263)",
        two.local_len(),
        pms.pipeline_depth(),
        two.stage2_cycles()
    );
    println!(
        "total: {} cycles vs centralized N log2 N = {} cycles ({:.1}x reduction)",
        two.latency_cycles(1024),
        CentralizedMergeSorter.latency_cycles(1024),
        CentralizedMergeSorter.latency_cycles(1024) as f64 / two.latency_cycles(1024) as f64
    );

    header("Sweep: sort latency (cycles) vs N and N_t");
    print!("{:<10}", "N \\ N_t");
    for nt in [2usize, 4, 8, 16, 32] {
        print!(" {:>9}", nt);
    }
    println!(" {:>12}", "centralized");
    for log_n in [8u32, 9, 10, 11, 12] {
        let n = 1usize << log_n;
        print!("{:<10}", n);
        for nt in [2usize, 4, 8, 16, 32] {
            print!(" {:>9}", TwoStageSorter::new(nt, n).latency_cycles(n));
        }
        println!(" {:>12}", CentralizedMergeSorter.latency_cycles(n));
    }

    header("Functional check: hardware sorters vs reference sort");
    let usage: Vec<f32> = (0..1024).map(|i| ((i * 193 + 71) % 1024) as f32 / 1024.0).collect();
    let reference: Vec<usize> = {
        let mut idx: Vec<usize> = (0..usage.len()).collect();
        idx.sort_by(|&a, &b| usage[a].total_cmp(&usage[b]).then(a.cmp(&b)));
        idx
    };
    for nt in [2usize, 4, 16] {
        let got = TwoStageSorter::new(nt, 1024).argsort(&usage);
        assert_eq!(got, reference, "two-stage sort with {nt} tiles disagrees");
        println!("two-stage (N_t = {nt:>2}) matches the reference permutation");
    }
    let got = CentralizedMergeSorter.argsort(&usage);
    assert_eq!(got, reference);
    println!("centralized merge sort matches the reference permutation");
}
