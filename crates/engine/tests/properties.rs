//! Property-based tests for the architectural cycle model: monotonicity
//! and consistency across the configuration space.

use hima_engine::{Engine, EngineConfig, FeatureLevel, GateTrace, Topology};
use proptest::prelude::*;

fn pow2(lo: u32, hi: u32) -> impl Strategy<Value = usize> {
    (lo..=hi).prop_map(|e| 1usize << e)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cycles_increase_with_memory_size(nt in pow2(2, 5), log_n in 8u32..11) {
        let n = 1usize << log_n;
        let small = Engine::new(EngineConfig::hima_dnc(nt).with_geometry(n, 64, 4)).step_cycles();
        let large = Engine::new(EngineConfig::hima_dnc(nt).with_geometry(2 * n, 64, 4)).step_cycles();
        prop_assert!(large > small, "N={} -> {}, 2N -> {}", n, small, large);
    }

    #[test]
    fn dncd_always_beats_dnc(nt in pow2(2, 6)) {
        let dnc = Engine::new(EngineConfig::hima_dnc(nt)).step_cycles();
        let dncd = Engine::new(EngineConfig::hima_dncd(nt)).step_cycles();
        prop_assert!(dncd < dnc, "N_t={}: DNC-D {} !< DNC {}", nt, dncd, dnc);
    }

    #[test]
    fn ablation_monotone_at_any_tile_count(nt in pow2(2, 5)) {
        let mut prev = u64::MAX;
        for level in FeatureLevel::ALL {
            let c = Engine::new(EngineConfig::at_level(level, nt)).step_cycles();
            prop_assert!(c <= prev, "N_t={}: {:?} regressed ({} > {})", nt, level, c, prev);
            prev = c;
        }
    }

    #[test]
    fn hima_noc_never_slower_than_htree(nt in pow2(1, 6)) {
        let htree = Engine::new(EngineConfig::hima_dnc(nt).with_topology(Topology::HTree));
        let hima = Engine::new(EngineConfig::hima_dnc(nt));
        prop_assert!(
            hima.step_report().noc_cycles() <= htree.step_report().noc_cycles(),
            "N_t={}", nt
        );
    }

    #[test]
    fn wider_pe_arrays_never_slow_down(nt in pow2(2, 5), log_pe in 7u32..11) {
        let mut narrow = EngineConfig::hima_dnc(nt);
        narrow.pe_parallelism = 1 << log_pe;
        let mut wide = narrow;
        wide.pe_parallelism = 1 << (log_pe + 1);
        prop_assert!(Engine::new(wide).step_cycles() <= Engine::new(narrow).step_cycles());
    }

    #[test]
    fn more_read_heads_cost_more(nt in pow2(2, 4), r in 1usize..6) {
        let few = Engine::new(EngineConfig::hima_dnc(nt).with_geometry(1024, 64, r)).step_cycles();
        let more = Engine::new(EngineConfig::hima_dnc(nt).with_geometry(1024, 64, r + 1)).step_cycles();
        prop_assert!(more > few, "R={} -> {}, R+1 -> {}", r, few, more);
    }

    #[test]
    fn trace_refinement_bounded_by_static(
        nt in pow2(2, 4),
        wg in 0.0f64..1.0,
        density in 0.0f64..1.0,
        fg in 0.0f64..1.0,
    ) {
        let cfg = EngineConfig::hima_dnc(nt);
        let static_total = Engine::new(cfg).step_report().total_cycles();
        let trace = GateTrace {
            write_gate: wg,
            allocation_gate: 0.5,
            free_gate: fg,
            write_density: density,
            steps: 1,
        };
        let traced = hima_engine::trace_report(&cfg, &trace).total_cycles();
        prop_assert!(traced <= static_total);
        // And never collapses below the NoC + overhead floor.
        prop_assert!(traced * 4 > static_total, "trace cannot erase most of the step");
    }

    #[test]
    fn activity_scales_with_geometry(nt in pow2(2, 4)) {
        let small = Engine::new(EngineConfig::hima_dnc(nt).with_geometry(512, 32, 2))
            .step_report()
            .activity;
        let large = Engine::new(EngineConfig::hima_dnc(nt).with_geometry(1024, 64, 4))
            .step_report()
            .activity;
        prop_assert!(large.macs > small.macs);
        prop_assert!(large.sram_words > small.sram_words);
    }
}
