//! Activation functions used by the DNC controller and interface vector.
//!
//! The DNC interface vector (Graves et al. 2016, and Fig. 2 of the HiMA
//! paper) constrains its fields with three activations: `sigmoid` for gates,
//! `oneplus` for strengths (range `[1, ∞)`), and `tanh` inside the LSTM.

/// Logistic sigmoid `σ(x) = 1 / (1 + e^{-x})`.
///
/// Numerically stable for large `|x|`.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

/// `oneplus(x) = 1 + log(1 + e^x)`, the softplus shifted to `[1, ∞)`.
///
/// DNC uses this for read/write strengths `β ≥ 1`.
pub fn oneplus(x: f32) -> f32 {
    1.0 + softplus(x)
}

/// Softplus `log(1 + e^x)`, numerically stable.
pub fn softplus(x: f32) -> f32 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        0.0
    } else {
        x.exp().ln_1p()
    }
}

/// Hyperbolic tangent (thin wrapper for symmetry with the other activations).
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

/// Applies `sigmoid` to every element.
pub fn sigmoid_vec(xs: &[f32]) -> Vec<f32> {
    xs.iter().copied().map(sigmoid).collect()
}

/// Applies `tanh` to every element.
pub fn tanh_vec(xs: &[f32]) -> Vec<f32> {
    xs.iter().copied().map(tanh).collect()
}

/// Applies `sigmoid` to a whole row-block in place — the batched gate
/// activation used by the data-parallel LSTM path (one call per `B × H`
/// gate block instead of `B·H` scalar calls at scattered sites).
pub fn sigmoid_block(block: &mut crate::Matrix) {
    block.map_inplace(sigmoid);
}

/// Applies `tanh` to a whole row-block in place (batched cell/output
/// activation).
pub fn tanh_block(block: &mut crate::Matrix) {
    block.map_inplace(tanh);
}

/// Masked form of [`sigmoid_block`]: activates only the rows of active
/// lanes, skipping — not zeroing — the rows of lanes whose sequences have
/// ended. Active rows are bit-identical to the unmasked form.
///
/// # Panics
///
/// Panics if `mask.lanes() != block.rows()`.
pub fn sigmoid_block_masked(block: &mut crate::Matrix, mask: &crate::LaneMask) {
    map_rows_masked(block, mask, sigmoid);
}

/// Masked form of [`tanh_block`] (see [`sigmoid_block_masked`]).
///
/// # Panics
///
/// Panics if `mask.lanes() != block.rows()`.
pub fn tanh_block_masked(block: &mut crate::Matrix, mask: &crate::LaneMask) {
    map_rows_masked(block, mask, tanh);
}

fn map_rows_masked(block: &mut crate::Matrix, mask: &crate::LaneMask, f: impl Fn(f32) -> f32) {
    assert_eq!(mask.lanes(), block.rows(), "lane mask size mismatch");
    for b in mask.active_lanes() {
        for x in block.row_mut(b) {
            *x = f(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_midpoint_and_limits() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(100.0) > 0.999_999);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn sigmoid_is_monotone() {
        let xs = [-5.0, -1.0, 0.0, 1.0, 5.0];
        for w in xs.windows(2) {
            assert!(sigmoid(w[0]) < sigmoid(w[1]));
        }
    }

    #[test]
    fn oneplus_lower_bound() {
        for x in [-50.0, -1.0, 0.0, 1.0, 50.0] {
            assert!(oneplus(x) >= 1.0, "oneplus({x}) < 1");
        }
        assert!((oneplus(0.0) - (1.0 + 2f32.ln())).abs() < 1e-6);
    }

    #[test]
    fn softplus_stable_extremes() {
        assert_eq!(softplus(100.0), 100.0);
        assert_eq!(softplus(-100.0), 0.0);
        assert!((softplus(0.0) - 2f32.ln()).abs() < 1e-6);
    }

    #[test]
    fn vector_variants_match_scalar() {
        let xs = [-1.0, 0.0, 2.0];
        assert_eq!(sigmoid_vec(&xs), xs.iter().copied().map(sigmoid).collect::<Vec<_>>());
        assert_eq!(tanh_vec(&xs), xs.iter().copied().map(tanh).collect::<Vec<_>>());
    }

    #[test]
    fn masked_blocks_skip_inactive_rows_bit_exactly() {
        let src = crate::Matrix::from_fn(3, 4, |i, j| (i as f32 - 1.0) * 0.7 + j as f32 * 0.3);
        let mask = crate::LaneMask::from(vec![true, false, true]);

        let mut masked = src.clone();
        sigmoid_block_masked(&mut masked, &mask);
        let mut full = src.clone();
        sigmoid_block(&mut full);
        assert_eq!(masked.row(0), full.row(0), "active rows identical to unmasked");
        assert_eq!(masked.row(1), src.row(1), "inactive row untouched");
        assert_eq!(masked.row(2), full.row(2));

        let mut masked = src.clone();
        tanh_block_masked(&mut masked, &mask);
        let mut full = src.clone();
        tanh_block(&mut full);
        assert_eq!(masked.row(0), full.row(0));
        assert_eq!(masked.row(1), src.row(1));
        assert_eq!(masked.row(2), full.row(2));
    }

    #[test]
    #[should_panic(expected = "lane mask size mismatch")]
    fn masked_block_rejects_wrong_mask_length() {
        sigmoid_block_masked(&mut crate::Matrix::zeros(2, 2), &crate::LaneMask::full(3));
    }
}
