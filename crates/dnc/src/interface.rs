//! The DNC interface vector: layout, activations and parsing.
//!
//! The controller emits a raw vector `ξ_t` of width `W·R + 3W + 5R + 3`
//! which the memory unit splits into keys, strengths, gates and read modes,
//! applying the constraining activations from Graves et al. 2016:
//! `oneplus` for strengths, `sigmoid` for gates and the erase vector, and a
//! per-head `softmax` for the three read modes (backward, content, forward).

use hima_tensor::activation::{oneplus, sigmoid};
use serde::{Deserialize, Serialize};

/// Parsed, activation-constrained interface vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterfaceVector {
    /// Read keys `k_r^i ∈ R^W`, one per head.
    pub read_keys: Vec<Vec<f32>>,
    /// Read strengths `β_r^i ≥ 1`.
    pub read_strengths: Vec<f32>,
    /// Write key `k_w ∈ R^W`.
    pub write_key: Vec<f32>,
    /// Write strength `β_w ≥ 1`.
    pub write_strength: f32,
    /// Erase vector `e ∈ [0,1]^W`.
    pub erase: Vec<f32>,
    /// Write vector `v ∈ R^W`.
    pub write: Vec<f32>,
    /// Free gates `g_f^i ∈ [0,1]`, one per head.
    pub free_gates: Vec<f32>,
    /// Allocation gate `g_a ∈ [0,1]`.
    pub allocation_gate: f32,
    /// Write gate `g_w ∈ [0,1]`.
    pub write_gate: f32,
    /// Read modes `π^i ∈ Δ³` (backward, content, forward), one per head.
    pub read_modes: Vec<[f32; 3]>,
}

impl InterfaceVector {
    /// A zero-filled interface vector with the `W`/`R` field shapes — the
    /// reusable parse target of [`InterfaceVector::parse_into`].
    pub fn zeroed(word_size: usize, read_heads: usize) -> Self {
        Self {
            read_keys: vec![vec![0.0; word_size]; read_heads],
            read_strengths: vec![0.0; read_heads],
            write_key: vec![0.0; word_size],
            write_strength: 0.0,
            erase: vec![0.0; word_size],
            write: vec![0.0; word_size],
            free_gates: vec![0.0; read_heads],
            allocation_gate: 0.0,
            write_gate: 0.0,
            read_modes: vec![[0.0; 3]; read_heads],
        }
    }

    /// Parses a raw controller emission into a constrained interface
    /// vector.
    ///
    /// # Panics
    ///
    /// Panics if `raw.len() != W·R + 3W + 5R + 3`.
    pub fn parse(raw: &[f32], word_size: usize, read_heads: usize) -> Self {
        let mut iv = Self::zeroed(word_size, read_heads);
        iv.parse_into(raw, word_size, read_heads);
        iv
    }

    /// Re-parses a raw controller emission into this vector **in place**
    /// — the allocation-free form of [`InterfaceVector::parse`] used by
    /// the steady-state stepping path, where every lane owns one parse
    /// scratch reused across steps. If the field shapes disagree with
    /// `W`/`R` (first use with a different geometry), they are resized
    /// once. Produces exactly the same activations as the allocating
    /// parse.
    ///
    /// # Panics
    ///
    /// Panics if `raw.len() != W·R + 3W + 5R + 3`.
    pub fn parse_into(&mut self, raw: &[f32], word_size: usize, read_heads: usize) {
        let (w, r) = (word_size, read_heads);
        let expected = w * r + 3 * w + 5 * r + 3;
        assert_eq!(
            raw.len(),
            expected,
            "interface vector of {} does not match layout W={w}, R={r} (expect {expected})",
            raw.len()
        );
        if self.word_size() != w || self.read_heads() != r {
            *self = Self::zeroed(w, r);
        }

        let mut pos = 0;
        let mut take = |n: usize| {
            let s = &raw[pos..pos + n];
            pos += n;
            s
        };

        for key in &mut self.read_keys {
            key.copy_from_slice(take(w));
        }
        for (s, &x) in self.read_strengths.iter_mut().zip(take(r)) {
            *s = oneplus(x);
        }
        self.write_key.copy_from_slice(take(w));
        self.write_strength = oneplus(take(1)[0]);
        for (e, &x) in self.erase.iter_mut().zip(take(w)) {
            *e = sigmoid(x);
        }
        self.write.copy_from_slice(take(w));
        for (g, &x) in self.free_gates.iter_mut().zip(take(r)) {
            *g = sigmoid(x);
        }
        self.allocation_gate = sigmoid(take(1)[0]);
        self.write_gate = sigmoid(take(1)[0]);
        for modes in &mut self.read_modes {
            // The three read modes pass through a tiny softmax; a stack
            // buffer keeps the steady state heap-free.
            let mut m = [0.0f32; 3];
            m.copy_from_slice(take(3));
            hima_tensor::softmax::softmax_inplace(&mut m);
            *modes = m;
        }
        debug_assert_eq!(pos, expected);
    }

    /// Parses one interface vector per row of a `B × interface_size`
    /// row-block — the batched form of [`InterfaceVector::parse`] for
    /// callers holding all lanes' raw controller emissions as one matrix
    /// (row `b` is lane `b`). The in-crate batched path parses per lane
    /// inside its parallel loop instead, so each lane's parse runs on the
    /// worker thread that consumes it.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the `W`/`R` layout.
    pub fn parse_rows(raw: &hima_tensor::Matrix, word_size: usize, read_heads: usize) -> Vec<Self> {
        (0..raw.rows())
            .map(|b| Self::parse(raw.row(b), word_size, read_heads))
            .collect()
    }

    /// Number of read heads this interface drives.
    pub fn read_heads(&self) -> usize {
        self.read_keys.len()
    }

    /// Word width `W`.
    pub fn word_size(&self) -> usize {
        self.write_key.len()
    }

    /// Checks every constrained field is inside its admissible set
    /// (strengths ≥ 1, gates in `[0,1]`, read modes on the simplex).
    pub fn is_well_formed(&self) -> bool {
        let gates_ok = self
            .free_gates
            .iter()
            .chain([&self.allocation_gate, &self.write_gate])
            .all(|&g| (0.0..=1.0).contains(&g));
        let strengths_ok =
            self.read_strengths.iter().chain([&self.write_strength]).all(|&b| b >= 1.0);
        let erase_ok = self.erase.iter().all(|&e| (0.0..=1.0).contains(&e));
        let modes_ok = self.read_modes.iter().all(|m| {
            m.iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x))
                && (m.iter().sum::<f32>() - 1.0).abs() < 1e-4
        });
        gates_ok && strengths_ok && erase_ok && modes_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw_for(w: usize, r: usize, fill: f32) -> Vec<f32> {
        vec![fill; w * r + 3 * w + 5 * r + 3]
    }

    #[test]
    fn parses_layout_and_constraints() {
        let (w, r) = (8, 2);
        let raw: Vec<f32> = (0..(w * r + 3 * w + 5 * r + 3)).map(|i| (i as f32 * 0.13).sin()).collect();
        let iv = InterfaceVector::parse(&raw, w, r);
        assert_eq!(iv.read_heads(), r);
        assert_eq!(iv.word_size(), w);
        assert_eq!(iv.read_keys.len(), r);
        assert_eq!(iv.read_keys[0].len(), w);
        assert_eq!(iv.erase.len(), w);
        assert_eq!(iv.write.len(), w);
        assert!(iv.is_well_formed());
    }

    #[test]
    fn keys_pass_through_unactivated() {
        let (w, r) = (4, 1);
        let mut raw = raw_for(w, r, 0.0);
        raw[0] = 2.5; // first element of first read key
        raw[w * r + r] = -3.5; // first element of the write key
        let iv = InterfaceVector::parse(&raw, w, r);
        assert_eq!(iv.read_keys[0][0], 2.5);
        assert_eq!(iv.write_key[0], -3.5);
    }

    #[test]
    fn zero_raw_gives_neutral_activations() {
        let iv = InterfaceVector::parse(&raw_for(4, 2, 0.0), 4, 2);
        // oneplus(0) = 1 + ln 2, sigmoid(0) = 0.5, softmax(0,0,0) = 1/3.
        assert!((iv.write_strength - (1.0 + 2f32.ln())).abs() < 1e-6);
        assert!((iv.allocation_gate - 0.5).abs() < 1e-6);
        for m in &iv.read_modes {
            for &x in m {
                assert!((x - 1.0 / 3.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn extreme_raw_stays_well_formed() {
        let iv = InterfaceVector::parse(&raw_for(6, 3, 100.0), 6, 3);
        assert!(iv.is_well_formed());
        let iv = InterfaceVector::parse(&raw_for(6, 3, -100.0), 6, 3);
        assert!(iv.is_well_formed());
    }

    #[test]
    #[should_panic(expected = "does not match layout")]
    fn rejects_wrong_width() {
        InterfaceVector::parse(&[0.0; 10], 8, 2);
    }

    #[test]
    fn parse_into_reuse_matches_fresh_parse() {
        let (w, r) = (6, 2);
        let len = w * r + 3 * w + 5 * r + 3;
        let mut scratch = InterfaceVector::zeroed(w, r);
        for t in 0..4 {
            let raw: Vec<f32> =
                (0..len).map(|i| ((t * 13 + i * 7) as f32 * 0.23).sin() * 2.0).collect();
            scratch.parse_into(&raw, w, r);
            assert_eq!(scratch, InterfaceVector::parse(&raw, w, r), "t={t}");
        }
        // Geometry change resizes the scratch instead of panicking.
        let raw = vec![0.0; 4 + 3 * 4 + 5 + 3];
        scratch.parse_into(&raw, 4, 1);
        assert_eq!(scratch, InterfaceVector::parse(&raw, 4, 1));
    }
}
