//! Criterion benchmarks for the architectural cycle model: cost of one
//! engine evaluation per feature level (the Fig. 11(a) substrate) and per
//! tile count (the Fig. 5(d)/12(a) substrate).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hima::prelude::*;

fn bench_feature_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_step_report");
    for level in FeatureLevel::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(level.label()), &level, |b, &l| {
            let engine = Engine::new(EngineConfig::at_level(l, 16));
            b.iter(|| black_box(&engine).step_report())
        });
    }
    group.finish();
}

fn bench_tile_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_build_and_step");
    for nt in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("hima_dnc", nt), &nt, |b, &n| {
            b.iter(|| Engine::new(EngineConfig::hima_dnc(black_box(n))).step_cycles())
        });
    }
    group.finish();
}

fn bench_cost_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_models");
    group.bench_function("power_calibration", |b| b.iter(PowerModel::calibrated));
    let model = PowerModel::calibrated();
    let cfg = EngineConfig::hima_dncd(16);
    group.bench_function("power_estimate", |b| b.iter(|| model.estimate(black_box(&cfg))));
    group.bench_function("area_estimate", |b| b.iter(|| AreaModel::estimate(black_box(&cfg))));
    group.finish();
}

criterion_group!(benches, bench_feature_levels, bench_tile_counts, bench_cost_models);
criterion_main!(benches);
