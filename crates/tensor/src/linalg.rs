//! Dense linear solvers: Gaussian elimination and ridge regression.
//!
//! Used by the trainable pieces of the reproduction — the DNC-D read-merge
//! calibration and the reservoir-style trained readout — which both reduce
//! to small regularized least-squares problems.

use crate::matrix::Matrix;

/// Solves `A · X = B` for `X` by Gaussian elimination with partial
/// pivoting, where `A` is square and `B` may have multiple columns.
///
/// Returns `None` when `A` is (numerically) singular.
///
/// # Panics
///
/// Panics if `A` is not square or the row counts differ.
///
/// # Example
///
/// ```
/// use hima_tensor::{linalg::solve, Matrix};
///
/// let a = Matrix::from_rows(&[&[2.0, 0.0][..], &[0.0, 4.0][..]]);
/// let b = Matrix::from_rows(&[&[2.0][..], &[8.0][..]]);
/// let x = solve(&a, &b).expect("non-singular");
/// assert_eq!(x.as_slice(), &[1.0, 2.0]);
/// ```
pub fn solve(a: &Matrix, b: &Matrix) -> Option<Matrix> {
    assert_eq!(a.rows(), a.cols(), "solve needs a square system");
    assert_eq!(a.rows(), b.rows(), "A and B row counts differ");
    let n = a.rows();
    let m = b.cols();

    // Augmented matrix in f64 for stability.
    let mut aug: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let mut row: Vec<f64> = a.row(i).iter().map(|&x| x as f64).collect();
            row.extend(b.row(i).iter().map(|&x| x as f64));
            row
        })
        .collect();

    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| aug[i][col].abs().total_cmp(&aug[j][col].abs()))?;
        if aug[pivot][col].abs() < 1e-12 {
            return None;
        }
        aug.swap(col, pivot);
        let pivot_val = aug[col][col];
        for row in 0..n {
            if row == col {
                continue;
            }
            let factor = aug[row][col] / pivot_val;
            if factor == 0.0 {
                continue;
            }
            // Rows `row` and `col` alias inside `aug`, so the update reads
            // through indices rather than a borrowed slice pair.
            #[allow(clippy::needless_range_loop)]
            for k in col..n + m {
                aug[row][k] -= factor * aug[col][k];
            }
        }
    }

    let mut x = Matrix::zeros(n, m);
    for i in 0..n {
        let d = aug[i][i];
        for j in 0..m {
            x[(i, j)] = (aug[i][n + j] / d) as f32;
        }
    }
    Some(x)
}

/// Ridge regression: finds `W` (shape `targets_cols × features_cols`)
/// minimizing `Σ ‖W xᵢ − yᵢ‖² + λ‖W‖²` over the rows of `features` /
/// `targets`.
///
/// Returns `None` if the regularized normal equations are singular (only
/// possible for `lambda <= 0`).
///
/// # Panics
///
/// Panics if the row counts differ or `features` is empty.
pub fn ridge_regression(features: &Matrix, targets: &Matrix, lambda: f32) -> Option<Matrix> {
    assert_eq!(features.rows(), targets.rows(), "one target row per feature row");
    assert!(features.rows() > 0, "need at least one sample");
    let d = features.cols();

    // Normal equations: (XᵀX + λI) Wᵀ = Xᵀ Y.
    let xt = features.transpose();
    let mut xtx = xt.matmul(features);
    for i in 0..d {
        xtx[(i, i)] += lambda;
    }
    let xty = xt.matmul(targets);
    let wt = solve(&xtx, &xty)?;
    Some(wt.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn solve_identity_returns_rhs() {
        let i3 = Matrix::identity(3);
        let b = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f32);
        let x = solve(&i3, &b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solve_known_system() {
        // x + 2y = 5; 3x - y = 1  ->  x = 1, y = 2.
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, -1.0][..]]);
        let b = Matrix::from_rows(&[&[5.0][..], &[1.0][..]]);
        let x = solve(&a, &b).unwrap();
        assert_close(x.as_slice(), &[1.0, 2.0], 1e-5);
    }

    #[test]
    fn solve_detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 4.0][..]]);
        let b = Matrix::from_rows(&[&[1.0][..], &[2.0][..]]);
        assert!(solve(&a, &b).is_none());
    }

    #[test]
    fn solve_round_trips_with_matmul() {
        let a = Matrix::from_fn(4, 4, |i, j| ((i * 7 + j * 3) % 11) as f32 + if i == j { 5.0 } else { 0.0 });
        let x_true = Matrix::from_fn(4, 2, |i, j| (i + j) as f32 * 0.5 - 1.0);
        let b = a.matmul(&x_true);
        let x = solve(&a, &b).unwrap();
        assert_close(x.as_slice(), x_true.as_slice(), 1e-4);
    }

    #[test]
    fn ridge_recovers_exact_linear_map() {
        // y = M x with more samples than dimensions and tiny lambda.
        let m_true = Matrix::from_rows(&[&[1.0, -2.0, 0.5][..], &[0.0, 3.0, 1.0][..]]);
        let xs = Matrix::from_fn(20, 3, |i, j| ((i * 5 + j * 7) % 13) as f32 * 0.3 - 1.5);
        let ys = xs.matmul(&m_true.transpose());
        let w = ridge_regression(&xs, &ys, 1e-6).unwrap();
        assert_close(w.as_slice(), m_true.as_slice(), 1e-3);
    }

    #[test]
    fn ridge_shrinks_with_large_lambda() {
        let xs = Matrix::from_fn(10, 2, |i, j| (i + j) as f32 * 0.1);
        let ys = Matrix::from_fn(10, 1, |i, _| i as f32);
        let small = ridge_regression(&xs, &ys, 1e-6).unwrap();
        let big = ridge_regression(&xs, &ys, 1e6).unwrap();
        assert!(big.max_abs() < small.max_abs(), "regularization must shrink weights");
        assert!(big.max_abs() < 1e-3);
    }

    #[test]
    fn ridge_handles_underdetermined_with_regularization() {
        // 2 samples, 5 features: only solvable thanks to lambda.
        let xs = Matrix::from_fn(2, 5, |i, j| (i * 5 + j) as f32 * 0.2);
        let ys = Matrix::from_fn(2, 1, |i, _| i as f32);
        let w = ridge_regression(&xs, &ys, 0.1).unwrap();
        assert_eq!(w.shape(), (1, 5));
        assert!(w.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    #[should_panic(expected = "square system")]
    fn solve_rejects_non_square() {
        solve(&Matrix::zeros(2, 3), &Matrix::zeros(2, 1));
    }
}
