//! Table 1 of the paper: the DNC kernel inventory with primitives, memory
//! access complexity and NoC traffic classes.
//!
//! This metadata drives the `table1_kernels` experiment binary and
//! documents the complexity classes the cycle model implements.

use hima_dnc::profile::KernelId;
use serde::{Deserialize, Serialize};

/// Whether a kernel is an access kernel (exists in NTM-class accelerators)
/// or one of DNC's new state kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelType {
    /// Performs the actual external-memory access (NTM also has these).
    Access,
    /// Maintains access-history state (new in DNC).
    State,
}

/// Asymptotic complexity class in the symbols of Table 1
/// (`N`, `W`, `R`, `N_t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Complexity {
    /// No access / no traffic.
    None,
    /// `O(W)`.
    W,
    /// `O(N)`.
    N,
    /// `O(R·N)`.
    RN,
    /// `O(N·W)`.
    NW,
    /// `O(N²)`.
    N2,
    /// `O(N_t)`.
    Nt,
    /// `O(N_t·N)`.
    NtN,
    /// `O(N_t·N·W)`.
    NtNW,
    /// `O(N_t·N²)`.
    NtN2,
}

impl Complexity {
    /// Rendered in Table 1's notation.
    pub fn label(self) -> &'static str {
        match self {
            Complexity::None => "No",
            Complexity::W => "O(W)",
            Complexity::N => "O(N)",
            Complexity::RN => "O(RN)",
            Complexity::NW => "O(NW)",
            Complexity::N2 => "O(N^2)",
            Complexity::Nt => "O(Nt)",
            Complexity::NtN => "O(Nt N)",
            Complexity::NtNW => "O(Nt N W)",
            Complexity::NtN2 => "O(Nt N^2)",
        }
    }

    /// Evaluates the class for concrete parameters (used to sanity-check
    /// the cycle model's scaling).
    pub fn evaluate(self, n: usize, w: usize, r: usize, nt: usize) -> u64 {
        let (n, w, r, nt) = (n as u64, w as u64, r as u64, nt as u64);
        match self {
            Complexity::None => 0,
            Complexity::W => w,
            Complexity::N => n,
            Complexity::RN => r * n,
            Complexity::NW => n * w,
            Complexity::N2 => n * n,
            Complexity::Nt => nt,
            Complexity::NtN => nt * n,
            Complexity::NtNW => nt * n * w,
            Complexity::NtN2 => nt * n * n,
        }
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelInfo {
    /// The kernel.
    pub kernel: KernelId,
    /// Access vs state kernel.
    pub kernel_type: KernelType,
    /// Key primitives, verbatim from Table 1.
    pub primitives: &'static str,
    /// External-memory access complexity.
    pub ext_mem_access: Complexity,
    /// State-memory access complexity.
    pub state_mem_access: Complexity,
    /// Total NoC traffic class on a tiled architecture.
    pub noc_traffic: Complexity,
}

/// Table 1, row by row (the LSTM is not part of the memory unit and is
/// omitted, as in the paper).
pub const KERNEL_TABLE: [KernelInfo; 13] = [
    KernelInfo {
        kernel: KernelId::Normalize,
        kernel_type: KernelType::Access,
        primitives: "inner-prod",
        ext_mem_access: Complexity::NW,
        state_mem_access: Complexity::W,
        noc_traffic: Complexity::NtN,
    },
    KernelInfo {
        kernel: KernelId::Similarity,
        kernel_type: KernelType::Access,
        primitives: "inner-prod",
        ext_mem_access: Complexity::NW,
        state_mem_access: Complexity::W,
        noc_traffic: Complexity::Nt,
    },
    KernelInfo {
        kernel: KernelId::MemoryWrite,
        kernel_type: KernelType::Access,
        primitives: "el-add/sub/mult, outer-prod",
        ext_mem_access: Complexity::NW,
        state_mem_access: Complexity::N,
        noc_traffic: Complexity::NtN,
    },
    KernelInfo {
        kernel: KernelId::MemoryRead,
        kernel_type: KernelType::Access,
        primitives: "transpose, mat-vec mult",
        ext_mem_access: Complexity::NW,
        state_mem_access: Complexity::N,
        noc_traffic: Complexity::NtNW,
    },
    KernelInfo {
        kernel: KernelId::Retention,
        kernel_type: KernelType::State,
        primitives: "el-mult, vec acc-prod",
        ext_mem_access: Complexity::None,
        state_mem_access: Complexity::RN,
        noc_traffic: Complexity::None,
    },
    KernelInfo {
        kernel: KernelId::Usage,
        kernel_type: KernelType::State,
        primitives: "el-add/sub/mult",
        ext_mem_access: Complexity::None,
        state_mem_access: Complexity::N,
        noc_traffic: Complexity::None,
    },
    KernelInfo {
        kernel: KernelId::UsageSort,
        kernel_type: KernelType::State,
        primitives: "sort",
        ext_mem_access: Complexity::None,
        state_mem_access: Complexity::N,
        noc_traffic: Complexity::N,
    },
    KernelInfo {
        kernel: KernelId::Allocation,
        kernel_type: KernelType::State,
        primitives: "vec acc-prod",
        ext_mem_access: Complexity::None,
        state_mem_access: Complexity::N,
        noc_traffic: Complexity::Nt,
    },
    KernelInfo {
        kernel: KernelId::WriteMerge,
        kernel_type: KernelType::State,
        primitives: "el-add/sub",
        ext_mem_access: Complexity::None,
        state_mem_access: Complexity::N,
        noc_traffic: Complexity::None,
    },
    KernelInfo {
        kernel: KernelId::Linkage,
        kernel_type: KernelType::State,
        primitives: "mat expand, outer-prod, el-add/sub/mult",
        ext_mem_access: Complexity::None,
        state_mem_access: Complexity::N2,
        noc_traffic: Complexity::NtN,
    },
    KernelInfo {
        kernel: KernelId::Precedence,
        kernel_type: KernelType::State,
        primitives: "el-add, vec acc-sum",
        ext_mem_access: Complexity::None,
        state_mem_access: Complexity::N,
        noc_traffic: Complexity::Nt,
    },
    KernelInfo {
        kernel: KernelId::ForwardBackward,
        kernel_type: KernelType::State,
        primitives: "transpose, mat-vec mult",
        ext_mem_access: Complexity::None,
        state_mem_access: Complexity::N2,
        noc_traffic: Complexity::NtN2,
    },
    KernelInfo {
        kernel: KernelId::ReadMerge,
        kernel_type: KernelType::State,
        primitives: "el-add",
        ext_mem_access: Complexity::None,
        state_mem_access: Complexity::RN,
        noc_traffic: Complexity::None,
    },
];

/// Looks up a kernel's Table 1 row.
pub fn kernel_info(kernel: KernelId) -> Option<&'static KernelInfo> {
    KERNEL_TABLE.iter().find(|k| k.kernel == kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hima_dnc::profile::KernelCategory;

    #[test]
    fn table_covers_all_memory_unit_kernels() {
        for k in KernelId::ALL {
            if k == KernelId::Lstm {
                assert!(kernel_info(k).is_none(), "LSTM is not a memory-unit kernel");
            } else {
                assert!(kernel_info(k).is_some(), "{k:?} missing from Table 1");
            }
        }
        assert_eq!(KERNEL_TABLE.len(), 13);
    }

    #[test]
    fn state_kernels_touch_no_external_memory() {
        for info in &KERNEL_TABLE {
            if info.kernel_type == KernelType::State {
                assert_eq!(info.ext_mem_access, Complexity::None, "{:?}", info.kernel);
            } else {
                assert_eq!(info.ext_mem_access, Complexity::NW, "{:?}", info.kernel);
            }
        }
    }

    #[test]
    fn state_kernels_are_history_categories() {
        for info in &KERNEL_TABLE {
            if info.kernel_type == KernelType::State {
                let cat = info.kernel.category();
                assert!(
                    cat == KernelCategory::HistoryWriteWeighting
                        || cat == KernelCategory::HistoryReadWeighting,
                    "{:?} is {:?}",
                    info.kernel,
                    cat
                );
            }
        }
    }

    #[test]
    fn forward_backward_has_the_worst_traffic() {
        let fb = kernel_info(KernelId::ForwardBackward).unwrap();
        let (n, w, r, nt) = (1024, 64, 4, 16);
        let fb_traffic = fb.noc_traffic.evaluate(n, w, r, nt);
        for info in &KERNEL_TABLE {
            assert!(
                info.noc_traffic.evaluate(n, w, r, nt) <= fb_traffic,
                "{:?} exceeds forward-backward",
                info.kernel
            );
        }
    }

    #[test]
    fn complexity_evaluation() {
        assert_eq!(Complexity::NtN2.evaluate(4, 2, 1, 3), 3 * 16);
        assert_eq!(Complexity::None.evaluate(100, 100, 100, 100), 0);
        assert_eq!(Complexity::RN.evaluate(8, 1, 2, 1), 16);
    }

    #[test]
    fn labels_render_table_notation() {
        assert_eq!(Complexity::NtN2.label(), "O(Nt N^2)");
        assert_eq!(Complexity::None.label(), "No");
    }
}
