//! Q-format signed fixed-point arithmetic modeling HiMA's 32-bit datapath.
//!
//! The paper's prototypes use a 32-bit precision "for a fair comparison with
//! state-of-the-art MANN accelerators". [`Fixed`] is a Q16.16 two's-complement
//! value (16 integer bits, 16 fractional bits) with saturating arithmetic —
//! the usual hardware behaviour for an accelerator datapath. It is used by
//! the quantization-error experiments and by tests that check the functional
//! model is robust to datapath rounding.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Number of fractional bits in the Q16.16 format.
pub const FRAC_BITS: u32 = 16;
const ONE_RAW: i64 = 1 << FRAC_BITS;

/// A signed two's-complement fixed-point *format* descriptor:
/// `int_bits` integer bits (sign included) and `frac_bits` fractional
/// bits, at most 32 bits total — the datapath widths a HiMA-class
/// accelerator would implement.
///
/// Where [`Fixed`] is a Q16.16 *value*, `QFormat` describes a format and
/// rounds `f32` values onto it, so the quantized-datapath models can sweep
/// precision. `QFormat::q16_16()` reproduces the [`Fixed`] round trip
/// bit-for-bit.
///
/// # Example
///
/// ```
/// use hima_tensor::QFormat;
///
/// let q = QFormat::q16_16();
/// assert_eq!(q.quantize(1.5), 1.5);
/// assert!((q.quantize(0.1) - 0.1).abs() <= q.resolution());
/// assert_eq!(QFormat::new(8, 8).quantize(1e6), 127.99609375, "saturates");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QFormat {
    /// Integer bits, sign included.
    pub int_bits: u32,
    /// Fractional bits.
    pub frac_bits: u32,
}

impl QFormat {
    /// Creates a format with the given integer (sign included) and
    /// fractional bit widths.
    ///
    /// # Panics
    ///
    /// Panics if either width is zero or the total exceeds 32 bits.
    pub fn new(int_bits: u32, frac_bits: u32) -> Self {
        assert!(int_bits >= 1, "need at least a sign bit");
        assert!(frac_bits >= 1, "need at least one fractional bit");
        assert!(int_bits + frac_bits <= 32, "datapath width capped at 32 bits");
        Self { int_bits, frac_bits }
    }

    /// Non-panicking form of [`QFormat::new`] for validating untrusted
    /// widths (e.g. a client-supplied spec at a server boundary): `None`
    /// iff the widths violate the format's invariants.
    pub fn checked(int_bits: u32, frac_bits: u32) -> Option<Self> {
        (int_bits >= 1 && frac_bits >= 1 && int_bits.saturating_add(frac_bits) <= 32)
            .then_some(Self { int_bits, frac_bits })
    }

    /// The paper's 32-bit datapath: Q16.16, identical to [`Fixed`].
    pub fn q16_16() -> Self {
        Self::new(16, 16)
    }

    /// A narrow 16-bit datapath: Q8.8.
    pub fn q8_8() -> Self {
        Self::new(8, 8)
    }

    /// Total datapath width in bits.
    pub fn total_bits(&self) -> u32 {
        self.int_bits + self.frac_bits
    }

    /// Quantization step (`2^-frac_bits`).
    pub fn resolution(&self) -> f32 {
        1.0 / (1u64 << self.frac_bits) as f32
    }

    /// Rounds `x` to the nearest representable value, saturating at the
    /// format's range (round-to-nearest, two's-complement saturation —
    /// the usual hardware datapath behaviour).
    pub fn quantize(&self, x: f32) -> f32 {
        let scale = (1u64 << self.frac_bits) as f64;
        let max_raw = ((1u64 << (self.total_bits() - 1)) - 1) as f64;
        let min_raw = -((1u64 << (self.total_bits() - 1)) as f64);
        // NaN clamps to NaN and casts to raw 0, matching `Fixed::from_f32`.
        let raw = (x as f64 * scale).round().clamp(min_raw, max_raw) as i64;
        raw as f32 / scale as f32
    }

    /// Quantizes a whole slice in place.
    pub fn quantize_slice_inplace(&self, xs: &mut [f32]) {
        for x in xs {
            *x = self.quantize(*x);
        }
    }

    /// Whether `x` is exactly representable in this format.
    pub fn is_representable(&self, x: f32) -> bool {
        self.quantize(x) == x
    }

    /// Human-readable label, e.g. `"Q16.16"`.
    pub fn label(&self) -> String {
        format!("Q{}.{}", self.int_bits, self.frac_bits)
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", self.int_bits, self.frac_bits)
    }
}

/// A signed Q16.16 fixed-point number with saturating arithmetic.
///
/// # Example
///
/// ```
/// use hima_tensor::Fixed;
///
/// let a = Fixed::from_f32(1.5);
/// let b = Fixed::from_f32(2.0);
/// assert_eq!((a * b).to_f32(), 3.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Fixed(i32);

impl Fixed {
    /// The value 0.
    pub const ZERO: Fixed = Fixed(0);
    /// The value 1.
    pub const ONE: Fixed = Fixed(ONE_RAW as i32);
    /// Largest representable value (≈ 32768).
    pub const MAX: Fixed = Fixed(i32::MAX);
    /// Smallest representable value (≈ −32768).
    pub const MIN: Fixed = Fixed(i32::MIN);

    /// Converts from `f32`, saturating at the representable range.
    pub fn from_f32(x: f32) -> Self {
        let scaled = (x as f64 * ONE_RAW as f64).round();
        if scaled >= i32::MAX as f64 {
            Self::MAX
        } else if scaled <= i32::MIN as f64 {
            Self::MIN
        } else {
            Fixed(scaled as i32)
        }
    }

    /// Converts back to `f32`.
    pub fn to_f32(self) -> f32 {
        self.0 as f32 / ONE_RAW as f32
    }

    /// Builds from a raw Q16.16 bit pattern.
    pub fn from_raw(raw: i32) -> Self {
        Fixed(raw)
    }

    /// The raw Q16.16 bit pattern.
    pub fn raw(self) -> i32 {
        self.0
    }

    /// Quantization step of the format (`2^-16`).
    pub fn resolution() -> f32 {
        1.0 / ONE_RAW as f32
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Fixed) -> Fixed {
        Fixed(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Fixed) -> Fixed {
        Fixed(self.0.saturating_sub(rhs.0))
    }

    /// Saturating multiplication with round-to-nearest on the dropped bits.
    pub fn saturating_mul(self, rhs: Fixed) -> Fixed {
        let wide = self.0 as i64 * rhs.0 as i64;
        // Round-to-nearest: add half an LSB before the shift.
        let rounded = (wide + (1 << (FRAC_BITS - 1))) >> FRAC_BITS;
        Fixed(rounded.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
    }

    /// Saturating division.
    ///
    /// Division by zero saturates to `MAX`/`MIN` following the sign of the
    /// dividend (and `MAX` for `0/0`), mirroring a hardware divider's
    /// overflow flag rather than panicking mid-simulation.
    pub fn saturating_div(self, rhs: Fixed) -> Fixed {
        if rhs.0 == 0 {
            return if self.0 < 0 { Self::MIN } else { Self::MAX };
        }
        let wide = ((self.0 as i64) << FRAC_BITS) / rhs.0 as i64;
        Fixed(wide.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
    }

    /// Absolute value (saturating at `MAX` for `MIN`).
    pub fn abs(self) -> Fixed {
        Fixed(self.0.saturating_abs())
    }

    /// Quantizes an `f32` slice to fixed point and back, returning the
    /// round-tripped values. Used to inject datapath quantization into the
    /// functional model.
    pub fn quantize_slice(xs: &[f32]) -> Vec<f32> {
        xs.iter().map(|&x| Fixed::from_f32(x).to_f32()).collect()
    }
}

impl Add for Fixed {
    type Output = Fixed;
    fn add(self, rhs: Fixed) -> Fixed {
        self.saturating_add(rhs)
    }
}

impl Sub for Fixed {
    type Output = Fixed;
    fn sub(self, rhs: Fixed) -> Fixed {
        self.saturating_sub(rhs)
    }
}

impl Mul for Fixed {
    type Output = Fixed;
    fn mul(self, rhs: Fixed) -> Fixed {
        self.saturating_mul(rhs)
    }
}

impl Div for Fixed {
    type Output = Fixed;
    fn div(self, rhs: Fixed) -> Fixed {
        self.saturating_div(rhs)
    }
}

impl Neg for Fixed {
    type Output = Fixed;
    fn neg(self) -> Fixed {
        Fixed(self.0.saturating_neg())
    }
}

impl From<i16> for Fixed {
    fn from(x: i16) -> Self {
        Fixed((x as i32) << FRAC_BITS)
    }
}

impl fmt::Debug for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fixed({})", self.to_f32())
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_exact_values() {
        for x in [0.0f32, 1.0, -1.0, 0.5, -0.25, 12345.0625] {
            assert_eq!(Fixed::from_f32(x).to_f32(), x, "{x} should be exact in Q16.16");
        }
    }

    #[test]
    fn round_trip_error_bounded_by_resolution() {
        for i in 0..1000 {
            let x = (i as f32 - 500.0) * 0.0137;
            let err = (Fixed::from_f32(x).to_f32() - x).abs();
            assert!(err <= Fixed::resolution(), "err {err} for {x}");
        }
    }

    #[test]
    fn arithmetic_matches_float_for_small_values() {
        let a = Fixed::from_f32(1.5);
        let b = Fixed::from_f32(-2.25);
        assert_eq!((a + b).to_f32(), -0.75);
        assert_eq!((a - b).to_f32(), 3.75);
        assert_eq!((a * b).to_f32(), -3.375);
        assert!(((a / b).to_f32() - (1.5 / -2.25)).abs() < 2.0 * Fixed::resolution());
    }

    #[test]
    fn saturation_at_extremes() {
        let big = Fixed::from_f32(30000.0);
        assert_eq!(big + big, Fixed::MAX);
        assert_eq!(-big - big, Fixed::MIN);
        assert_eq!(big * big, Fixed::MAX);
        assert_eq!(Fixed::from_f32(1e20), Fixed::MAX);
        assert_eq!(Fixed::from_f32(-1e20), Fixed::MIN);
    }

    #[test]
    fn division_by_zero_saturates() {
        assert_eq!(Fixed::ONE / Fixed::ZERO, Fixed::MAX);
        assert_eq!(-Fixed::ONE / Fixed::ZERO, Fixed::MIN);
        assert_eq!(Fixed::ZERO / Fixed::ZERO, Fixed::MAX);
    }

    #[test]
    fn neg_and_abs() {
        let a = Fixed::from_f32(-3.5);
        assert_eq!((-a).to_f32(), 3.5);
        assert_eq!(a.abs().to_f32(), 3.5);
        assert_eq!(Fixed::MIN.abs(), Fixed::MAX);
    }

    #[test]
    fn from_i16_is_exact() {
        assert_eq!(Fixed::from(5i16).to_f32(), 5.0);
        assert_eq!(Fixed::from(-7i16).to_f32(), -7.0);
    }

    #[test]
    fn quantize_slice_bounded_error() {
        let xs = [0.1, 0.2, 0.333, -0.777];
        let q = Fixed::quantize_slice(&xs);
        for (a, b) in xs.iter().zip(&q) {
            assert!((a - b).abs() <= Fixed::resolution());
        }
    }

    #[test]
    fn ordering_follows_value() {
        assert!(Fixed::from_f32(1.0) < Fixed::from_f32(2.0));
        assert!(Fixed::from_f32(-5.0) < Fixed::from_f32(0.0));
    }

    #[test]
    fn qformat_q16_16_matches_fixed_bit_for_bit() {
        // The quantized-datapath engines switched from the `Fixed` round
        // trip to `QFormat::quantize`; the default format must reproduce it
        // exactly, including saturation.
        let q = QFormat::q16_16();
        for i in -4000i32..4000 {
            let x = i as f32 * 17.773;
            assert_eq!(q.quantize(x), Fixed::from_f32(x).to_f32(), "x={x}");
        }
        for x in [1e20f32, -1e20, 32768.5, -32769.0, f32::MAX, f32::MIN] {
            assert_eq!(q.quantize(x), Fixed::from_f32(x).to_f32(), "x={x}");
        }
    }

    #[test]
    fn qformat_narrow_formats_coarsen() {
        let fine = QFormat::q16_16();
        let coarse = QFormat::q8_8();
        let x = 0.123456f32;
        assert!((fine.quantize(x) - x).abs() <= fine.resolution());
        assert!((coarse.quantize(x) - x).abs() <= coarse.resolution());
        assert!(coarse.resolution() > fine.resolution());
        // Q8.8 saturates at just under 128 (32767/256).
        assert_eq!(coarse.quantize(1e6), 32767.0 / 256.0);
        assert_eq!(coarse.quantize(-1e6), -128.0);
    }

    #[test]
    fn qformat_representability_and_label() {
        let q = QFormat::new(4, 4);
        assert!(q.is_representable(0.25));
        assert!(!q.is_representable(0.3));
        assert_eq!(q.label(), "Q4.4");
        assert_eq!(format!("{}", QFormat::q16_16()), "Q16.16");
        let mut xs = [0.3f32, 1.26];
        q.quantize_slice_inplace(&mut xs);
        assert!(xs.iter().all(|&x| q.is_representable(x)));
    }

    #[test]
    #[should_panic(expected = "datapath width capped at 32 bits")]
    fn qformat_rejects_overwide() {
        QFormat::new(20, 20);
    }
}
