//! Experiment reporting helpers: ablation sweeps and scalability series.

use crate::config::{EngineConfig, FeatureLevel};
use crate::engine::{Engine, StepReport};
use serde::{Deserialize, Serialize};

/// One rung of the Fig. 11(a) ablation ladder with its measured speedup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Feature level.
    pub level: FeatureLevel,
    /// Cycles per DNC step.
    pub cycles: u64,
    /// Speedup over the baseline level.
    pub speedup: f64,
}

/// Runs the full Fig. 11(a) ablation at `tiles` PTs.
pub fn ablation_sweep(tiles: usize) -> Vec<AblationRow> {
    let base = Engine::new(EngineConfig::at_level(FeatureLevel::Baseline, tiles)).step_cycles();
    FeatureLevel::ALL
        .iter()
        .map(|&level| {
            let cycles = Engine::new(EngineConfig::at_level(level, tiles)).step_cycles();
            AblationRow { level, cycles, speedup: base as f64 / cycles as f64 }
        })
        .collect()
}

/// One point of a Fig. 5(d)-style scalability series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Processing-tile count.
    pub tiles: usize,
    /// Cycles per step.
    pub cycles: u64,
    /// Speedup normalized to the 1-tile configuration of the same design.
    pub speedup: f64,
}

/// Sweeps tile counts for a configuration template, normalizing speedup to
/// the single-tile run. The closure receives the tile count and returns the
/// configuration to evaluate.
pub fn scalability_sweep(
    tile_counts: &[usize],
    mut config_for: impl FnMut(usize) -> EngineConfig,
) -> Vec<ScalePoint> {
    let base = Engine::new(config_for(1)).step_cycles();
    tile_counts
        .iter()
        .map(|&tiles| {
            let cycles = Engine::new(config_for(tiles)).step_cycles();
            ScalePoint { tiles, cycles, speedup: base as f64 / cycles as f64 }
        })
        .collect()
}

/// Formats a [`StepReport`] category breakdown as percentage rows (the
/// Fig. 4 / Fig. 11(b) pie-chart data).
pub fn breakdown_rows(report: &StepReport) -> Vec<(String, f64)> {
    report
        .category_shares()
        .into_iter()
        .map(|(cat, share)| (cat.label().to_string(), share * 100.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_baseline_row_is_one() {
        let rows = ablation_sweep(16);
        assert_eq!(rows.len(), 6);
        assert!((rows[0].speedup - 1.0).abs() < 1e-12);
        for w in rows.windows(2) {
            assert!(w[1].speedup >= w[0].speedup, "{:?}", w);
        }
    }

    #[test]
    fn scalability_normalizes_to_one_tile() {
        let pts = scalability_sweep(&[1, 4, 16], EngineConfig::hima_dncd);
        assert!((pts[0].speedup - 1.0).abs() < 1e-12);
        assert!(pts[2].speedup > pts[1].speedup);
    }

    #[test]
    fn breakdown_rows_sum_to_100() {
        let report = Engine::new(EngineConfig::hima_dnc(16)).step_report();
        let total: f64 = breakdown_rows(&report).iter().map(|(_, p)| p).sum();
        assert!((total - 100.0).abs() < 1e-6);
    }
}
