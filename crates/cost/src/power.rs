//! Activity-based power model calibrated to Fig. 11(f).
//!
//! Each hardware module's dynamic energy is a coefficient times the
//! matching activity counter from the engine's [`StepReport`]:
//!
//! | module         | activity driver        |
//! |----------------|------------------------|
//! | PT M-M engines | MAC operations         |
//! | PT memory      | SRAM word accesses     |
//! | PT routers     | NoC flit-hops          |
//! | PT sorters     | compare-exchange ops   |
//! | PT other logic | PT cycles (clock tree) |
//! | CT logic       | CT work (LSTM MACs + global sort/merge) |
//!
//! The coefficients are fit **once** at the HiMA-DNC reference point
//! (`N_t = 16`) so its module powers match Fig. 11(f); every other
//! configuration — DNC-D, the ablation rungs, other tile counts — is then
//! a *prediction* from its own activity counters and step time. This is
//! how the model reproduces, rather than hard-codes, the paper's findings
//! (DNC-D cutting router power by ~98% and total power by ~39%).

use hima_dnc::profile::{KernelCategory, KernelId};
use hima_engine::{ActivityCounters, Engine, EngineConfig, StepReport};
use serde::{Deserialize, Serialize};

/// Fig. 11(f) HiMA-DNC module powers (watts) used for calibration.
pub mod reference {
    /// PT memory systems, all 16 PTs together.
    pub const PT_MEM_W: f64 = 4.86;
    /// PT M-M engines.
    pub const MM_ENGINE_W: f64 = 8.10;
    /// PT routers.
    pub const ROUTER_W: f64 = 1.56;
    /// PT other logic.
    pub const PT_OTHER_W: f64 = 2.30;
    /// CT logic.
    pub const CT_W: f64 = 0.15;
    /// Total (16.96 W in Fig. 11(e)).
    pub const TOTAL_W: f64 = PT_MEM_W + MM_ENGINE_W + ROUTER_W + PT_OTHER_W + CT_W;
}

/// Per-event energy coefficients (picojoules).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyCoefficients {
    /// pJ per MAC on the M-M engines.
    pub pj_per_mac: f64,
    /// pJ per SRAM word access.
    pub pj_per_sram_word: f64,
    /// pJ per NoC flit-hop.
    pub pj_per_flit_hop: f64,
    /// pJ per sorter compare-exchange.
    pub pj_per_sort_op: f64,
    /// pJ per SFU evaluation.
    pub pj_per_sfu_op: f64,
    /// pJ per PT per cycle (clock tree, control, leakage-equivalent).
    pub pj_per_pt_cycle: f64,
    /// pJ per CT cycle.
    pub pj_per_ct_cycle: f64,
}

impl EnergyCoefficients {
    /// Fits the coefficients at the HiMA-DNC `N_t = 16` reference point so
    /// module powers reproduce Fig. 11(f).
    pub fn calibrated() -> Self {
        let cfg = EngineConfig::hima_dnc(16);
        let report = Engine::new(cfg).step_report();
        let act = report.activity;
        let t_us = cfg.cycles_to_us(report.total_cycles());
        // P [W] = E [pJ] / t [µs] * 1e-6  =>  coeff = P * t / count * 1e6.
        let fit = |watts: f64, count: u64| -> f64 {
            if count == 0 {
                0.0
            } else {
                watts * t_us * 1e6 / count as f64
            }
        };
        // Sorter energy is folded into the PT-other budget at 10%.
        let sorter_share = 0.1;
        Self {
            pj_per_mac: fit(reference::MM_ENGINE_W, act.macs),
            pj_per_sram_word: fit(reference::PT_MEM_W, act.sram_words),
            pj_per_flit_hop: fit(reference::ROUTER_W, act.noc_flit_hops),
            pj_per_sort_op: fit(reference::PT_OTHER_W * sorter_share, act.sort_ops),
            pj_per_sfu_op: fit(reference::PT_OTHER_W * sorter_share, act.sfu_ops),
            pj_per_pt_cycle: fit(
                reference::PT_OTHER_W * (1.0 - 2.0 * sorter_share),
                report.total_cycles() * 16,
            ),
            pj_per_ct_cycle: fit(reference::CT_W, report.total_cycles()),
        }
    }

    /// Energy of one step's activity, in microjoules, split per module:
    /// `(mm_engine, pt_mem, router, pt_other, ct)`.
    ///
    /// `simple_router` applies the DNC-D CT-PT-only router: flit energy
    /// drops by [`SIMPLE_ROUTER_FACTOR`] (no multi-mode crossbar, no route
    /// LUTs — §7.3 reports the router power cut at 98.4%).
    pub fn module_energy_uj(
        &self,
        act: &ActivityCounters,
        step_cycles: u64,
        tiles: usize,
        simple_router: bool,
    ) -> (f64, f64, f64, f64, f64) {
        let uj = 1e-6;
        let router_factor = if simple_router { SIMPLE_ROUTER_FACTOR } else { 1.0 };
        let mm = self.pj_per_mac * act.macs as f64 * uj;
        let mem = self.pj_per_sram_word * act.sram_words as f64 * uj;
        let router = self.pj_per_flit_hop * act.noc_flit_hops as f64 * router_factor * uj;
        let other = (self.pj_per_sort_op * act.sort_ops as f64
            + self.pj_per_sfu_op * act.sfu_ops as f64
            + self.pj_per_pt_cycle * (step_cycles * tiles as u64) as f64)
            * uj;
        let ct = self.pj_per_ct_cycle * step_cycles as f64 * uj;
        (mm, mem, router, other, ct)
    }
}

/// Energy ratio of the DNC-D simple CT-PT router to the 8-way multi-mode
/// router (calibrated so the router-power collapse matches §7.3's 98.4%).
pub const SIMPLE_ROUTER_FACTOR: f64 = 0.05;

/// Power estimate for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// PT M-M engines (W).
    pub mm_engine_w: f64,
    /// PT memory systems (W).
    pub pt_mem_w: f64,
    /// PT routers (W).
    pub router_w: f64,
    /// PT other logic (W).
    pub pt_other_w: f64,
    /// CT logic (W).
    pub ct_w: f64,
    /// Step time (µs).
    pub step_us: f64,
}

impl PowerReport {
    /// Total power (W).
    pub fn total_w(&self) -> f64 {
        self.mm_engine_w + self.pt_mem_w + self.router_w + self.pt_other_w + self.ct_w
    }

    /// Energy per step (µJ).
    pub fn energy_per_step_uj(&self) -> f64 {
        self.total_w() * self.step_us
    }
}

/// The calibrated power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    coeffs: EnergyCoefficients,
}

impl PowerModel {
    /// Builds the model with coefficients calibrated at the HiMA-DNC
    /// reference point.
    pub fn calibrated() -> Self {
        Self { coeffs: EnergyCoefficients::calibrated() }
    }

    /// The coefficients in use.
    pub fn coefficients(&self) -> &EnergyCoefficients {
        &self.coeffs
    }

    /// Predicts module powers for a configuration.
    pub fn estimate(&self, cfg: &EngineConfig) -> PowerReport {
        let report = Engine::new(*cfg).step_report();
        self.estimate_from_report(cfg, &report)
    }

    /// Predicts module powers from a precomputed step report.
    pub fn estimate_from_report(&self, cfg: &EngineConfig, report: &StepReport) -> PowerReport {
        let cycles = report.total_cycles();
        let t_us = cfg.cycles_to_us(cycles);
        let (mm, mem, router, other, ct) =
            self.coeffs.module_energy_uj(&report.activity, cycles, cfg.tiles, cfg.dncd);
        PowerReport {
            mm_engine_w: mm / t_us,
            pt_mem_w: mem / t_us,
            router_w: router / t_us,
            pt_other_w: other / t_us,
            ct_w: ct / t_us,
            step_us: t_us,
        }
    }

    /// Per-kernel-category power split (the Fig. 11(d) pie): each
    /// category's share of the step energy, scaled to the total power.
    pub fn kernel_power(&self, cfg: &EngineConfig) -> Vec<(KernelCategory, f64)> {
        let report = Engine::new(*cfg).step_report();
        let total_w = self.estimate_from_report(cfg, &report).total_w();
        let energy_of = |k: &hima_engine::KernelCost| -> f64 {
            let (mm, mem, router, other, ct) = self.coeffs.module_energy_uj(
                &k.activity,
                k.compute_cycles + k.noc_cycles,
                cfg.tiles,
                cfg.dncd,
            );
            mm + mem + router + other + ct
        };
        let total_energy: f64 = report.costs.iter().map(energy_of).sum();
        KernelCategory::ALL
            .iter()
            .map(|&cat| {
                let e: f64 = report
                    .costs
                    .iter()
                    .filter(|c| c.kernel.category() == cat)
                    .map(energy_of)
                    .sum();
                (cat, total_w * e / total_energy)
            })
            .collect()
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// Convenience: does the LSTM kernel belong to the controller category?
/// (Used by the experiment binaries for labeling.)
pub fn is_controller_kernel(k: KernelId) -> bool {
    k.category() == KernelCategory::Controller
}

#[cfg(test)]
mod tests {
    use super::*;
    use hima_engine::FeatureLevel;

    #[test]
    fn calibration_reproduces_reference_point() {
        let model = PowerModel::calibrated();
        let r = model.estimate(&EngineConfig::hima_dnc(16));
        assert!((r.mm_engine_w - reference::MM_ENGINE_W).abs() < 0.05, "{:?}", r);
        assert!((r.pt_mem_w - reference::PT_MEM_W).abs() < 0.05);
        assert!((r.router_w - reference::ROUTER_W).abs() < 0.05);
        assert!((r.total_w() - reference::TOTAL_W).abs() < 0.2, "total {}", r.total_w());
    }

    #[test]
    fn dncd_cuts_total_power_by_tens_of_percent() {
        // §7.3: HiMA-DNC-D consumes 39.4% less power than HiMA-DNC.
        let model = PowerModel::calibrated();
        let dnc = model.estimate(&EngineConfig::hima_dnc(16)).total_w();
        let dncd = model.estimate(&EngineConfig::hima_dncd(16)).total_w();
        let saving = 1.0 - dncd / dnc;
        assert!((0.15..0.70).contains(&saving), "saving {saving:.3}");
    }

    #[test]
    fn dncd_router_power_collapses() {
        // §7.3: DNC-D cuts 98.4% of the router power.
        let model = PowerModel::calibrated();
        let dnc = model.estimate(&EngineConfig::hima_dnc(16)).router_w;
        let dncd = model.estimate(&EngineConfig::hima_dncd(16)).router_w;
        assert!(dncd < dnc * 0.15, "router {dncd:.3} W vs {dnc:.3} W");
    }

    #[test]
    fn two_stage_sort_raises_power() {
        // Fig. 11(c): the two-stage sort adds ~9% power over the baseline
        // (faster steps at similar energy).
        let model = PowerModel::calibrated();
        let base = model.estimate(&EngineConfig::at_level(FeatureLevel::Baseline, 16)).total_w();
        let sort = model.estimate(&EngineConfig::at_level(FeatureLevel::TwoStageSort, 16)).total_w();
        assert!(sort > base, "two-stage {sort:.2} W !> baseline {base:.2} W");
        assert!(sort / base < 1.35, "increase too large: {:.3}", sort / base);
    }

    #[test]
    fn dncd_power_well_below_baseline() {
        // Fig. 11(c): DNC-D lands at ~0.61x of the baseline power.
        let model = PowerModel::calibrated();
        let base = model.estimate(&EngineConfig::at_level(FeatureLevel::Baseline, 16)).total_w();
        let dncd = model.estimate(&EngineConfig::at_level(FeatureLevel::DncD, 16)).total_w();
        assert!(dncd / base < 0.9, "ratio {:.3}", dncd / base);
    }

    #[test]
    fn kernel_power_sums_to_total() {
        let model = PowerModel::calibrated();
        let cfg = EngineConfig::hima_dnc(16);
        let split = model.kernel_power(&cfg);
        let total: f64 = split.iter().map(|(_, w)| w).sum();
        let expect = model.estimate(&cfg).total_w();
        assert!((total - expect).abs() < 1e-6, "{total} vs {expect}");
    }

    #[test]
    fn dncd_reduces_history_write_energy() {
        // §7.3: DNC-D cuts history-based write weighting power (by ~79% in
        // the paper) by eliminating the global sort and CT-PT usage
        // transfers. The robust model-level claim is on *energy per step*:
        // power also divides by the step-time ratio.
        let model = PowerModel::calibrated();
        let energy = |cfg: &EngineConfig| {
            let w: f64 = model
                .kernel_power(cfg)
                .into_iter()
                .find(|(c, _)| *c == KernelCategory::HistoryWriteWeighting)
                .map(|(_, w)| w)
                .unwrap();
            w * model.estimate(cfg).step_us
        };
        let dnc = energy(&EngineConfig::hima_dnc(16));
        let dncd = energy(&EngineConfig::hima_dncd(16));
        assert!(dncd < dnc * 0.6, "HW energy {dncd:.3} uJ !<< {dnc:.3} uJ");
    }

    #[test]
    fn power_scales_superlinearly_for_dnc_but_not_dncd() {
        // Fig. 12(a): DNC power grows super-linearly with N_t; DNC-D stays
        // near linear.
        let model = PowerModel::calibrated();
        let p = |cfg: EngineConfig| model.estimate(&cfg).total_w();
        let dnc_ratio = p(EngineConfig::hima_dnc(32)) / p(EngineConfig::hima_dnc(4));
        let dncd_ratio = p(EngineConfig::hima_dncd(32)) / p(EngineConfig::hima_dncd(4));
        assert!(dnc_ratio > dncd_ratio, "DNC {dnc_ratio:.2} !> DNC-D {dncd_ratio:.2}");
    }

    #[test]
    fn energy_per_step_consistent() {
        let model = PowerModel::calibrated();
        let r = model.estimate(&EngineConfig::hima_dnc(16));
        assert!((r.energy_per_step_uj() - r.total_w() * r.step_us).abs() < 1e-9);
    }
}
