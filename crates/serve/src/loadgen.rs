//! Synthetic open-loop load generator for the session server.
//!
//! Arrivals are **open-loop**: session start times come from a wall-clock
//! schedule fixed up front (uniformly spaced or bursty), not from when
//! earlier sessions finish — so the server sees genuine co-tenancy and
//! the latency numbers include queueing, the way a production serving
//! benchmark measures it. Each session is one thread: connect, open,
//! `steps` single-step requests (per-request latency recorded), close.
//!
//! Inputs are deterministic functions of `(session index, step, lane)`,
//! so a run is reproducible and its outputs can be cross-checked against
//! solo replay.

use crate::client::{Client, ClientError, ClientOptions};
use crate::protocol::RawSessionSpec;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// When sessions arrive, relative to the start of the run.
#[derive(Debug, Clone, Copy)]
pub enum ArrivalPattern {
    /// Session `i` arrives at `i × interval` — a steady trickle.
    Uniform {
        /// Gap between consecutive arrivals.
        interval: Duration,
    },
    /// Sessions arrive `size` at a time, bursts `gap` apart — the
    /// worst case for lane churn (joins and swaps cluster).
    Burst {
        /// Sessions per burst.
        size: usize,
        /// Gap between bursts.
        gap: Duration,
    },
}

impl ArrivalPattern {
    fn offset(&self, i: usize) -> Duration {
        match *self {
            ArrivalPattern::Uniform { interval } => interval * i as u32,
            ArrivalPattern::Burst { size, gap } => gap * (i / size.max(1)) as u32,
        }
    }

    /// Short label for reports, e.g. `"uniform"` or `"burst"`.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalPattern::Uniform { .. } => "uniform",
            ArrivalPattern::Burst { .. } => "burst",
        }
    }
}

/// One load-generation run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Engine configuration each session opens with.
    pub spec: RawSessionSpec,
    /// Number of sessions.
    pub sessions: usize,
    /// Steps per session.
    pub steps: usize,
    /// Arrival schedule.
    pub pattern: ArrivalPattern,
    /// Client resilience options (deadlines, reconnect/backoff). The
    /// default is the bare client. With a retry policy set, a step that
    /// fails on transport is retried on the recovered connection —
    /// at-least-once, so use it for fault drills, not bit-exactness
    /// oracles.
    pub client: ClientOptions,
}

/// Results of a load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Sessions requested.
    pub sessions: usize,
    /// Steps per session.
    pub steps_per_session: usize,
    /// Sessions that ran open → steps → close without error.
    pub completed: usize,
    /// Wall-clock span of the whole run.
    pub elapsed: Duration,
    /// Completed sessions per wall-clock second.
    pub sessions_per_sec: f64,
    /// Total steps served per wall-clock second.
    pub steps_per_sec: f64,
    /// Median per-step request latency.
    pub p50_step: Duration,
    /// 90th-percentile per-step request latency.
    pub p90_step: Duration,
    /// 99th-percentile per-step request latency.
    pub p99_step: Duration,
    /// Worst per-step request latency.
    pub max_step: Duration,
    /// Sessions that errored (transport or server) before completing —
    /// `sessions - completed`, broken out so a report can't quietly
    /// present a partial run as healthy.
    pub failed: usize,
}

/// Nearest-rank percentile over an **ascending-sorted** slice of
/// nanosecond latencies; `p` in `[0, 1]`. Empty input → zero.
///
/// Nearest-rank means rank `⌈p·N⌉` (1-based, clamped to `[1, N]`): the
/// smallest value such that at least `p·N` samples are ≤ it. In
/// particular `p = 0.5` over an even-length slice is the *lower* of the
/// two middle values, and `p = 1.0` is exactly the maximum.
pub fn percentile(sorted_ns: &[u64], p: f64) -> Duration {
    let len = sorted_ns.len();
    if len == 0 {
        return Duration::ZERO;
    }
    let rank = (p.clamp(0.0, 1.0) * len as f64).ceil() as usize;
    Duration::from_nanos(sorted_ns[rank.clamp(1, len) - 1])
}

/// Deterministic synthetic input row for `(session, step)`.
pub fn synth_input(session: usize, step: usize, width: usize) -> Vec<f32> {
    (0..width).map(|i| (((session * 131 + step * 17 + i * 7) as f32) * 0.13).sin()).collect()
}

/// Runs an open-loop load generation against a server and reports
/// sessions/sec plus p50/p90/p99/max per-step latency and the number of
/// failed sessions.
pub fn run_load(addr: SocketAddr, cfg: &LoadConfig) -> LoadReport {
    let start = Instant::now();
    let width = cfg.spec.input_size as usize;
    let mut handles = Vec::with_capacity(cfg.sessions);
    for i in 0..cfg.sessions {
        let offset = cfg.pattern.offset(i);
        let spec = cfg.spec.clone();
        let steps = cfg.steps;
        let opts = cfg.client.clone();
        let step_retries = opts.retry.as_ref().map_or(0, |r| r.max_attempts);
        handles.push(std::thread::spawn(move || -> Result<Vec<u64>, ClientError> {
            let since = start.elapsed();
            if offset > since {
                std::thread::sleep(offset - since);
            }
            let mut client = Client::connect_with(addr, opts)?;
            let session = client.open(&spec)?;
            let mut latencies_ns = Vec::with_capacity(steps);
            for t in 0..steps {
                let input = synth_input(i, t, width);
                let t0 = Instant::now();
                let mut tries = 0;
                loop {
                    match client.step(session, &input) {
                        Ok(_) => break,
                        // With a retry policy, drive the step again over
                        // the reconnected socket (at-least-once).
                        Err(ClientError::Io(_)) if tries < step_retries => tries += 1,
                        Err(e) => return Err(e),
                    }
                }
                latencies_ns.push(t0.elapsed().as_nanos() as u64);
            }
            client.close_session(session)?;
            Ok(latencies_ns)
        }));
    }

    let mut completed = 0;
    let mut failed = 0;
    let mut latencies: Vec<u64> = Vec::with_capacity(cfg.sessions * cfg.steps);
    for handle in handles {
        match handle.join() {
            Ok(Ok(mut ns)) => {
                completed += 1;
                latencies.append(&mut ns);
            }
            // A session that errored (or whose thread panicked) counts
            // against the run instead of vanishing from the report.
            Ok(Err(_)) | Err(_) => failed += 1,
        }
    }
    let elapsed = start.elapsed();
    latencies.sort_unstable();
    let secs = elapsed.as_secs_f64().max(1e-9);
    LoadReport {
        sessions: cfg.sessions,
        steps_per_session: cfg.steps,
        completed,
        elapsed,
        sessions_per_sec: completed as f64 / secs,
        steps_per_sec: latencies.len() as f64 / secs,
        p50_step: percentile(&latencies, 0.50),
        p90_step: percentile(&latencies, 0.90),
        p99_step: percentile(&latencies, 0.99),
        max_step: latencies.last().copied().map(Duration::from_nanos).unwrap_or(Duration::ZERO),
        failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        // The Wikipedia nearest-rank worked example: for
        // [15, 20, 35, 40, 50], P30 → 20 (rank ⌈0.30·5⌉ = 2) and
        // P40 → 20, P50 → 35, P100 → 50.
        let v = [15, 20, 35, 40, 50];
        assert_eq!(percentile(&v, 0.30), Duration::from_nanos(20));
        assert_eq!(percentile(&v, 0.40), Duration::from_nanos(20));
        assert_eq!(percentile(&v, 0.50), Duration::from_nanos(35));
        assert_eq!(percentile(&v, 1.00), Duration::from_nanos(50));
    }

    #[test]
    fn percentile_edges() {
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
        // p = 0 clamps to rank 1 (the minimum), never indexes at -1.
        assert_eq!(percentile(&[7, 9], 0.0), Duration::from_nanos(7));
        // Out-of-range p clamps instead of panicking.
        assert_eq!(percentile(&[7, 9], -1.0), Duration::from_nanos(7));
        assert_eq!(percentile(&[7, 9], 2.0), Duration::from_nanos(9));
        // Even length, p = 0.5: nearest-rank picks the *lower* middle
        // value (rank ⌈0.5·4⌉ = 2). The old `((N-1)·p).round()` formula
        // returned the upper one (index 1.5 rounds to 2 → value 3).
        assert_eq!(percentile(&[1, 2, 3, 4], 0.5), Duration::from_nanos(2));
        // Odd length, p = 0.5: the true median.
        assert_eq!(percentile(&[1, 2, 3], 0.5), Duration::from_nanos(2));
        // Single sample: every percentile is that sample.
        assert_eq!(percentile(&[42], 0.01), Duration::from_nanos(42));
        assert_eq!(percentile(&[42], 0.99), Duration::from_nanos(42));
    }

    #[test]
    fn percentile_one_is_max_and_is_monotone() {
        let v: Vec<u64> = (0..100).map(|i| i * 3).collect();
        assert_eq!(percentile(&v, 1.0), Duration::from_nanos(297));
        let mut last = Duration::ZERO;
        for i in 0..=100 {
            let p = i as f64 / 100.0;
            let q = percentile(&v, p);
            assert!(q >= last, "p{i}: {q:?} < {last:?}");
            last = q;
        }
    }
}
