//! Network-on-chip simulator for the HiMA reproduction.
//!
//! The paper's first contribution is a *multi-mode NoC* (§4.1): a mesh
//! augmented with diagonal links whose routers can be reconfigured at run
//! time into four modes matched to DNC traffic patterns — star (CT
//! broadcast/collect, sorting), ring (accumulations), diagonal (matrix
//! transpose) and full (matrix-vector multiply, outer products). This crate
//! provides:
//!
//! * [`topology`] — graph builders for the five evaluated topologies:
//!   H-tree (MANNA), binary tree with sibling links (MAERI), mesh, star and
//!   the HiMA mesh+diagonal fabric,
//! * [`routing`] — BFS next-hop tables, per-mode edge masks,
//! * [`sim`] — a deterministic contention model that serializes messages
//!   over shared links and reports per-pattern completion cycles,
//! * [`traffic`] — generators for the DNC primitive patterns (broadcast,
//!   collect, ring accumulation, transpose, all-to-all).
//!
//! # Example
//!
//! ```
//! use hima_noc::topology::{Topology, TopologyGraph};
//!
//! let hima = TopologyGraph::build(Topology::Hima, 16);
//! let htree = TopologyGraph::build(Topology::HTree, 16);
//! // Fig. 5: the 5x5 HiMA fabric halves the worst-case hop count.
//! assert!(hima.worst_case_hops() <= htree.worst_case_hops() / 2);
//! ```

pub mod cycle_sim;
pub mod routing;
pub mod sim;
pub mod topology;
pub mod traffic;

pub use cycle_sim::{CycleAccurateSim, CycleSimReport};
pub use routing::{Mode, RoutingTable};
pub use sim::{NocSim, SimReport};
pub use topology::{NodeId, Topology, TopologyGraph};
pub use traffic::{Message, TrafficPattern};
