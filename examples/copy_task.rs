//! Copy task: store a sequence, then retrieve it in order through the
//! temporal linkage — the canonical MANN capability (NTM's copy) plus
//! DNC's history-based ordering.
//!
//! The example drives the memory unit directly with hand-built interface
//! vectors: it writes a sequence of patterns with strong allocation
//! gating, content-reads the first item, then walks the sequence with
//! forward (linkage) reads only — which is exactly the access pattern the
//! history-based read weighting exists for.
//!
//! Run with `cargo run --example copy_task`.

use hima::dnc::interface::InterfaceVector;
use hima::prelude::*;

const W: usize = 8;

/// Interface-vector layout for W = 8, R = 1:
/// read key [0,8), read strength [8,9), write key [9,17), write strength
/// [17,18), erase [18,26), write vec [26,34), free gate [34,35), alloc
/// gate [35,36), write gate [36,37), read modes [37,40).
fn write_step(pattern: &[f32; W]) -> InterfaceVector {
    let mut raw = vec![0.0f32; 40];
    raw[9..17].copy_from_slice(pattern);
    raw[17] = 30.0;
    raw[26..34].copy_from_slice(pattern);
    raw[35] = 10.0;
    raw[36] = 10.0;
    InterfaceVector::parse(&raw, W, 1)
}

fn content_read(key: &[f32; W]) -> InterfaceVector {
    let mut raw = vec![0.0f32; 40];
    raw[0..8].copy_from_slice(key);
    raw[8] = 30.0;
    raw[36] = -10.0;
    raw[37] = -10.0;
    raw[38] = 10.0; // content mode
    raw[39] = -10.0;
    InterfaceVector::parse(&raw, W, 1)
}

fn forward_read() -> InterfaceVector {
    let mut raw = vec![0.0f32; 40];
    raw[36] = -10.0;
    raw[37] = -10.0;
    raw[38] = -10.0;
    raw[39] = 10.0; // forward mode: follow the write order
    InterfaceVector::parse(&raw, W, 1)
}

fn main() {
    let mut memory = MemoryUnit::new(MemoryConfig::new(32, W, 1));

    // A sequence of orthogonal-ish patterns.
    let sequence: Vec<[f32; W]> = (0..5)
        .map(|i| {
            let mut p = [0.0f32; W];
            p[i] = 2.0;
            p[(i + 3) % W] = -1.0;
            p
        })
        .collect();

    println!("Storing {} patterns...", sequence.len());
    for p in &sequence {
        memory.step(&write_step(p));
    }

    // Recall the head of the sequence by content, then walk forward.
    println!("Content-read of pattern 0, then forward reads:\n");
    let first = memory.step(&content_read(&sequence[0]));
    report(0, &sequence[0], &first.read_vectors[0]);
    for (i, expected) in sequence.iter().enumerate().skip(1) {
        let out = memory.step(&forward_read());
        report(i, expected, &out.read_vectors[0]);
    }

    println!("\nThe forward reads recover the stored order without re-keying —");
    println!("this is the linkage/precedence machinery HiMA accelerates.");
}

fn report(i: usize, expected: &[f32; W], got: &[f32]) {
    let err: f32 =
        expected.iter().zip(got).map(|(a, b)| (a - b).abs()).sum::<f32>() / W as f32;
    let ok = if err < 0.25 { "ok " } else { "OFF" };
    println!("  item {i}: mean abs error {err:.3} [{ok}]  read = {got:.2?}");
}
