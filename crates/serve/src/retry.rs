//! Deterministic retry schedules and deadline-shedding order.
//!
//! Two small pure cores live here so both the client (reconnect backoff)
//! and the scheduler (deadline shedding) can be property-tested without
//! a socket in sight:
//!
//! * [`RetryPolicy::backoff`] — seeded, jittered, capped exponential
//!   backoff. The jitter for attempt `a` is drawn from
//!   `[base·2^a, base·2^(a+1))`, so consecutive attempts occupy
//!   non-overlapping, increasing ranges: the schedule is **monotone in
//!   the attempt number** despite the jitter, deterministic per seed,
//!   and clamped to the cap.
//! * [`shed_order`] — given queued entries with absolute deadlines,
//!   which are expired at `now`, oldest deadline first. The scheduler
//!   sheds in exactly this order so the entries that have waited past
//!   their deadline the longest are rejected first.

use std::time::Duration;

/// splitmix64 finalizer — the same mixer `hima-chaos` uses; good enough
/// to decorrelate attempts without any RNG state.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A seeded, jittered, capped exponential retry schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Base delay: attempt 0 waits in `[base, 2·base)`.
    pub base: Duration,
    /// Hard upper bound on any single delay.
    pub cap: Duration,
    /// Attempts before the caller gives up (connect + resend cycles).
    pub max_attempts: u32,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            base: Duration::from_millis(25),
            cap: Duration::from_secs(2),
            max_attempts: 6,
            seed: 0x4849_4D41, // "HIMA"
        }
    }
}

impl RetryPolicy {
    /// The delay before retry `attempt` (0-based).
    ///
    /// Deterministic in `(seed, attempt)`; non-decreasing in `attempt`;
    /// never exceeds `cap`; never below `min(base, cap)`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let base = self.base.as_nanos().max(1) as u64;
        let cap = self.cap.as_nanos().min(u64::MAX as u128) as u64;
        // base · 2^attempt, saturating well past any sane cap. A plain
        // shift would silently drop the high bits (slot 0, delay 0) once
        // the doubling overflows, so saturate explicitly.
        let shift = attempt.min(63);
        let slot = if shift > base.leading_zeros() { u64::MAX } else { base << shift };
        let jitter = mix(self.seed ^ mix(attempt as u64)) % slot.max(1);
        let nanos = slot.saturating_add(jitter).min(cap);
        Duration::from_nanos(nanos)
    }
}

/// Returns the ids of expired entries, oldest deadline first.
///
/// `entries` are `(id, deadline)` pairs on any monotone clock (the
/// scheduler uses microseconds since an epoch); an entry is expired when
/// `deadline <= now`. Ties break by ascending id so the order is total.
pub fn shed_order(entries: &[(u64, u64)], now: u64) -> Vec<u64> {
    let mut expired: Vec<(u64, u64)> = entries
        .iter()
        .filter(|&&(_, deadline)| deadline <= now)
        .map(|&(id, deadline)| (deadline, id))
        .collect();
    expired.sort_unstable();
    expired.into_iter().map(|(_, id)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_monotone_and_capped() {
        let p = RetryPolicy::default();
        let mut last = Duration::ZERO;
        for a in 0..40 {
            let d = p.backoff(a);
            assert!(d >= last, "attempt {a}: {d:?} < {last:?}");
            assert!(d <= p.cap);
            last = d;
        }
        assert_eq!(p.backoff(39), p.cap, "deep attempts pin to the cap");
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let a = RetryPolicy { seed: 7, ..RetryPolicy::default() };
        let b = RetryPolicy { seed: 7, ..RetryPolicy::default() };
        let c = RetryPolicy { seed: 8, ..RetryPolicy::default() };
        let sched = |p: &RetryPolicy| (0..10).map(|i| p.backoff(i)).collect::<Vec<_>>();
        assert_eq!(sched(&a), sched(&b));
        assert_ne!(sched(&a), sched(&c));
    }

    #[test]
    fn shed_order_is_oldest_first() {
        let entries = [(1, 50), (2, 10), (3, 99), (4, 10), (5, 200)];
        assert_eq!(shed_order(&entries, 99), vec![2, 4, 1, 3]);
        assert_eq!(shed_order(&entries, 9), Vec::<u64>::new());
        assert_eq!(shed_order(&entries, u64::MAX), vec![2, 4, 1, 3, 5]);
    }

    #[test]
    fn zero_base_does_not_divide_by_zero() {
        let p = RetryPolicy { base: Duration::ZERO, ..RetryPolicy::default() };
        for a in 0..8 {
            assert!(p.backoff(a) <= p.cap);
        }
    }
}
