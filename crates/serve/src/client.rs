//! Typed blocking client for the session server.
//!
//! One [`Client`] is one TCP connection issuing synchronous
//! request/reply calls. Sessions are plain `u64` ids, so several
//! connections can drive (or observe) the same session — the server
//! serializes them, answering `SessionBusy` when two commands race.

use crate::protocol::{
    read_frame, write_frame, RawSessionSpec, Request, Response, ServeError,
};
use hima_telemetry::{MetricsSnapshot, TraceEvent};
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure: transport, server-reported, or a reply that
/// doesn't fit the request.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server answered with a structured error.
    Server(ServeError),
    /// The reply did not decode, or was the wrong variant for the
    /// request.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking connection to a session server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let read_half = stream.try_clone()?;
        Ok(Self { reader: BufReader::new(read_half), writer: BufWriter::new(stream) })
    }

    /// One synchronous request/reply exchange.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &req.encode())?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server hung up",
            ))
        })?;
        match Response::decode(&payload) {
            Ok(Response::Error(e)) => Err(ClientError::Server(e)),
            Ok(resp) => Ok(resp),
            Err(e) => Err(ClientError::Protocol(e.to_string())),
        }
    }

    /// Opens a session with the given configuration; returns its id.
    pub fn open(&mut self, spec: &RawSessionSpec) -> Result<u64, ClientError> {
        match self.call(&Request::Open { spec: spec.clone() })? {
            Response::Opened { session } => Ok(session),
            other => Err(unexpected("Opened", &other)),
        }
    }

    /// Advances a session by one step; returns the output row.
    pub fn step(&mut self, session: u64, input: &[f32]) -> Result<Vec<f32>, ClientError> {
        match self.call(&Request::Step { session, input: input.to_vec() })? {
            Response::Stepped { mut outputs } if outputs.len() == 1 => Ok(outputs.remove(0)),
            other => Err(unexpected("Stepped{1}", &other)),
        }
    }

    /// Advances a session by `inputs.len()` steps (queued server-side,
    /// interleaving tick-by-tick with co-tenant sessions); returns all
    /// output rows.
    pub fn step_stream(
        &mut self,
        session: u64,
        inputs: &[Vec<f32>],
    ) -> Result<Vec<Vec<f32>>, ClientError> {
        match self.call(&Request::StepStream { session, inputs: inputs.to_vec() })? {
            Response::Stepped { outputs } => Ok(outputs),
            other => Err(unexpected("Stepped", &other)),
        }
    }

    /// Queries the session's current read-vector row.
    pub fn read_rows(&mut self, session: u64) -> Result<Vec<f32>, ClientError> {
        match self.call(&Request::ReadRows { session })? {
            Response::Rows { read } => Ok(read),
            other => Err(unexpected("Rows", &other)),
        }
    }

    /// Resets a session to blank state (same weights).
    pub fn reset(&mut self, session: u64) -> Result<(), ClientError> {
        match self.call(&Request::Reset { session })? {
            Response::Done => Ok(()),
            other => Err(unexpected("Done", &other)),
        }
    }

    /// Closes a session.
    pub fn close_session(&mut self, session: u64) -> Result<(), ClientError> {
        match self.call(&Request::Close { session })? {
            Response::Done => Ok(()),
            other => Err(unexpected("Done", &other)),
        }
    }

    /// Fetches the server-wide metrics snapshot (counters, gauges and
    /// latency histograms; see [`crate::metrics`] for the catalog).
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { snapshot } => Ok(snapshot),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Fetches the session-lifecycle trace ring (oldest event first).
    pub fn trace_dump(&mut self) -> Result<Vec<TraceEvent>, ClientError> {
        match self.call(&Request::TraceDump)? {
            Response::Trace { events } => Ok(events),
            other => Err(unexpected("Trace", &other)),
        }
    }

    /// Asks the server process to shut down cleanly.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(want: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {want}, got {got:?}"))
}
