//! Row-major dense `f32` matrix with the operations used by the DNC dataflow.
//!
//! The DNC memory unit (paper Fig. 2) needs a small, fixed set of matrix
//! primitives: transpose, matrix-vector multiplication, vector outer
//! products, element-wise arithmetic and row normalization. [`Matrix`]
//! implements exactly those, with shape checking on every operation so the
//! functional model fails loudly instead of silently mis-shaping.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f32`.
///
/// # Example
///
/// ```
/// use hima_tensor::Matrix;
///
/// let mut m = Matrix::zeros(2, 3);
/// m[(0, 0)] = 1.0;
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m[(0, 0)], 1.0);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer of {} elements cannot form a {rows}x{cols} matrix",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows<R: AsRef<[f32]>>(rows: &[R]) -> Self {
        assert!(!rows.is_empty(), "cannot build a matrix from zero rows");
        let cols = rows[0].as_ref().len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            let r = r.as_ref();
            assert_eq!(r.len(), cols, "ragged rows: {} vs {cols}", r.len());
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "row {i} out of bounds for {} rows", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(i < self.rows, "row {i} out of bounds for {} rows", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f32> {
        assert!(j < self.cols, "col {j} out of bounds for {} cols", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Flat row-major view of the underlying buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable row-major view of the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the flat row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix-vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(v, &mut out);
        out
    }

    /// Output-buffer form of [`Matrix::matvec`]: writes `self · v` into
    /// `out` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols` or `out.len() != rows`.
    pub fn matvec_into(&self, v: &[f32], out: &mut [f32]) {
        assert_eq!(v.len(), self.cols, "matvec shape mismatch");
        assert_eq!(out.len(), self.rows, "matvec output length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.row(i).iter().zip(v).map(|(a, b)| a * b).sum();
        }
    }

    /// Transposed matrix-vector product `selfᵀ · v` without materializing the
    /// transpose (this is the memory-read kernel `v_r = Mᵀ w_r`).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != rows`.
    pub fn matvec_t(&self, v: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        self.matvec_t_into(v, &mut out);
        out
    }

    /// Output-buffer form of [`Matrix::matvec_t`]: writes `selfᵀ · v` into
    /// `out` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != rows` or `out.len() != cols`.
    pub fn matvec_t_into(&self, v: &[f32], out: &mut [f32]) {
        assert_eq!(v.len(), self.rows, "matvec_t shape mismatch");
        assert_eq!(out.len(), self.cols, "matvec_t output length mismatch");
        out.fill(0.0);
        for (i, &w) in v.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            for (o, m) in out.iter_mut().zip(self.row(i)) {
                *o += w * m;
            }
        }
    }

    /// Matrix-matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Batched matrix product against a transposed right factor:
    /// `self · otherᵀ`, where `self` is `B × K` and `other` is `N × K`,
    /// yielding `B × N`.
    ///
    /// This is the batched form of [`Matrix::matvec`]: row `i` of the
    /// result equals `other.matvec(self.row(i))`, computed with the same
    /// per-row accumulation order, so driving `B` lanes through one
    /// `matmul_nt` is bit-identical to `B` separate `matvec` calls. The
    /// batched DNC path leans on this for the controller, interface and
    /// output projections (shared weights, per-lane activations).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        // The fully-active special case of the masked kernel — one loop
        // body, so unmasked and masked products are bit-identical by
        // construction.
        self.matmul_nt_masked(other, &crate::LaneMask::full(self.rows))
    }

    /// Output-buffer form of [`Matrix::matmul_nt`]: writes `self · otherᵀ`
    /// into `out` without allocating. `out` must already be
    /// `self.rows × other.rows` — pre-size it once and reuse it across
    /// steps (the steady-state stepping path).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols` or `out` has the wrong shape.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        self.assert_nt_shapes(other, out);
        for i in 0..self.rows {
            nt_row_into(self.row(i), other, out.row_mut(i));
        }
    }

    /// Shape checks shared by the `matmul_nt*_into` kernels (both the
    /// scalar ones here and the blocked ones in [`crate::backend`]).
    pub(crate) fn assert_nt_shapes(&self, other: &Matrix, out: &Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} vs {}x{}ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.rows),
            "matmul_nt output shape mismatch: {}x{} for a {}x{} product",
            out.rows,
            out.cols,
            self.rows,
            other.rows
        );
    }

    /// Masked form of [`Matrix::matmul_nt`] for ragged batches: row `i`
    /// of the result is computed iff `mask.is_active(i)`; inactive rows
    /// are **skipped** (left zero), not zeroed-and-recomputed — a lane
    /// whose sequence has ended costs nothing in the shared-weight
    /// projection.
    ///
    /// Active rows are bit-identical to [`Matrix::matmul_nt`] (same
    /// per-row accumulation order), so a fully-active mask reproduces
    /// the unmasked product exactly.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols` or `mask.lanes() != self.rows`.
    pub fn matmul_nt_masked(&self, other: &Matrix, mask: &crate::LaneMask) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_nt_masked_into(other, mask, &mut out);
        out
    }

    /// Output-buffer form of [`Matrix::matmul_nt_masked`]: `out` receives
    /// exactly what the allocating form returns — active rows computed,
    /// inactive rows zero — without allocating. `out` must already be
    /// `self.rows × other.rows`.
    ///
    /// The inner loop computes four output columns per pass so `lhs`
    /// stays hot in registers; each column's dot product keeps the exact
    /// `k`-order accumulation of [`Matrix::matvec`], so the kernel stays
    /// bit-compatible with per-lane stepping.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`, `mask.lanes() != self.rows`,
    /// or `out` has the wrong shape.
    pub fn matmul_nt_masked_into(&self, other: &Matrix, mask: &crate::LaneMask, out: &mut Matrix) {
        self.assert_nt_shapes(other, out);
        assert_eq!(mask.lanes(), self.rows, "lane mask size mismatch");
        for i in 0..self.rows {
            let dst = out.row_mut(i);
            if mask.is_active(i) {
                nt_row_into(self.row(i), other, dst);
            } else {
                // Inactive rows are zero, matching the allocating form
                // (stale scratch contents must not leak through).
                dst.fill(0.0);
            }
        }
    }

    /// Row-wise concatenation `[self | other]`: both operands must have
    /// the same row count; the result is `rows × (cols_a + cols_b)`.
    ///
    /// The batched DNC path uses this to form per-lane feature rows such
    /// as `[x_t ; v_r^{t-1}]` without per-lane `Vec` plumbing.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hcat(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.rows, b.rows, "hcat row mismatch: {} vs {}", a.rows, b.rows);
        let mut out = Matrix::zeros(a.rows, a.cols + b.cols);
        Self::hcat_into(a, b, &mut out);
        out
    }

    /// Output-buffer form of [`Matrix::hcat`]: writes `[a | b]` into
    /// `out` without allocating. `out` must already be
    /// `a.rows × (a.cols + b.cols)`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ or `out` has the wrong shape.
    pub fn hcat_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        assert_eq!(a.rows, b.rows, "hcat row mismatch: {} vs {}", a.rows, b.rows);
        assert_eq!(
            out.shape(),
            (a.rows, a.cols + b.cols),
            "hcat output shape mismatch: {}x{} for {}x{}",
            out.rows,
            out.cols,
            a.rows,
            a.cols + b.cols
        );
        for i in 0..a.rows {
            let dst = out.row_mut(i);
            dst[..a.cols].copy_from_slice(a.row(i));
            dst[a.cols..].copy_from_slice(b.row(i));
        }
    }

    /// Adds `bias` to every row in place (row-broadcast add) — the batched
    /// bias kernel.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_row_inplace(&mut self, bias: &[f32]) {
        self.add_row_inplace_masked(bias, &crate::LaneMask::full(self.rows));
    }

    /// Masked form of [`Matrix::add_row_inplace`]: adds `bias` only to
    /// the rows of active lanes, leaving inactive rows untouched.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols` or `mask.lanes() != rows`.
    pub fn add_row_inplace_masked(&mut self, bias: &[f32], mask: &crate::LaneMask) {
        assert_eq!(bias.len(), self.cols, "row-broadcast shape mismatch");
        assert_eq!(mask.lanes(), self.rows, "lane mask size mismatch");
        for i in 0..self.rows {
            if !mask.is_active(i) {
                continue;
            }
            for (x, b) in self.row_mut(i).iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Outer product `a ⊗ b` producing an `a.len() × b.len()` matrix.
    pub fn outer(a: &[f32], b: &[f32]) -> Matrix {
        Matrix::from_fn(a.len(), b.len(), |i, j| a[i] * b[j])
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Scalar multiple.
    pub fn scale(&self, k: f32) -> Matrix {
        let data = self.data.iter().map(|a| a * k).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// L2 norm of each row — the `‖M[i,·]‖` normalization step of
    /// content-based addressing.
    pub fn row_norms(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.rows];
        self.row_norms_into(&mut out);
        out
    }

    /// Output-buffer form of [`Matrix::row_norms`]: writes the per-row L2
    /// norms into `out` without allocating — the once-per-step norm cache
    /// refill of content addressing.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != rows`.
    pub fn row_norms_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.rows, "row_norms output length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.row(i).iter().map(|x| x * x).sum::<f32>().sqrt();
        }
    }

    /// Extracts the `rows × cols` submatrix whose top-left corner is
    /// `(row0, col0)`.
    ///
    /// # Panics
    ///
    /// Panics if the requested block exceeds the matrix bounds.
    pub fn submatrix(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> Matrix {
        assert!(row0 + rows <= self.rows && col0 + cols <= self.cols, "submatrix out of bounds");
        Matrix::from_fn(rows, cols, |i, j| self[(row0 + i, col0 + j)])
    }

    /// Writes `block` into this matrix with its top-left corner at
    /// `(row0, col0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the matrix bounds.
    pub fn set_submatrix(&mut self, row0: usize, col0: usize, block: &Matrix) {
        assert!(
            row0 + block.rows <= self.rows && col0 + block.cols <= self.cols,
            "set_submatrix out of bounds"
        );
        for i in 0..block.rows {
            for j in 0..block.cols {
                self[(row0 + i, col0 + j)] = block[(i, j)];
            }
        }
    }

    /// Maximum absolute element (∞-norm of the flattened matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, x| m.max(x.abs()))
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }
}

/// One output row of `lhs · otherᵀ`: `dst[j] = lhs · other.row(j)`.
///
/// Four output columns per pass so `lhs` stays hot in registers; each
/// column's dot product keeps the exact `k`-order accumulation of
/// [`Matrix::matvec`], so the kernel stays bit-compatible with per-lane
/// stepping.
fn nt_row_into(lhs: &[f32], other: &Matrix, dst: &mut [f32]) {
    let n = other.rows;
    let mut j = 0;
    while j + 4 <= n {
        let r0 = other.row(j);
        let r1 = other.row(j + 1);
        let r2 = other.row(j + 2);
        let r3 = other.row(j + 3);
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for (k, &l) in lhs.iter().enumerate() {
            // Per-element k-order accumulation identical to `matvec`;
            // only the j-traversal is widened.
            a0 += l * r0[k];
            a1 += l * r1[k];
            a2 += l * r2[k];
            a3 += l * r3[k];
        }
        dst[j] = a0;
        dst[j + 1] = a1;
        dst[j + 2] = a2;
        dst[j + 3] = a3;
        j += 4;
    }
    for (d, jr) in dst[j..].iter_mut().zip(j..n) {
        *d = lhs.iter().zip(other.row(jr)).map(|(a, b)| a * b).sum();
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ... ({} more rows)", self.rows - 8)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..], &[5.0, 6.0][..]]);
        assert_eq!(m.matvec(&[1.0, -1.0]), vec![-1.0, -1.0, -1.0]);
    }

    #[test]
    fn matvec_t_equals_transpose_matvec() {
        let m = Matrix::from_fn(5, 3, |i, j| (i * 3 + j) as f32 * 0.25 - 1.0);
        let v = [0.5, -1.0, 2.0, 0.0, 1.0];
        assert_close(&m.matvec_t(&v), &m.transpose().matvec(&v), 1e-6);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = Matrix::from_fn(4, 4, |i, j| (i + 2 * j) as f32);
        let i4 = Matrix::identity(4);
        assert_eq!(m.matmul(&i4), m);
        assert_eq!(i4.matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0][..], &[7.0, 8.0][..]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn outer_product_shape_and_values() {
        let m = Matrix::outer(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 10.0);
    }

    #[test]
    fn hadamard_add_sub() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0][..]]);
        assert_eq!(a.hadamard(&b).as_slice(), &[3.0, 8.0]);
        assert_eq!(a.add(&b).as_slice(), &[4.0, 6.0]);
        assert_eq!(b.sub(&a).as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn row_norms_unit_rows() {
        let m = Matrix::from_rows(&[&[3.0, 4.0][..], &[0.0, 0.0][..]]);
        assert_close(&m.row_norms(), &[5.0, 0.0], 1e-6);
    }

    #[test]
    fn submatrix_and_set_submatrix_round_trip() {
        let m = Matrix::from_fn(6, 6, |i, j| (i * 6 + j) as f32);
        let block = m.submatrix(2, 3, 2, 2);
        assert_eq!(block.as_slice(), &[15.0, 16.0, 21.0, 22.0]);
        let mut n = Matrix::zeros(6, 6);
        n.set_submatrix(2, 3, &block);
        assert_eq!(n[(2, 3)], 15.0);
        assert_eq!(n[(3, 4)], 22.0);
        assert_eq!(n[(0, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "matvec shape mismatch")]
    fn matvec_rejects_bad_shape() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn from_rows_rejects_ragged() {
        Matrix::from_rows(&[&[1.0, 2.0][..], &[1.0][..]]);
    }

    #[test]
    fn masked_matmul_nt_skips_inactive_rows_and_matches_active_ones() {
        let a = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f32 * 0.5 - 1.0);
        let w = Matrix::from_fn(5, 3, |i, j| ((i + 2 * j) as f32).sin());
        let full = a.matmul_nt(&w);
        let mask = crate::LaneMask::from(vec![true, false, true, false]);
        let masked = a.matmul_nt_masked(&w, &mask);
        for i in 0..4 {
            if mask.is_active(i) {
                assert_eq!(masked.row(i), full.row(i), "active row {i} must be bit-equal");
            } else {
                assert!(masked.row(i).iter().all(|&x| x == 0.0), "inactive row {i} skipped");
            }
        }
        // A full mask reproduces the unmasked product exactly.
        assert_eq!(a.matmul_nt_masked(&w, &crate::LaneMask::full(4)), full);
    }

    #[test]
    fn masked_add_row_inplace_leaves_inactive_rows() {
        let mut m = Matrix::filled(3, 2, 1.0);
        m.add_row_inplace_masked(&[0.5, -0.5], &crate::LaneMask::from(vec![true, false, true]));
        assert_eq!(m.row(0), &[1.5, 0.5]);
        assert_eq!(m.row(1), &[1.0, 1.0]);
        assert_eq!(m.row(2), &[1.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "lane mask size mismatch")]
    fn masked_matmul_nt_rejects_wrong_mask_length() {
        Matrix::zeros(2, 3).matmul_nt_masked(&Matrix::zeros(4, 3), &crate::LaneMask::full(3));
    }

    #[test]
    fn into_kernels_are_bit_identical_to_allocating_forms() {
        // The `_into` variants are the steady-state hot path; the
        // allocating forms wrap them, so equality here pins both the
        // wrappers and stale-scratch clearing.
        let a = Matrix::from_fn(5, 7, |i, j| ((i * 7 + j) as f32 * 0.23).sin());
        let w = Matrix::from_fn(11, 7, |i, j| ((i + 3 * j) as f32 * 0.31).cos());
        let mask = crate::LaneMask::from(vec![true, false, true, true, false]);

        let mut out = Matrix::filled(5, 11, f32::NAN); // stale scratch
        a.matmul_nt_masked_into(&w, &mask, &mut out);
        assert_eq!(out, a.matmul_nt_masked(&w, &mask));

        let mut out = Matrix::filled(5, 11, f32::NAN);
        a.matmul_nt_into(&w, &mut out);
        assert_eq!(out, a.matmul_nt(&w));

        let b = Matrix::from_fn(5, 3, |i, j| (i + j) as f32);
        let mut cat = Matrix::filled(5, 10, f32::NAN);
        Matrix::hcat_into(&a, &b, &mut cat);
        assert_eq!(cat, Matrix::hcat(&a, &b));

        let v7: Vec<f32> = (0..7).map(|i| (i as f32 * 0.7).sin()).collect();
        let mut mv = vec![f32::NAN; 5];
        a.matvec_into(&v7, &mut mv);
        assert_eq!(mv, a.matvec(&v7));

        let v5: Vec<f32> = (0..5).map(|i| (i as f32 * 0.9).cos()).collect();
        let mut mvt = vec![f32::NAN; 7];
        a.matvec_t_into(&v5, &mut mvt);
        assert_eq!(mvt, a.matvec_t(&v5));

        let mut norms = vec![f32::NAN; 5];
        a.row_norms_into(&mut norms);
        assert_eq!(norms, a.row_norms());
    }

    #[test]
    fn unrolled_matmul_nt_handles_non_multiple_of_four_widths() {
        // Exercise the 4-wide unroll remainder: output widths 1..=9
        // against the matvec reference, element for element.
        for n in 1..=9usize {
            let a = Matrix::from_fn(3, 5, |i, j| ((i * 5 + j) as f32 * 0.17).sin());
            let w = Matrix::from_fn(n, 5, |i, j| ((i * 2 + j) as f32 * 0.29).cos());
            let got = a.matmul_nt(&w);
            for i in 0..3 {
                assert_eq!(got.row(i), &w.matvec(a.row(i))[..], "rows={n} lane={i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "matmul_nt output shape mismatch")]
    fn matmul_nt_into_rejects_wrong_output_shape() {
        let a = Matrix::zeros(2, 3);
        let w = Matrix::zeros(4, 3);
        a.matmul_nt_masked_into(&w, &crate::LaneMask::full(2), &mut Matrix::zeros(2, 3));
    }

    #[test]
    fn col_extracts_column() {
        let m = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn scale_and_map() {
        let mut m = Matrix::filled(2, 2, 2.0);
        assert_eq!(m.scale(0.5).as_slice(), &[1.0; 4]);
        m.map_inplace(|x| x * x);
        assert_eq!(m.as_slice(), &[4.0; 4]);
    }

    #[test]
    fn max_abs_and_sum() {
        let m = Matrix::from_rows(&[&[-3.0, 1.0][..], &[2.0, -0.5][..]]);
        assert_eq!(m.max_abs(), 3.0);
        assert_eq!(m.sum(), -0.5);
    }
}
