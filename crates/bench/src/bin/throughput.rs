//! Batched-path throughput through the unified `MemoryEngine` API:
//! lane-steps/sec at batch sizes {1, 8, 32, 128}, at 1 thread and at all
//! machine threads, against the sequential single-lane loop — plus a
//! topology × datapath sweep driven from the same code path.
//!
//! Three effects are measured:
//!
//! * **batching** — the controller/interface/output projections run as one
//!   shared-weight `B × K · Wᵀ` product per step instead of `B` mat-vecs
//!   (visible already at 1 thread),
//! * **lane × shard parallelism** — the independent memory units (all
//!   `B × N_t` of them for a sharded engine) fan out across rayon worker
//!   threads as one flat task grid (visible in the N-thread column),
//! * **datapath cost** — the fixed-point engines pay a rounding pass per
//!   step, the price of modeling the hardware number format.
//!
//! Every engine here is built by `EngineBuilder` and stepped through
//! `MemoryEngine`; batched and sequential paths are bit-compatible
//! (conformance suite in `crates/dnc/tests/conformance.rs`), so every
//! speedup reported is a pure execution-path win.

use hima::prelude::*;
use hima::tensor::{Matrix, QFormat};
use rayon::ThreadPoolBuilder;
use std::time::{Duration, Instant};

const BATCH_SIZES: [usize; 4] = [1, 8, 32, 128];
const SWEEP_BATCH: usize = 32;
const MEASURE: Duration = Duration::from_millis(400);

fn params() -> DncParams {
    DncParams::new(128, 16, 2).with_hidden(64).with_io(16, 16)
}

fn builder() -> EngineBuilder {
    EngineBuilder::new(params()).seed(7)
}

/// One `B × input` token block with per-lane variation.
fn input_block(batch: usize, width: usize, t: usize) -> Matrix {
    Matrix::from_fn(batch, width, |b, i| (((b * 131 + t * 17 + i * 7) as f32) * 0.13).sin())
}

/// Lane-steps/sec of the sequential path: `batch` independent single-lane
/// engines stepped one after another.
fn sequential_rate(base: &EngineBuilder, batch: usize) -> f64 {
    let mut models: Vec<BoxedEngine> = (0..batch).map(|_| base.clone().lanes(1).build()).collect();
    let width = params().input_size;
    // Warm-up step primes allocations.
    for (b, m) in models.iter_mut().enumerate() {
        m.step(input_block(batch, width, 0).row(b));
    }
    let start = Instant::now();
    let mut t = 1usize;
    while start.elapsed() < MEASURE {
        let x = input_block(batch, width, t);
        for (b, m) in models.iter_mut().enumerate() {
            m.step(x.row(b));
        }
        t += 1;
    }
    (t - 1) as f64 * batch as f64 / start.elapsed().as_secs_f64()
}

/// Lane-steps/sec of the batched path at a given worker-thread count.
fn batched_rate(base: &EngineBuilder, batch: usize, threads: usize) -> f64 {
    let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
    let mut model = base.clone().lanes(batch).build();
    let width = params().input_size;
    pool.install(|| {
        model.step_batch(&input_block(batch, width, 0));
        let start = Instant::now();
        let mut t = 1usize;
        while start.elapsed() < MEASURE {
            model.step_batch(&input_block(batch, width, t));
            t += 1;
        }
        (t - 1) as f64 * batch as f64 / start.elapsed().as_secs_f64()
    })
}

fn main() {
    let machine_threads = std::thread::available_parallelism().map_or(1, usize::from);
    let p = params();
    hima_bench::header(&format!(
        "Batched DNC throughput — N={} W={} R={} H={}, {} machine threads",
        p.memory_size, p.word_size, p.read_heads, p.hidden_size, machine_threads
    ));

    println!(
        "{:>6} {:>16} {:>16} {:>16} {:>10} {:>10}",
        "batch", "seq steps/s", "batch@1T", &format!("batch@{machine_threads}T"), "x @1T", "x @NT"
    );
    let mono = builder();
    for &batch in &BATCH_SIZES {
        let seq = sequential_rate(&mono, batch);
        let one = batched_rate(&mono, batch, 1);
        let many =
            if machine_threads > 1 { batched_rate(&mono, batch, machine_threads) } else { one };
        println!(
            "{:>6} {:>16.0} {:>16.0} {:>16.0} {:>10} {:>10}",
            batch,
            seq,
            one,
            many,
            hima_bench::times(one / seq),
            hima_bench::times(many / seq),
        );
    }
    println!(
        "\nlane-steps/sec; 'x' columns are speedup of the batched path over\n\
         the sequential per-example loop at the same batch size."
    );

    hima_bench::header(&format!(
        "Topology × datapath sweep at B = {SWEEP_BATCH} — one MemoryEngine code path"
    ));
    let q = QFormat::q16_16();
    let sweep: [(&str, EngineBuilder); 4] = [
        ("monolithic / f32", builder()),
        ("sharded(4) / f32", builder().sharded(4)),
        ("monolithic / Q16.16", builder().quantized(q)),
        ("sharded(4) / Q16.16", builder().sharded(4).quantized(q)),
    ];
    println!(
        "{:<22} {:>16} {:>16} {:>10}",
        "engine", "lane-steps @1T", &format!("@{machine_threads}T"), "x threads"
    );
    for (label, b) in &sweep {
        let one = batched_rate(b, SWEEP_BATCH, 1);
        let many =
            if machine_threads > 1 { batched_rate(b, SWEEP_BATCH, machine_threads) } else { one };
        println!(
            "{:<22} {:>16.0} {:>16.0} {:>10}",
            label,
            one,
            many,
            hima_bench::times(many / one)
        );
    }
    println!(
        "\nThe sharded rows fan a {SWEEP_BATCH} × 4 lane × shard task grid across\n\
         threads; the Q16.16 rows pay the per-step state-rounding pass of the\n\
         fixed-point datapath model."
    );
}
