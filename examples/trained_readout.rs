//! Trained readout + bAbI text format: the full data pipeline a downstream
//! user would run on the real dataset.
//!
//! 1. Parse bAbI-format text (an embedded sample here; point
//!    `hima-cli babi <file>` at real task files).
//! 2. Build a vocabulary and encode stories into episodes.
//! 3. Train a reservoir-style linear readout on the DNC's read vectors.
//! 4. Compare DNC and DNC-D retrieval on the synthetic 20-task suite.
//!
//! Run with `cargo run --release --example trained_readout`.

use hima::dnc::DncParams;
use hima::tasks::tasks::TOKEN_WIDTH;
use hima::tasks::train::{
    collect_query_samples, mean_accuracy, readout_accuracy, trained_accuracy, TrainedReadout,
};
use hima::tasks::{encode_story, parse_stories, Vocabulary, TASKS};
use hima::prelude::*;

const SAMPLE: &str = "\
1 Mary moved to the bathroom.
2 John went to the hallway.
3 Where is Mary?\tbathroom\t1
1 Daniel travelled to the office.
2 Sandra took the football.
3 Where is Daniel?\toffice\t1
";

fn main() {
    // ---------------------------------------------------------------
    // 1-2. bAbI format -> episodes.
    // ---------------------------------------------------------------
    println!("== bAbI text format ==");
    let stories = parse_stories(SAMPLE).expect("well-formed sample");
    let vocab = Vocabulary::build(&stories);
    println!("parsed {} stories, vocabulary of {} words", stories.len(), vocab.len());
    for story in &stories {
        let enc = encode_story(story, &vocab);
        println!(
            "  story: {} steps, {} queries, episode width {}",
            enc.episode.len(),
            enc.episode.query_steps.len(),
            enc.episode.width()
        );
    }

    // ---------------------------------------------------------------
    // 3. Train a readout on one synthetic task.
    // ---------------------------------------------------------------
    println!("\n== Reservoir-style trained readout (task 1: single supporting fact) ==");
    let params = DncParams::new(64, 16, 2).with_hidden(32).with_io(TOKEN_WIDTH, TOKEN_WIDTH);
    let task = &TASKS[0];
    let train_eps = task.generate(30, 11).episodes;
    let eval_eps = task.generate(10, 12).episodes;

    let dnc = EngineBuilder::new(params).seed(21);
    let (x, y) = collect_query_samples(&dnc, &train_eps);
    println!("collected {} training samples of dim {}", x.rows(), x.cols());
    let readout = TrainedReadout::fit(&x, &y, 1e-2);
    let acc = readout_accuracy(&dnc, &readout, &eval_eps);
    println!("DNC retrieval accuracy: {:.1}% (chance 8.3%)", acc * 100.0);

    // ---------------------------------------------------------------
    // 4. DNC vs DNC-D across the suite.
    // ---------------------------------------------------------------
    println!("\n== DNC vs DNC-D trained retrieval across the 20-task suite ==");
    for tiles in [2usize, 8] {
        let rows = trained_accuracy(params, tiles, 2021, 16, 6, 1e-2);
        let (a, b) = mean_accuracy(&rows);
        println!("  N_t = {tiles}: DNC {:.1}%  DNC-D {:.1}%", a * 100.0, b * 100.0);
    }
    println!("\n(untrained reservoir keys make absolute retrieval weak; the relative-");
    println!("divergence harness in `hima-tasks::eval` is the primary Fig. 10 metric)");
}
