//! Std-only session persistence for the HiMA serve stack: versioned
//! snapshots plus a CRC-guarded append-only delta log, combined into
//! snapshot + replay recovery.
//!
//! The serve scheduler parks cold sessions off the engine grid; this
//! crate lets it go one step further and spill them to disk, then
//! recover them — across a process restart or a kill — bit-for-bit.
//! Durability comes from two complementary files per session:
//!
//! * a **snapshot** ([`snapshot`]): the complete serialized engine lane
//!   state at a known step count, written atomically (tmp + rename) and
//!   CRC-verified on read, and
//! * a **delta log** ([`log`]): an append-only record of every step
//!   input since, each record CRC-guarded and self-delimiting, with a
//!   reader that is total over torn tails.
//!
//! [`SessionStore`] ties them together under one directory and makes
//! compaction (snapshot, then truncate the log) crash-safe: recovery
//! replays only records with `seq > snapshot.step_seq`, so a log that
//! survives a crashed compaction replays to nothing.
//!
//! The crate is deliberately ignorant of what the state bytes *mean* —
//! sessions are keyed by an opaque canonical spec key and store opaque
//! state payloads, so the dependency points from the serve stack to
//! here, never back.
//!
//! # Example
//!
//! ```
//! use hima_store::SessionStore;
//!
//! let dir = std::env::temp_dir().join(format!("hima-store-doc-{}", std::process::id()));
//! let store = SessionStore::open(&dir)?;
//!
//! // Log two steps, snapshot at step 2 (compacts the log), log one more.
//! let mut log = store.log_writer(1, b"spec-key")?;
//! log.append(1, &[0.5, -0.5])?;
//! log.append(2, &[1.0, 0.0])?;
//! drop(log);
//! store.save_snapshot(1, b"spec-key", 2, b"engine-state-bytes")?;
//! store.log_writer(1, b"spec-key")?.append(3, &[0.25, 0.75])?;
//!
//! // Recovery: decode the snapshot, then replay only step 3.
//! let rec = store.load(1)?.unwrap();
//! assert_eq!(rec.snapshot.as_ref().unwrap().step_seq, 2);
//! assert_eq!(rec.replay_steps().map(|s| s.seq).collect::<Vec<_>>(), vec![3]);
//! # store.remove(1)?;
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod crc;
pub mod log;
pub mod snapshot;
pub mod store;

pub use crc::{crc32, Crc32};
pub use log::{read_log, LogContents, LogWriter, StepRecord};
pub use snapshot::Snapshot;
pub use store::{SessionRecord, SessionStore, StoreError};
