//! Property-based tests for the tensor substrate.

use hima_tensor::{fixed::Fixed, matrix::Matrix, softmax::PlaSoftmax, vector, softmax, Backend, LaneMask};
use proptest::prelude::*;

fn small_f32() -> impl Strategy<Value = f32> {
    // Bounded values keep float associativity error far below test tolerances.
    (-100.0f32..100.0).prop_map(|x| (x * 16.0).round() / 16.0)
}

fn vec_f32(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(small_f32(), len)
}

proptest! {
    #[test]
    fn transpose_is_involution(rows in 1usize..8, cols in 1usize..8, seed in 0u64..1000) {
        let m = Matrix::from_fn(rows, cols, |i, j| ((i * 31 + j * 17 + seed as usize) % 97) as f32 - 48.0);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matvec_t_agrees_with_explicit_transpose(rows in 1usize..10, cols in 1usize..10, seed in 0u64..1000) {
        let m = Matrix::from_fn(rows, cols, |i, j| ((i * 13 + j * 7 + seed as usize) % 51) as f32 * 0.125 - 3.0);
        let v: Vec<f32> = (0..rows).map(|i| ((i * 29 + seed as usize) % 23) as f32 * 0.25 - 2.0).collect();
        let a = m.matvec_t(&v);
        let b = m.transpose().matvec(&v);
        prop_assert!(hima_tensor::all_close(&a, &b, 1e-3));
    }

    #[test]
    fn matmul_distributes_over_add(n in 1usize..6, seed in 0u64..500) {
        let a = Matrix::from_fn(n, n, |i, j| ((i + 3 * j + seed as usize) % 11) as f32 - 5.0);
        let b = Matrix::from_fn(n, n, |i, j| ((2 * i + j + seed as usize) % 7) as f32 - 3.0);
        let c = Matrix::from_fn(n, n, |i, j| ((i * j + seed as usize) % 5) as f32 - 2.0);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(hima_tensor::all_close(lhs.as_slice(), rhs.as_slice(), 1e-3));
    }

    #[test]
    fn softmax_is_a_distribution(xs in vec_f32(1..32)) {
        let p = softmax(&xs);
        prop_assert_eq!(p.len(), xs.len());
        prop_assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn softmax_preserves_argmax(xs in vec_f32(2..16)) {
        let p = softmax(&xs);
        let argmax_x = (0..xs.len()).max_by(|&a, &b| xs[a].partial_cmp(&xs[b]).unwrap()).unwrap();
        let argmax_p = (0..p.len()).max_by(|&a, &b| p[a].partial_cmp(&p[b]).unwrap()).unwrap();
        prop_assert!((xs[argmax_x] - xs[argmax_p]).abs() < 1e-6);
    }

    #[test]
    fn pla_softmax_is_a_distribution(xs in vec_f32(1..32)) {
        let p = PlaSoftmax::default().softmax(&xs);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-5).contains(&x)));
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn pla_softmax_tracks_exact(xs in prop::collection::vec(-4.0f32..4.0, 2..16)) {
        let exact = softmax(&xs);
        let approx = PlaSoftmax::default().softmax(&xs);
        for (e, a) in exact.iter().zip(&approx) {
            prop_assert!((e - a).abs() < 0.03, "exact {} vs approx {}", e, a);
        }
    }

    #[test]
    fn fixed_round_trip_error_bounded(x in -30000.0f32..30000.0) {
        let err = (Fixed::from_f32(x).to_f32() - x).abs();
        prop_assert!(err <= Fixed::resolution());
    }

    #[test]
    fn fixed_add_commutes(a in -1000.0f32..1000.0, b in -1000.0f32..1000.0) {
        let fa = Fixed::from_f32(a);
        let fb = Fixed::from_f32(b);
        prop_assert_eq!(fa + fb, fb + fa);
    }

    #[test]
    fn fixed_mul_commutes(a in -100.0f32..100.0, b in -100.0f32..100.0) {
        let fa = Fixed::from_f32(a);
        let fb = Fixed::from_f32(b);
        prop_assert_eq!(fa * fb, fb * fa);
    }

    #[test]
    fn fixed_mul_error_bounded(a in -100.0f32..100.0, b in -100.0f32..100.0) {
        let prod = (Fixed::from_f32(a) * Fixed::from_f32(b)).to_f32();
        // Error ≤ input quantization amplified by the operand magnitudes
        // plus one output rounding step.
        let bound = Fixed::resolution() * (a.abs() + b.abs() + 1.0);
        prop_assert!((prod - a * b).abs() <= bound, "{} * {} = {} (err bound {})", a, b, prod, bound);
    }

    #[test]
    fn argsort_produces_sorted_permutation(xs in vec_f32(0..64)) {
        let idx = vector::argsort_ascending(&xs);
        // Is a permutation.
        let mut seen = vec![false; xs.len()];
        for &i in &idx {
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
        // Is sorted.
        for w in idx.windows(2) {
            prop_assert!(xs[w[0]] <= xs[w[1]]);
        }
    }

    #[test]
    fn prefix_product_recurrence(xs in prop::collection::vec(0.0f32..1.0, 1..32)) {
        let p = vector::exclusive_prefix_product(&xs);
        prop_assert_eq!(p.len(), xs.len());
        prop_assert_eq!(p[0], 1.0);
        for i in 1..p.len() {
            prop_assert!((p[i] - p[i - 1] * xs[i - 1]).abs() < 1e-5);
        }
    }

    #[test]
    fn row_norms_nonnegative(rows in 1usize..8, cols in 1usize..8, seed in 0u64..100) {
        let m = Matrix::from_fn(rows, cols, |i, j| ((i * 7 + j * 3 + seed as usize) % 19) as f32 - 9.0);
        for n in m.row_norms() {
            prop_assert!(n >= 0.0);
        }
    }
}

// --- Batched row-block kernels ------------------------------------------
//
// The batched execution path stacks B independent lanes as matrix rows;
// these properties pin the row-block kernels to their per-lane
// equivalents (`matmul_nt` vs repeated `matvec`, `softmax_rows` vs
// per-row `softmax`, row-broadcast bias vs scalar adds).

proptest! {
    #[test]
    fn matmul_nt_equals_repeated_matvec(
        b in prop::sample::select(vec![1usize, 3, 8]),
        n in 1usize..8,
        k in 1usize..8,
        seed in 0u64..200,
    ) {
        let x = Matrix::from_fn(b, k, |i, j| ((i * 31 + j * 7 + seed as usize) % 23) as f32 * 0.25 - 2.0);
        let w = Matrix::from_fn(n, k, |i, j| ((i * 13 + j * 11 + seed as usize) % 19) as f32 * 0.125 - 1.0);
        let out = x.matmul_nt(&w);
        prop_assert_eq!(out.shape(), (b, n));
        for lane in 0..b {
            let want = w.matvec(x.row(lane));
            prop_assert_eq!(out.row(lane), &want[..], "lane {} differs", lane);
        }
    }

    #[test]
    fn matmul_nt_equals_matmul_of_transpose(n in 1usize..7, k in 1usize..7, seed in 0u64..100) {
        let a = Matrix::from_fn(n, k, |i, j| ((i * 5 + j * 3 + seed as usize) % 13) as f32 - 6.0);
        let bm = Matrix::from_fn(n, k, |i, j| ((i * 7 + j * 11 + seed as usize) % 17) as f32 - 8.0);
        let fast = a.matmul_nt(&bm);
        let slow = a.matmul(&bm.transpose());
        prop_assert!(hima_tensor::all_close(fast.as_slice(), slow.as_slice(), 1e-3));
    }

    #[test]
    fn hcat_preserves_rows(rows in 1usize..6, ca in 1usize..6, cb in 1usize..6, seed in 0u64..50) {
        let a = Matrix::from_fn(rows, ca, |i, j| (i * 10 + j + seed as usize) as f32);
        let b = Matrix::from_fn(rows, cb, |i, j| -((i * 10 + j + seed as usize) as f32));
        let c = Matrix::hcat(&a, &b);
        prop_assert_eq!(c.shape(), (rows, ca + cb));
        for i in 0..rows {
            prop_assert_eq!(&c.row(i)[..ca], a.row(i));
            prop_assert_eq!(&c.row(i)[ca..], b.row(i));
        }
    }

    #[test]
    fn softmax_rows_equals_per_row_softmax(rows in 1usize..6, cols in 1usize..9, seed in 0u64..100) {
        let m = Matrix::from_fn(rows, cols, |i, j| ((i * 17 + j * 29 + seed as usize) % 31) as f32 * 0.2 - 3.0);
        let mut batched = m.clone();
        hima_tensor::softmax_rows(&mut batched);
        for i in 0..rows {
            let want = softmax(m.row(i));
            prop_assert!(hima_tensor::all_close(batched.row(i), &want, 1e-6), "row {}", i);
            prop_assert!((batched.row(i).iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn add_row_inplace_broadcasts(rows in 1usize..6, cols in 1usize..8, seed in 0u64..50) {
        let mut m = Matrix::from_fn(rows, cols, |i, j| (i * 3 + j + seed as usize) as f32);
        let bias: Vec<f32> = (0..cols).map(|j| j as f32 * 0.5 - 1.0).collect();
        let before = m.clone();
        m.add_row_inplace(&bias);
        for i in 0..rows {
            for j in 0..cols {
                prop_assert_eq!(m[(i, j)], before[(i, j)] + bias[j]);
            }
        }
    }
}

// --- Blocked backend vs scalar reference ---------------------------------
//
// The blocked tier re-associates reductions, so equality is a *relative*
// error bound scaled by the sum of absolute summands (the standard
// O(n·ε·Σ|xᵢ|) recursive-summation bound, with generous slack). Random
// shapes deliberately straddle the 8-lane and 32-element block widths so
// every tail path is exercised.

/// Relative bound for one re-associated reduction over summands whose
/// absolute sum is `abs_scale`.
fn reduction_tol(abs_scale: f32) -> f32 {
    1e-4 * (1.0 + abs_scale)
}

proptest! {
    #[test]
    fn blocked_matmul_nt_masked_tracks_scalar(
        b in 1usize..12,
        n in 1usize..20,
        k in 1usize..70,
        seed in 0u64..200,
    ) {
        let x = Matrix::from_fn(b, k, |i, j| ((i * 31 + j * 7 + seed as usize) % 23) as f32 * 0.25 - 2.0);
        let w = Matrix::from_fn(n, k, |i, j| ((i * 13 + j * 11 + seed as usize) % 19) as f32 * 0.125 - 1.0);
        let mask =
            LaneMask::from((0..b).map(|i| !(i + seed as usize).is_multiple_of(3)).collect::<Vec<_>>());
        let mut scalar = Matrix::filled(b, n, f32::NAN);
        let mut blocked = Matrix::filled(b, n, f32::NAN);
        Backend::Scalar.matmul_nt_masked_into(&x, &w, &mask, &mut scalar);
        Backend::Blocked.matmul_nt_masked_into(&x, &w, &mask, &mut blocked);
        for i in 0..b {
            for j in 0..n {
                let scale: f32 = x.row(i).iter().zip(w.row(j)).map(|(a, b)| (a * b).abs()).sum();
                let tol = reduction_tol(scale);
                prop_assert!(
                    (scalar[(i, j)] - blocked[(i, j)]).abs() <= tol,
                    "({}, {}): {} vs {} (tol {})", i, j, scalar[(i, j)], blocked[(i, j)], tol
                );
            }
        }
    }

    #[test]
    fn blocked_row_norms_track_scalar(rows in 1usize..16, cols in 1usize..70, seed in 0u64..200) {
        let m = Matrix::from_fn(rows, cols, |i, j| ((i * 7 + j * 3 + seed as usize) % 19) as f32 * 0.5 - 4.5);
        let mut scalar = vec![f32::NAN; rows];
        let mut blocked = vec![f32::NAN; rows];
        Backend::Scalar.row_norms_into(&m, &mut scalar);
        Backend::Blocked.row_norms_into(&m, &mut blocked);
        for i in 0..rows {
            let scale: f32 = m.row(i).iter().map(|x| x * x).sum();
            let tol = reduction_tol(scale);
            prop_assert!((scalar[i] - blocked[i]).abs() <= tol, "row {}: {} vs {}", i, scalar[i], blocked[i]);
        }
    }

    #[test]
    fn blocked_softmax_tracks_scalar(xs in prop::collection::vec(-8.0f32..8.0, 1..70)) {
        let mut scalar = xs.clone();
        let mut blocked = xs.clone();
        Backend::Scalar.softmax_inplace(&mut scalar);
        Backend::Blocked.softmax_inplace(&mut blocked);
        // Probabilities are ≤ 1, so an absolute bound is also relative.
        prop_assert!(hima_tensor::all_close(&scalar, &blocked, 1e-5));
        prop_assert!((blocked.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn blocked_matvec_t_is_bit_identical(rows in 1usize..16, cols in 1usize..70, seed in 0u64..100) {
        // The transpose mat-vec is an elementwise axpy sweep on both
        // tiers — same per-element expression, so exactly equal.
        let m = Matrix::from_fn(rows, cols, |i, j| ((i * 11 + j * 5 + seed as usize) % 17) as f32 * 0.25 - 2.0);
        let v: Vec<f32> = (0..rows).map(|i| ((i * 3 + seed as usize) % 7) as f32 * 0.5 - 1.5).collect();
        let mut scalar = vec![f32::NAN; cols];
        let mut blocked = vec![f32::NAN; cols];
        Backend::Scalar.matvec_t_into(&m, &v, &mut scalar);
        Backend::Blocked.matvec_t_into(&m, &v, &mut blocked);
        prop_assert_eq!(scalar, blocked);
    }
}
