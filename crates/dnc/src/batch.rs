//! Batched, data-parallel execution of the DNC and DNC-D models.
//!
//! The single-example [`Dnc::step`](crate::Dnc::step) path processes one
//! token through one set of state memories. Serving-style workloads run
//! *many independent sequences* through the **same weights**, which admits
//! two structural speedups:
//!
//! 1. **Shared-weight batching** — the controller, interface and output
//!    projections become one `B × K` by `N × K`ᵀ product per step
//!    ([`hima_tensor::Matrix::matmul_nt`]) instead of `B` mat-vecs, and
//!    the LSTM gates are activated as whole `B × H` row-blocks
//!    ([`crate::lstm::Lstm::step_batch`]).
//! 2. **Lane data-parallelism** — each lane's memory unit (content
//!    addressing, usage sort, linkage, soft read/write) is independent of
//!    every other lane's, so lanes fan out across threads with rayon.
//!
//! Both [`BatchDnc`] and [`BatchDncD`] are **bit-compatible** with running
//! their `B` lanes through the sequential models: the batched kernels use
//! the same per-row accumulation order as `matvec`, and the per-lane
//! memory step is the very same [`MemoryUnit`] code. The equivalence is
//! property-tested in `crates/dnc/tests/properties.rs`, which keeps the
//! engine's cycle model and the Fig. 10 accuracy harness valid on top of
//! the batched path.

use crate::dnc::Dnc;
use crate::distributed::{DncD, ReadMerge};
use crate::interface::InterfaceVector;
use crate::lstm::{Lstm, LstmState};
use crate::memory::{MemoryConfig, MemoryUnit};
use crate::profile::KernelProfile;
use crate::DncParams;
use hima_tensor::Matrix;
use rayon::prelude::*;

/// One batch lane of a centralized DNC: the lane-private memory unit plus
/// the lane's last flattened read vector.
#[derive(Debug, Clone)]
struct Lane {
    memory: MemoryUnit,
    read: Vec<f32>,
}

/// `B` independent DNC lanes sharing one set of weights.
///
/// Lanes start from blank (reset) state; the weights are identical to a
/// [`Dnc`] constructed with the same parameters and seed, so lane `b` of
/// [`BatchDnc::step_batch`] reproduces `Dnc::step` on lane `b`'s input
/// stream exactly.
///
/// # Example
///
/// ```
/// use hima_dnc::{BatchDnc, Dnc, DncParams};
/// use hima_tensor::Matrix;
///
/// let params = DncParams::new(16, 4, 1).with_io(3, 3);
/// let mut batch = BatchDnc::new(params, 2, 7);
/// let x = Matrix::from_rows(&[&[1.0, 0.0, 0.0][..], &[0.0, 1.0, 0.0][..]]);
/// let y = batch.step_batch(&x);
/// assert_eq!(y.shape(), (2, 3));
///
/// // Lane 0 matches a sequential DNC fed lane 0's input.
/// let mut dnc = Dnc::new(params, 7);
/// let y0 = dnc.step(&[1.0, 0.0, 0.0]);
/// hima_tensor::assert_close(y.row(0), &y0, 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct BatchDnc {
    params: DncParams,
    controller: Lstm,
    interface_proj: Matrix,
    output_proj: Matrix,
    lstm_states: Vec<LstmState>,
    lanes: Vec<Lane>,
    last_read: Matrix,
    last_hidden: Matrix,
}

impl BatchDnc {
    /// Creates `batch` blank lanes with weights identical to
    /// `Dnc::new(params, seed)` and an exact memory unit per lane.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn new(params: DncParams, batch: usize, seed: u64) -> Self {
        let mem_cfg = MemoryConfig::new(params.memory_size, params.word_size, params.read_heads);
        Self::with_memory_config(params, mem_cfg, batch, seed)
    }

    /// Creates `batch` blank lanes with weights identical to
    /// `Dnc::with_memory_config(params, mem_cfg, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or the memory geometry disagrees with
    /// `params`.
    pub fn with_memory_config(
        params: DncParams,
        mem_cfg: MemoryConfig,
        batch: usize,
        seed: u64,
    ) -> Self {
        // Reuse the sequential constructor so weight init stays defined in
        // exactly one place.
        Dnc::with_memory_config(params, mem_cfg, seed).batched(batch)
    }

    /// Internal constructor used by [`Dnc::batched`]: shares weights with
    /// an existing model and starts every lane blank.
    pub(crate) fn from_parts(
        params: DncParams,
        controller: Lstm,
        interface_proj: Matrix,
        output_proj: Matrix,
        mem_cfg: MemoryConfig,
        batch: usize,
    ) -> Self {
        assert!(batch > 0, "need at least one batch lane");
        let read_width = params.read_heads * params.word_size;
        let lanes = (0..batch)
            .map(|_| Lane { memory: MemoryUnit::new(mem_cfg), read: vec![0.0; read_width] })
            .collect();
        Self {
            params,
            controller,
            interface_proj,
            output_proj,
            lstm_states: vec![LstmState::zeros(params.hidden_size); batch],
            lanes,
            last_read: Matrix::zeros(batch, read_width),
            last_hidden: Matrix::zeros(batch, params.hidden_size),
        }
    }

    /// Number of batch lanes `B`.
    pub fn batch(&self) -> usize {
        self.lanes.len()
    }

    /// The model hyper-parameters.
    pub fn params(&self) -> &DncParams {
        &self.params
    }

    /// Lane `b`'s memory unit (for state inspection).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= batch()`.
    pub fn memory(&self, lane: usize) -> &MemoryUnit {
        &self.lanes[lane].memory
    }

    /// The `B × R·W` block of read vectors fed to the controller at the
    /// next step (row `b` is lane `b`'s flattened read vectors).
    pub fn last_read(&self) -> &Matrix {
        &self.last_read
    }

    /// The `B × (H + R·W)` feature block `[h_t ; v_r]` per lane — the
    /// batched analogue of [`Dnc::last_features`].
    pub fn last_features(&self) -> Matrix {
        Matrix::hcat(&self.last_hidden, &self.last_read)
    }

    /// Kernel profile aggregated across every lane's memory unit.
    pub fn profile(&self) -> KernelProfile {
        let mut p = KernelProfile::new();
        for lane in &self.lanes {
            p.merge(lane.memory.profile());
        }
        p
    }

    /// Resets every lane's memory and recurrent state (weights unchanged).
    pub fn reset(&mut self) {
        let read_width = self.params.read_heads * self.params.word_size;
        for lane in &mut self.lanes {
            lane.memory.reset();
            lane.read = vec![0.0; read_width];
        }
        for state in &mut self.lstm_states {
            *state = LstmState::zeros(self.params.hidden_size);
        }
        self.last_read = Matrix::zeros(self.lanes.len(), read_width);
        self.last_hidden = Matrix::zeros(self.lanes.len(), self.params.hidden_size);
    }

    /// Runs one time step for every lane: `inputs` is `B × input_size`
    /// (row `b` is lane `b`'s token) and the result is `B × output_size`.
    ///
    /// The controller and both projections run as single shared-weight
    /// batched products; the per-lane memory units step in parallel across
    /// rayon worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is not `B × input_size`.
    pub fn step_batch(&mut self, inputs: &Matrix) -> Matrix {
        assert_eq!(inputs.rows(), self.lanes.len(), "batch size mismatch");
        assert_eq!(inputs.cols(), self.params.input_size, "input width mismatch");

        // Controller on [x_t ; v_r^{t-1}], all lanes at once.
        let ctrl_in = Matrix::hcat(inputs, &self.last_read);
        let hidden = self.controller.step_batch(&mut self.lstm_states, &ctrl_in);

        // Interface projection + parse (input skip connection), batched.
        let iface_in = Matrix::hcat(&hidden, inputs);
        let raw_iface = iface_in.matmul_nt(&self.interface_proj);

        // Memory unit step: lanes are independent — fan out across threads.
        let (w, r) = (self.params.word_size, self.params.read_heads);
        let raw = &raw_iface;
        self.lanes.par_iter_mut().enumerate().for_each(|(b, lane)| {
            let iv = InterfaceVector::parse(raw.row(b), w, r);
            lane.read = lane.memory.step(&iv).flattened();
        });
        for (b, lane) in self.lanes.iter().enumerate() {
            self.last_read.row_mut(b).copy_from_slice(&lane.read);
        }

        // Output projection over [h ; v_r], batched.
        let out_in = Matrix::hcat(&hidden, &self.last_read);
        let y = out_in.matmul_nt(&self.output_proj);
        self.last_hidden = hidden;
        y
    }

    /// Runs a whole synchronized sequence: `steps[t]` is the `B ×
    /// input_size` block for time `t`; the result holds one `B ×
    /// output_size` block per step.
    pub fn run_sequence_batch(&mut self, steps: &[Matrix]) -> Vec<Matrix> {
        steps.iter().map(|x| self.step_batch(x)).collect()
    }
}

/// One batch lane of the distributed DNC-D: the lane-private shard memory
/// units plus the lane's merged read vector.
#[derive(Debug, Clone)]
struct LaneD {
    shards: Vec<MemoryUnit>,
    read: Vec<f32>,
}

/// `B` independent DNC-D lanes sharing one set of weights (controller,
/// per-shard interface projections, output projection and the read-merge
/// `α`).
///
/// Lanes start from blank state; lane `b` of
/// [`BatchDncD::step_batch`] reproduces [`DncD::step`] on lane `b`'s
/// input stream exactly.
#[derive(Debug, Clone)]
pub struct BatchDncD {
    params: DncParams,
    controller: Lstm,
    interface_projs: Vec<Matrix>,
    output_proj: Matrix,
    merge: ReadMerge,
    lstm_states: Vec<LstmState>,
    lanes: Vec<LaneD>,
    last_read: Matrix,
    last_hidden: Matrix,
}

impl BatchDncD {
    /// Creates `batch` blank lanes with weights identical to
    /// `DncD::new(params, tiles, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`, `tiles == 0` or `tiles >
    /// params.memory_size`.
    pub fn new(params: DncParams, tiles: usize, batch: usize, seed: u64) -> Self {
        DncD::new(params, tiles, seed).batched(batch)
    }

    /// Internal constructor used by [`DncD::batched`].
    pub(crate) fn from_parts(
        params: DncParams,
        controller: Lstm,
        interface_projs: Vec<Matrix>,
        output_proj: Matrix,
        merge: ReadMerge,
        shard_cfgs: Vec<MemoryConfig>,
        batch: usize,
    ) -> Self {
        assert!(batch > 0, "need at least one batch lane");
        let read_width = params.read_heads * params.word_size;
        let lanes = (0..batch)
            .map(|_| LaneD {
                shards: shard_cfgs.iter().map(|cfg| MemoryUnit::new(*cfg)).collect(),
                read: vec![0.0; read_width],
            })
            .collect();
        Self {
            params,
            controller,
            interface_projs,
            output_proj,
            merge,
            lstm_states: vec![LstmState::zeros(params.hidden_size); batch],
            lanes,
            last_read: Matrix::zeros(batch, read_width),
            last_hidden: Matrix::zeros(batch, params.hidden_size),
        }
    }

    /// Number of batch lanes `B`.
    pub fn batch(&self) -> usize {
        self.lanes.len()
    }

    /// Number of distributed shards `N_t` per lane.
    pub fn tiles(&self) -> usize {
        self.interface_projs.len()
    }

    /// The model hyper-parameters.
    pub fn params(&self) -> &DncParams {
        &self.params
    }

    /// The `B × R·W` block of merged read vectors (row `b` is lane `b`).
    pub fn last_read(&self) -> &Matrix {
        &self.last_read
    }

    /// Replaces the read-merge weights used by every lane.
    ///
    /// # Panics
    ///
    /// Panics if the shard count disagrees.
    pub fn set_merge(&mut self, merge: ReadMerge) {
        assert_eq!(merge.shards(), self.tiles(), "merge shard count mismatch");
        self.merge = merge;
    }

    /// Resets every lane's shard memories and recurrent state.
    pub fn reset(&mut self) {
        let read_width = self.params.read_heads * self.params.word_size;
        for lane in &mut self.lanes {
            for shard in &mut lane.shards {
                shard.reset();
            }
            lane.read = vec![0.0; read_width];
        }
        for state in &mut self.lstm_states {
            *state = LstmState::zeros(self.params.hidden_size);
        }
        self.last_read = Matrix::zeros(self.lanes.len(), read_width);
        self.last_hidden = Matrix::zeros(self.lanes.len(), self.params.hidden_size);
    }

    /// Runs one time step for every lane (`inputs` is `B × input_size`),
    /// returning the `B × output_size` block of outputs.
    ///
    /// The controller and every shard's interface projection run batched
    /// over all lanes; each lane then steps its `N_t` shard memory units
    /// and merges the shard reads (Eq. 4), with lanes fanned out across
    /// rayon worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is not `B × input_size`.
    pub fn step_batch(&mut self, inputs: &Matrix) -> Matrix {
        assert_eq!(inputs.rows(), self.lanes.len(), "batch size mismatch");
        assert_eq!(inputs.cols(), self.params.input_size, "input width mismatch");

        let ctrl_in = Matrix::hcat(inputs, &self.last_read);
        let hidden = self.controller.step_batch(&mut self.lstm_states, &ctrl_in);

        // One batched projection per shard (each shard has its own
        // interface weights but shares them across lanes).
        let iface_in = Matrix::hcat(&hidden, inputs);
        let raw_per_shard: Vec<Matrix> =
            self.interface_projs.iter().map(|proj| iface_in.matmul_nt(proj)).collect();

        let (w, r) = (self.params.word_size, self.params.read_heads);
        let (raws, merge) = (&raw_per_shard, &self.merge);
        self.lanes.par_iter_mut().enumerate().for_each(|(b, lane)| {
            let shard_reads: Vec<Vec<f32>> = lane
                .shards
                .iter_mut()
                .zip(raws)
                .map(|(shard, raw)| {
                    let iv = InterfaceVector::parse(raw.row(b), w, r);
                    shard.step(&iv).flattened()
                })
                .collect();
            lane.read = merge.merge(&shard_reads);
        });
        for (b, lane) in self.lanes.iter().enumerate() {
            self.last_read.row_mut(b).copy_from_slice(&lane.read);
        }

        let out_in = Matrix::hcat(&hidden, &self.last_read);
        let y = out_in.matmul_nt(&self.output_proj);
        self.last_hidden = hidden;
        y
    }

    /// Runs a whole synchronized sequence (`steps[t]` is `B ×
    /// input_size`), returning one `B × output_size` block per step.
    pub fn run_sequence_batch(&mut self, steps: &[Matrix]) -> Vec<Matrix> {
        steps.iter().map(|x| self.step_batch(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::SorterKind;
    use crate::allocation::SkimRate;

    fn params() -> DncParams {
        DncParams::new(16, 4, 2).with_hidden(24).with_io(5, 6)
    }

    /// Stacks per-lane inputs for one time step into a `B × I` block.
    fn step_block(lanes: &[Vec<Vec<f32>>], t: usize) -> Matrix {
        let rows: Vec<&[f32]> = lanes.iter().map(|lane| lane[t].as_slice()).collect();
        Matrix::from_rows(&rows)
    }

    fn lane_inputs(batch: usize, steps: usize, width: usize) -> Vec<Vec<Vec<f32>>> {
        (0..batch)
            .map(|b| {
                (0..steps)
                    .map(|t| {
                        (0..width)
                            .map(|i| (((b * 131 + t * 17 + i * 7) as f32) * 0.13).sin())
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn batch_dnc_matches_sequential_lanes_exactly() {
        let (batch, steps) = (4, 6);
        let lanes = lane_inputs(batch, steps, 5);
        let mut batched = BatchDnc::new(params(), batch, 11);
        let mut sequential: Vec<_> = (0..batch).map(|_| Dnc::new(params(), 11)).collect();
        for t in 0..steps {
            let y = batched.step_batch(&step_block(&lanes, t));
            for (b, dnc) in sequential.iter_mut().enumerate() {
                let want = dnc.step(&lanes[b][t]);
                assert_eq!(y.row(b), &want[..], "lane {b} t {t}");
            }
        }
    }

    #[test]
    fn batch_dncd_matches_sequential_lanes_exactly() {
        let (batch, steps) = (3, 5);
        let lanes = lane_inputs(batch, steps, 5);
        let mut batched = BatchDncD::new(params(), 4, batch, 23);
        let mut sequential: Vec<_> = (0..batch).map(|_| DncD::new(params(), 4, 23)).collect();
        for t in 0..steps {
            let y = batched.step_batch(&step_block(&lanes, t));
            for (b, dncd) in sequential.iter_mut().enumerate() {
                let want = dncd.step(&lanes[b][t]);
                assert_eq!(y.row(b), &want[..], "lane {b} t {t}");
            }
        }
    }

    #[test]
    fn hardware_feature_configs_batch_identically() {
        let cfg = MemoryConfig::new(16, 4, 2)
            .with_sorter(SorterKind::TwoStage { tiles: 4 })
            .with_skim(SkimRate::new(0.2))
            .with_approx_softmax(true);
        let lanes = lane_inputs(3, 4, 5);
        let mut batched = BatchDnc::with_memory_config(params(), cfg, 3, 5);
        let mut sequential: Vec<_> =
            (0..3).map(|_| Dnc::with_memory_config(params(), cfg, 5)).collect();
        for t in 0..4 {
            let y = batched.step_batch(&step_block(&lanes, t));
            for (b, dnc) in sequential.iter_mut().enumerate() {
                assert_eq!(y.row(b), &dnc.step(&lanes[b][t])[..], "lane {b} t {t}");
            }
        }
    }

    #[test]
    fn reset_restores_blank_lanes() {
        let lanes = lane_inputs(2, 3, 5);
        let mut batched = BatchDnc::new(params(), 2, 9);
        let first = batched.step_batch(&step_block(&lanes, 0));
        for t in 1..3 {
            batched.step_batch(&step_block(&lanes, t));
        }
        batched.reset();
        let again = batched.step_batch(&step_block(&lanes, 0));
        assert_eq!(first, again);
    }

    #[test]
    fn batched_from_existing_model_shares_weights() {
        let dnc = Dnc::new(params(), 31);
        let mut batched = dnc.batched(2);
        let mut fresh = Dnc::new(params(), 31);
        let x = vec![0.25f32; 5];
        let block = Matrix::from_rows(&[x.as_slice(), x.as_slice()]);
        let y = batched.step_batch(&block);
        let want = fresh.step(&x);
        assert_eq!(y.row(0), &want[..]);
        assert_eq!(y.row(1), &want[..]);
    }

    #[test]
    fn profile_aggregates_all_lanes() {
        let mut batched = BatchDnc::new(params(), 3, 1);
        let x = Matrix::zeros(3, 5);
        batched.step_batch(&x);
        let p = batched.profile();
        assert_eq!(p.calls(crate::profile::KernelId::MemoryRead), 3 * 2, "3 lanes × 2 heads");
    }

    #[test]
    #[should_panic(expected = "need at least one batch lane")]
    fn rejects_zero_batch() {
        BatchDnc::new(params(), 0, 1);
    }

    #[test]
    #[should_panic(expected = "batch size mismatch")]
    fn rejects_wrong_batch_rows() {
        BatchDnc::new(params(), 2, 1).step_batch(&Matrix::zeros(3, 5));
    }
}
