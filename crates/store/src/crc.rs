//! CRC-32 (IEEE 802.3 polynomial, reflected) — the integrity check on
//! every snapshot body and delta-log record.
//!
//! Hand-rolled because the build is hermetic (no crates.io): a single
//! 256-entry table computed at first use, byte-at-a-time updates. The
//! parameters match zlib's `crc32()` (polynomial `0xEDB88320`, initial
//! value and final XOR `0xFFFF_FFFF`), so stored checksums stay
//! meaningful to external tooling.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            }
            *entry = crc;
        }
        table
    })
}

/// The CRC-32 of `bytes` (one-shot).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

/// Incremental CRC-32 over multiple slices.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let table = table();
        for &b in bytes {
            self.state = (self.state >> 8) ^ table[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// The finished checksum.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard CRC-32 check values (same parameters as zlib).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data = b"snapshot + delta log";
        let mut h = Crc32::new();
        h.update(&data[..7]);
        h.update(&data[7..]);
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = vec![0xA5u8; 64];
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
