//! Deterministic, seeded fault injection for the HiMA serving stack.
//!
//! A [`FaultPlan`] decides, for every instrumented I/O operation, whether
//! to inject a fault — and which one. The decision is a pure function of
//! `(seed, site, op_index)`: the plan keeps one atomic operation counter
//! per [`FaultSite`], and each consult hashes the seed, the site, and the
//! operation's index through a splitmix-style mixer. Re-running the same
//! workload against the same plan therefore injects the same faults at
//! the same operations, which is what makes chaos tests reproducible
//! instead of flaky.
//!
//! Two ways to schedule a fault compose freely:
//!
//! - **Probabilistic rules** ([`FaultRule::per_mille`]): inject `kind`
//!   on roughly `per_mille`/1000 of the operations inside the rule's
//!   `[from_op, until_op)` window, chosen deterministically by hash.
//! - **Exact schedules** ([`FaultRule::at_ops`]): inject `kind` at the
//!   listed operation indices, exactly.
//!
//! The plan is shared as an `Option<Arc<FaultPlan>>` everywhere it is
//! consumed; `None` means injection is compiled down to a single branch
//! on an option — no counters, no hashing, no atomics. Plans can also be
//! [cleared](FaultPlan::clear) at runtime ("once faults clear, surviving
//! sessions continue bit-identical"), which disables all future
//! injection while keeping the injection counters readable.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Where in the stack an instrumented operation happens.
///
/// Each site has its own operation counter, so a plan targeting (say)
/// store writes is unaffected by how many network reads happen to occur.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A data write in `hima-store` (snapshot body or log append).
    StoreWrite,
    /// An fsync in `hima-store` (snapshot `sync_all`, log `sync_data`).
    StoreFsync,
    /// A rename in `hima-store` (atomic snapshot publish).
    StoreRename,
    /// A read from a serve connection's socket.
    NetRead,
    /// A write to a serve connection's socket.
    NetWrite,
    /// A group scheduler tick that has work to do.
    SchedTick,
}

impl FaultSite {
    /// Number of distinct sites (sizes the per-site counter arrays).
    pub const COUNT: usize = 6;

    /// All sites, in counter-array order.
    pub const ALL: [FaultSite; Self::COUNT] = [
        FaultSite::StoreWrite,
        FaultSite::StoreFsync,
        FaultSite::StoreRename,
        FaultSite::NetRead,
        FaultSite::NetWrite,
        FaultSite::SchedTick,
    ];

    /// Stable index of this site into per-site arrays.
    pub fn index(self) -> usize {
        match self {
            FaultSite::StoreWrite => 0,
            FaultSite::StoreFsync => 1,
            FaultSite::StoreRename => 2,
            FaultSite::NetRead => 3,
            FaultSite::NetWrite => 4,
            FaultSite::SchedTick => 5,
        }
    }

    /// Human-readable site name (metrics/log friendly).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::StoreWrite => "store.write",
            FaultSite::StoreFsync => "store.fsync",
            FaultSite::StoreRename => "store.rename",
            FaultSite::NetRead => "net.read",
            FaultSite::NetWrite => "net.write",
            FaultSite::SchedTick => "sched.tick",
        }
    }
}

/// What to inject when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail the operation with a generic injected I/O error.
    IoError,
    /// Fail the operation as if the disk were full (ENOSPC-shaped).
    Enospc,
    /// Write only the first `keep` bytes of the buffer, then fail.
    /// On a delta log this manufactures a torn record; on a socket, a
    /// torn frame followed by a reset.
    PartialWrite {
        /// Bytes allowed through before the failure.
        keep: usize,
    },
    /// Delay the operation by `micros` before letting it through.
    Latency {
        /// Injected delay in microseconds.
        micros: u64,
    },
    /// Drop the connection (sockets only): the operation fails with a
    /// connection-reset error.
    Reset,
    /// Panic at the site (scheduler only) — exercises supervision.
    Panic,
}

/// One injection rule: a site, an eligibility window over that site's
/// operation indices, and either a probability or an exact schedule.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// The instrumented site this rule applies to.
    pub site: FaultSite,
    /// The fault injected when this rule fires.
    pub kind: FaultKind,
    /// Fire on roughly this many of every 1000 eligible operations,
    /// chosen deterministically from `(seed, site, op)`. 0 disables the
    /// probabilistic component; 1000 fires on every eligible op.
    pub per_mille: u32,
    /// Operation indices that always fire (in addition to `per_mille`).
    pub at_ops: Vec<u64>,
    /// First operation index (inclusive) the rule is eligible for.
    pub from_op: u64,
    /// Operation index (exclusive) the rule stops applying at.
    pub until_op: u64,
}

impl FaultRule {
    /// A rule firing on `per_mille`/1000 of all operations at `site`.
    pub fn probabilistic(site: FaultSite, kind: FaultKind, per_mille: u32) -> Self {
        Self { site, kind, per_mille, at_ops: Vec::new(), from_op: 0, until_op: u64::MAX }
    }

    /// A rule firing exactly at the given operation indices of `site`.
    pub fn at(site: FaultSite, kind: FaultKind, ops: impl Into<Vec<u64>>) -> Self {
        Self { site, kind, per_mille: 0, at_ops: ops.into(), from_op: 0, until_op: u64::MAX }
    }

    /// Restricts the rule to operations in `[from, until)`.
    pub fn window(mut self, from: u64, until: u64) -> Self {
        self.from_op = from;
        self.until_op = until;
        self
    }

    fn fires(&self, seed: u64, op: u64) -> bool {
        if op < self.from_op || op >= self.until_op {
            return false;
        }
        if self.at_ops.contains(&op) {
            return true;
        }
        if self.per_mille == 0 {
            return false;
        }
        let h = mix(seed ^ mix(self.site.index() as u64 + 1) ^ mix(op.wrapping_add(0x9E37)));
        (h % 1000) < self.per_mille as u64
    }
}

/// splitmix64 finalizer: a cheap, well-mixed hash for fault decisions.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A seeded, deterministic fault-injection plan.
///
/// Thread-safe and lock-free: sites keep atomic operation counters, and
/// rule evaluation is pure. Share it as `Arc<FaultPlan>`.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    armed: AtomicBool,
    ops: [AtomicU64; FaultSite::COUNT],
    injected: [AtomicU64; FaultSite::COUNT],
}

impl FaultPlan {
    /// A plan with no rules (injects nothing until rules are added).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rules: Vec::new(),
            armed: AtomicBool::new(true),
            ops: Default::default(),
            injected: Default::default(),
        }
    }

    /// Adds a rule (builder-style).
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// The seed the plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Consults the plan for one operation at `site`.
    ///
    /// Always advances the site's operation counter (so indices stay
    /// aligned with the workload even while disarmed), then evaluates
    /// rules in insertion order — the first that fires wins.
    pub fn check(&self, site: FaultSite) -> Option<FaultKind> {
        let op = self.ops[site.index()].fetch_add(1, Ordering::Relaxed);
        if !self.armed.load(Ordering::Relaxed) {
            return None;
        }
        let kind = self
            .rules
            .iter()
            .find(|r| r.site == site && r.fires(self.seed, op))
            .map(|r| r.kind)?;
        self.injected[site.index()].fetch_add(1, Ordering::Relaxed);
        Some(kind)
    }

    /// Disarms the plan: future [`check`](Self::check)s inject nothing.
    /// Counters keep advancing and stay readable.
    pub fn clear(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Re-arms a cleared plan.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Whether the plan is currently armed.
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Operations observed at `site` so far.
    pub fn ops(&self, site: FaultSite) -> u64 {
        self.ops[site.index()].load(Ordering::Relaxed)
    }

    /// Faults injected at `site` so far.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site.index()].load(Ordering::Relaxed)
    }

    /// Total faults injected across all sites.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Total faults injected across the store sites (write/fsync/rename).
    pub fn injected_disk(&self) -> u64 {
        self.injected(FaultSite::StoreWrite)
            + self.injected(FaultSite::StoreFsync)
            + self.injected(FaultSite::StoreRename)
    }

    /// Total faults injected across the network sites (read/write).
    pub fn injected_net(&self) -> u64 {
        self.injected(FaultSite::NetRead) + self.injected(FaultSite::NetWrite)
    }
}

/// Maps a disk-flavored [`FaultKind`] onto an `io::Error`, sleeping for
/// latency faults. Returns `None` for kinds the caller must realize
/// itself (partial writes need the buffer).
pub fn io_error_for(kind: FaultKind) -> Option<std::io::Error> {
    use std::io::{Error, ErrorKind};
    match kind {
        FaultKind::IoError => Some(Error::other("injected i/o error")),
        FaultKind::Enospc => Some(Error::other("injected ENOSPC: no space left on device")),
        FaultKind::Reset => {
            Some(Error::new(ErrorKind::ConnectionReset, "injected connection reset"))
        }
        FaultKind::Latency { micros } => {
            std::thread::sleep(std::time::Duration::from_micros(micros));
            None
        }
        FaultKind::PartialWrite { .. } | FaultKind::Panic => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn exact_schedule_fires_at_listed_ops_only() {
        let plan = FaultPlan::new(7)
            .with_rule(FaultRule::at(FaultSite::StoreWrite, FaultKind::IoError, vec![2, 5]));
        let fired: Vec<bool> =
            (0..8).map(|_| plan.check(FaultSite::StoreWrite).is_some()).collect();
        assert_eq!(fired, vec![false, false, true, false, false, true, false, false]);
        assert_eq!(plan.injected(FaultSite::StoreWrite), 2);
        assert_eq!(plan.ops(FaultSite::StoreWrite), 8);
    }

    #[test]
    fn sites_count_independently() {
        let plan = FaultPlan::new(1)
            .with_rule(FaultRule::at(FaultSite::NetWrite, FaultKind::Reset, vec![0]));
        // Ops at other sites must not consume NetWrite's index 0.
        for _ in 0..5 {
            assert!(plan.check(FaultSite::StoreWrite).is_none());
        }
        assert_eq!(plan.check(FaultSite::NetWrite), Some(FaultKind::Reset));
    }

    #[test]
    fn probabilistic_rules_are_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new(seed).with_rule(FaultRule::probabilistic(
                FaultSite::NetRead,
                FaultKind::IoError,
                250,
            ));
            (0..200).map(|_| plan.check(FaultSite::NetRead).is_some()).collect()
        };
        assert_eq!(run(42), run(42), "same seed must replay the same faults");
        assert_ne!(run(42), run(43), "different seeds should differ");
        let hits = run(42).iter().filter(|&&b| b).count();
        // 250‰ over 200 ops: loosely in range, deterministic anyway.
        assert!((20..=80).contains(&hits), "hit count {hits} implausible for 250/1000");
    }

    #[test]
    fn window_bounds_eligibility() {
        let plan = FaultPlan::new(0).with_rule(
            FaultRule::probabilistic(FaultSite::StoreFsync, FaultKind::Enospc, 1000)
                .window(3, 6),
        );
        let fired: Vec<bool> =
            (0..8).map(|_| plan.check(FaultSite::StoreFsync).is_some()).collect();
        assert_eq!(fired, vec![false, false, false, true, true, true, false, false]);
    }

    #[test]
    fn clear_disarms_but_counters_advance() {
        let plan = FaultPlan::new(9).with_rule(FaultRule::probabilistic(
            FaultSite::StoreWrite,
            FaultKind::IoError,
            1000,
        ));
        assert!(plan.check(FaultSite::StoreWrite).is_some());
        plan.clear();
        assert!(!plan.armed());
        for _ in 0..4 {
            assert!(plan.check(FaultSite::StoreWrite).is_none());
        }
        assert_eq!(plan.ops(FaultSite::StoreWrite), 5);
        assert_eq!(plan.injected(FaultSite::StoreWrite), 1);
        plan.arm();
        assert!(plan.check(FaultSite::StoreWrite).is_some());
    }

    #[test]
    fn first_matching_rule_wins() {
        let plan = FaultPlan::new(3)
            .with_rule(FaultRule::at(FaultSite::SchedTick, FaultKind::Panic, vec![1]))
            .with_rule(FaultRule::probabilistic(
                FaultSite::SchedTick,
                FaultKind::Latency { micros: 1 },
                1000,
            ));
        assert_eq!(plan.check(FaultSite::SchedTick), Some(FaultKind::Latency { micros: 1 }));
        assert_eq!(plan.check(FaultSite::SchedTick), Some(FaultKind::Panic));
    }

    #[test]
    fn plan_is_shareable_across_threads() {
        let plan = Arc::new(FaultPlan::new(11).with_rule(FaultRule::probabilistic(
            FaultSite::NetWrite,
            FaultKind::Reset,
            500,
        )));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = Arc::clone(&plan);
                std::thread::spawn(move || {
                    (0..100).filter(|_| p.check(FaultSite::NetWrite).is_some()).count()
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(plan.ops(FaultSite::NetWrite), 400);
        assert_eq!(plan.injected(FaultSite::NetWrite) as usize, total);
    }

    #[test]
    fn io_error_mapping() {
        assert!(io_error_for(FaultKind::IoError).is_some());
        assert!(io_error_for(FaultKind::Enospc).unwrap().to_string().contains("ENOSPC"));
        assert_eq!(
            io_error_for(FaultKind::Reset).unwrap().kind(),
            std::io::ErrorKind::ConnectionReset
        );
        assert!(io_error_for(FaultKind::Latency { micros: 1 }).is_none());
        assert!(io_error_for(FaultKind::PartialWrite { keep: 3 }).is_none());
    }
}
