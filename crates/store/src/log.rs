//! Append-only, CRC-guarded delta log of step inputs.
//!
//! Between snapshots, every step a session takes is appended here as one
//! self-delimiting record. Recovery is snapshot + replay: decode the
//! latest snapshot, then re-apply every logged step whose sequence
//! number exceeds the snapshot's. The layout, all little-endian:
//!
//! ```text
//! header:
//!   magic    8   b"HIMALOG1"
//!   key_len  u32
//!   key      key_len bytes        canonical spec key
//! records, repeated:
//!   len      u32                  body length in bytes
//!   body     len bytes            seq u64 | n u32 | n × f32 bit patterns
//!   crc      u32                  CRC-32 of body
//! ```
//!
//! A crash can tear the tail of this file mid-append. The reader is
//! total over that failure mode: it stops at the first record whose
//! length, framing, or CRC does not check out, returns every record
//! before it, and flags the tear — it never panics and never yields a
//! record that fails its checksum. A corrupt *header* is different: the
//! spec key itself is untrusted, so that surfaces as a typed
//! [`StoreError::Corrupt`] instead.

use crate::crc::crc32;
use crate::store::{consult_faults, corrupt, StoreError};
use hima_chaos::{FaultPlan, FaultSite};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// Leading magic of a delta-log file.
pub const LOG_MAGIC: [u8; 8] = *b"HIMALOG1";

/// Upper bound on a single record body (64 MiB) — mirrors the serve
/// protocol's frame cap; a corrupt length field must not drive an
/// allocation or swallow the rest of the file as "one record".
pub const MAX_RECORD: u32 = 64 << 20;

/// One recovered step: its sequence number and the input row fed to the
/// engine at that step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// 1-based step sequence number, monotone within a session.
    pub seq: u64,
    /// The input row exactly as stepped (f32 bit patterns round-trip).
    pub input: Vec<f32>,
}

/// The result of scanning a delta log: the valid record prefix plus a
/// flag for whether the file ended in a torn or corrupt tail.
#[derive(Debug, Clone, PartialEq)]
pub struct LogContents {
    /// Spec key from the log header.
    pub spec_key: Vec<u8>,
    /// Every record up to the first invalid one, in append order.
    pub steps: Vec<StepRecord>,
    /// True when trailing bytes were discarded (torn append or bit rot).
    pub torn_tail: bool,
}

/// Appends step records to one session's delta log.
///
/// Each [`append`](Self::append) issues a single `write_all` of the
/// fully framed record, so the bytes reach the OS immediately and
/// survive a process kill; only an OS crash can tear the tail, which the
/// reader tolerates. Callers must drop the writer before compacting the
/// log (snapshot + truncate) — appends through a stale handle would land
/// in an unlinked file and be lost.
#[derive(Debug)]
pub struct LogWriter {
    file: File,
    /// Byte length of the durable, well-framed prefix. A failed append
    /// truncates back to this, so one bad write can never strand later
    /// (successful) records behind a torn record.
    len: u64,
    /// Set when a failed append could not be rolled back; every
    /// subsequent append fails fast rather than corrupting the log.
    poisoned: bool,
    faults: Option<Arc<FaultPlan>>,
}

impl LogWriter {
    /// Opens `path` for appending, writing the header first when the
    /// file is new or empty.
    pub fn open(path: &Path, spec_key: &[u8]) -> std::io::Result<Self> {
        Self::open_with(path, spec_key, None)
    }

    /// [`open`](Self::open) with a fault plan consulted on every append
    /// and sync. An injected partial write tears the record's tail on
    /// disk — exactly the failure mode [`read_log`] tolerates.
    pub fn open_with(
        path: &Path,
        spec_key: &[u8],
        faults: Option<Arc<FaultPlan>>,
    ) -> std::io::Result<Self> {
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        if file.metadata()?.len() == 0 {
            let mut header = Vec::with_capacity(12 + spec_key.len());
            header.extend_from_slice(&LOG_MAGIC);
            header.extend_from_slice(&(spec_key.len() as u32).to_le_bytes());
            header.extend_from_slice(spec_key);
            file.write_all(&header)?;
        }
        let len = file.metadata()?.len();
        Ok(Self { file, len, poisoned: false, faults })
    }

    /// Appends one step record as a single write.
    ///
    /// On failure the writer rolls the file back to the last well-framed
    /// length, so a torn partial record never strands later appends
    /// behind it; if even the rollback fails the writer poisons itself
    /// and refuses further appends.
    pub fn append(&mut self, seq: u64, input: &[f32]) -> std::io::Result<()> {
        if self.poisoned {
            return Err(std::io::Error::other(
                "log writer poisoned by an unrecoverable append failure",
            ));
        }
        let body_len = 12 + input.len() * 4;
        let mut frame = Vec::with_capacity(8 + body_len);
        frame.extend_from_slice(&(body_len as u32).to_le_bytes());
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(&(input.len() as u32).to_le_bytes());
        for &v in input {
            frame.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let crc = crc32(&frame[4..]);
        frame.extend_from_slice(&crc.to_le_bytes());

        let result = match consult_faults(self.faults.as_deref(), FaultSite::StoreWrite) {
            Err(e) => Err(e),
            Ok(Some(keep)) => {
                // Injected partial append: write a torn prefix, then fail
                // the way a crashed write would.
                let _ = self.file.write_all(&frame[..keep.min(frame.len())]);
                Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "injected partial log append",
                ))
            }
            Ok(None) => self.file.write_all(&frame),
        };
        match result {
            Ok(()) => {
                self.len += frame.len() as u64;
                Ok(())
            }
            Err(e) => {
                if self.file.set_len(self.len).is_err() {
                    self.poisoned = true;
                }
                Err(e)
            }
        }
    }

    /// Forces the log contents to stable storage.
    pub fn sync(&mut self) -> std::io::Result<()> {
        consult_faults(self.faults.as_deref(), FaultSite::StoreFsync)?;
        self.file.sync_data()
    }
}

/// Scans a delta log, returning the valid record prefix.
///
/// Tolerates a torn or bit-rotted tail (see module docs); errors only on
/// I/O failure or a corrupt header.
pub fn read_log(path: &Path) -> Result<LogContents, StoreError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < 12 || bytes[..8] != LOG_MAGIC {
        return Err(corrupt(path, "bad delta-log header"));
    }
    let key_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if key_len > MAX_RECORD || key_len as usize > bytes.len() - 12 {
        return Err(corrupt(path, "delta-log key length out of bounds"));
    }
    let mut pos = 12 + key_len as usize;
    let spec_key = bytes[12..pos].to_vec();

    let mut steps = Vec::new();
    let mut torn_tail = false;
    while pos < bytes.len() {
        // Frame: len(4) + body(len) + crc(4). Anything that doesn't
        // check out ends the valid prefix — keep what came before.
        let Some(len_bytes) = bytes.get(pos..pos + 4) else {
            torn_tail = true;
            break;
        };
        let len = u32::from_le_bytes(len_bytes.try_into().unwrap());
        if !(12..=MAX_RECORD).contains(&len) {
            torn_tail = true;
            break;
        }
        let body_start = pos + 4;
        let Some(body) = bytes.get(body_start..body_start + len as usize) else {
            torn_tail = true;
            break;
        };
        let crc_start = body_start + len as usize;
        let Some(crc_bytes) = bytes.get(crc_start..crc_start + 4) else {
            torn_tail = true;
            break;
        };
        if crc32(body) != u32::from_le_bytes(crc_bytes.try_into().unwrap()) {
            torn_tail = true;
            break;
        }
        let seq = u64::from_le_bytes(body[..8].try_into().unwrap());
        let n = u32::from_le_bytes(body[8..12].try_into().unwrap());
        if n as usize != (body.len() - 12) / 4 || body.len() - 12 != n as usize * 4 {
            torn_tail = true;
            break;
        }
        let input = body[12..]
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap())))
            .collect();
        steps.push(StepRecord { seq, input });
        pos = crc_start + 4;
    }
    Ok(LogContents { spec_key, steps, torn_tail })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::test_dir;

    fn write_steps(path: &Path, key: &[u8], rows: &[(u64, Vec<f32>)]) {
        let mut w = LogWriter::open(path, key).unwrap();
        for (seq, row) in rows {
            w.append(*seq, row).unwrap();
        }
    }

    #[test]
    fn log_round_trips_bit_exactly() {
        let dir = test_dir("log-roundtrip");
        let path = dir.join("sess-1.log");
        // Include values that would not survive a decimal round trip.
        let rows = vec![
            (1, vec![0.1f32, -0.0, f32::MIN_POSITIVE]),
            (2, vec![1.0e-38, 1.618_034, -42.5]),
            (3, vec![]),
        ];
        write_steps(&path, b"spec", &rows);
        let log = read_log(&path).unwrap();
        assert_eq!(log.spec_key, b"spec");
        assert!(!log.torn_tail);
        assert_eq!(log.steps.len(), 3);
        for ((seq, row), rec) in rows.iter().zip(&log.steps) {
            assert_eq!(rec.seq, *seq);
            assert_eq!(rec.input.len(), row.len());
            for (a, b) in row.iter().zip(&rec.input) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn reopen_appends_without_duplicating_header() {
        let dir = test_dir("log-reopen");
        let path = dir.join("sess-2.log");
        write_steps(&path, b"k", &[(1, vec![1.0])]);
        write_steps(&path, b"k", &[(2, vec![2.0])]);
        let log = read_log(&path).unwrap();
        assert_eq!(log.steps.len(), 2);
        assert_eq!(log.steps[1].seq, 2);
        assert!(!log.torn_tail);
    }

    #[test]
    fn torn_tail_keeps_valid_prefix() {
        let dir = test_dir("log-torn");
        let path = dir.join("sess-3.log");
        write_steps(&path, b"k", &[(1, vec![1.0, 2.0]), (2, vec![3.0, 4.0])]);
        let full = std::fs::read(&path).unwrap();
        let header = 12 + 1; // magic + key_len + "k"
        let record = (full.len() - header) / 2;
        // Truncate at every byte inside the second record.
        for cut in 1..record {
            std::fs::write(&path, &full[..header + record + cut]).unwrap();
            let log = read_log(&path).unwrap();
            assert!(log.torn_tail, "cut at +{cut} not flagged");
            assert_eq!(log.steps.len(), 1, "cut at +{cut} lost the valid prefix");
            assert_eq!(log.steps[0].seq, 1);
        }
    }

    #[test]
    fn corrupt_header_is_a_typed_error() {
        let dir = test_dir("log-badheader");
        let path = dir.join("sess-4.log");
        write_steps(&path, b"key", &[(1, vec![1.0])]);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_log(&path), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn oversized_length_field_cannot_drive_allocation() {
        let dir = test_dir("log-badlen");
        let path = dir.join("sess-5.log");
        write_steps(&path, b"k", &[(1, vec![1.0])]);
        let mut w = LogWriter::open(&path, b"k").unwrap();
        // A hand-forged frame claiming 4 GiB of body.
        w.file.write_all(&u32::MAX.to_le_bytes()).unwrap();
        drop(w);
        let log = read_log(&path).unwrap();
        assert!(log.torn_tail);
        assert_eq!(log.steps.len(), 1);
    }
}
