//! The per-directory session store: one snapshot + one delta log per
//! session id, with snapshot-then-truncate compaction.

use crate::log::{read_log, LogWriter, StepRecord};
use crate::snapshot::{read_snapshot, read_snapshot_key, write_snapshot_with, Snapshot};
use hima_chaos::{io_error_for, FaultKind, FaultPlan, FaultSite};
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Consults a fault plan for one store I/O operation.
///
/// `Ok(None)`: proceed normally (latency faults have already slept).
/// `Ok(Some(keep))`: the caller must write only `keep` bytes, then fail.
/// `Err`: the injected failure to surface in place of the real I/O.
pub(crate) fn consult_faults(
    faults: Option<&FaultPlan>,
    site: FaultSite,
) -> std::io::Result<Option<usize>> {
    let Some(plan) = faults else { return Ok(None) };
    match plan.check(site) {
        None => Ok(None),
        Some(FaultKind::PartialWrite { keep }) => Ok(Some(keep)),
        Some(kind) => match io_error_for(kind) {
            Some(e) => Err(e),
            None => Ok(None),
        },
    }
}

/// A persistence failure: either plain I/O or a file whose integrity
/// checks failed.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// A store file exists but its magic, framing, or checksum is wrong.
    Corrupt {
        /// The offending file.
        file: PathBuf,
        /// What failed to check out.
        what: &'static str,
    },
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Corrupt { file, what } => {
                write!(f, "corrupt store file {}: {what}", file.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt { .. } => None,
        }
    }
}

pub(crate) fn corrupt(path: &Path, what: &'static str) -> StoreError {
    StoreError::Corrupt { file: path.to_path_buf(), what }
}

/// Everything recoverable for one session: the latest snapshot (if any),
/// the valid delta-log prefix, and whether the log tail was torn.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRecord {
    /// Canonical spec key the session was stored under.
    pub spec_key: Vec<u8>,
    /// Latest snapshot, absent when the session never compacted.
    pub snapshot: Option<Snapshot>,
    /// Valid delta-log records in append order (may predate the
    /// snapshot; filter with [`replay_steps`](Self::replay_steps)).
    pub steps: Vec<StepRecord>,
    /// True when the delta log ended in a torn or corrupt tail that was
    /// discarded.
    pub torn_tail: bool,
}

impl SessionRecord {
    /// The steps not yet captured by the snapshot, in replay order.
    pub fn replay_steps(&self) -> impl Iterator<Item = &StepRecord> {
        let applied = self.snapshot.as_ref().map_or(0, |s| s.step_seq);
        self.steps.iter().filter(move |s| s.seq > applied)
    }

    /// The step sequence the session reaches after full recovery.
    pub fn last_seq(&self) -> u64 {
        let snap = self.snapshot.as_ref().map_or(0, |s| s.step_seq);
        self.steps.iter().map(|s| s.seq).fold(snap, u64::max)
    }
}

/// A directory of durable sessions.
///
/// Layout: `sess-<id>.snap` (atomic snapshot) and `sess-<id>.log`
/// (append-only delta log) per session. [`save_snapshot`](Self::save_snapshot)
/// doubles as compaction — after the snapshot is
/// durably renamed into place, the log is deleted. A crash between
/// those two operations is benign: recovery replays only log records
/// with `seq > snapshot.step_seq`, and every surviving record satisfies
/// `seq <= step_seq`, so the stale log replays to nothing.
#[derive(Debug)]
pub struct SessionStore {
    root: PathBuf,
    faults: Option<Arc<FaultPlan>>,
}

impl SessionStore {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        Self::open_with(root, None)
    }

    /// [`open`](Self::open) with a fault plan consulted on every
    /// snapshot write and log append issued through this store. `None`
    /// injects nothing and costs one branch per operation.
    pub fn open_with(
        root: impl Into<PathBuf>,
        faults: Option<Arc<FaultPlan>>,
    ) -> std::io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Self { root, faults })
    }

    /// The fault plan this store consults, when one is installed.
    pub fn faults(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn snapshot_path(&self, id: u64) -> PathBuf {
        self.root.join(format!("sess-{id}.snap"))
    }

    fn log_path(&self, id: u64) -> PathBuf {
        self.root.join(format!("sess-{id}.log"))
    }

    /// Every session id with at least one store file, ascending.
    pub fn sessions(&self) -> std::io::Result<Vec<u64>> {
        let mut ids = BTreeSet::new();
        for entry in fs::read_dir(&self.root)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix("sess-") else { continue };
            let Some(id) = rest
                .strip_suffix(".snap")
                .or_else(|| rest.strip_suffix(".log"))
                .and_then(|id| id.parse::<u64>().ok())
            else {
                continue;
            };
            ids.insert(id);
        }
        Ok(ids.into_iter().collect())
    }

    /// The spec key a stored session belongs to, or `None` when no store
    /// files exist for `id`. Reads only as much as routing needs.
    pub fn spec_key(&self, id: u64) -> Result<Option<Vec<u8>>, StoreError> {
        let snap = self.snapshot_path(id);
        if snap.exists() {
            return read_snapshot_key(&snap).map(Some);
        }
        let log = self.log_path(id);
        if log.exists() {
            return read_log(&log).map(|l| Some(l.spec_key));
        }
        Ok(None)
    }

    /// Loads everything recoverable for `id`, or `None` when the session
    /// has no store files. When both files exist their spec keys must
    /// agree; a mismatch is corruption, not a recoverable state.
    pub fn load(&self, id: u64) -> Result<Option<SessionRecord>, StoreError> {
        let snap_path = self.snapshot_path(id);
        let log_path = self.log_path(id);
        let snap = if snap_path.exists() {
            Some(read_snapshot(&snap_path)?)
        } else {
            None
        };
        let log = if log_path.exists() { Some(read_log(&log_path)?) } else { None };
        match (snap, log) {
            (None, None) => Ok(None),
            (Some((key, snapshot)), None) => Ok(Some(SessionRecord {
                spec_key: key,
                snapshot: Some(snapshot),
                steps: Vec::new(),
                torn_tail: false,
            })),
            (None, Some(log)) => Ok(Some(SessionRecord {
                spec_key: log.spec_key,
                snapshot: None,
                steps: log.steps,
                torn_tail: log.torn_tail,
            })),
            (Some((key, snapshot)), Some(log)) => {
                if key != log.spec_key {
                    return Err(corrupt(&log_path, "spec key disagrees with snapshot"));
                }
                Ok(Some(SessionRecord {
                    spec_key: key,
                    snapshot: Some(snapshot),
                    steps: log.steps,
                    torn_tail: log.torn_tail,
                }))
            }
        }
    }

    /// Durably snapshots `id` at `step_seq`, then compacts (deletes) the
    /// delta log. Any open [`LogWriter`] for `id` must be dropped first.
    pub fn save_snapshot(
        &self,
        id: u64,
        spec_key: &[u8],
        step_seq: u64,
        state: &[u8],
    ) -> std::io::Result<()> {
        write_snapshot_with(
            &self.snapshot_path(id),
            spec_key,
            step_seq,
            state,
            self.faults.as_deref(),
        )?;
        match fs::remove_file(self.log_path(id)) {
            Err(e) if e.kind() != std::io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// Opens the delta log for `id` in append mode.
    pub fn log_writer(&self, id: u64, spec_key: &[u8]) -> std::io::Result<LogWriter> {
        LogWriter::open_with(&self.log_path(id), spec_key, self.faults.clone())
    }

    /// Deletes every store file for `id` (closed or reset sessions).
    pub fn remove(&self, id: u64) -> std::io::Result<()> {
        for path in [self.snapshot_path(id), self.log_path(id)] {
            match fs::remove_file(&path) {
                Err(e) if e.kind() != std::io::ErrorKind::NotFound => return Err(e),
                _ => {}
            }
        }
        Ok(())
    }
}

/// Creates a fresh scratch directory under the OS temp dir (test-only;
/// the hermetic build has no tempfile crate).
#[cfg(test)]
pub(crate) fn test_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "hima-store-{tag}-{}-{n}",
        std::process::id()
    ));
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_store_lists_nothing() {
        let store = SessionStore::open(test_dir("empty")).unwrap();
        assert!(store.sessions().unwrap().is_empty());
        assert_eq!(store.spec_key(1).unwrap(), None);
        assert_eq!(store.load(1).unwrap(), None);
    }

    #[test]
    fn log_only_session_recovers_all_steps() {
        let store = SessionStore::open(test_dir("log-only")).unwrap();
        let mut w = store.log_writer(3, b"spec").unwrap();
        w.append(1, &[1.0, 2.0]).unwrap();
        w.append(2, &[3.0, 4.0]).unwrap();
        drop(w);
        let rec = store.load(3).unwrap().unwrap();
        assert_eq!(rec.spec_key, b"spec");
        assert!(rec.snapshot.is_none());
        assert_eq!(rec.replay_steps().count(), 2);
        assert_eq!(rec.last_seq(), 2);
        assert_eq!(store.sessions().unwrap(), vec![3]);
        assert_eq!(store.spec_key(3).unwrap().unwrap(), b"spec");
    }

    #[test]
    fn snapshot_compacts_log_and_filters_replay() {
        let store = SessionStore::open(test_dir("compact")).unwrap();
        let mut w = store.log_writer(5, b"k").unwrap();
        for seq in 1..=4 {
            w.append(seq, &[seq as f32]).unwrap();
        }
        drop(w);
        store.save_snapshot(5, b"k", 4, b"state@4").unwrap();
        let rec = store.load(5).unwrap().unwrap();
        assert_eq!(rec.snapshot.as_ref().unwrap().step_seq, 4);
        assert!(rec.steps.is_empty(), "compaction left log records behind");

        // Steps after the snapshot replay; a stale pre-snapshot log
        // (crash between rename and remove) replays to nothing.
        let mut w = store.log_writer(5, b"k").unwrap();
        w.append(5, &[5.0]).unwrap();
        w.append(6, &[6.0]).unwrap();
        drop(w);
        let rec = store.load(5).unwrap().unwrap();
        let replay: Vec<u64> = rec.replay_steps().map(|s| s.seq).collect();
        assert_eq!(replay, vec![5, 6]);
        assert_eq!(rec.last_seq(), 6);
    }

    #[test]
    fn stale_log_after_crashed_compaction_replays_to_nothing() {
        let store = SessionStore::open(test_dir("crashed-compaction")).unwrap();
        let mut w = store.log_writer(7, b"k").unwrap();
        w.append(1, &[1.0]).unwrap();
        w.append(2, &[2.0]).unwrap();
        drop(w);
        // Simulate a crash between snapshot rename and log removal by
        // writing the snapshot directly, leaving the log in place.
        crate::snapshot::write_snapshot(
            &store.root().join("sess-7.snap"),
            b"k",
            2,
            b"state@2",
        )
        .unwrap();
        let rec = store.load(7).unwrap().unwrap();
        assert_eq!(rec.steps.len(), 2, "stale log records should still parse");
        assert_eq!(rec.replay_steps().count(), 0, "stale records must not replay");
        assert_eq!(rec.last_seq(), 2);
    }

    #[test]
    fn spec_key_mismatch_is_corruption() {
        let store = SessionStore::open(test_dir("key-mismatch")).unwrap();
        store.save_snapshot(9, b"key-a", 1, b"s").unwrap();
        let mut w = store.log_writer(9, b"key-b").unwrap();
        w.append(2, &[1.0]).unwrap();
        drop(w);
        assert!(matches!(store.load(9), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn injected_snapshot_fault_leaves_previous_snapshot_intact() {
        use hima_chaos::FaultRule;
        // Fail the 2nd, 3rd, and 4th snapshot-write ops three different
        // ways; op 0 (the first snapshot) and ops ≥ 4 succeed.
        let plan = Arc::new(
            FaultPlan::new(5)
                .with_rule(FaultRule::at(FaultSite::StoreWrite, FaultKind::IoError, vec![1]))
                .with_rule(FaultRule::at(FaultSite::StoreWrite, FaultKind::Enospc, vec![2]))
                .with_rule(FaultRule::at(
                    FaultSite::StoreWrite,
                    FaultKind::PartialWrite { keep: 3 },
                    vec![3],
                )),
        );
        let store =
            SessionStore::open_with(test_dir("inject-snap"), Some(Arc::clone(&plan))).unwrap();
        store.save_snapshot(1, b"k", 10, b"good-state").unwrap();
        for expect in ["injected i/o error", "ENOSPC", "partial"] {
            let err = store.save_snapshot(1, b"k", 11, b"newer-state").unwrap_err();
            assert!(err.to_string().contains(expect), "got {err}");
            let rec = store.load(1).unwrap().unwrap();
            let snap = rec.snapshot.unwrap();
            assert_eq!(snap.step_seq, 10, "failed write clobbered the snapshot");
            assert_eq!(snap.state, b"good-state");
        }
        assert_eq!(plan.injected(FaultSite::StoreWrite), 3);
        // Past the scheduled faults, writes succeed again.
        store.save_snapshot(1, b"k", 12, b"final").unwrap();
        assert_eq!(store.load(1).unwrap().unwrap().snapshot.unwrap().step_seq, 12);
    }

    #[test]
    fn injected_partial_append_rolls_back_and_log_stays_readable() {
        use hima_chaos::FaultRule;
        let plan = Arc::new(FaultPlan::new(6).with_rule(FaultRule::at(
            FaultSite::StoreWrite,
            FaultKind::PartialWrite { keep: 7 },
            vec![2],
        )));
        let store =
            SessionStore::open_with(test_dir("inject-log"), Some(Arc::clone(&plan))).unwrap();
        let mut w = store.log_writer(4, b"spec").unwrap();
        w.append(1, &[1.0, 2.0]).unwrap();
        w.append(2, &[3.0, 4.0]).unwrap();
        let err = w.append(3, &[5.0, 6.0]).unwrap_err();
        assert!(err.to_string().contains("partial"), "got {err}");
        // The torn partial record was rolled back: a later successful
        // append through the same writer must stay readable.
        w.append(3, &[5.0, 6.0]).unwrap();
        w.sync().unwrap();
        drop(w);
        let rec = store.load(4).unwrap().unwrap();
        assert!(!rec.torn_tail, "rollback left a torn record behind");
        let seqs: Vec<u64> = rec.replay_steps().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        assert_eq!(plan.injected(FaultSite::StoreWrite), 1);
        // A cleared plan injects nothing more.
        plan.clear();
        let mut w = store.log_writer(4, b"spec").unwrap();
        w.append(4, &[7.0]).unwrap();
        assert_eq!(store.load(4).unwrap().unwrap().last_seq(), 4);
    }

    #[test]
    fn remove_deletes_both_files() {
        let store = SessionStore::open(test_dir("remove")).unwrap();
        store.save_snapshot(2, b"k", 1, b"s").unwrap();
        let mut w = store.log_writer(2, b"k").unwrap();
        w.append(2, &[0.5]).unwrap();
        drop(w);
        store.remove(2).unwrap();
        assert!(store.sessions().unwrap().is_empty());
        assert_eq!(store.load(2).unwrap(), None);
        // Removing an absent session is not an error.
        store.remove(2).unwrap();
    }
}
