//! The submatrix-wise partition: `N_t = N_t^h × N_t^w` blocks.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A submatrix-wise partition into `rows × cols` tile blocks.
///
/// `Partition::new(n_t, 1)` is the row-wise split, `Partition::new(1, n_t)`
/// the column-wise split; everything in between is a general submatrix
/// partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Partition {
    rows: usize,
    cols: usize,
}

impl Partition {
    /// Creates an `rows × cols` block partition.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "partition dimensions must be positive");
        Self { rows, cols }
    }

    /// Row-wise partition over `n_t` tiles (`N_t^h = N_t`, `N_t^w = 1`).
    pub fn row_wise(n_t: usize) -> Self {
        Self::new(n_t, 1)
    }

    /// Column-wise partition over `n_t` tiles (`N_t^h = 1`, `N_t^w = N_t`).
    pub fn col_wise(n_t: usize) -> Self {
        Self::new(1, n_t)
    }

    /// Block rows `N_t^h`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Block columns `N_t^w`.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total tiles `N_t = N_t^h · N_t^w`.
    pub fn tiles(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether this is the row-wise special case.
    pub fn is_row_wise(&self) -> bool {
        self.cols == 1
    }

    /// Whether this is the column-wise special case.
    pub fn is_col_wise(&self) -> bool {
        self.rows == 1
    }

    /// All factorizations `h × w = n_t`, ordered by increasing `w`.
    pub fn factorizations(n_t: usize) -> Vec<Partition> {
        assert!(n_t > 0, "need at least one tile");
        (1..=n_t)
            .filter(|w| n_t.is_multiple_of(*w))
            .map(|w| Partition::new(n_t / w, w))
            .collect()
    }

    /// Tile index owning matrix element `(i, j)` of an `n × m` matrix,
    /// numbering tiles row-major over blocks.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is out of bounds.
    pub fn tile_of(&self, i: usize, j: usize, n: usize, m: usize) -> usize {
        assert!(i < n && j < m, "element ({i},{j}) outside {n}x{m}");
        let block_h = n.div_ceil(self.rows);
        let block_w = m.div_ceil(self.cols);
        let bi = (i / block_h).min(self.rows - 1);
        let bj = (j / block_w).min(self.cols - 1);
        bi * self.cols + bj
    }

    /// Shape `(rows, cols)` of the block owned by tile `t` for an `n × m`
    /// matrix.
    ///
    /// # Panics
    ///
    /// Panics if `t >= tiles()`.
    pub fn block_shape(&self, t: usize, n: usize, m: usize) -> (usize, usize) {
        assert!(t < self.tiles(), "tile {t} out of range");
        let (bi, bj) = (t / self.cols, t % self.cols);
        let block_h = n.div_ceil(self.rows);
        let block_w = m.div_ceil(self.cols);
        let h = block_h.min(n.saturating_sub(bi * block_h));
        let w = block_w.min(m.saturating_sub(bj * block_w));
        (h, w)
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_cases() {
        assert!(Partition::row_wise(8).is_row_wise());
        assert!(Partition::col_wise(8).is_col_wise());
        assert_eq!(Partition::row_wise(8).tiles(), 8);
        assert_eq!(Partition::new(4, 4).tiles(), 16);
    }

    #[test]
    fn factorizations_of_16() {
        let f = Partition::factorizations(16);
        let shapes: Vec<(usize, usize)> = f.iter().map(|p| (p.rows(), p.cols())).collect();
        assert_eq!(shapes, vec![(16, 1), (8, 2), (4, 4), (2, 8), (1, 16)]);
    }

    #[test]
    fn factorizations_of_prime() {
        let f = Partition::factorizations(7);
        assert_eq!(f.len(), 2, "only row- and column-wise for primes");
    }

    #[test]
    fn tile_of_row_wise() {
        let p = Partition::row_wise(4);
        // 8 rows over 4 tiles: 2 rows per tile.
        assert_eq!(p.tile_of(0, 3, 8, 4), 0);
        assert_eq!(p.tile_of(2, 0, 8, 4), 1);
        assert_eq!(p.tile_of(7, 3, 8, 4), 3);
    }

    #[test]
    fn tile_of_submatrix() {
        let p = Partition::new(2, 2);
        // 4x4 matrix in 2x2 blocks of 2x2.
        assert_eq!(p.tile_of(0, 0, 4, 4), 0);
        assert_eq!(p.tile_of(0, 2, 4, 4), 1);
        assert_eq!(p.tile_of(2, 0, 4, 4), 2);
        assert_eq!(p.tile_of(3, 3, 4, 4), 3);
    }

    #[test]
    fn every_element_maps_to_exactly_one_tile() {
        let p = Partition::new(3, 2);
        let (n, m) = (10, 7);
        let mut counts = vec![0usize; p.tiles()];
        for i in 0..n {
            for j in 0..m {
                counts[p.tile_of(i, j, n, m)] += 1;
            }
        }
        assert_eq!(counts.iter().sum::<usize>(), n * m);
        // Block shapes agree with the element counts.
        for (t, &count) in counts.iter().enumerate() {
            let (h, w) = p.block_shape(t, n, m);
            assert_eq!(count, h * w, "tile {t}");
        }
    }

    #[test]
    fn block_shapes_tile_the_matrix() {
        let p = Partition::new(4, 4);
        let total: usize = (0..16).map(|t| {
            let (h, w) = p.block_shape(t, 1024, 1024);
            h * w
        }).sum();
        assert_eq!(total, 1024 * 1024);
        assert_eq!(p.block_shape(0, 1024, 1024), (256, 256));
    }

    #[test]
    fn display_format() {
        assert_eq!(Partition::new(4, 4).to_string(), "4x4");
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn rejects_zero() {
        Partition::new(0, 4);
    }
}
