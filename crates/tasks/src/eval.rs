//! Engine-vs-reference relative-error evaluation (the Fig. 10 harness).
//!
//! The engine under test (any [`EngineSpec`] — sharded DNC-D, a
//! fixed-point datapath, skimming, or combinations) shares weights (same
//! seed) with a monolithic f32 reference and consumes the same episodes.
//! For sharded engines the read-merge weights `α` are first fit on a
//! calibration split (the paper's "trainable weighted summation"); the
//! reported error is the fraction of query steps where the *retrieved
//! memory content* diverges — argmax of the engine's (merged) read vector
//! vs argmax of the reference's read vector. Judging on read vectors
//! rather than the final output isolates the quantity the variant
//! approximates (the output projection is dominated by the shared
//! controller state and would mask the divergence).
//!
//! Both models run through the unified [`hima_dnc::MemoryEngine`]
//! stepping API, one batch lane per episode.

use crate::episode::Episode;
use crate::tasks::{TaskSpec, TASKS, TOKEN_WIDTH};
use hima_dnc::allocation::SkimRate;
use hima_dnc::{Datapath, DncParams, EngineBuilder, EngineSpec};
use serde::{Deserialize, Serialize};

/// Evaluation configuration.
///
/// The variant under test is named by a full [`EngineSpec`] (topology ×
/// datapath × approximation features) rather than a bare tile count, so
/// one config type covers every axis the [`EngineBuilder`] exposes. The
/// presets route through one private base config; [`EvalConfig::small`]
/// and [`EvalConfig::saturated`] are the overrides the experiment
/// binaries and tests use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// The engine variant under test (the reference is always the
    /// monolithic f32 engine with the same weights).
    pub engine: EngineSpec,
    /// Memory rows `N` of the centralized reference.
    pub memory_size: usize,
    /// Word size `W`.
    pub word_size: usize,
    /// Read heads `R`.
    pub read_heads: usize,
    /// Controller width.
    pub hidden_size: usize,
    /// Episodes per task used for α calibration.
    pub calibration_episodes: usize,
    /// Episodes per task used for evaluation.
    pub eval_episodes: usize,
    /// Weight/episode seed.
    pub seed: u64,
}

impl EvalConfig {
    /// The shared base: small, fast geometry suitable for tests and the
    /// Fig. 10 experiment binary, with a monolithic f32 engine spec.
    fn base() -> Self {
        Self {
            engine: EngineSpec::monolithic(),
            memory_size: 64,
            word_size: 16,
            read_heads: 2,
            hidden_size: 32,
            calibration_episodes: 2,
            eval_episodes: 4,
            seed: 2021,
        }
    }

    /// A small, fast configuration testing a `tiles`-shard DNC-D.
    pub fn small(tiles: usize) -> Self {
        Self { engine: EngineSpec::sharded(tiles), ..Self::base() }
    }

    /// Memory-saturated configuration: shards small enough (8 rows at
    /// `tiles = 4`) that an episode fills every slot. Usage skimming only
    /// affects behaviour once no zero-usage slot remains — the allocation
    /// prefix product is exactly zero past the first free slot otherwise —
    /// so this is the regime (long bAbI stories on a finite memory) where
    /// the K-sweep of Fig. 10 is meaningful.
    pub fn saturated(tiles: usize) -> Self {
        Self { memory_size: 32, ..Self::small(tiles) }
    }

    /// Applies a skimming rate to the engine under test.
    pub fn with_skim(mut self, k: SkimRate) -> Self {
        self.engine.skim = k;
        self
    }

    /// Applies a datapath to the engine under test.
    pub fn with_datapath(mut self, datapath: Datapath) -> Self {
        self.engine.datapath = datapath;
        self
    }

    /// Replaces the whole engine spec under test.
    pub fn with_engine(mut self, engine: EngineSpec) -> Self {
        self.engine = engine;
        self
    }

    /// The shard count of the engine under test (1 for monolithic).
    pub fn tiles(&self) -> usize {
        self.engine.tiles()
    }

    fn params(&self) -> DncParams {
        DncParams::new(self.memory_size, self.word_size, self.read_heads)
            .with_hidden(self.hidden_size)
            .with_io(TOKEN_WIDTH, TOKEN_WIDTH)
    }

    /// The monolithic f32 reference builder (shared weights via the
    /// shared seed).
    pub fn reference_builder(&self) -> EngineBuilder {
        EngineBuilder::new(self.params()).seed(self.seed)
    }

    /// The builder for the engine under test (uncalibrated; the harness
    /// uses [`EvalConfig::calibrated_engine_builder`]).
    pub fn engine_builder(&self) -> EngineBuilder {
        EngineBuilder::new(self.params()).with_spec(self.engine).seed(self.seed)
    }

    /// The engine-under-test builder with its read-merge weights `α` fit
    /// on the task's calibration split (a no-op for monolithic specs).
    /// Both the synchronous harness and the pipelined one
    /// (`hima-pipeline`) build the engine through this method, so their
    /// merge weights are bit-identical.
    pub fn calibrated_engine_builder(&self, task: &TaskSpec) -> EngineBuilder {
        let calib = self.calibration_split(task);
        let calib_inputs: Vec<Vec<f32>> =
            calib.episodes.iter().flat_map(|e| e.inputs.clone()).collect();
        self.engine_builder().calibrated(&calib_inputs)
    }

    /// The held-out episodes used to calibrate `α` for `task`.
    pub fn calibration_split(&self, task: &TaskSpec) -> crate::episode::EpisodeBatch {
        task.generate(self.calibration_episodes, self.seed ^ 0xCA11B)
    }

    /// The episodes evaluated for `task` (generated from
    /// [`EvalConfig::evaluation_seed`]).
    pub fn evaluation_split(&self, task: &TaskSpec) -> crate::episode::EpisodeBatch {
        task.generate(self.eval_episodes, self.evaluation_seed())
    }

    /// The evaluation split's base seed — pipelined generation workers
    /// derive the same per-episode RNG streams from it that
    /// [`EvalConfig::evaluation_split`] uses.
    pub fn evaluation_seed(&self) -> u64 {
        self.seed ^ 0xE7A1
    }
}

/// Per-task relative error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskError {
    /// Task id (1-20).
    pub task_id: usize,
    /// Task name.
    pub name: &'static str,
    /// Fraction of query steps where the engine's retrieved content
    /// (read-vector argmax) diverges from the reference's, in `[0,1]`.
    pub error: f64,
    /// Mean normalized L2 distance between the two read vectors at query
    /// steps — a continuous divergence measure that resolves perturbations
    /// (e.g. light usage skimming) too small to flip an argmax.
    pub divergence: f64,
}

/// Runs the full 20-task suite, returning per-task relative errors.
pub fn relative_error(config: &EvalConfig) -> Vec<TaskError> {
    TASKS.iter().map(|task| task_error(config, task)).collect()
}

/// Mean error across tasks.
pub fn mean_error(errors: &[TaskError]) -> f64 {
    if errors.is_empty() {
        return 0.0;
    }
    errors.iter().map(|e| e.error).sum::<f64>() / errors.len() as f64
}

/// Mean divergence across tasks.
pub fn mean_divergence(errors: &[TaskError]) -> f64 {
    if errors.is_empty() {
        return 0.0;
    }
    errors.iter().map(|e| e.divergence).sum::<f64>() / errors.len() as f64
}

/// The relative-error partial contributed by one episode: query counts,
/// argmax disagreements, and the running divergence sum at that episode's
/// query steps.
///
/// Both harness paths reduce through this type: the synchronous
/// [`relative_error`] computes one partial per episode and folds them in
/// episode order, and the pipelined harness (`hima-pipeline`) computes
/// the identical partials on its engine workers and folds them in the
/// same order — which is what makes the two paths bit-identical even
/// though floating-point addition is order-sensitive.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct QueryStats {
    /// Query steps examined.
    pub queries: usize,
    /// Query steps whose read-vector argmax diverged from the reference.
    pub disagreements: usize,
    /// Sum of normalized L2 distances at the query steps.
    pub divergence_sum: f64,
}

impl QueryStats {
    /// Accumulates another episode's partial. The fold order is the bit
    /// pattern of the result — callers fold in episode-index order.
    pub fn accumulate(&mut self, other: &QueryStats) {
        self.queries += other.queries;
        self.disagreements += other.disagreements;
        self.divergence_sum += other.divergence_sum;
    }
}

/// Computes one episode's [`QueryStats`] from the reference's and the
/// engine-under-test's per-step read vectors (`reads[step]`).
pub fn episode_query_stats(
    episode: &Episode,
    ref_reads: &[Vec<f32>],
    dut_reads: &[Vec<f32>],
) -> QueryStats {
    let mut stats = QueryStats::default();
    for &q in &episode.query_steps {
        stats.queries += 1;
        if argmax(&ref_reads[q]) != argmax(&dut_reads[q]) {
            stats.disagreements += 1;
        }
        stats.divergence_sum += normalized_l2(&ref_reads[q], &dut_reads[q]);
    }
    stats
}

/// Folds per-episode partials (in episode-index order) into the task's
/// [`TaskError`].
pub fn task_error_from_stats(task: &TaskSpec, stats: &[QueryStats]) -> TaskError {
    let mut total = QueryStats::default();
    for s in stats {
        total.accumulate(s);
    }
    let error = if total.queries == 0 {
        0.0
    } else {
        total.disagreements as f64 / total.queries as f64
    };
    let divergence = if total.queries == 0 {
        0.0
    } else {
        total.divergence_sum / total.queries as f64
    };
    TaskError { task_id: task.id, name: task.name, error, divergence }
}

fn task_error(config: &EvalConfig, task: &TaskSpec) -> TaskError {
    // Calibrate α against the reference on held-out episodes (no-op for
    // monolithic engine specs).
    let engine_builder = config.calibrated_engine_builder(task);

    let eval = config.evaluation_split(task);
    let ref_reads = collect_reads(&config.reference_builder(), &eval.episodes);
    let dut_reads = collect_reads(&engine_builder, &eval.episodes);

    let stats: Vec<QueryStats> = eval
        .episodes
        .iter()
        .enumerate()
        .map(|(b, episode)| episode_query_stats(episode, &ref_reads[b], &dut_reads[b]))
        .collect();
    task_error_from_stats(task, &stats)
}

/// `‖a − b‖ / (‖a‖ + ε)`.
fn normalized_l2(a: &[f32], b: &[f32]) -> f64 {
    let diff: f64 = a.iter().zip(b).map(|(x, y)| ((x - y) as f64).powi(2)).sum::<f64>().sqrt();
    let norm: f64 = a.iter().map(|x| (*x as f64).powi(2)).sum::<f64>().sqrt();
    diff / (norm + 1e-9)
}

/// Builds one engine and drives it over every episode through the unified
/// [`hima_dnc::MemoryEngine`] API, collecting the *read vectors* (the
/// retrieved memory content) at every step of every episode:
/// `result[episode][step]`. One shared implementation with the trained
/// harness: [`crate::train::episode_features`] — batched one lane per
/// episode for uniform *and* ragged lists alike (ragged lists pad to the
/// longest episode and mask the tail; there is no single-lane fallback).
fn collect_reads(builder: &EngineBuilder, episodes: &[Episode]) -> Vec<Vec<Vec<f32>>> {
    crate::train::episode_features(builder, episodes)
}

fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use hima_tensor::QFormat;

    #[test]
    fn single_tile_has_zero_error() {
        // DNC-D with one shard and α = 1 is the centralized model; after
        // calibration the least-squares fit recovers α ≈ 1.
        let errors = relative_error(&EvalConfig::small(1));
        let mean = mean_error(&errors);
        assert!(mean < 0.05, "1-tile mean error {mean}");
    }

    #[test]
    fn error_grows_with_tiles() {
        // Fig. 10: the error rate of DNC-D increases with N_t.
        let e2 = mean_error(&relative_error(&EvalConfig::small(2)));
        let e8 = mean_error(&relative_error(&EvalConfig::small(8)));
        assert!(
            e8 >= e2,
            "error must not shrink with more shards: Nt=2 {e2:.3} vs Nt=8 {e8:.3}"
        );
    }

    #[test]
    fn heavy_skimming_hurts_more_than_light() {
        // Fig. 10: K=50% degrades clearly beyond K=20%. Judged on the
        // continuous divergence metric in the memory-saturated regime
        // (skimming is exactly free while zero-usage slots remain — the
        // allocation prefix product past the first free slot is zero).
        let base = EvalConfig::saturated(4);
        let none = mean_divergence(&relative_error(&base));
        let heavy = mean_divergence(&relative_error(&base.with_skim(SkimRate::new(0.6))));
        assert!(
            heavy >= none,
            "skimming must not reduce divergence: {none:.4} vs {heavy:.4}"
        );
        assert!(heavy > none, "K=60% must measurably diverge: {none:.4} vs {heavy:.4}");
    }

    #[test]
    fn quantized_datapath_diverges_but_tracks() {
        // The Q16.16 datapath axis runs through the same harness: the
        // fixed-point engine must measurably diverge from the f32
        // reference yet stay a close approximation on this small model.
        let f32_cfg = EvalConfig::small(4);
        let q_cfg = f32_cfg.with_datapath(Datapath::Quantized(QFormat::q16_16()));
        let f = mean_divergence(&relative_error(&f32_cfg));
        let q = mean_divergence(&relative_error(&q_cfg));
        assert!(q > 0.0, "quantization must be observable");
        assert!(q < 2.0, "Q16.16 should stay a bounded approximation: {q}");
        // Sanity: both specs exercise the same sharding, so the
        // quantization effect rides on top of the sharding divergence.
        assert!((q - f).abs() < 1.0, "datapath effect implausibly large: {f} vs {q}");
    }

    #[test]
    fn monolithic_spec_matches_reference_exactly() {
        // A monolithic f32 engine under test *is* the reference.
        let cfg = EvalConfig::base().with_engine(EngineSpec::monolithic());
        let errors = relative_error(&cfg);
        assert_eq!(mean_error(&errors), 0.0);
        assert_eq!(mean_divergence(&errors), 0.0);
    }

    #[test]
    fn errors_cover_all_tasks_and_are_probabilities() {
        let errors = relative_error(&EvalConfig::small(4));
        assert_eq!(errors.len(), 20);
        for e in &errors {
            assert!((0.0..=1.0).contains(&e.error), "task {}: {}", e.task_id, e.error);
        }
    }

    #[test]
    fn evaluation_is_deterministic() {
        let a = relative_error(&EvalConfig::small(4));
        let b = relative_error(&EvalConfig::small(4));
        assert_eq!(a, b);
    }

    #[test]
    fn evaluation_deterministic_across_thread_counts() {
        // Lane/shard parallelism must not perturb results: per-lane state
        // and deterministic merges make the batched harness
        // bit-deterministic whether it runs on one worker thread or many.
        let cfg = EvalConfig::small(2);
        let one = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| relative_error(&cfg));
        let four = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| relative_error(&cfg));
        assert_eq!(one, four);
    }

    #[test]
    fn stats_fold_handles_zero_queries() {
        let task = &TASKS[0];
        let zero = task_error_from_stats(task, &[]);
        assert_eq!(zero.error, 0.0);
        assert_eq!(zero.divergence, 0.0);
        let none = task_error_from_stats(task, &[QueryStats::default()]);
        assert_eq!(none.error, 0.0);
    }

    #[test]
    fn episode_stats_count_disagreements() {
        let episode = Episode::new(vec![vec![0.0, 1.0]; 3], vec![0, 2]);
        let reference = vec![vec![1.0, 0.0], vec![0.0, 0.0], vec![0.0, 1.0]];
        let agree = episode_query_stats(&episode, &reference, &reference);
        assert_eq!((agree.queries, agree.disagreements), (2, 0));
        assert_eq!(agree.divergence_sum, 0.0);
        let flipped = vec![vec![0.0, 1.0], vec![0.0, 0.0], vec![1.0, 0.0]];
        let differ = episode_query_stats(&episode, &reference, &flipped);
        assert_eq!((differ.queries, differ.disagreements), (2, 2));
        assert!(differ.divergence_sum > 0.0);
    }

    #[test]
    fn ragged_eval_reads_match_sequential_reference() {
        // The eval harness's read collection routes ragged lists through
        // the masked batched grid (no single-lane fallback): reference
        // and engine-under-test reads — and the QueryStats computed from
        // them — are bit-identical to per-episode sequential stepping.
        let task = TASKS[0].with_jitter(3);
        let eval = task.generate(5, 21).episodes;
        assert!(crate::episode::uniform_len(&eval).is_none(), "workload must be ragged");
        let cfg = EvalConfig::small(2);
        for builder in [cfg.reference_builder(), cfg.engine_builder()] {
            let batched = crate::train::episode_features(&builder, &eval);
            let mut single = builder.clone().lanes(1).build();
            let sequential = crate::train::sequential_episode_features(&mut *single, &eval);
            assert_eq!(batched, sequential);
        }
        let ref_reads = crate::train::episode_features(&cfg.reference_builder(), &eval);
        let dut_reads = crate::train::episode_features(&cfg.engine_builder(), &eval);
        let stats: Vec<QueryStats> = eval
            .iter()
            .enumerate()
            .map(|(b, e)| episode_query_stats(e, &ref_reads[b], &dut_reads[b]))
            .collect();
        let err = task_error_from_stats(&task, &stats);
        assert!((0.0..=1.0).contains(&err.error));
        assert!(stats.iter().map(|s| s.queries).sum::<usize>() > 0);
    }

    #[test]
    fn argmax_picks_first_max() {
        assert_eq!(argmax(&[0.1, 0.9, 0.9]), 1);
        assert_eq!(argmax(&[]), 0);
    }
}
