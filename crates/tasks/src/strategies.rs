//! Proptest strategies for **ragged** episode sets — shared test support.
//!
//! The ragged conformance suites across the workspace (`hima-dnc`'s
//! engine-level masked tests, this crate's harness tests, the
//! `hima-pipeline` property specs and the workspace-level
//! `tests/ragged_conformance.rs`) all need the same inputs: batches of
//! unequal-length episodes with controlled length spread and query
//! placement. This module is the single implementation, exposed as
//! [`proptest`] strategies so the suites stay property-driven:
//!
//! * [`ragged_episodes`] — direct [`Episode`] sets with a chosen batch
//!   range and per-episode length range (the spread knob), queries
//!   placed anywhere in the episode,
//! * [`task_choice`] — one of the built-in [`TASKS`], for combining
//!   with a jitter argument into ragged *generated* workloads
//!   ([`TaskSpec::with_jitter`]).
//!
//! Episodes use the standard [`TOKEN_WIDTH`](crate::tasks::TOKEN_WIDTH)
//! encoding, so any engine built with task-token I/O consumes them
//! directly.

use crate::episode::Episode;
use crate::tasks::{encode, TaskSpec, TASKS, VOCAB};
use proptest::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::RangeInclusive;

/// Strategy generating ragged episode sets: `batch` episodes, each
/// `len`-steps long (lengths drawn independently — the width of `len`
/// *is* the length spread), with 1 to `max_queries` query steps placed
/// uniformly at random (distinct, sorted).
///
/// Build with [`ragged_episodes`].
#[derive(Debug, Clone)]
pub struct RaggedEpisodes {
    batch: RangeInclusive<usize>,
    len: RangeInclusive<usize>,
    max_queries: usize,
}

/// Ragged episode sets with `batch` episodes of `len` steps each — see
/// [`RaggedEpisodes`].
pub fn ragged_episodes(
    batch: RangeInclusive<usize>,
    len: RangeInclusive<usize>,
) -> RaggedEpisodes {
    assert!(*batch.start() >= 1, "need at least one episode");
    assert!(*len.start() >= 1, "episodes need at least one step");
    RaggedEpisodes { batch, len, max_queries: 2 }
}

impl RaggedEpisodes {
    /// Overrides the per-episode query-step cap (default 2). Each
    /// episode still gets at least one query.
    pub fn max_queries(mut self, max_queries: usize) -> Self {
        assert!(max_queries >= 1, "episodes need at least one query");
        self.max_queries = max_queries;
        self
    }

    fn sample_in(rng: &mut StdRng, range: &RangeInclusive<usize>) -> usize {
        let (lo, hi) = (*range.start(), *range.end());
        if lo == hi {
            lo
        } else {
            rng.gen_range(lo..hi + 1)
        }
    }

    fn episode(&self, rng: &mut StdRng) -> Episode {
        let len = Self::sample_in(rng, &self.len);
        let inputs: Vec<Vec<f32>> = (0..len)
            .map(|_| {
                let token = rng.gen_range(0..VOCAB);
                let store = rng.gen_range(0..2) == 0;
                encode(token, store, false)
            })
            .collect();
        let mut inputs = inputs;
        // Query placement: anywhere in the episode, distinct steps.
        let queries = Self::sample_in(rng, &(1..=self.max_queries.min(len)));
        let mut query_steps = Vec::with_capacity(queries);
        while query_steps.len() < queries {
            let q = rng.gen_range(0..len);
            if !query_steps.contains(&q) {
                query_steps.push(q);
            }
        }
        query_steps.sort_unstable();
        for &q in &query_steps {
            let token = rng.gen_range(0..VOCAB);
            inputs[q] = encode(token, false, true);
        }
        Episode::new(inputs, query_steps)
    }
}

impl Strategy for RaggedEpisodes {
    type Value = Vec<Episode>;

    fn generate(&self, rng: &mut StdRng) -> Vec<Episode> {
        let batch = Self::sample_in(rng, &self.batch);
        (0..batch).map(|_| self.episode(rng)).collect()
    }
}

/// Strategy picking one of the built-in [`TASKS`]; combine with a jitter
/// strategy and [`TaskSpec::with_jitter`] for ragged generated
/// workloads.
pub fn task_choice() -> proptest::sample::Select<TaskSpec> {
    proptest::sample::select(TASKS.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::episode::uniform_len;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_sets_respect_batch_len_and_query_bounds(
            episodes in ragged_episodes(2..=6, 3..=9).max_queries(3)
        ) {
            prop_assert!((2..=6).contains(&episodes.len()));
            for e in &episodes {
                prop_assert!((3..=9).contains(&e.len()));
                prop_assert!((1..=3).contains(&e.query_steps.len()));
                prop_assert!(e.query_steps.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
                for &q in &e.query_steps {
                    prop_assert!(q < e.len());
                    prop_assert_eq!(e.inputs[q][VOCAB + 1], 1.0, "query flag set");
                }
            }
        }

        #[test]
        fn wide_length_ranges_actually_spread(
            episodes in ragged_episodes(8..=8, 2..=12)
        ) {
            // Not a hard guarantee per draw, but across 8 episodes of a
            // 2..=12 range a uniform batch is vanishingly unlikely; the
            // deterministic test RNG makes this stable.
            prop_assert!(uniform_len(&episodes).is_none() || episodes.len() == 1);
        }

        #[test]
        fn task_choice_combines_with_jitter(
            task in task_choice(), jitter in 1usize..=5
        ) {
            let jittered = task.with_jitter(jitter);
            prop_assert_eq!(jittered.max_episode_len(), task.episode_len() + jitter);
            let batch = jittered.generate(4, 7);
            for e in &batch.episodes {
                prop_assert!(e.len() >= task.episode_len());
                prop_assert!(e.len() <= jittered.max_episode_len());
            }
        }
    }

    #[test]
    fn fixed_length_range_degenerates_to_uniform() {
        use proptest::strategy::Strategy as _;
        let strat = ragged_episodes(3..=3, 5..=5);
        let eps = strat.generate(&mut proptest::test_runner::rng_for("fixed"));
        assert_eq!(eps.len(), 3);
        assert_eq!(uniform_len(&eps), Some(5));
    }
}
