//! `hima-cli` — one entry point for every experiment in the reproduction.
//!
//! ```console
//! $ hima-cli list
//! $ hima-cli run fig7
//! $ hima-cli run all
//! $ hima-cli engine --tiles 32 --level dncd
//! $ hima-cli step --tiles 4 --lanes 8 --quantized --steps 50
//! $ hima-cli pipeline --tiles 2 --episodes 8 --batch 4
//! $ hima-cli babi path/to/qa1_train.txt
//! $ hima-cli serve --addr 127.0.0.1:7070 --lanes 8
//! $ hima-cli session --addr 127.0.0.1:7070 --steps 20
//! $ hima-cli metrics --addr 127.0.0.1:7070 --trace
//! $ hima-cli session --addr 127.0.0.1:7070 --shutdown
//! ```

use hima::prelude::*;
use hima::serve::loadgen::synth_input;
use hima::serve::{
    run_load, ArrivalPattern, ClientOptions, FaultKind, FaultPlan, FaultRule, FaultSite,
    LoadConfig, RetryPolicy, TraceKind,
};
use hima::tensor::{Matrix, QFormat};
use std::sync::Arc;
use std::process::{exit, Command};
use std::time::{Duration, Instant};

const EXPERIMENTS: [(&str, &str, &str); 11] = [
    ("table1", "table1_kernels", "Table 1: DNC kernel analysis"),
    ("fig4", "fig4_runtime_breakdown", "Fig. 4: CPU/GPU runtime breakdown"),
    ("fig5", "fig5_noc_scalability", "Fig. 5(d): NoC speedup scalability"),
    ("fig6", "fig6_partition_traffic", "Fig. 6: partition traffic sweeps"),
    ("fig7", "fig7_sort_latency", "Fig. 7: two-stage usage sort"),
    ("fig10", "fig10_dncd_accuracy", "Fig. 10: DNC-D accuracy vs DNC"),
    ("fig11", "fig11_feature_sweep", "Fig. 11: speed/area/power of the prototypes"),
    ("fig12a", "fig12_scalability", "Fig. 12(a): area/power scalability"),
    ("fig12b", "fig12_comparison", "Fig. 12(b-d): cross-design comparison"),
    ("modes", "ablation_noc_modes", "Ablation: NoC mode x traffic pattern"),
    ("approx", "ablation_approximations", "Ablation: skimming / PLA softmax / Q16.16"),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => list(),
        Some("run") => run(args.get(1).map(String::as_str)),
        Some("engine") => engine(&args[1..]),
        Some("step") => step(&args[1..]),
        Some("pipeline") => pipeline(&args[1..]),
        Some("babi") => babi(args.get(1).map(String::as_str)),
        Some("serve") => serve(&args[1..]),
        Some("load") => load(&args[1..]),
        Some("session") => session(&args[1..]),
        Some("metrics") => metrics(&args[1..]),
        _ => {
            usage();
            exit(2);
        }
    }
}

fn usage() {
    eprintln!("hima-cli — HiMA (MICRO '21) reproduction driver\n");
    eprintln!("USAGE:");
    eprintln!("  hima-cli list                      list experiments");
    eprintln!("  hima-cli run <id|all>              run experiment binaries");
    eprintln!("  hima-cli engine [--tiles N] [--level L]   query the cycle/area/power models");
    eprintln!("                  levels: baseline|sort|noc|submat|dncd|approx");
    eprintln!("  hima-cli step [--tiles N] [--lanes B] [--steps T] [--quantized] [--skim K]");
    eprintln!("                  run the functional model via EngineBuilder/MemoryEngine");
    eprintln!("                  (--tiles 1 = monolithic DNC, N > 1 = sharded DNC-D)");
    eprintln!("  hima-cli pipeline [--tiles N] [--episodes E] [--batch B] [--gen-workers G]");
    eprintln!("                  [--engine-workers W] [--depth D] [--no-verify]");
    eprintln!("                  run the Fig. 10 eval through the async episode pipeline,");
    eprintln!("                  timed against (and checked bit-equal to) the synchronous harness");
    eprintln!("  hima-cli babi <file>               parse a bAbI-format file and report stats");
    eprintln!("  hima-cli serve [--addr A] [--lanes N] [--tick-us T] [--idle-ms I]");
    eprintln!("                 [--store DIR] [--snapshot-every K] [--max-parked P]");
    eprintln!("                 [--profile-engine] [--deadline-ms D]");
    eprintln!("                 [--chaos-seed S] [--chaos-disk PM] [--chaos-net PM]");
    eprintln!("                  run the session server until a client sends shutdown");
    eprintln!("                  (--profile-engine turns on sampled per-category engine timing;");
    eprintln!("                   --chaos-* arm seeded fault injection at PM per-mille per I/O op,");
    eprintln!("                   --deadline-ms sets the default server-side step deadline)");
    eprintln!("  hima-cli load [--addr A] [--sessions N] [--steps T] [--burst B]");
    eprintln!("                 [--deadline-ms D] [--retries R]");
    eprintln!("                  drive an open-loop load run against a running server");
    eprintln!("                  (--retries turns on reconnect-with-backoff per client)");
    eprintln!("  hima-cli session [--addr A] [--steps T] [--tiles N] [--quantized] [--shutdown]");
    eprintln!("                 [--session ID] [--keep-open]");
    eprintln!("                  drive one session end-to-end against a running server");
    eprintln!("                  (--shutdown asks the server to stop instead; --session drives");
    eprintln!("                   an existing id, --keep-open skips the close)");
    eprintln!("  hima-cli metrics [--addr A] [--json] [--trace] [--check] [--expect-faults]");
    eprintln!("                  fetch the server-wide telemetry snapshot from a running server");
    eprintln!("                  (--trace adds the lifecycle event ring; --check exits non-zero");
    eprintln!("                   unless the scheduler has ticked/stepped and the trace is clean;");
    eprintln!("                   --expect-faults instead requires nonzero injected fault.* totals");
    eprintln!("                   and tolerates trace errors — for fault-drill runs)");
}

fn list() {
    println!("{:<8} {:<26} description", "id", "binary");
    for (id, bin, desc) in EXPERIMENTS {
        println!("{id:<8} {bin:<26} {desc}");
    }
}

fn run(which: Option<&str>) {
    let Some(which) = which else {
        eprintln!("missing experiment id (try `hima-cli list`)");
        exit(2);
    };
    let selected: Vec<&(&str, &str, &str)> = if which == "all" {
        EXPERIMENTS.iter().collect()
    } else {
        EXPERIMENTS.iter().filter(|(id, _, _)| *id == which).collect()
    };
    if selected.is_empty() {
        eprintln!("unknown experiment {which:?} (try `hima-cli list`)");
        exit(2);
    }
    for (_, bin, desc) in selected {
        println!("\n########## {desc} ##########");
        let status = Command::new(std::env::current_exe().expect("own path"))
            .status_via_cargo(bin);
        if !status {
            eprintln!("failed to run {bin}");
            exit(1);
        }
    }
}

trait RunVia {
    fn status_via_cargo(&mut self, bin: &str) -> bool;
}

impl RunVia for Command {
    /// Experiment binaries live next to this one in target/; fall back to
    /// cargo when invoked from the workspace.
    fn status_via_cargo(&mut self, bin: &str) -> bool {
        let own = std::env::current_exe().ok();
        let sibling = own.and_then(|p| p.parent().map(|d| d.join(bin)));
        if let Some(path) = sibling.filter(|p| p.exists()) {
            return Command::new(path).status().map(|s| s.success()).unwrap_or(false);
        }
        Command::new("cargo")
            .args(["run", "--release", "-p", "hima-bench", "--bin", bin])
            .status()
            .map(|s| s.success())
            .unwrap_or(false)
    }
}

fn engine(args: &[String]) {
    let mut tiles = 16usize;
    let mut level = "submat".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiles" => {
                tiles = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bail("--tiles needs a positive integer"))
            }
            "--level" => level = it.next().cloned().unwrap_or_else(|| bail("--level needs a value")),
            other => bail(&format!("unknown flag {other:?}")),
        }
    }
    let level = match level.as_str() {
        "baseline" => FeatureLevel::Baseline,
        "sort" => FeatureLevel::TwoStageSort,
        "noc" => FeatureLevel::HimaNoc,
        "submat" => FeatureLevel::Submatrix,
        "dncd" => FeatureLevel::DncD,
        "approx" => FeatureLevel::DncDApprox,
        other => bail(&format!("unknown level {other:?}")),
    };
    let cfg = EngineConfig::at_level(level, tiles);
    let e = Engine::new(cfg);
    let area = AreaModel::estimate(&cfg);
    let power = PowerModel::calibrated().estimate(&cfg);
    println!("configuration: {} at N_t = {tiles}", level.label());
    println!("  cycles/step : {}", e.step_cycles());
    println!("  time/step   : {:.3} us @ {} MHz", e.step_us(), (cfg.clock_ghz * 1000.0) as u64);
    println!("  area        : {:.2} mm2 (PT {:.2}, CT {:.2})", area.total_mm2(), area.pt_mm2, area.ct_mm2);
    println!("  power       : {:.2} W", power.total_w());
    println!("  energy/step : {:.3} uJ", power.energy_per_step_uj());
}

/// Builds a functional engine from command-line axes and reports measured
/// throughput plus the per-kernel profile — a direct window onto the
/// unified `EngineBuilder`/`MemoryEngine` path the harnesses use.
fn step(args: &[String]) {
    let mut tiles = 1usize;
    let mut lanes = 8usize;
    let mut steps = 50usize;
    let mut quantized = false;
    let mut skim = 0.0f32;
    fn num<T: std::str::FromStr>(v: Option<&String>, flag: &str) -> T {
        v.and_then(|v| v.parse().ok()).unwrap_or_else(|| bail(flag))
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiles" => tiles = num(it.next(), "--tiles needs a positive integer"),
            "--lanes" => lanes = num(it.next(), "--lanes needs a positive integer"),
            "--steps" => steps = num(it.next(), "--steps needs a positive integer"),
            "--skim" => skim = num(it.next(), "--skim needs a rate in [0,1)"),
            "--quantized" => quantized = true,
            other => bail(&format!("unknown flag {other:?}")),
        }
    }
    if tiles == 0 || lanes == 0 || steps == 0 {
        bail::<()>("--tiles/--lanes/--steps must be positive");
    }

    let params = DncParams::new(256, 32, 2).with_hidden(64).with_io(16, 16);
    // This subcommand prints the kernel-profile breakdown, so opt in to
    // wall-clock sampling (builder engines default it off).
    let mut builder = EngineBuilder::new(params).lanes(lanes).seed(2021).profiling(true);
    if tiles > 1 {
        builder = builder.sharded(tiles);
    }
    if quantized {
        builder = builder.quantized(QFormat::q16_16());
    }
    if skim > 0.0 {
        builder = builder.skim(SkimRate::new(skim));
    }
    let spec = builder.spec();
    let mut engine = builder.build();

    let x = Matrix::from_fn(lanes, params.input_size, |b, i| ((b * 7 + i) as f32 * 0.21).sin());
    engine.step_batch(&x); // warm-up
    let start = Instant::now();
    for _ in 0..steps {
        engine.step_batch(&x);
    }
    let secs = start.elapsed().as_secs_f64();

    println!("engine        : {} × {lanes} lanes (N={} W={} R={})",
        spec.label(), params.memory_size, params.word_size, params.read_heads);
    println!("steps         : {steps}  ({:.1} lane-steps/sec)", (steps * lanes) as f64 / secs);
    println!("time/step     : {:.3} ms", secs * 1e3 / steps as f64);
    let profile = engine.profile();
    println!("kernel profile (share of memory-unit time):");
    for (cat, share) in profile.category_shares() {
        println!("  {:<24} {:>5.1}%", format!("{cat:?}"), share * 100.0);
    }
}

/// Runs the 20-task relative-error eval through the `hima-pipeline`
/// producer/consumer harness, times it against the synchronous harness,
/// and (unless `--no-verify`) asserts the two are bit-identical — the
/// end-to-end window onto the pipeline subsystem.
fn pipeline(args: &[String]) {
    let mut tiles = 2usize;
    let mut episodes = 4usize;
    let mut spec = PipelineSpec::default();
    let mut verify = true;
    fn num<T: std::str::FromStr>(v: Option<&String>, flag: &str) -> T {
        v.and_then(|v| v.parse().ok()).unwrap_or_else(|| bail(flag))
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiles" => tiles = num(it.next(), "--tiles needs a positive integer"),
            "--episodes" => episodes = num(it.next(), "--episodes needs a positive integer"),
            "--batch" => spec.batch_size = num(it.next(), "--batch needs a positive integer"),
            "--gen-workers" => {
                spec.gen_workers = num(it.next(), "--gen-workers needs a positive integer")
            }
            "--engine-workers" => {
                spec.engine_workers = num(it.next(), "--engine-workers needs a positive integer")
            }
            "--depth" => spec.channel_depth = num(it.next(), "--depth needs an integer"),
            "--no-verify" => verify = false,
            other => bail(&format!("unknown flag {other:?}")),
        }
    }
    if let Err(e) = spec.validate() {
        bail::<()>(&e);
    }
    if tiles == 0 || episodes == 0 {
        bail::<()>("--tiles/--episodes must be positive");
    }

    let mut config = EvalConfig::small(tiles);
    config.eval_episodes = episodes;
    println!(
        "pipeline      : {} over {} tasks × {episodes} episodes (engine {})",
        spec.label(),
        TASKS.len(),
        config.engine.label()
    );

    let start = Instant::now();
    let pipelined = relative_error_pipelined(&config, &spec);
    let pipelined_secs = start.elapsed().as_secs_f64();
    let mean: f64 =
        pipelined.iter().map(|e| e.error).sum::<f64>() / pipelined.len().max(1) as f64;
    println!("pipelined     : {pipelined_secs:.3} s  (mean relative error {mean:.4})");

    if verify {
        let start = Instant::now();
        let sync = relative_error(&config);
        let sync_secs = start.elapsed().as_secs_f64();
        println!("synchronous   : {sync_secs:.3} s");
        if sync == pipelined {
            println!(
                "verified      : pipelined == synchronous bit-for-bit ({} speedup)",
                hima_bench::times(sync_secs / pipelined_secs)
            );
        } else {
            eprintln!("error: pipelined results diverge from the synchronous harness");
            exit(1);
        }
    }
}

fn babi(path: Option<&str>) {
    let Some(path) = path else {
        bail::<()>("babi needs a file path");
        return;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => bail(&format!("cannot read {path}: {e}")),
    };
    let stories = match hima::tasks::parse_stories(&text) {
        Ok(s) => s,
        Err(e) => bail(&format!("parse error: {e}")),
    };
    let vocab = hima::tasks::Vocabulary::build(&stories);
    let questions: usize = stories.iter().map(|s| s.question_count()).sum();
    println!("{path}: {} stories, {questions} questions, vocabulary {}", stories.len(), vocab.len());
    if let Some(story) = stories.first() {
        let enc = hima::tasks::encode_story(story, &vocab);
        println!(
            "first story encodes to a {}-step episode of width {} with {} queries",
            enc.episode.len(),
            enc.episode.width(),
            enc.episode.query_steps.len()
        );
    }
}

/// Runs the session server in the foreground until a client sends the
/// shutdown command (`hima-cli session --shutdown`), then drains and
/// exits cleanly.
fn serve(args: &[String]) {
    let mut addr = "127.0.0.1:7070".to_string();
    let mut cfg = ServeConfig::default();
    let mut profile_engine = false;
    let mut store: Option<StoreConfig> = None;
    let mut chaos_seed = 0x4849_4D41u64;
    let mut chaos_disk = 0u32;
    let mut chaos_net = 0u32;
    fn num<T: std::str::FromStr>(v: Option<&String>, flag: &str) -> T {
        v.and_then(|v| v.parse().ok()).unwrap_or_else(|| bail(flag))
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().cloned().unwrap_or_else(|| bail("--addr needs host:port")),
            "--lanes" => cfg.grid_lanes = num(it.next(), "--lanes needs a positive integer"),
            "--tick-us" => {
                cfg.tick = Duration::from_micros(num(it.next(), "--tick-us needs an integer"))
            }
            "--idle-ms" => {
                cfg.idle_timeout =
                    Some(Duration::from_millis(num(it.next(), "--idle-ms needs an integer")))
            }
            "--deadline-ms" => {
                cfg.default_deadline =
                    Some(Duration::from_millis(num(it.next(), "--deadline-ms needs an integer")))
            }
            "--chaos-seed" => chaos_seed = num(it.next(), "--chaos-seed needs an integer"),
            "--chaos-disk" => {
                chaos_disk = num(it.next(), "--chaos-disk needs a per-mille rate (0..=1000)")
            }
            "--chaos-net" => {
                chaos_net = num(it.next(), "--chaos-net needs a per-mille rate (0..=1000)")
            }
            "--profile-engine" => profile_engine = true,
            "--store" => {
                let dir = it.next().cloned().unwrap_or_else(|| bail("--store needs a directory"));
                store = Some(StoreConfig::new(dir));
            }
            "--snapshot-every" => {
                let every = num(it.next(), "--snapshot-every needs a positive integer");
                store.as_mut().unwrap_or_else(|| bail("--snapshot-every requires --store")).
                    snapshot_every = every;
            }
            "--max-parked" => {
                let cap = num(it.next(), "--max-parked needs an integer");
                store.as_mut().unwrap_or_else(|| bail("--max-parked requires --store")).max_parked =
                    cap;
            }
            other => bail(&format!("unknown flag {other:?}")),
        }
    }
    if cfg.grid_lanes == 0 {
        bail::<()>("--lanes must be positive");
    }
    if let Some(sc) = &store {
        if sc.snapshot_every == 0 {
            bail::<()>("--snapshot-every must be positive");
        }
    }
    if chaos_disk > 1000 || chaos_net > 1000 {
        bail::<()>("--chaos-disk / --chaos-net are per-mille rates (0..=1000)");
    }
    let chaos_note = if chaos_disk > 0 || chaos_net > 0 {
        let mut plan = FaultPlan::new(chaos_seed);
        for site in [FaultSite::StoreWrite, FaultSite::StoreFsync, FaultSite::StoreRename] {
            plan = plan.with_rule(FaultRule::probabilistic(site, FaultKind::IoError, chaos_disk));
        }
        plan = plan
            .with_rule(FaultRule::probabilistic(FaultSite::NetRead, FaultKind::Reset, chaos_net))
            .with_rule(FaultRule::probabilistic(
                FaultSite::NetWrite,
                FaultKind::PartialWrite { keep: 3 },
                chaos_net,
            ));
        let plan = Arc::new(plan);
        cfg.faults = Some(Arc::clone(&plan));
        if let Some(sc) = &mut store {
            sc.faults = Some(Arc::clone(&plan));
        }
        format!(", chaos seed {chaos_seed} disk {chaos_disk}‰ net {chaos_net}‰")
    } else {
        String::new()
    };
    let store_note = store.as_ref().map(|sc| format!(", store {}", sc.dir.display()));
    let mut server = match Server::bind_with_store(addr.as_str(), cfg.clone(), store) {
        Ok(s) => s,
        Err(e) => bail(&format!("cannot bind {addr}: {e}")),
    };
    if profile_engine {
        // Must be set before the first Open spawns a group thread — a
        // group reads the opt-in once, when it builds its engine.
        server.hub().metrics().set_engine_profiling(true);
    }
    println!(
        "serving on {} ({} grid lanes, tick {:?}{}{}{})",
        server.addr(),
        cfg.grid_lanes,
        cfg.tick,
        if profile_engine { ", engine profiling on" } else { "" },
        store_note.as_deref().unwrap_or(""),
        chaos_note
    );
    server.wait_for_shutdown();
    println!("shutdown requested, draining");
    server.stop();
    println!("stopped ({} sessions live at exit)", server.hub().live_sessions());
}

/// Drives an open-loop load run against a running server and prints the
/// report. With `--retries` each load client reconnects under seeded
/// jittered backoff and retries its step on the recovered connection —
/// the fault-drill mode the CI chaos smoke uses. Exits non-zero only if
/// *no* session completes (a drill tolerates partial failure; total
/// failure means the server is down).
fn load(args: &[String]) {
    let mut addr = "127.0.0.1:7070".to_string();
    let mut sessions = 8usize;
    let mut steps = 20usize;
    let mut burst = 0usize;
    let mut deadline_ms = 0u64;
    let mut retries = 0u32;
    fn num<T: std::str::FromStr>(v: Option<&String>, flag: &str) -> T {
        v.and_then(|v| v.parse().ok()).unwrap_or_else(|| bail(flag))
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().cloned().unwrap_or_else(|| bail("--addr needs host:port")),
            "--sessions" => sessions = num(it.next(), "--sessions needs a positive integer"),
            "--steps" => steps = num(it.next(), "--steps needs a positive integer"),
            "--burst" => burst = num(it.next(), "--burst needs a burst size"),
            "--deadline-ms" => deadline_ms = num(it.next(), "--deadline-ms needs an integer"),
            "--retries" => retries = num(it.next(), "--retries needs an integer"),
            other => bail(&format!("unknown flag {other:?}")),
        }
    }
    let sock_addr = match std::net::ToSocketAddrs::to_socket_addrs(&addr.as_str())
        .ok()
        .and_then(|mut a| a.next())
    {
        Some(a) => a,
        None => bail(&format!("cannot resolve {addr}")),
    };
    let pattern = if burst > 0 {
        ArrivalPattern::Burst { size: burst, gap: Duration::from_millis(5) }
    } else {
        ArrivalPattern::Uniform { interval: Duration::from_millis(1) }
    };
    let client = ClientOptions {
        rpc_deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
        retry: (retries > 0).then(|| RetryPolicy { max_attempts: retries, ..RetryPolicy::default() }),
    };
    let report = run_load(
        sock_addr,
        &LoadConfig { spec: RawSessionSpec::demo(), sessions, steps, pattern, client },
    );
    println!(
        "load {}: {}/{} sessions completed ({} failed) in {:?}",
        pattern.label(),
        report.completed,
        report.sessions,
        report.failed,
        report.elapsed
    );
    println!(
        "  {:.1} sessions/s, {:.0} steps/s, step latency p50 {:?} p90 {:?} p99 {:?} max {:?}",
        report.sessions_per_sec,
        report.steps_per_sec,
        report.p50_step,
        report.p90_step,
        report.p99_step,
        report.max_step
    );
    if report.completed == 0 {
        eprintln!("load failed: no session completed");
        exit(1);
    }
}

/// Drives one demo session against a running server: open, `--steps`
/// synthetic steps, query the read row, close — or, with `--shutdown`,
/// asks the server process to stop. `--session ID` drives an existing
/// session (e.g. one adopted from a store after a restart) instead of
/// opening; `--keep-open` skips the close so the session outlives this
/// invocation.
fn session(args: &[String]) {
    let mut addr = "127.0.0.1:7070".to_string();
    let mut steps = 20usize;
    let mut tiles = 1usize;
    let mut quantized = false;
    let mut shutdown = false;
    let mut keep_open = false;
    let mut existing: Option<u64> = None;
    fn num<T: std::str::FromStr>(v: Option<&String>, flag: &str) -> T {
        v.and_then(|v| v.parse().ok()).unwrap_or_else(|| bail(flag))
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().cloned().unwrap_or_else(|| bail("--addr needs host:port")),
            "--steps" => steps = num(it.next(), "--steps needs a positive integer"),
            "--tiles" => tiles = num(it.next(), "--tiles needs a positive integer"),
            "--quantized" => quantized = true,
            "--shutdown" => shutdown = true,
            "--keep-open" => keep_open = true,
            "--session" => existing = Some(num(it.next(), "--session needs an id")),
            other => bail(&format!("unknown flag {other:?}")),
        }
    }
    let mut client = match Client::connect(addr.as_str()) {
        Ok(c) => c,
        Err(e) => bail(&format!("cannot connect to {addr}: {e}")),
    };
    if shutdown {
        match client.shutdown_server() {
            Ok(()) => println!("server at {addr} is shutting down"),
            Err(e) => bail(&format!("shutdown failed: {e}")),
        }
        return;
    }
    if tiles == 0 || steps == 0 {
        bail::<()>("--tiles/--steps must be positive");
    }

    let mut raw = RawSessionSpec::demo();
    if tiles > 1 {
        raw.sharded = true;
        raw.tiles = tiles as u32;
    }
    if quantized {
        raw.quantized = true;
        raw.int_bits = 16;
        raw.frac_bits = 16;
    }
    let session = match existing {
        Some(id) => {
            println!("session {id} (existing) on {addr}");
            id
        }
        None => match client.open(&raw) {
            Ok(id) => id,
            Err(e) => bail(&format!("open failed: {e}")),
        },
    };
    if existing.is_none() {
        println!("session {session} open on {addr}");
    }
    let width = raw.input_size as usize;
    let start = Instant::now();
    let mut last = Vec::new();
    for t in 0..steps {
        match client.step(session, &synth_input(0, t, width)) {
            Ok(y) => last = y,
            Err(e) => bail(&format!("step {t} failed: {e}")),
        }
    }
    let secs = start.elapsed().as_secs_f64();
    println!("stepped {steps} times ({:.1} steps/sec)", steps as f64 / secs);
    println!("last output   : {last:?}");
    match client.read_rows(session) {
        Ok(read) => println!("read row      : {} values, first {:?}", read.len(), &read[..read.len().min(4)]),
        Err(e) => bail(&format!("read-rows failed: {e}")),
    }
    if keep_open {
        println!("session {session} left open");
        return;
    }
    if let Err(e) = client.close_session(session) {
        bail::<()>(&format!("close failed: {e}"));
    }
    println!("session {session} closed");
}

/// Fetches the server-wide telemetry snapshot from a running server and
/// renders it: a human table by default, the wire-faithful JSON object
/// with `--json`, plus the lifecycle trace ring with `--trace`. With
/// `--check` the exit status becomes a health gate (used by the CI
/// metrics smoke): non-zero unless the scheduler has both ticked and
/// stepped and the trace ring holds no error events.
fn metrics(args: &[String]) {
    let mut addr = "127.0.0.1:7070".to_string();
    let mut json = false;
    let mut trace = false;
    let mut check = false;
    let mut expect_faults = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().cloned().unwrap_or_else(|| bail("--addr needs host:port")),
            "--json" => json = true,
            "--trace" => trace = true,
            "--check" => check = true,
            "--expect-faults" => {
                check = true;
                expect_faults = true;
            }
            other => bail(&format!("unknown flag {other:?}")),
        }
    }
    let mut client = match Client::connect(addr.as_str()) {
        Ok(c) => c,
        Err(e) => bail(&format!("cannot connect to {addr}: {e}")),
    };
    let snap = match client.metrics() {
        Ok(s) => s,
        Err(e) => bail(&format!("metrics fetch failed: {e}")),
    };
    let events = if trace || check {
        match client.trace_dump() {
            Ok(events) => events,
            Err(e) => bail(&format!("trace fetch failed: {e}")),
        }
    } else {
        Vec::new()
    };

    if json {
        if trace {
            let mut s = String::from("{\"metrics\":");
            s.push_str(&snap.to_json());
            s.push_str(",\"trace\":[");
            for (i, ev) in events.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"seq\":{},\"at_us\":{},\"kind\":\"{}\",\"session\":{},\"detail\":{}}}",
                    ev.seq,
                    ev.at_us,
                    ev.kind.label(),
                    ev.session,
                    ev.detail
                ));
            }
            s.push_str("]}");
            println!("{s}");
        } else {
            println!("{}", snap.to_json());
        }
    } else {
        println!("metrics from {addr}\n");
        println!("counters");
        for (name, v) in &snap.counters {
            println!("  {name:<44} {v}");
        }
        println!("\ngauges");
        for (name, v) in &snap.gauges {
            println!("  {name:<44} {v}");
        }
        println!("\nhistograms{:>40} count / mean / p50 / p90 / p99 / max", "");
        for (name, h) in &snap.histograms {
            println!(
                "  {name:<44} {} / {:.1} / {} / {} / {} / {}",
                h.count,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                h.max_bound()
            );
        }
        if trace {
            println!("\ntrace ({} events, oldest first)", events.len());
            for ev in &events {
                println!(
                    "  #{:<6} +{:>10}µs {:<6} session {:<6} detail {}",
                    ev.seq,
                    ev.at_us,
                    ev.kind.label(),
                    ev.session,
                    ev.detail
                );
            }
        }
    }

    if check {
        let ticks = snap.counter("serve.scheduler.ticks").unwrap_or(0);
        let steps = snap.counter("serve.scheduler.steps").unwrap_or(0);
        let trace_errors = events.iter().filter(|e| e.kind == TraceKind::Error).count();
        if expect_faults {
            // A fault drill: trace errors are the injection working, but
            // the injected totals must actually be nonzero — a drill
            // that injected nothing proved nothing.
            let injected = snap.gauge("fault.disk.injected").unwrap_or(0)
                + snap.gauge("fault.net.injected").unwrap_or(0)
                + snap.gauge("fault.sched.injected").unwrap_or(0);
            if ticks == 0 || steps == 0 || injected == 0 {
                eprintln!("check failed: ticks={ticks} steps={steps} injected={injected}");
                exit(1);
            }
            println!(
                "check ok: ticks={ticks} steps={steps} injected={injected} \
                 (trace_errors={trace_errors} tolerated under injection)"
            );
        } else {
            if ticks == 0 || steps == 0 || trace_errors > 0 {
                eprintln!("check failed: ticks={ticks} steps={steps} trace_errors={trace_errors}");
                exit(1);
            }
            println!("check ok: ticks={ticks} steps={steps} trace_errors=0");
        }
    }
}

fn bail<T>(msg: &str) -> T {
    eprintln!("error: {msg}");
    exit(2)
}
