//! Property tests for the client resilience primitives: the seeded
//! jittered backoff schedule and the deadline-shedding order.
//!
//! These are the pure functions the fault-tolerance layer leans on —
//! a reconnect loop with a wrong backoff silently hammers a struggling
//! server, and a shedding order that isn't oldest-deadline-first starves
//! the requests closest to their budget. Both are cheap to pin hard.

use hima_serve::{shed_order, RetryPolicy};
use proptest::prelude::*;
use std::collections::HashSet;
use std::time::Duration;

fn policy(seed: u64, base_ms: u64, cap_ms: u64) -> RetryPolicy {
    RetryPolicy {
        base: Duration::from_millis(base_ms),
        cap: Duration::from_millis(cap_ms),
        max_attempts: 8,
        seed,
    }
}

/// `(session id, deadline)` entries with unique ids and colliding
/// deadlines (ties exercise the id tie-break).
fn entries_from(deadlines: Vec<u64>) -> Vec<(u64, u64)> {
    deadlines.into_iter().zip(1u64..).map(|(d, id)| (id, d)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The schedule is a pure function of (seed, attempt): two policies
    // with equal parameters agree on every attempt.
    #[test]
    fn backoff_is_deterministic_per_seed(
        seed in 0u64..u64::MAX,
        base_ms in 1u64..500,
        cap_ms in 1u64..60_000,
        attempt in 0u32..64,
    ) {
        let a = policy(seed, base_ms, cap_ms);
        let b = policy(seed, base_ms, cap_ms);
        prop_assert_eq!(a.backoff(attempt), b.backoff(attempt));
    }

    // Later attempts never wait less than earlier ones (monotone
    // non-decreasing), even with jitter — the jitter ranges of
    // consecutive attempts do not overlap.
    #[test]
    fn backoff_is_monotone_in_attempt(
        seed in 0u64..u64::MAX,
        base_ms in 1u64..500,
        cap_ms in 1u64..60_000,
    ) {
        let p = policy(seed, base_ms, cap_ms);
        let mut last = Duration::ZERO;
        for attempt in 0..64 {
            let d = p.backoff(attempt);
            prop_assert!(d >= last, "attempt {}: {:?} < {:?}", attempt, d, last);
            last = d;
        }
    }

    // No delay ever exceeds the cap, including at attempt counts whose
    // uncapped slot would overflow a shift.
    #[test]
    fn backoff_is_bounded_by_the_cap(
        seed in 0u64..u64::MAX,
        base_ms in 1u64..500,
        cap_ms in 1u64..60_000,
        attempt in 0u32..1024,
    ) {
        let p = policy(seed, base_ms, cap_ms);
        prop_assert!(p.backoff(attempt) <= p.cap);
    }

    // Different seeds actually jitter: over a spread of attempts, two
    // distinct seeds disagree somewhere (thundering herds decorrelate).
    #[test]
    fn backoff_jitter_depends_on_the_seed(seed in 0u64..u64::MAX) {
        let a = policy(seed, 10, 3_600_000);
        let b = policy(seed ^ 0x5DEE_CE66, 10, 3_600_000);
        let differs = (0..16).any(|n| a.backoff(n) != b.backoff(n));
        prop_assert!(differs);
    }

    // Shedding returns exactly the expired entries, ordered oldest
    // deadline first with session id breaking ties — so the requests
    // past their budget longest are answered (with their typed error)
    // first, deterministically.
    #[test]
    fn shed_order_is_oldest_expired_first(
        deadlines in prop::collection::vec(0u64..50, 0..32),
        now in 0u64..50,
    ) {
        let entries = entries_from(deadlines);
        let order = shed_order(&entries, now);

        // Exactly the expired ids, no duplicates, nothing unexpired.
        let expired: HashSet<u64> =
            entries.iter().filter(|(_, d)| *d <= now).map(|(id, _)| *id).collect();
        let shed: HashSet<u64> = order.iter().copied().collect();
        prop_assert_eq!(order.len(), shed.len(), "duplicate ids in shed order");
        prop_assert_eq!(shed, expired);

        // Strictly ascending by (deadline, id).
        let deadline_of = |id: u64| entries.iter().find(|(i, _)| *i == id).unwrap().1;
        for pair in order.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            prop_assert!(
                (deadline_of(a), a) < (deadline_of(b), b),
                "{} (deadline {}) shed before {} (deadline {})",
                a, deadline_of(a), b, deadline_of(b)
            );
        }
    }
}
