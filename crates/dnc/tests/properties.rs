//! Property-based tests for the DNC model invariants.

use hima_dnc::allocation::{allocation_weighting, merge_write_weighting, SkimRate};
use hima_dnc::interface::InterfaceVector;
use hima_dnc::linkage::TemporalLinkage;
use hima_dnc::memory::{MemoryConfig, MemoryUnit};
use hima_dnc::usage::{retention, update_usage};
use hima_sort::CentralizedMergeSorter;
use proptest::prelude::*;

fn unit_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(0.0f32..1.0, len)
}

/// A random sub-normalized weighting (non-negative, sums to ≤ 1).
fn weighting(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(0.0f32..1.0, len).prop_map(|mut w| {
        let s: f32 = w.iter().sum();
        if s > 1.0 {
            for x in &mut w {
                *x /= s;
            }
        }
        w
    })
}

proptest! {
    #[test]
    fn retention_bounded(gates in unit_vec(1..4), n in 1usize..32, seed in 0u64..100) {
        let heads: Vec<Vec<f32>> = (0..gates.len())
            .map(|h| {
                let mut w: Vec<f32> = (0..n).map(|i| (((h * 31 + i * 17 + seed as usize) % 19) as f32) / 19.0).collect();
                let s: f32 = w.iter().sum();
                if s > 1.0 { for x in &mut w { *x /= s; } }
                w
            })
            .collect();
        let psi = retention(&gates, &heads);
        prop_assert!(psi.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn usage_stays_in_unit_interval(u in unit_vec(1..32), seed in 0u64..100) {
        let n = u.len();
        let w: Vec<f32> = (0..n).map(|i| (((i * 13 + seed as usize) % 7) as f32) / 7.0).collect();
        let psi: Vec<f32> = (0..n).map(|i| (((i * 5 + seed as usize) % 11) as f32) / 11.0).collect();
        let u2 = update_usage(&u, &w, &psi);
        prop_assert!(u2.iter().all(|&x| (-1e-6..=1.0 + 1e-6).contains(&x)), "{:?}", u2);
    }

    #[test]
    fn allocation_is_subnormalized_weighting(u in unit_vec(1..64)) {
        let w = allocation_weighting(&u, &CentralizedMergeSorter, SkimRate::NONE);
        prop_assert!(w.iter().all(|&x| x >= 0.0));
        prop_assert!(w.iter().sum::<f32>() <= 1.0 + 1e-4);
    }

    #[test]
    fn skimmed_allocation_still_subnormalized(u in unit_vec(2..64), k in 0.0f32..0.9) {
        let w = allocation_weighting(&u, &CentralizedMergeSorter, SkimRate::new(k));
        prop_assert!(w.iter().all(|&x| x >= 0.0));
        prop_assert!(w.iter().sum::<f32>() <= 1.0 + 1e-4);
    }

    #[test]
    fn write_merge_is_weighting(n in 1usize..32, gw in 0.0f32..1.0, ga in 0.0f32..1.0, seed in 0u64..50) {
        let a: Vec<f32> = {
            let u: Vec<f32> = (0..n).map(|i| (((i * 7 + seed as usize) % 13) as f32) / 13.0).collect();
            allocation_weighting(&u, &CentralizedMergeSorter, SkimRate::NONE)
        };
        let mut c: Vec<f32> = (0..n).map(|i| (((i * 11 + seed as usize) % 17) as f32) + 0.1).collect();
        let s: f32 = c.iter().sum();
        for x in &mut c { *x /= s; }
        let w = merge_write_weighting(&a, &c, gw, ga);
        prop_assert!(hima_tensor::vector::is_weighting(&w, 1e-4), "{:?}", w);
    }

    #[test]
    fn linkage_invariants_under_random_writes(n in 2usize..12, steps in 1usize..20, seed in 0u64..100) {
        let mut l = TemporalLinkage::new(n);
        for t in 0..steps {
            let mut w: Vec<f32> = (0..n)
                .map(|i| (((t * 31 + i * 7 + seed as usize) % 23) as f32) / 23.0)
                .collect();
            let s: f32 = w.iter().sum();
            if s > 1.0 { for x in &mut w { *x /= s; } }
            l.update(&w);
            prop_assert!(l.check_invariants(1e-4), "step {}", t);
        }
    }

    #[test]
    fn forward_backward_preserve_weighting_mass(n in 2usize..12, seed in 0u64..100) {
        let mut l = TemporalLinkage::new(n);
        for t in 0..6 {
            let mut w = vec![0.0; n];
            w[(t * 3 + seed as usize) % n] = 1.0;
            l.update(&w);
        }
        let mut r = vec![0.0; n];
        r[seed as usize % n] = 1.0;
        let f = l.forward(&r);
        let b = l.backward(&r);
        // L rows/cols sum to <= 1, so forward/backward of a weighting stays
        // sub-normalized.
        prop_assert!(f.iter().sum::<f32>() <= 1.0 + 1e-4);
        prop_assert!(b.iter().sum::<f32>() <= 1.0 + 1e-4);
        prop_assert!(f.iter().all(|&x| x >= -1e-6));
        prop_assert!(b.iter().all(|&x| x >= -1e-6));
    }

    #[test]
    fn interface_parse_always_well_formed(raw in prop::collection::vec(-50.0f32..50.0, 24)) {
        let iv = InterfaceVector::parse(&raw, 4, 1);
        prop_assert!(iv.is_well_formed());
    }

    #[test]
    fn memory_unit_invariants_under_random_interfaces(seed in 0u64..30, steps in 1usize..15) {
        let mut mu = MemoryUnit::new(MemoryConfig::new(12, 4, 2));
        let len = 4 * 2 + 3 * 4 + 5 * 2 + 3;
        for t in 0..steps {
            let raw: Vec<f32> = (0..len)
                .map(|i| (((t * 131 + i * 71 + seed as usize * 17) % 200) as f32 / 20.0) - 5.0)
                .collect();
            let iv = InterfaceVector::parse(&raw, 4, 2);
            let out = mu.step(&iv);
            prop_assert!(out.read_vectors.iter().flatten().all(|x| x.is_finite()));
            prop_assert!(mu.check_invariants(1e-3), "step {}", t);
        }
    }

    #[test]
    fn write_weighting_mass_conserved_under_random_gates(w_raw in weighting(8), gw in 0.0f32..1.0) {
        // Memory write with weighting w then erase=1 should leave row i
        // scaled by (1 - w[i]); mass of write weighting bounded by gate.
        let scaled: Vec<f32> = w_raw.iter().map(|x| x * gw).collect();
        prop_assert!(scaled.iter().sum::<f32>() <= 1.0 + 1e-5);
    }
}

// --- Batched-kernel equivalence -----------------------------------------
//
// Kernel-level properties of the batched building blocks (row-block LSTM,
// row-wise interface parse). Whole-model equivalence of the batched vs
// sequential paths is covered across *every* topology × lanes × datapath
// combination by the trait-level conformance suite in
// `crates/dnc/tests/conformance.rs`.

/// Per-lane input streams with lane-, time- and element-dependent values.
fn lane_streams(batch: usize, steps: usize, width: usize, seed: u64) -> Vec<Vec<Vec<f32>>> {
    (0..batch)
        .map(|b| {
            (0..steps)
                .map(|t| {
                    (0..width)
                        .map(|i| {
                            (((b * 131 + t * 17 + i * 7) as f32 + seed as f32 * 0.37) * 0.13).sin()
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Stacks time step `t` of every lane stream into a `B × width` block.
fn block_at(streams: &[Vec<Vec<f32>>], t: usize) -> hima_tensor::Matrix {
    let rows: Vec<&[f32]> = streams.iter().map(|s| s[t].as_slice()).collect();
    hima_tensor::Matrix::from_rows(&rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batch_lstm_equals_per_lane_steps(
        batch in prop::sample::select(vec![1usize, 3, 8]),
        seed in 0u64..100,
    ) {
        let lstm = hima_dnc::lstm::Lstm::new(5, 12, seed);
        let streams = lane_streams(batch, 5, 5, seed);
        let mut batch_states = vec![hima_dnc::lstm::LstmState::zeros(12); batch];
        let mut lane_states = vec![hima_dnc::lstm::LstmState::zeros(12); batch];
        for t in 0..5 {
            let h = lstm.step_batch(&mut batch_states, &block_at(&streams, t));
            for (b, state) in lane_states.iter_mut().enumerate() {
                let want = lstm.step_with_state(state, &streams[b][t]);
                prop_assert!(
                    hima_tensor::all_close(h.row(b), &want, hima_tensor::EPSILON),
                    "lane {} hidden diverged at t {}", b, t
                );
            }
        }
    }

    #[test]
    fn parse_rows_equals_per_row_parse(batch in 1usize..6, seed in 0u64..50) {
        let (w, r) = (4usize, 2usize);
        let width = w * r + 3 * w + 5 * r + 3;
        let raw = hima_tensor::Matrix::from_fn(batch, width, |b, i| {
            (((b * 37 + i * 13) as f32 + seed as f32) * 0.21).sin() * 3.0
        });
        let parsed = InterfaceVector::parse_rows(&raw, w, r);
        prop_assert_eq!(parsed.len(), batch);
        for (b, iv) in parsed.iter().enumerate() {
            prop_assert_eq!(iv, &InterfaceVector::parse(raw.row(b), w, r));
            prop_assert!(iv.is_well_formed());
        }
    }
}
