//! Fig. 11: speed, silicon area and power of the HiMA prototypes
//! (N_t = 16), across the architectural/algorithmic feature ladder.
//!
//! (a) speedup breakdown, (b) kernel runtime breakdown, (c) power impact
//! of the features, (d) kernel power breakdown, (e) the area/power table,
//! (f) module power breakdown — each printed with the paper's reported
//! values alongside.

use hima::engine::report::{ablation_sweep, breakdown_rows};
use hima::prelude::*;
use hima_bench::{bar, header, times};

fn main() {
    // ------------------------------------------------------------- (a)
    header("Fig. 11(a): speedup breakdown over HiMA-baseline (N_t = 16)");
    let paper_speedups = [1.0, 1.12, 1.23, 1.39, 8.29, 8.42];
    println!("{:<18} {:>10} {:>9} {:>9}", "level", "cycles", "measured", "paper");
    for (row, paper) in ablation_sweep(16).iter().zip(paper_speedups) {
        println!(
            "{:<18} {:>10} {:>9} {:>9}",
            row.level.label(),
            row.cycles,
            times(row.speedup),
            times(paper)
        );
    }

    // ------------------------------------------------------------- (b)
    header("Fig. 11(b): kernel runtime breakdown");
    let paper_dnc = [24.0, 33.0, 20.0, 21.0, 2.0];
    let paper_dncd = [19.0, 21.0, 20.0, 28.0, 12.0];
    for (name, cfg, paper) in [
        ("HiMA-DNC", EngineConfig::hima_dnc(16), paper_dnc),
        ("HiMA-DNC-D", EngineConfig::hima_dncd(16), paper_dncd),
    ] {
        let report = Engine::new(cfg).step_report();
        println!("\n{name} ({} cycles/step, {:.2} us):", report.total_cycles(), cfg.cycles_to_us(report.total_cycles()));
        for ((label, pct), paper_pct) in breakdown_rows(&report).into_iter().zip(paper) {
            println!(
                "  {:<30} {:>5.1}%  (paper {:>4.1}%)  {}",
                label,
                pct,
                paper_pct,
                bar(pct / 100.0, 30)
            );
        }
    }

    // ------------------------------------------------------------- (c)
    header("Fig. 11(c): power impact of the features (normalized to baseline)");
    let model = PowerModel::calibrated();
    let base_w = model.estimate(&EngineConfig::at_level(FeatureLevel::Baseline, 16)).total_w();
    let paper_power = [1.0, 1.091, 1.13, 0.991, 0.612, 0.603];
    println!("{:<18} {:>9} {:>10} {:>10}", "level", "watts", "measured", "paper");
    for (level, paper) in FeatureLevel::ALL.iter().zip(paper_power) {
        let w = model.estimate(&EngineConfig::at_level(*level, 16)).total_w();
        println!("{:<18} {:>8.2}W {:>10} {:>10}", level.label(), w, times(w / base_w), times(paper));
    }

    // ------------------------------------------------------------- (d)
    header("Fig. 11(d): kernel power breakdown");
    let paper_dnc_w = [3.10, 5.29, 3.15, 3.74, 1.66];
    let paper_dncd_w = [2.79, 2.59, 1.67, 2.58, 0.66];
    for (name, cfg, paper) in [
        ("HiMA-DNC", EngineConfig::hima_dnc(16), paper_dnc_w),
        ("HiMA-DNC-D", EngineConfig::hima_dncd(16), paper_dncd_w),
    ] {
        println!("\n{name}:");
        for ((cat, w), paper_w) in model.kernel_power(&cfg).into_iter().zip(paper) {
            println!("  {:<30} {:>6.2} W  (paper {:>5.2} W)", cat.label(), w, paper_w);
        }
    }

    // ------------------------------------------------------------- (e)
    header("Fig. 11(e): silicon area and power (40 nm, 500 MHz)");
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "mm^2 / W", "baseline", "HiMA-DNC", "HiMA-DNC-D"
    );
    let rows: Vec<(&str, EngineConfig)> = vec![
        ("baseline", EngineConfig::baseline(16)),
        ("HiMA-DNC", EngineConfig::hima_dnc(16)),
        ("HiMA-DNC-D", EngineConfig::hima_dncd(16)),
    ];
    let areas: Vec<AreaReport> = rows.iter().map(|(_, c)| AreaModel::estimate(c)).collect();
    let powers: Vec<f64> = rows.iter().map(|(_, c)| model.estimate(c).total_w()).collect();
    print!("{:<14}", "PT");
    for a in &areas {
        print!(" {:>12.2}", a.pt_mm2);
    }
    println!("   (paper: 4.92 / 5.01 / 4.22)");
    print!("{:<14}", "PT mem");
    for a in &areas {
        print!(" {:>12.2}", a.pt_mem_mm2);
    }
    println!("   (paper: 2.07 / 2.07 / 1.53)");
    print!("{:<14}", "CT");
    for a in &areas {
        print!(" {:>12.2}", a.ct_mm2);
    }
    println!("   (paper: 0.43 / 0.52 / 0.18)");
    print!("{:<14}", "Total");
    for a in &areas {
        print!(" {:>12.2}", a.total_mm2());
    }
    println!("   (paper: 79.14 / 80.69 / 67.71)");
    print!("{:<14}", "Power (W)");
    for p in &powers {
        print!(" {:>12.2}", p);
    }
    println!("   (paper: 16.80 / 16.96 / 10.28)");

    // ------------------------------------------------------------- (f)
    header("Fig. 11(f): module power breakdown");
    let paper_dnc_mod = [4.86, 8.10, 1.56, 2.30, 0.15];
    let paper_dncd_mod = [3.15, 5.38, 0.0247, 1.69, 0.036];
    for (name, cfg, paper) in [
        ("HiMA-DNC", EngineConfig::hima_dnc(16), paper_dnc_mod),
        ("HiMA-DNC-D", EngineConfig::hima_dncd(16), paper_dncd_mod),
    ] {
        let p = model.estimate(&cfg);
        println!("\n{name} (total {:.2} W):", p.total_w());
        for (label, w, paper_w) in [
            ("PT Mem. System", p.pt_mem_w, paper[0]),
            ("PT M-M Engine", p.mm_engine_w, paper[1]),
            ("PT Router", p.router_w, paper[2]),
            ("PT Other Logic", p.pt_other_w, paper[3]),
            ("CT Logic", p.ct_w, paper[4]),
        ] {
            println!("  {:<18} {:>7.3} W  (paper {:>6.3} W)", label, w, paper_w);
        }
    }
}
