//! Ablation: the §5.2 approximation knobs.
//!
//! Three sweeps beyond the paper's single K = 20% / K = 50% points:
//!
//! 1. usage-skimming rate vs engine speed *and* functional accuracy,
//! 2. PLA softmax segment count vs exponential error,
//! 3. Q16.16 datapath divergence over time (the 32-bit datapath claim).

use hima::dnc::{DatapathStudy, MemoryConfig};
use hima::prelude::*;
use hima::tasks::eval::mean_error;
use hima_bench::header;

fn main() {
    header("Usage skimming: speed vs accuracy (engine N_t = 16; saturated tasks N_t = 4)");
    println!(
        "{:>6} {:>14} {:>12} {:>12} {:>16}",
        "K", "cycles/step", "speedup", "task error", "read divergence"
    );
    let base_cycles = Engine::new(EngineConfig::hima_dncd(16)).step_cycles();
    for k in [0.0f32, 0.1, 0.2, 0.3, 0.5] {
        let cfg = if k == 0.0 {
            EngineConfig::hima_dncd(16)
        } else {
            EngineConfig::hima_dncd(16).with_skim(SkimRate::new(k))
        };
        let cycles = Engine::new(cfg).step_cycles();
        let eval = if k == 0.0 {
            EvalConfig::saturated(4)
        } else {
            EvalConfig::saturated(4).with_skim(SkimRate::new(k))
        };
        let errors = relative_error(&eval);
        println!(
            "{:>5.0}% {:>14} {:>11.2}x {:>11.1}% {:>16.4}",
            k * 100.0,
            cycles,
            base_cycles as f64 / cycles as f64,
            mean_error(&errors) * 100.0,
            hima::tasks::eval::mean_divergence(&errors)
        );
    }
    println!("\nPaper: K=20% costs ~5.8% accuracy at N_t=16; K=50% exceeds 15%.");

    header("PLA+LUT softmax: segments vs exponential error");
    println!("{:>10} {:>14} {:>12}", "segments", "max |exp err|", "LUT bytes");
    for segments in [4usize, 8, 16, 32, 64, 128] {
        let pla = PlaSoftmax::new(segments, 8.0);
        // Two f32 coefficients per segment.
        println!(
            "{:>10} {:>14.5} {:>12}",
            segments,
            pla.max_exp_error(10_000),
            segments * 8
        );
    }
    println!("\nThe paper's point: LUT-only tables grow exponentially with input width;");
    println!("PLA+LUT costs 1 multiply + 1 add at a few dozen table entries.");

    header("Q16.16 datapath: divergence from the float reference");
    let study = DatapathStudy::run(MemoryConfig::new(64, 16, 2), 40, 11);
    println!("{:>6} {:>16} {:>16}", "step", "read |err|max", "memory |err|max");
    for t in [0usize, 4, 9, 19, 29, 39] {
        println!(
            "{:>6} {:>16.6} {:>16.6}",
            t + 1,
            study.read_error[t],
            study.memory_error[t]
        );
    }
    println!(
        "\nshort-horizon error ~ Q16.16 resolution ({:.1e}); long-horizon divergence",
        hima::tensor::Fixed::resolution()
    );
    println!("is chaotic trajectory separation, bounded by the state magnitudes —");
    println!("consistent with the paper's choice of a 32-bit datapath.");
}
