//! Fig. 12(a): area and power scalability of HiMA-DNC and HiMA-DNC-D with
//! the tile count.
//!
//! The paper's finding: HiMA-DNC's power grows super-linearly with `N_t`
//! (traffic and the related per-PT computation), while DNC-D stays close
//! to the ideal linear scaling.

use hima::prelude::*;
use hima_bench::header;

fn main() {
    header("Fig. 12(a): area and power vs tile count (normalized to N_t = 4)");
    let model = PowerModel::calibrated();
    let tile_counts = [4usize, 8, 16, 32];

    println!(
        "{:>5} {:>14} {:>14} {:>14} {:>14}",
        "N_t", "DNC area", "DNC power", "DNC-D area", "DNC-D power"
    );
    let base_dnc_area = AreaModel::estimate(&EngineConfig::hima_dnc(4)).total_mm2();
    let base_dnc_pow = model.estimate(&EngineConfig::hima_dnc(4)).total_w();
    let base_dncd_area = AreaModel::estimate(&EngineConfig::hima_dncd(4)).total_mm2();
    let base_dncd_pow = model.estimate(&EngineConfig::hima_dncd(4)).total_w();

    for nt in tile_counts {
        let dnc = EngineConfig::hima_dnc(nt);
        let dncd = EngineConfig::hima_dncd(nt);
        println!(
            "{:>5} {:>13.2}x {:>13.2}x {:>13.2}x {:>13.2}x",
            nt,
            AreaModel::estimate(&dnc).total_mm2() / base_dnc_area,
            model.estimate(&dnc).total_w() / base_dnc_pow,
            AreaModel::estimate(&dncd).total_mm2() / base_dncd_area,
            model.estimate(&dncd).total_w() / base_dncd_pow,
        );
    }
    println!("{:>5} {:>13.2}x {:>13.2}x {:>13.2}x {:>13.2}x", "ideal", 8.0, 8.0, 8.0, 8.0);

    println!("\nPaper: DNC power grows super-linearly with N_t (increased traffic and");
    println!("related per-PT computation); DNC-D improves the scalability to near the");
    println!("ideal linear trend. Area grows sub-linearly for both (per-PT memories");
    println!("shrink as 1/N_t while fixed periphery stays).");

    header("Absolute values");
    println!("{:>5} {:>12} {:>10} {:>13} {:>11}", "N_t", "DNC mm^2", "DNC W", "DNC-D mm^2", "DNC-D W");
    for nt in tile_counts {
        let dnc = EngineConfig::hima_dnc(nt);
        let dncd = EngineConfig::hima_dncd(nt);
        println!(
            "{:>5} {:>12.1} {:>10.2} {:>13.1} {:>11.2}",
            nt,
            AreaModel::estimate(&dnc).total_mm2(),
            model.estimate(&dnc).total_w(),
            AreaModel::estimate(&dncd).total_mm2(),
            model.estimate(&dncd).total_w(),
        );
    }
}
