//! Fig. 10: DNC-D inference error over DNC for the 20-task suite.
//!
//! Runs the synthetic bAbI-style suite (see DESIGN.md for the dataset
//! substitution) through the centralized DNC and DNC-D at several shard
//! counts and skimming rates, reporting per-task relative errors. The
//! paper's qualitative findings: error grows with `N_t` (average below 6%
//! up to `N_t = 32` with trained models), `K = 20%` skimming adds a few
//! percent, and `K = 50%` degrades clearly.
//!
//! Every model is named by an `EngineSpec` and driven through the unified
//! `MemoryEngine` harness, so the same binary also sweeps the fixed-point
//! datapath axis (last section) — no per-variant code paths.

use hima::prelude::*;
use hima::tasks::eval::{mean_divergence, mean_error};
use hima::tensor::QFormat;
use hima_bench::{bar, header};

fn main() {
    header("Fig. 10 (top): DNC-D relative error vs tile count");
    let tile_counts = [1usize, 2, 4, 8, 16];
    let mut per_tiles = Vec::new();
    for &tiles in &tile_counts {
        let errors = relative_error(&EvalConfig::small(tiles));
        per_tiles.push((tiles, errors));
    }

    print!("{:<28}", "task");
    for (tiles, _) in &per_tiles {
        print!(" N_t={tiles:<4}");
    }
    println!();
    for i in 0..TASKS.len() {
        print!("{:>2} {:<25}", TASKS[i].id, TASKS[i].name);
        for (_, errors) in &per_tiles {
            print!(" {:>7.1}%", errors[i].error * 100.0);
        }
        println!();
    }
    print!("{:<28}", "mean");
    for (_, errors) in &per_tiles {
        print!(" {:>7.1}%", mean_error(errors) * 100.0);
    }
    println!("\n\nPaper: error increases with N_t; with N_t capped at 32 the average stays");
    println!("below 6% over DNC (trained models; ours are procedurally initialized, so");
    println!("absolute levels differ while the monotone trend is the reproduced shape).");

    header("Fig. 10 (bottom): usage skimming (memory-saturated shards, N_t = 4)");
    // Skimming is exactly free while any zero-usage slot remains (the
    // allocation prefix product past the first free slot is zero), so the
    // sweep runs in the saturated regime where episodes fill the shards —
    // the long-story bAbI situation the paper's K-sweep probes.
    println!("{:>6} {:>12} {:>18}", "K", "error rate", "read divergence");
    for k in [0.0f32, 0.2, 0.5] {
        let cfg = if k == 0.0 {
            EvalConfig::saturated(4)
        } else {
            EvalConfig::saturated(4).with_skim(SkimRate::new(k))
        };
        let errors = relative_error(&cfg);
        let mean = mean_error(&errors);
        let div = mean_divergence(&errors);
        println!(
            "{:>5.0}% {:>11.1}% {:>17.4}  {}",
            k * 100.0,
            mean * 100.0,
            div,
            bar(div, 40)
        );
    }
    println!("\nPaper: K=20% at N_t=16 gives 5.8% over DNC; K=50% exceeds 15%.");
    println!("The continuous read-divergence column resolves skimming effects that are");
    println!("too small to flip a retrieval at this memory size.");

    header("Datapath sweep (N_t = 4): fixed-point vs f32 through the same harness");
    // The same EvalConfig/EngineSpec machinery sweeps the quantized
    // datapath: the engine under test rounds its interface inputs and all
    // stored state to the Q-format each step, the reference stays f32.
    println!("{:>10} {:>12} {:>18}", "datapath", "error rate", "read divergence");
    for (label, cfg) in [
        ("f32", EvalConfig::small(4)),
        (
            "Q16.16",
            EvalConfig::small(4).with_datapath(Datapath::Quantized(QFormat::q16_16())),
        ),
        (
            "Q8.8",
            EvalConfig::small(4).with_datapath(Datapath::Quantized(QFormat::q8_8())),
        ),
    ] {
        let errors = relative_error(&cfg);
        println!(
            "{:>10} {:>11.1}% {:>17.4}  {}",
            label,
            mean_error(&errors) * 100.0,
            mean_divergence(&errors),
            bar(mean_divergence(&errors), 40)
        );
    }
    println!("\nThe paper's prototypes run a 32-bit (Q16.16) datapath; divergence over");
    println!("the f32 row is the accuracy cost of the hardware number format, and the");
    println!("narrow Q8.8 row shows where a 16-bit datapath would land.");

    header("Trained-readout accuracy (reservoir-style ridge regression)");
    // A linear readout trained on [h ; v_r] features gives *absolute* task
    // accuracy for both models — the closest substitute for the paper's
    // trained-network evaluation (see DESIGN.md).
    use hima::dnc::DncParams;
    use hima::tasks::tasks::TOKEN_WIDTH;
    use hima::tasks::train::{mean_accuracy, trained_accuracy};
    let params =
        DncParams::new(64, 16, 2).with_hidden(32).with_io(TOKEN_WIDTH, TOKEN_WIDTH);
    println!("{:>6} {:>10} {:>10} {:>12}", "N_t", "DNC acc", "DNC-D acc", "gap");
    for tiles in [2usize, 4, 8, 16] {
        let rows = trained_accuracy(params, tiles, 2021, 20, 8, 1e-2);
        let (dnc, dncd) = mean_accuracy(&rows);
        println!(
            "{:>6} {:>9.1}% {:>9.1}% {:>11.1}%",
            tiles,
            dnc * 100.0,
            dncd * 100.0,
            (dnc - dncd) * 100.0
        );
    }
    println!("\n(chance rate 1/12 = 8.3%. With untrained reservoir keys retrieval is");
    println!("weak, so the gap column is noisy — the relative-divergence metric above,");
    println!("which compares both models on identical inputs, is the primary Fig. 10");
    println!("reproduction; this section shows what a trained readout can extract.)");
}
