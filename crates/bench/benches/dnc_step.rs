//! Criterion benchmarks for the functional DNC model (the Fig. 4
//! substrate): per-step inference cost of DNC and DNC-D at several
//! geometries, plus the approximation variants.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hima::dnc::memory::SorterKind;
use hima::prelude::*;

fn bench_dnc_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("dnc_step");
    group.sample_size(20);
    for (n, w, r) in [(128usize, 16usize, 2usize), (512, 32, 4)] {
        let params = DncParams::new(n, w, r).with_hidden(64).with_io(16, 16);
        group.bench_with_input(
            BenchmarkId::new("dnc", format!("{n}x{w}")),
            &params,
            |b, &p| {
                let mut dnc = Dnc::new(p, 7);
                let x = vec![0.3f32; 16];
                b.iter(|| dnc.step(black_box(&x)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dncd_nt4", format!("{n}x{w}")),
            &params,
            |b, &p| {
                let mut dncd = EngineBuilder::new(p).sharded(4).seed(7).build();
                let x = vec![0.3f32; 16];
                b.iter(|| dncd.step(black_box(&x)))
            },
        );
    }
    group.finish();
}

fn bench_memory_unit_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_unit_step");
    group.sample_size(20);
    let (n, w, r) = (256usize, 32usize, 2usize);
    let len = w * r + 3 * w + 5 * r + 3;
    let raw: Vec<f32> = (0..len).map(|i| (i as f32 * 0.173).sin()).collect();
    let iv = hima::dnc::interface::InterfaceVector::parse(&raw, w, r);

    let variants: Vec<(&str, MemoryConfig)> = vec![
        ("exact", MemoryConfig::new(n, w, r)),
        ("two_stage_sort", MemoryConfig::new(n, w, r).with_sorter(SorterKind::TwoStage { tiles: 4 })),
        ("skim20", MemoryConfig::new(n, w, r).with_skim(SkimRate::new(0.2))),
        ("approx_softmax", MemoryConfig::new(n, w, r).with_approx_softmax(true)),
    ];
    for (name, cfg) in variants {
        group.bench_function(name, |b| {
            let mut mu = MemoryUnit::new(cfg);
            b.iter(|| mu.step(black_box(&iv)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dnc_step, bench_memory_unit_variants);
criterion_main!(benches);
