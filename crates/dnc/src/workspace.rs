//! [`StepWorkspace`]: the pre-sized scratch that makes steady-state
//! stepping **zero-heap-allocation**.
//!
//! Every `step_batch` of the batched engines used to allocate dozens of
//! transient `Matrix`/`Vec` buffers — the `hcat` feature blocks, the
//! shared-weight projection outputs, the LSTM gate blocks. The throughput
//! bench shows the steady-state step (not construction, not episode
//! assembly) dominates serving workloads, so those transients are hoisted
//! here: one workspace per engine, its buffers keyed by the engine
//! geometry `(B, N, W, R, H, I, O, N_t)` and reused across steps and
//! across episodes (engines own their workspace, and
//! [`reset`](crate::MemoryEngine::reset) never drops it).
//!
//! The workspace is **reset-on-resize**: [`StepWorkspace::ensure`] is a
//! key comparison in the steady state and a full reallocation only when
//! the geometry changes (e.g. a pipeline engine worker re-used for a
//! different batch size). Per-*lane* scratch — interface-vector parse
//! targets and the memory-unit step buffers — lives inside the lanes and
//! units themselves, because lanes step in parallel on worker threads.
//!
//! The allocating entry points (`step_batch`, `step_batch_masked`)
//! remain, as thin wrappers that borrow the engine's workspace and
//! allocate only the returned output block; the `_into` variants are
//! bit-identical and allocation-free (pinned by the counting-allocator
//! suite in `tests/zero_alloc.rs`).

use crate::lstm::LstmScratch;
use crate::DncParams;
use hima_tensor::{LaneMask, Matrix};

/// The geometry a workspace's buffers are sized for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WorkspaceKey {
    batch: usize,
    memory_size: usize,
    word_size: usize,
    read_heads: usize,
    hidden_size: usize,
    input_size: usize,
    output_size: usize,
    tiles: usize,
}

impl WorkspaceKey {
    fn new(params: &DncParams, batch: usize, tiles: usize) -> Self {
        Self {
            batch,
            memory_size: params.memory_size,
            word_size: params.word_size,
            read_heads: params.read_heads,
            hidden_size: params.hidden_size,
            input_size: params.input_size,
            output_size: params.output_size,
            tiles,
        }
    }
}

/// Reusable per-engine scratch for one batched step (see the
/// [module docs](self)).
///
/// Construct with [`StepWorkspace::new`] (empty; buffers materialize on
/// first use) — the batched engines do this internally, so most code
/// never touches the type directly.
#[derive(Debug, Clone)]
pub struct StepWorkspace {
    key: Option<WorkspaceKey>,
    /// Controller input `[x_t ; v_r^{t-1}]`, `B × (I + R·W)`.
    pub(crate) ctrl_in: Matrix,
    /// Interface-projection input `[h_t ; x_t]`, `B × (H + I)`.
    pub(crate) iface_in: Matrix,
    /// Output-projection input `[h_t ; v_r]`, `B × (H + R·W)`.
    pub(crate) out_in: Matrix,
    /// Hidden-state block of the current step, `B × H`.
    pub(crate) hidden: Matrix,
    /// Raw interface emissions, one `B × interface_size` block per shard
    /// (monolithic engines use exactly one).
    pub(crate) raw_shards: Vec<Matrix>,
    /// Controller scratch (`[X ; H]` concatenation + pre-activations).
    pub(crate) lstm: LstmScratch,
    /// Cached fully-active mask so the uniform `step_batch` path does not
    /// rebuild one per step (taken and restored around the masked call).
    pub(crate) full_mask: LaneMask,
}

impl StepWorkspace {
    /// An empty workspace; buffers are sized on first
    /// [`StepWorkspace::ensure`].
    pub fn new() -> Self {
        Self {
            key: None,
            ctrl_in: Matrix::zeros(0, 0),
            iface_in: Matrix::zeros(0, 0),
            out_in: Matrix::zeros(0, 0),
            hidden: Matrix::zeros(0, 0),
            raw_shards: Vec::new(),
            lstm: LstmScratch::sized(0, 0, 0),
            full_mask: LaneMask::full(0),
        }
    }

    /// Sizes every buffer for `(params, batch, tiles)`. A no-op (one key
    /// comparison) when the geometry is unchanged — the steady state —
    /// and a full rebuild when it is not (reset-on-resize). The engines
    /// call this at every step entry; calling it ahead of time merely
    /// front-loads the one-time sizing.
    pub fn ensure(&mut self, params: &DncParams, batch: usize, tiles: usize) {
        let key = WorkspaceKey::new(params, batch, tiles);
        if self.key == Some(key) {
            return;
        }
        let read_width = params.read_heads * params.word_size;
        self.ctrl_in = Matrix::zeros(batch, params.input_size + read_width);
        self.iface_in = Matrix::zeros(batch, params.hidden_size + params.input_size);
        self.out_in = Matrix::zeros(batch, params.hidden_size + read_width);
        self.hidden = Matrix::zeros(batch, params.hidden_size);
        self.raw_shards = (0..tiles.max(1))
            .map(|_| Matrix::zeros(batch, params.interface_size()))
            .collect();
        self.lstm =
            LstmScratch::sized(batch, params.input_size + read_width, params.hidden_size);
        self.full_mask = LaneMask::full(batch);
        self.key = Some(key);
    }
}

impl Default for StepWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_is_idempotent_and_resizes_on_key_change() {
        let params = DncParams::new(16, 4, 2).with_hidden(8).with_io(5, 6);
        let mut ws = StepWorkspace::new();
        ws.ensure(&params, 3, 1);
        assert_eq!(ws.ctrl_in.shape(), (3, 5 + 8));
        assert_eq!(ws.iface_in.shape(), (3, 8 + 5));
        assert_eq!(ws.out_in.shape(), (3, 8 + 8));
        assert_eq!(ws.hidden.shape(), (3, 8));
        assert_eq!(ws.raw_shards.len(), 1);
        assert_eq!(ws.raw_shards[0].shape(), (3, params.interface_size()));
        assert!(ws.full_mask.is_full() && ws.full_mask.lanes() == 3);

        // Steady state: same key, buffers untouched (marker survives).
        ws.hidden[(0, 0)] = 7.0;
        ws.ensure(&params, 3, 1);
        assert_eq!(ws.hidden[(0, 0)], 7.0);

        // Geometry change: reset-on-resize.
        ws.ensure(&params, 4, 2);
        assert_eq!(ws.hidden.shape(), (4, 8));
        assert_eq!(ws.raw_shards.len(), 2);
        assert_eq!(ws.hidden[(0, 0)], 0.0);
    }
}
