//! Multidimensional sorting algorithm (MDSA) tile sorter — stage 1 of the
//! two-stage usage sort (paper §4.3, citing RTHS).
//!
//! A local usage vector of length `n` is reshaped into a `P × P` matrix
//! (`P = ⌈√n⌉`) held in a register file, and sorted by alternating row and
//! column passes through the tile's [`Dpbs`]. Row passes sort in snake
//! (boustrophedon) order — even rows ascending, odd rows descending — and
//! column passes sort ascending; this is the classic shear-sort schedule,
//! which converges to a snake-ordered (hence globally sorted) matrix.
//!
//! **Cycle model.** The paper reports the 256-element sort completing in
//! 6 phases of `(P + D_DPBS)` cycles each — `6 × (16 + 5) = 126` cycles.
//! We use the paper's phase count for the latency model
//! (`phases = ⌈log₂ P⌉ + 2`, which yields 6 at `P = 16`) while the
//! functional implementation runs shear-sort passes until convergence, so
//! the produced permutation is always correct even for adversarial inputs
//! that need the full `⌈log₂ P⌉ + 1` row/column rounds.

use crate::bitonic::Direction;
use crate::dpbs::Dpbs;
use crate::{keyed_cmp, Keyed, SortEngine};
use serde::{Deserialize, Serialize};

/// MDSA 2-D tile sorter built around a `P`-input DPBS.
///
/// # Example
///
/// ```
/// use hima_sort::{MdsaSorter, SortEngine};
///
/// let mdsa = MdsaSorter::for_len(256);
/// assert_eq!(mdsa.p(), 16);
/// assert_eq!(mdsa.latency_cycles(256), 126); // paper §4.3
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MdsaSorter {
    p: usize,
}

impl MdsaSorter {
    /// Creates an MDSA sorter with a `p × p` register file.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn new(p: usize) -> Self {
        assert!(p > 0, "MDSA needs a non-empty register file");
        Self { p }
    }

    /// Sorter sized for local vectors of length `n`: `P = ⌈√n⌉`.
    pub fn for_len(n: usize) -> Self {
        let mut p = (n as f64).sqrt().ceil() as usize;
        if p == 0 {
            p = 1;
        }
        Self::new(p)
    }

    /// Register-file dimension `P`.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The embedded dual-mode pipelined bitonic sorter.
    pub fn dpbs(&self) -> Dpbs {
        Dpbs::new(self.p)
    }

    /// Modeled phase count: `⌈log₂ P⌉ + 2` (6 phases at `P = 16`, matching
    /// the paper).
    pub fn modeled_phases(&self) -> u64 {
        (self.p.next_power_of_two().trailing_zeros() as u64) + 2
    }

    /// Sorts and additionally reports how many row/column passes the
    /// functional shear sort needed to converge.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() > p²`.
    pub fn sort_with_phases(&self, input: &[Keyed]) -> (Vec<Keyed>, u64) {
        let p = self.p;
        assert!(input.len() <= p * p, "input of {} exceeds {p}x{p} register file", input.len());
        if input.len() <= 1 {
            return (input.to_vec(), 0);
        }
        let dpbs = self.dpbs();

        // Load into the register file, padding with +inf sentinels.
        let mut grid: Vec<Vec<Keyed>> = (0..p)
            .map(|r| {
                (0..p)
                    .map(|c| *input.get(r * p + c).unwrap_or(&(f32::INFINITY, usize::MAX)))
                    .collect()
            })
            .collect();

        let snake_dir = |row: usize| if row.is_multiple_of(2) { Direction::Ascending } else { Direction::Descending };
        let mut phases = 0u64;
        // Shear sort needs at most ⌈log₂ p⌉ + 1 row/column rounds; cap the
        // loop there and finish with one cleanup row pass.
        let max_rounds = (p.next_power_of_two().trailing_zeros() as u64) + 1;

        for _round in 0..max_rounds {
            // Row phase: snake order.
            for (r, row) in grid.iter_mut().enumerate() {
                *row = dpbs.sort_vector(row, snake_dir(r));
            }
            phases += 1;
            if Self::is_snake_sorted(&grid) {
                break;
            }
            // Column phase: ascending top-to-bottom.
            for c in 0..p {
                let col: Vec<Keyed> = grid.iter().map(|row| row[c]).collect();
                let sorted = dpbs.sort_vector(&col, Direction::Ascending);
                for (r, v) in sorted.into_iter().enumerate() {
                    grid[r][c] = v;
                }
            }
            phases += 1;
        }
        // Cleanup: rows in plain ascending order so row-major reading is the
        // final sorted order (unfolds the snake).
        let mut out = Vec::with_capacity(p * p);
        for (r, row) in grid.iter().enumerate() {
            let mut row = row.clone();
            if r % 2 == 1 {
                row.reverse();
            }
            out.extend(row);
        }
        phases += 1;
        out.truncate(input.len());
        debug_assert!(crate::is_sorted(&out), "MDSA must produce a sorted run");
        (out, phases)
    }

    fn is_snake_sorted(grid: &[Vec<Keyed>]) -> bool {
        let mut prev: Option<Keyed> = None;
        for (r, row) in grid.iter().enumerate() {
            let iter: Box<dyn Iterator<Item = &Keyed>> = if r % 2 == 0 {
                Box::new(row.iter())
            } else {
                Box::new(row.iter().rev())
            };
            for v in iter {
                if let Some(p) = prev {
                    if keyed_cmp(&p, v) == std::cmp::Ordering::Greater {
                        return false;
                    }
                }
                prev = Some(*v);
            }
        }
        true
    }
}

impl SortEngine for MdsaSorter {
    fn name(&self) -> &'static str {
        "mdsa"
    }

    fn sort_pairs(&self, input: &[Keyed]) -> Vec<Keyed> {
        self.sort_with_phases(input).0
    }

    /// `phases × (P + D_DPBS)` — 126 cycles for n = 256, P = 16 (paper §4.3).
    fn latency_cycles(&self, _n: usize) -> u64 {
        self.modeled_phases() * (self.p as u64 + self.dpbs().pipeline_depth())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(keys: &[f32]) -> Vec<Keyed> {
        keys.iter().copied().zip(0..).collect()
    }

    #[test]
    fn paper_latency_figures() {
        // n = 256 on a 16x16 RF: 6 * (16 + 5) = 126 cycles.
        let mdsa = MdsaSorter::for_len(256);
        assert_eq!(mdsa.p(), 16);
        assert_eq!(mdsa.modeled_phases(), 6);
        assert_eq!(mdsa.latency_cycles(256), 126);
    }

    #[test]
    fn sorts_full_grid() {
        let mdsa = MdsaSorter::new(4);
        let keys: Vec<f32> = (0..16).map(|i| ((i * 11) % 16) as f32).collect();
        let out = mdsa.sort_pairs(&pairs(&keys));
        assert!(crate::is_sorted(&out));
        assert_eq!(out.len(), 16);
        assert_eq!(out[0].0, 0.0);
        assert_eq!(out[15].0, 15.0);
    }

    #[test]
    fn sorts_partial_grid_with_padding() {
        let mdsa = MdsaSorter::new(4);
        let out = mdsa.sort_pairs(&pairs(&[5.0, 3.0, 9.0, 1.0, 7.0]));
        let keys: Vec<f32> = out.iter().map(|p| p.0).collect();
        assert_eq!(keys, vec![1.0, 3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn sorts_reverse_input() {
        let mdsa = MdsaSorter::new(8);
        let keys: Vec<f32> = (0..64).rev().map(|i| i as f32).collect();
        let out = mdsa.sort_pairs(&pairs(&keys));
        assert!(crate::is_sorted(&out));
    }

    #[test]
    fn sorts_all_equal_keys_stably_by_index() {
        let mdsa = MdsaSorter::new(4);
        let input: Vec<Keyed> = (0..16).map(|i| (1.0, 15 - i)).collect();
        let out = mdsa.sort_pairs(&input);
        for (k, (_, idx)) in out.iter().enumerate() {
            assert_eq!(*idx, k);
        }
    }

    #[test]
    fn handles_trivial_inputs() {
        let mdsa = MdsaSorter::new(4);
        assert!(mdsa.sort_pairs(&[]).is_empty());
        assert_eq!(mdsa.sort_pairs(&[(2.5, 7)]), vec![(2.5, 7)]);
    }

    #[test]
    fn for_len_dimensions() {
        assert_eq!(MdsaSorter::for_len(256).p(), 16);
        assert_eq!(MdsaSorter::for_len(64).p(), 8);
        assert_eq!(MdsaSorter::for_len(65).p(), 9);
        assert_eq!(MdsaSorter::for_len(1).p(), 1);
        assert_eq!(MdsaSorter::for_len(0).p(), 1);
    }

    #[test]
    fn functional_phases_within_shear_bound() {
        let mdsa = MdsaSorter::new(16);
        // log2(16)+1 = 5 rounds -> at most 2*5 = 10 row/col phases + cleanup.
        let keys: Vec<f32> = (0..256).map(|i| ((i * 167 + 31) % 256) as f32).collect();
        let (out, phases) = mdsa.sort_with_phases(&pairs(&keys));
        assert!(crate::is_sorted(&out));
        assert!(phases <= 11, "phases = {phases}");
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_oversized_input() {
        MdsaSorter::new(2).sort_pairs(&pairs(&[1.0, 2.0, 3.0, 4.0, 5.0]));
    }
}
