//! Cross-crate integration tests: the functional model, the hardware
//! models and the cost models must agree where their domains overlap.

use hima::dnc::interface::InterfaceVector;
use hima::dnc::memory::SorterKind;
use hima::prelude::*;

#[test]
fn dncd_with_one_shard_is_the_centralized_dnc() {
    let params = DncParams::new(32, 8, 2).with_hidden(32).with_io(6, 6);
    let mut dnc = Dnc::new(params, 77);
    let mut dncd = EngineBuilder::new(params)
        .sharded(1)
        .merge(hima::dnc::ReadMerge::from_weights(vec![1.0]))
        .seed(77)
        .build();
    for t in 0..15 {
        let x: Vec<f32> = (0..6).map(|i| ((t * 7 + i * 3) as f32 * 0.19).sin()).collect();
        let a = dnc.step(&x);
        let b = dncd.step(&x);
        hima::tensor::assert_close(&a, &b, 1e-5);
    }
}

#[test]
fn memory_unit_agrees_across_all_sorter_models() {
    // The two-stage hardware sort must be functionally invisible: same
    // permutation, same DNC outputs.
    let run = |sorter: SorterKind| {
        let cfg = MemoryConfig::new(64, 8, 2).with_sorter(sorter);
        let mut mu = MemoryUnit::new(cfg);
        let len = 8 * 2 + 3 * 8 + 5 * 2 + 3;
        let mut outs = Vec::new();
        for t in 0..12 {
            let raw: Vec<f32> =
                (0..len).map(|i| ((t * 31 + i * 7) as f32 * 0.11).sin()).collect();
            outs.push(mu.step(&InterfaceVector::parse(&raw, 8, 2)).flattened());
        }
        outs
    };
    let central = run(SorterKind::Centralized);
    for tiles in [2usize, 4, 8] {
        let two_stage = run(SorterKind::TwoStage { tiles });
        for (a, b) in central.iter().zip(&two_stage) {
            hima::tensor::assert_close(a, b, 1e-5);
        }
    }
}

#[test]
fn engine_sort_choice_matches_sorter_crate_latencies() {
    // The engine's usage-sort cycles must reflect the hima-sort models it
    // claims to use.
    let base = Engine::new(EngineConfig::baseline(4));
    let two = Engine::new(EngineConfig::baseline(4).with_two_stage_sort(true));
    let base_sort = base
        .step_report()
        .cost_of(hima::dnc::KernelId::UsageSort)
        .unwrap()
        .total();
    let two_sort = two
        .step_report()
        .cost_of(hima::dnc::KernelId::UsageSort)
        .unwrap()
        .total();
    // Two-stage must beat the centralized sort by a wide margin (the §4.3
    // microbenchmark gives 389 vs 10240 at N_t = 4).
    assert!(two_sort * 2 < base_sort, "two-stage {two_sort} vs centralized {base_sort}");
    let sorter = TwoStageSorter::new(4, 1024);
    assert!(
        two_sort >= sorter.stage1_cycles(),
        "engine cannot beat the sorter model itself"
    );
}

#[test]
fn engine_noc_cycles_come_from_the_noc_simulator() {
    // Switching only the topology (same traffic) must change NoC cycles in
    // the direction the hop counts predict.
    let htree = Engine::new(EngineConfig::hima_dnc(16).with_topology(Topology::HTree));
    let hima = Engine::new(EngineConfig::hima_dnc(16));
    assert!(hima.step_report().noc_cycles() < htree.step_report().noc_cycles());
}

#[test]
fn cost_model_efficiency_ratios_favor_dncd() {
    // Throughput/area and throughput/power (the Fig. 12 efficiency
    // metrics) must both improve from HiMA-DNC to HiMA-DNC-D.
    let power = PowerModel::calibrated();
    let eff = |cfg: EngineConfig| {
        let cycles = Engine::new(cfg).step_cycles() as f64;
        let throughput = 1.0 / cycles;
        let area = AreaModel::estimate(&cfg).total_mm2();
        let watts = power.estimate(&cfg).total_w();
        (throughput / area, throughput / watts)
    };
    let (dnc_area_eff, dnc_energy_eff) = eff(EngineConfig::hima_dnc(16));
    let (dncd_area_eff, dncd_energy_eff) = eff(EngineConfig::hima_dncd(16));
    assert!(dncd_area_eff > dnc_area_eff, "area efficiency must improve");
    assert!(dncd_energy_eff > dnc_energy_eff, "energy efficiency must improve");
}

#[test]
fn skimming_trades_accuracy_for_speed_consistently() {
    // The same knob that speeds the engine up must cost accuracy in the
    // functional suite (shape of the §5.2 trade-off).
    let fast = Engine::new(EngineConfig::hima_dncd_approx(16)).step_cycles();
    let exact = Engine::new(EngineConfig::hima_dncd(16)).step_cycles();
    assert!(fast <= exact, "skimming must not slow the engine down");

    let e_skim = hima::tasks::eval::mean_divergence(&relative_error(
        &EvalConfig::saturated(4).with_skim(SkimRate::new(0.5)),
    ));
    let e_none = hima::tasks::eval::mean_divergence(&relative_error(&EvalConfig::saturated(4)));
    assert!(e_skim >= e_none, "heavy skimming cannot improve accuracy");
}

#[test]
fn pla_softmax_unit_matches_dnc_usage() {
    // The PLA unit the engine charges 1 cycle/element for must track the
    // exact softmax closely enough for content addressing.
    let m = Matrix::from_fn(32, 8, |i, j| ((i * 3 + j) as f32 * 0.21).sin());
    let key: Vec<f32> = (0..8).map(|j| (j as f32 * 0.4).cos()).collect();
    let exact = hima::dnc::content::content_weighting(&m, &key, 4.0, None);
    let pla = PlaSoftmax::default();
    let approx = hima::dnc::content::content_weighting(&m, &key, 4.0, Some(&pla));
    for (a, b) in exact.iter().zip(&approx) {
        assert!((a - b).abs() < 0.03);
    }
}

#[test]
fn tile_memory_map_matches_engine_geometry() {
    let cfg = EngineConfig::hima_dnc(16);
    let map = TileMemoryMap::optimized(cfg.memory_size, cfg.word_size, cfg.read_heads, cfg.tiles);
    let engine = Engine::new(cfg);
    assert_eq!(map.linkage_partition(), engine.linkage_partition());
}

#[test]
fn fixed_point_dnc_stays_close_to_float() {
    // Quantizing the interface vector to Q16.16 must not derail inference
    // (the 32-bit datapath claim).
    let params = DncParams::new(32, 8, 1).with_io(4, 4);
    let mut a = Dnc::new(params, 5);
    let mut b = Dnc::new(params, 5);
    let mut max_err = 0.0f32;
    for t in 0..20 {
        let x: Vec<f32> = (0..4).map(|i| ((t * 5 + i) as f32 * 0.3).sin()).collect();
        let xq = Fixed::quantize_slice(&x);
        let ya = a.step(&x);
        let yb = b.step(&xq);
        for (p, q) in ya.iter().zip(&yb) {
            max_err = max_err.max((p - q).abs());
        }
    }
    assert!(max_err < 0.01, "quantized inputs diverged by {max_err}");
}
