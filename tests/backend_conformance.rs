//! Cross-crate **backend conformance suite**: the blocked + vectorized
//! kernel tier must track the scalar reference tier within a stated
//! per-step relative-error bound, everywhere an engine can run — and the
//! scalar tier itself must stay the engine default.
//!
//! The blocked tier re-associates floating-point reductions (dot
//! products, matmul rows, row norms, the softmax normalizer), so its
//! results are *not* bit-equal to scalar; elementwise kernels (the axpy
//! transpose mat-vec, linkage decay, LSTM gate arithmetic) keep the
//! exact scalar expressions. The contract pinned here:
//!
//! * **per-step tracking** — a blocked engine stepping the same episode
//!   stream as a scalar engine stays within [`TOL`] relative error on
//!   outputs, read rows and feature rows at *every* step, across
//!   topology (monolithic | sharded) × datapath (f32 | Q16.16) ×
//!   skim/PLA × masked/uniform × B ∈ {1, 3, 8},
//! * **task parity** — a readout trained on scalar features scores the
//!   same (within [`ACC_TOL`]) when evaluated through a blocked engine
//!   on the bAbI-style recall tasks,
//! * **default stability** — `Backend::Scalar` is the default on every
//!   constructor path, so all pre-existing bit-equality suites keep
//!   exercising the reference tier unmodified.
//!
//! Tolerances are deliberately end-to-end: the recurrent state feeds
//! kernel-level ulp differences back through `T` steps, so the bound is
//! wider than any single kernel's re-association error but still tight
//! enough to catch a wrong kernel (which diverges by O(1), not O(1e-4)).

use hima::dnc::allocation::SkimRate;
use hima::dnc::{Datapath, DncParams, EngineBuilder, EngineSpec};
use hima::tasks::episode::{masked_step_block, max_len};
use hima::tasks::strategies::ragged_episodes;
use hima::tasks::tasks::TOKEN_WIDTH;
use hima::tasks::train::{readout_accuracy, TrainedReadout};
use hima::tasks::{collect_query_samples, Episode, TASKS};
use hima::tensor::{Backend, QFormat};
use proptest::prelude::*;

/// Per-element relative-error bound for blocked-vs-scalar engine state
/// after up to ~10 recurrent steps: `|a − b| ≤ TOL · (1 + max(|a|, |b|))`.
const TOL: f32 = 1e-3;

/// Allowed task-accuracy gap between the tiers for a readout trained on
/// scalar features.
const ACC_TOL: f64 = 0.05;

const BATCHES: [usize; 3] = [1, 3, 8];
const SEED: u64 = 43;

fn params() -> DncParams {
    DncParams::new(16, 4, 2).with_hidden(16).with_io(TOKEN_WIDTH, TOKEN_WIDTH)
}

fn builder(spec: EngineSpec) -> EngineBuilder {
    EngineBuilder::new(params()).with_spec(spec).seed(SEED)
}

/// Scalar-tier spec grid; each entry is compared against itself with
/// `Backend::Blocked` swapped in.
fn specs() -> Vec<EngineSpec> {
    let q = Datapath::Quantized(QFormat::q16_16());
    vec![
        EngineSpec::monolithic(),
        EngineSpec::sharded(2),
        EngineSpec::sharded(4),
        EngineSpec::monolithic().with_datapath(q),
        EngineSpec::sharded(2).with_datapath(q),
        EngineSpec::monolithic().with_skim(SkimRate::new(0.2)),
        EngineSpec { approx_softmax: true, ..EngineSpec::monolithic() },
    ]
}

fn assert_rows_close(label: &str, got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{label}: {what} length");
    for (i, (a, b)) in got.iter().zip(want).enumerate() {
        let bound = TOL * (1.0 + a.abs().max(b.abs()));
        assert!(
            (a - b).abs() <= bound,
            "{label}: {what}[{i}] diverged: blocked {a} vs scalar {b} (bound {bound})"
        );
    }
}

/// The per-step tracking contract: a blocked engine and a scalar engine
/// fed the same masked episode stream agree within [`TOL`] on outputs,
/// read rows and feature rows at every step.
fn assert_blocked_tracks_scalar(spec: EngineSpec, episodes: &[Episode]) {
    let lanes = episodes.len();
    let steps = max_len(episodes).expect("non-empty set");
    let mut scalar = builder(spec).lanes(lanes).build();
    let mut blocked = builder(spec.with_backend(Backend::Blocked)).lanes(lanes).build();
    for t in 0..steps {
        let (block, mask) = masked_step_block(episodes, t);
        let ys = scalar.step_batch_masked(&block, &mask);
        let yb = blocked.step_batch_masked(&block, &mask);
        let label = format!("{} B={lanes} t={t}", spec.label());
        assert_rows_close(&label, yb.as_slice(), ys.as_slice(), "output");
        assert_rows_close(
            &label,
            blocked.last_read_rows().as_slice(),
            scalar.last_read_rows().as_slice(),
            "read rows",
        );
        assert_rows_close(
            &label,
            blocked.last_features_rows().as_slice(),
            scalar.last_features_rows().as_slice(),
            "feature rows",
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn blocked_tier_tracks_scalar_across_the_axis_grid(
        episodes_b3 in ragged_episodes(3..=3, 2..=8),
        episodes_b8 in ragged_episodes(8..=8, 2..=9),
        episodes_b1 in ragged_episodes(1..=1, 2..=8),
    ) {
        for episodes in [&episodes_b1, &episodes_b3, &episodes_b8] {
            prop_assert!(BATCHES.contains(&episodes.len()));
            for spec in specs() {
                assert_blocked_tracks_scalar(spec, episodes);
            }
        }
    }
}

#[test]
fn uniform_batches_track_too() {
    // The fully-active mask is the uniform fast path; pin it separately
    // from the proptest ragged sets with a deterministic episode batch.
    use proptest::strategy::Strategy as _;
    let episodes =
        ragged_episodes(4..=4, 6..=6).generate(&mut proptest::test_runner::rng_for("uniform"));
    for spec in specs() {
        assert_blocked_tracks_scalar(spec, &episodes);
    }
}

#[test]
fn task_accuracy_parity_between_tiers() {
    // End-to-end parity on the bAbI-style harness: train one readout on
    // scalar features, evaluate through each tier — the blocked engine
    // must not change what the memory retrieves.
    let task = &TASKS[0];
    let train = task.generate(12, 101).episodes;
    let eval = task.generate(8, 202).episodes;
    for spec in [EngineSpec::monolithic(), EngineSpec::sharded(2)] {
        let scalar = builder(spec);
        let blocked = builder(spec.with_backend(Backend::Blocked));
        let (x, y) = collect_query_samples(&scalar, &train);
        let readout = TrainedReadout::fit(&x, &y, 1e-3);
        let acc_scalar = readout_accuracy(&scalar, &readout, &eval);
        let acc_blocked = readout_accuracy(&blocked, &readout, &eval);
        assert!(
            (acc_scalar - acc_blocked).abs() <= ACC_TOL,
            "{}: task accuracy diverged: scalar {acc_scalar} vs blocked {acc_blocked}",
            spec.label()
        );
    }
}

#[test]
fn scalar_backend_is_the_default_and_bit_stable() {
    // The default spec runs the scalar tier, and selecting it explicitly
    // is the very same engine — the guarantee that keeps every
    // pre-existing bit-equality suite pinned to the reference kernels.
    assert_eq!(EngineSpec::default().backend, Backend::Scalar);
    use proptest::strategy::Strategy as _;
    let episodes =
        ragged_episodes(3..=3, 2..=6).generate(&mut proptest::test_runner::rng_for("default"));
    let steps = max_len(&episodes).unwrap();
    let mut implicit = builder(EngineSpec::monolithic()).lanes(3).build();
    let mut explicit =
        builder(EngineSpec::monolithic().with_backend(Backend::Scalar)).lanes(3).build();
    for t in 0..steps {
        let (block, mask) = masked_step_block(&episodes, t);
        assert_eq!(
            implicit.step_batch_masked(&block, &mask),
            explicit.step_batch_masked(&block, &mask),
            "t {t}"
        );
    }
}
