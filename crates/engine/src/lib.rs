//! Architectural cycle model of the HiMA accelerator.
//!
//! This crate maps the DNC dataflow of Fig. 2 onto a tiled architecture —
//! one controller tile (CT) plus `N_t` processing tiles (PTs) joined by a
//! NoC — and produces per-kernel cycle and activity estimates. It is the
//! simulator standing in for the paper's RTL prototypes: all speed results
//! in the evaluation are *relative* (speedups over a baseline
//! configuration or another platform), which an architectural cycle model
//! preserves.
//!
//! The model composes the other substrate crates:
//!
//! * kernel compute work runs on the PTs' M-M engines
//!   ([`config::EngineConfig::pe_parallelism`] MACs/cycle each),
//! * usage sorting uses the hardware sorter models from `hima-sort`,
//! * inter-tile traffic is generated per kernel from the partition-aware
//!   formulas of `hima-mem` and simulated on `hima-noc`'s contention model
//!   (gathers and exchanges), as sequential accumulation chains
//!   (Fig. 6(b)'s PT→PT psum chains) or as multicasts,
//! * feature flags switch the paper's architecture/algorithm levels:
//!   two-stage sort, HiMA-NoC, submatrix linkage partition, DNC-D, usage
//!   skimming and softmax approximation (Fig. 11(a)'s ablation ladder).
//!
//! # Example
//!
//! ```
//! use hima_engine::{Engine, EngineConfig};
//!
//! let baseline = Engine::new(EngineConfig::baseline(16));
//! let hima_d = Engine::new(EngineConfig::hima_dncd(16));
//! let speedup = baseline.step_cycles() as f64 / hima_d.step_cycles() as f64;
//! assert!(speedup > 3.0, "DNC-D must be several times faster");
//! ```

pub mod baselines;
pub mod config;
pub mod engine;
pub mod kernels;
pub mod report;
pub mod trace;

pub use config::{EngineConfig, FeatureLevel};
pub use engine::{ActivityCounters, Engine, KernelCost, StepReport};
pub use hima_noc::topology::Topology;
pub use kernels::{KernelInfo, KERNEL_TABLE};
pub use trace::{trace_report, GateTrace};
