//! DNC vs DNC-D relative-error evaluation (the Fig. 10 harness).
//!
//! Both models share weights (same seed) and consume the same episodes.
//! The DNC-D read-merge weights `α` are first fit on a calibration split
//! (the paper's "trainable weighted summation"); the reported error is the
//! fraction of query steps on the evaluation split where the *retrieved
//! memory content* diverges — argmax of DNC-D's merged read vector vs
//! argmax of DNC's read vector. Judging on read vectors rather than the
//! final output isolates the quantity DNC-D approximates (the output
//! projection is dominated by the shared controller state and would mask
//! the divergence).

use crate::episode::{step_block, uniform_len, Episode};
use crate::tasks::{TaskSpec, TASKS, TOKEN_WIDTH};
use hima_dnc::allocation::SkimRate;
use hima_dnc::{Dnc, DncD, DncParams};
use serde::{Deserialize, Serialize};

/// Evaluation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Distributed tile count `N_t`.
    pub tiles: usize,
    /// Usage skimming rate applied inside DNC-D shards.
    pub skim: SkimRate,
    /// Memory rows `N` of the centralized reference.
    pub memory_size: usize,
    /// Word size `W`.
    pub word_size: usize,
    /// Read heads `R`.
    pub read_heads: usize,
    /// Controller width.
    pub hidden_size: usize,
    /// Episodes per task used for α calibration.
    pub calibration_episodes: usize,
    /// Episodes per task used for evaluation.
    pub eval_episodes: usize,
    /// Weight/episode seed.
    pub seed: u64,
}

impl EvalConfig {
    /// A small, fast configuration suitable for tests and the Fig. 10
    /// experiment binary.
    pub fn small(tiles: usize) -> Self {
        Self {
            tiles,
            skim: SkimRate::NONE,
            memory_size: 64,
            word_size: 16,
            read_heads: 2,
            hidden_size: 32,
            calibration_episodes: 2,
            eval_episodes: 4,
            seed: 2021,
        }
    }

    /// Applies a skimming rate.
    pub fn with_skim(mut self, k: SkimRate) -> Self {
        self.skim = k;
        self
    }

    /// Memory-saturated configuration: shards small enough (8 rows at
    /// `tiles = 4`) that an episode fills every slot. Usage skimming only
    /// affects behaviour once no zero-usage slot remains — the allocation
    /// prefix product is exactly zero past the first free slot otherwise —
    /// so this is the regime (long bAbI stories on a finite memory) where
    /// the K-sweep of Fig. 10 is meaningful.
    pub fn saturated(tiles: usize) -> Self {
        Self { memory_size: 32, ..Self::small(tiles) }
    }

    fn params(&self) -> DncParams {
        DncParams::new(self.memory_size, self.word_size, self.read_heads)
            .with_hidden(self.hidden_size)
            .with_io(TOKEN_WIDTH, TOKEN_WIDTH)
    }
}

/// Per-task relative error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskError {
    /// Task id (1-20).
    pub task_id: usize,
    /// Task name.
    pub name: &'static str,
    /// Fraction of query steps where DNC-D's retrieved content (read-vector
    /// argmax) diverges from DNC's, in `[0,1]`.
    pub error: f64,
    /// Mean normalized L2 distance between the two read vectors at query
    /// steps — a continuous divergence measure that resolves perturbations
    /// (e.g. light usage skimming) too small to flip an argmax.
    pub divergence: f64,
}

/// Runs the full 20-task suite, returning per-task relative errors.
pub fn relative_error(config: &EvalConfig) -> Vec<TaskError> {
    TASKS.iter().map(|task| task_error(config, task)).collect()
}

/// Mean error across tasks.
pub fn mean_error(errors: &[TaskError]) -> f64 {
    if errors.is_empty() {
        return 0.0;
    }
    errors.iter().map(|e| e.error).sum::<f64>() / errors.len() as f64
}

fn task_error(config: &EvalConfig, task: &TaskSpec) -> TaskError {
    let params = config.params();
    let mut dnc = Dnc::new(params, config.seed);
    let mut dncd = DncD::with_features(params, config.tiles, config.seed, config.skim, false);

    // Calibrate α against the reference on held-out episodes.
    let calib = task.generate(config.calibration_episodes, config.seed ^ 0xCA11B);
    let calib_inputs: Vec<Vec<f32>> =
        calib.episodes.iter().flat_map(|e| e.inputs.clone()).collect();
    if !calib_inputs.is_empty() {
        dncd.calibrate_against(&mut dnc, &calib_inputs);
    }

    let eval = task.generate(config.eval_episodes, config.seed ^ 0xE7A1);
    let (ref_reads, dist_reads) = run_pair_batched(&dnc, &dncd, &eval.episodes);
    let mut queries = 0usize;
    let mut disagreements = 0usize;
    let mut divergence_sum = 0.0f64;
    for (b, episode) in eval.episodes.iter().enumerate() {
        for &q in &episode.query_steps {
            queries += 1;
            if argmax(&ref_reads[b][q]) != argmax(&dist_reads[b][q]) {
                disagreements += 1;
            }
            divergence_sum += normalized_l2(&ref_reads[b][q], &dist_reads[b][q]);
        }
    }
    let error = if queries == 0 { 0.0 } else { disagreements as f64 / queries as f64 };
    let divergence = if queries == 0 { 0.0 } else { divergence_sum / queries as f64 };
    TaskError { task_id: task.id, name: task.name, error, divergence }
}

/// `‖a − b‖ / (‖a‖ + ε)`.
fn normalized_l2(a: &[f32], b: &[f32]) -> f64 {
    let diff: f64 = a.iter().zip(b).map(|(x, y)| ((x - y) as f64).powi(2)).sum::<f64>().sqrt();
    let norm: f64 = a.iter().map(|x| (*x as f64).powi(2)).sum::<f64>().sqrt();
    diff / (norm + 1e-9)
}

/// Mean divergence across tasks.
pub fn mean_divergence(errors: &[TaskError]) -> f64 {
    if errors.is_empty() {
        return 0.0;
    }
    errors.iter().map(|e| e.divergence).sum::<f64>() / errors.len() as f64
}

/// Drives both models over every episode at once via the batched
/// data-parallel path (one lane per episode, shared weights), collecting
/// the *read vectors* (the retrieved memory content) at every step of
/// every episode: `result[episode][step]`. Inference error is judged on
/// what the memory unit returns — the quantity DNC-D approximates — rather
/// than on the controller-dominated output projection.
///
/// Batched lanes start blank, exactly like the per-episode `reset()` of
/// the sequential harness, and the batched models are bit-compatible with
/// the sequential ones, so the reported errors are unchanged. Ragged
/// episode lists (never produced by [`TaskSpec::generate`], whose episode
/// length is fixed per task) fall back to per-episode sequential runs.
#[allow(clippy::type_complexity)]
fn run_pair_batched(
    dnc: &Dnc,
    dncd: &DncD,
    episodes: &[Episode],
) -> (Vec<Vec<Vec<f32>>>, Vec<Vec<Vec<f32>>>) {
    if episodes.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let Some(steps) = uniform_len(episodes) else {
        return run_pair_sequential(&mut dnc.clone(), &mut dncd.clone(), episodes);
    };
    let lanes = episodes.len();
    let mut batch_dnc = dnc.batched(lanes);
    let mut batch_dncd = dncd.batched(lanes);
    let mut a = vec![Vec::with_capacity(steps); lanes];
    let mut b = vec![Vec::with_capacity(steps); lanes];
    for t in 0..steps {
        let x = step_block(episodes, t);
        batch_dnc.step_batch(&x);
        batch_dncd.step_batch(&x);
        for lane in 0..lanes {
            a[lane].push(batch_dnc.last_read().row(lane).to_vec());
            b[lane].push(batch_dncd.last_read().row(lane).to_vec());
        }
    }
    (a, b)
}

/// Sequential fallback of [`run_pair_batched`] for ragged episode lists.
#[allow(clippy::type_complexity)]
fn run_pair_sequential(
    dnc: &mut Dnc,
    dncd: &mut DncD,
    episodes: &[Episode],
) -> (Vec<Vec<Vec<f32>>>, Vec<Vec<Vec<f32>>>) {
    let mut a = Vec::with_capacity(episodes.len());
    let mut b = Vec::with_capacity(episodes.len());
    for episode in episodes {
        dnc.reset();
        dncd.reset();
        let mut ea = Vec::with_capacity(episode.len());
        let mut eb = Vec::with_capacity(episode.len());
        for x in &episode.inputs {
            dnc.step(x);
            ea.push(dnc.last_read().to_vec());
            dncd.step(x);
            eb.push(dncd.last_read().to_vec());
        }
        a.push(ea);
        b.push(eb);
    }
    (a, b)
}

fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tile_has_zero_error() {
        // DNC-D with one shard and α = 1 is the centralized model; after
        // calibration the least-squares fit recovers α ≈ 1.
        let errors = relative_error(&EvalConfig::small(1));
        let mean = mean_error(&errors);
        assert!(mean < 0.05, "1-tile mean error {mean}");
    }

    #[test]
    fn error_grows_with_tiles() {
        // Fig. 10: the error rate of DNC-D increases with N_t.
        let e2 = mean_error(&relative_error(&EvalConfig::small(2)));
        let e8 = mean_error(&relative_error(&EvalConfig::small(8)));
        assert!(
            e8 >= e2,
            "error must not shrink with more shards: Nt=2 {e2:.3} vs Nt=8 {e8:.3}"
        );
    }

    #[test]
    fn heavy_skimming_hurts_more_than_light() {
        // Fig. 10: K=50% degrades clearly beyond K=20%. Judged on the
        // continuous divergence metric in the memory-saturated regime
        // (skimming is exactly free while zero-usage slots remain — the
        // allocation prefix product past the first free slot is zero).
        let base = EvalConfig::saturated(4);
        let none = mean_divergence(&relative_error(&base));
        let heavy = mean_divergence(&relative_error(&base.with_skim(SkimRate::new(0.6))));
        assert!(
            heavy >= none,
            "skimming must not reduce divergence: {none:.4} vs {heavy:.4}"
        );
        assert!(heavy > none, "K=60% must measurably diverge: {none:.4} vs {heavy:.4}");
    }

    #[test]
    fn errors_cover_all_tasks_and_are_probabilities() {
        let errors = relative_error(&EvalConfig::small(4));
        assert_eq!(errors.len(), 20);
        for e in &errors {
            assert!((0.0..=1.0).contains(&e.error), "task {}: {}", e.task_id, e.error);
        }
    }

    #[test]
    fn evaluation_is_deterministic() {
        let a = relative_error(&EvalConfig::small(4));
        let b = relative_error(&EvalConfig::small(4));
        assert_eq!(a, b);
    }

    #[test]
    fn evaluation_deterministic_across_thread_counts() {
        // Lane parallelism must not perturb results: per-lane RNG streams
        // and per-lane state make the batched harness bit-deterministic
        // whether the lanes run on one worker thread or many.
        let cfg = EvalConfig::small(2);
        let one = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| relative_error(&cfg));
        let four = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| relative_error(&cfg));
        assert_eq!(one, four);
    }

    #[test]
    fn argmax_picks_first_max() {
        assert_eq!(argmax(&[0.1, 0.9, 0.9]), 1);
        assert_eq!(argmax(&[]), 0);
    }
}
