//! Exact softmax and the PLA+LUT hardware approximation of Section 5.2.
//!
//! HiMA approximates the exponential inside softmax with a piece-wise linear
//! approximation (PLA) whose per-segment affine coefficients are stored in a
//! small look-up table (LUT), so each evaluation costs one multiply and one
//! add. [`PlaSoftmax`] models that unit: the input is max-shifted into
//! `(-∞, 0]`, clamped to the table's range, and the segment's `(slope,
//! intercept)` pair is applied.

use serde::{Deserialize, Serialize};

/// Exact softmax over `xs`, numerically stabilized by max-subtraction.
///
/// Returns a vector of the same length summing to 1 (or all zeros for an
/// empty input).
///
/// # Example
///
/// ```
/// let p = hima_tensor::softmax(&[1.0, 1.0]);
/// assert!((p[0] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax(xs: &[f32]) -> Vec<f32> {
    let mut out = xs.to_vec();
    softmax_inplace(&mut out);
    out
}

/// In-place form of [`softmax`]: replaces `xs` by its softmax without
/// allocating — the steady-state content-addressing path runs the scaled
/// similarities through this on a reused scratch buffer.
///
/// Bit-identical to [`softmax`] (same max-shift, same left-to-right
/// exponential sum, same division).
pub fn softmax_inplace(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut total = 0.0f32;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        total += *x;
    }
    for x in xs.iter_mut() {
        *x /= total;
    }
}

/// Softmax computed with the default hardware PLA+LUT exponential
/// approximation (32 segments over `[-8, 0]`).
///
/// # Example
///
/// ```
/// let exact = hima_tensor::softmax(&[0.1, 0.9, 0.3]);
/// let approx = hima_tensor::softmax_approx(&[0.1, 0.9, 0.3]);
/// for (e, a) in exact.iter().zip(&approx) {
///     assert!((e - a).abs() < 0.02);
/// }
/// ```
pub fn softmax_approx(xs: &[f32]) -> Vec<f32> {
    PlaSoftmax::default().softmax(xs)
}

/// A piece-wise linear + LUT softmax unit (paper §5.2).
///
/// The exponential is approximated on `[-range, 0]` by `segments` affine
/// pieces; each piece stores a `(slope, intercept)` pair computed so the
/// approximation interpolates `e^x` at the segment endpoints. Inputs below
/// `-range` evaluate to 0 (they contribute nothing after normalization).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlaSoftmax {
    range: f32,
    /// `(slope, intercept)` per segment, covering `[-range, 0]` uniformly.
    table: Vec<(f32, f32)>,
}

impl PlaSoftmax {
    /// Builds a PLA table with `segments` uniform pieces over `[-range, 0]`.
    ///
    /// # Panics
    ///
    /// Panics if `segments == 0` or `range <= 0`.
    pub fn new(segments: usize, range: f32) -> Self {
        assert!(segments > 0, "PLA needs at least one segment");
        assert!(range > 0.0, "PLA range must be positive");
        let seg_width = range / segments as f32;
        let table = (0..segments)
            .map(|s| {
                // Segment s covers [-range + s*w, -range + (s+1)*w].
                let x0 = -range + s as f32 * seg_width;
                let x1 = x0 + seg_width;
                let y0 = x0.exp();
                let y1 = x1.exp();
                let slope = (y1 - y0) / (x1 - x0);
                let intercept = y0 - slope * x0;
                (slope, intercept)
            })
            .collect();
        Self { range, table }
    }

    /// Number of PLA segments in the LUT.
    pub fn segments(&self) -> usize {
        self.table.len()
    }

    /// Input range `[-range, 0]` covered by the table.
    pub fn range(&self) -> f32 {
        self.range
    }

    /// Approximate `e^x` for `x ≤ 0` using one multiply and one add.
    ///
    /// Inputs below the table range evaluate to 0; inputs above 0 are
    /// clamped to 0 (callers max-shift first, so this only guards misuse).
    pub fn exp_approx(&self, x: f32) -> f32 {
        let x = x.min(0.0);
        if x < -self.range {
            return 0.0;
        }
        let seg_width = self.range / self.table.len() as f32;
        let idx = (((x + self.range) / seg_width) as usize).min(self.table.len() - 1);
        let (slope, intercept) = self.table[idx];
        // The hardware datapath: 1 multiply + 1 add.
        slope * x + intercept
    }

    /// Softmax over `xs` using the approximate exponential.
    pub fn softmax(&self, xs: &[f32]) -> Vec<f32> {
        let mut out = xs.to_vec();
        self.softmax_inplace(&mut out);
        out
    }

    /// In-place form of [`PlaSoftmax::softmax`]: replaces `xs` by its
    /// approximate softmax without allocating. Bit-identical to the
    /// allocating form (same approximate exponentials, same left-to-right
    /// sum, same division; `exp_approx` is monotone, so the total-safe
    /// fallback picks the same argmax either way).
    pub fn softmax_inplace(&self, xs: &mut [f32]) {
        if xs.is_empty() {
            return;
        }
        let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut total = 0.0f32;
        for x in xs.iter_mut() {
            *x = self.exp_approx(*x - max);
            total += *x;
        }
        if total <= 0.0 {
            // All inputs fell outside the table range except the max, which
            // always maps to exp(0)=1; this branch is unreachable for a
            // well-formed table but keeps the unit total-safe.
            let argmax = xs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            xs.fill(0.0);
            xs[argmax] = 1.0;
            return;
        }
        for x in xs.iter_mut() {
            *x /= total;
        }
    }

    /// Maximum absolute error of the exponential approximation over a dense
    /// sweep of the table range (diagnostic used by the ablation bench).
    pub fn max_exp_error(&self, samples: usize) -> f32 {
        (0..=samples)
            .map(|i| {
                let x = -self.range * i as f32 / samples as f32;
                (self.exp_approx(x) - x.exp()).abs()
            })
            .fold(0.0f32, f32::max)
    }
}

impl Default for PlaSoftmax {
    /// 32 segments over `[-8, 0]` — a small LUT (the paper's motivation is
    /// avoiding exponentially sized tables) with < 1% exponential error.
    fn default() -> Self {
        Self::new(32, 8.0)
    }
}

/// Row-wise softmax over a row-block: every row of `m` is replaced by its
/// softmax, independently — the batched row-block form of [`softmax`]
/// (`B` lanes' logits stacked as rows), row-for-row equivalent to the
/// scalar function (property-tested).
pub fn softmax_rows(m: &mut crate::Matrix) {
    // The fully-active special case of the masked kernel — one loop
    // body, so masked and unmasked rows are bit-identical by
    // construction.
    let mask = crate::LaneMask::full(m.rows());
    softmax_rows_masked(m, &mask);
}

/// Masked form of [`softmax_rows`] for ragged batches: normalizes only
/// the rows of active lanes, skipping inactive rows entirely (their
/// contents are left untouched). Active rows are bit-identical to
/// [`softmax_rows`].
///
/// # Panics
///
/// Panics if `mask.lanes() != m.rows()`.
pub fn softmax_rows_masked(m: &mut crate::Matrix, mask: &crate::LaneMask) {
    assert_eq!(mask.lanes(), m.rows(), "lane mask size mismatch");
    for i in mask.active_lanes() {
        let row = m.row_mut(i);
        if row.is_empty() {
            continue;
        }
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut total = 0.0;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            total += *x;
        }
        for x in row.iter_mut() {
            *x /= total;
        }
    }
}

/// Weighted softmax used by content addressing:
/// `softmax(β · sims)` where `β ≥ 1` is the key strength.
pub fn weighted_softmax(sims: &[f32], beta: f32, approx: Option<&PlaSoftmax>) -> Vec<f32> {
    let scaled: Vec<f32> = sims.iter().map(|s| s * beta).collect();
    match approx {
        Some(p) => p.softmax(&scaled),
        None => softmax(&scaled),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[0.0, 1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        for w in p.windows(2) {
            assert!(w[0] < w[1], "softmax must preserve order");
        }
    }

    #[test]
    fn softmax_uniform_inputs() {
        let p = softmax(&[5.0; 4]);
        assert_close(&p, &[0.25; 4], 1e-6);
    }

    #[test]
    fn softmax_rows_masked_normalizes_active_rows_only() {
        let src = crate::Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f32 * 0.25);
        let mask = crate::LaneMask::from(vec![true, false, true]);
        let mut masked = src.clone();
        softmax_rows_masked(&mut masked, &mask);
        let mut full = src.clone();
        softmax_rows(&mut full);
        assert_eq!(masked.row(0), full.row(0), "active rows bit-equal to unmasked");
        assert_eq!(masked.row(1), src.row(1), "inactive row untouched");
        assert_eq!(masked.row(2), full.row(2));
        // A full mask reproduces the unmasked row-block form.
        let mut all = src.clone();
        softmax_rows_masked(&mut all, &crate::LaneMask::full(3));
        assert_eq!(all, full);
    }

    #[test]
    fn inplace_softmax_is_bit_identical_to_allocating() {
        let xs = [0.3f32, -1.2, 2.5, 0.0, 1.1, -7.9];
        let mut got = xs;
        softmax_inplace(&mut got);
        assert_eq!(&got[..], &softmax(&xs)[..]);

        let pla = PlaSoftmax::default();
        let mut got = xs;
        pla.softmax_inplace(&mut got);
        assert_eq!(&got[..], &pla.softmax(&xs)[..]);

        softmax_inplace(&mut []); // empty is a no-op
        pla.softmax_inplace(&mut []);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        assert_close(&a, &b, 1e-6);
    }

    #[test]
    fn softmax_handles_extreme_inputs() {
        let p = softmax(&[1e30, -1e30]);
        assert!((p[0] - 1.0).abs() < 1e-6);
        assert!(p[1] < 1e-6);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn softmax_empty_is_empty() {
        assert!(softmax(&[]).is_empty());
        assert!(PlaSoftmax::default().softmax(&[]).is_empty());
    }

    #[test]
    fn pla_exp_error_is_small() {
        let pla = PlaSoftmax::default();
        assert!(pla.max_exp_error(1000) < 0.01, "err = {}", pla.max_exp_error(1000));
    }

    #[test]
    fn pla_exp_more_segments_reduce_error() {
        let coarse = PlaSoftmax::new(4, 8.0).max_exp_error(1000);
        let fine = PlaSoftmax::new(64, 8.0).max_exp_error(1000);
        assert!(fine < coarse);
    }

    #[test]
    fn pla_softmax_close_to_exact() {
        let xs = [0.3, -1.2, 2.5, 0.0, 1.1];
        let exact = softmax(&xs);
        let approx = PlaSoftmax::default().softmax(&xs);
        for (e, a) in exact.iter().zip(&approx) {
            assert!((e - a).abs() < 0.02, "exact {e} vs approx {a}");
        }
        assert!((approx.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn pla_exp_below_range_is_zero() {
        let pla = PlaSoftmax::new(8, 4.0);
        assert_eq!(pla.exp_approx(-10.0), 0.0);
    }

    #[test]
    fn pla_exp_interpolates_endpoints() {
        let pla = PlaSoftmax::new(8, 4.0);
        assert!((pla.exp_approx(0.0) - 1.0).abs() < 1e-5);
        assert!((pla.exp_approx(-4.0) - (-4.0f32).exp()).abs() < 1e-5);
    }

    #[test]
    fn weighted_softmax_sharpens_with_beta() {
        let sims = [0.9, 0.5, 0.1];
        let soft = weighted_softmax(&sims, 1.0, None);
        let sharp = weighted_softmax(&sims, 10.0, None);
        assert!(sharp[0] > soft[0], "higher beta concentrates mass");
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn pla_rejects_zero_segments() {
        PlaSoftmax::new(0, 8.0);
    }
}
