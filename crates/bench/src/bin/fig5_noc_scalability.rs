//! Fig. 5(d): Speedup scalability of the multi-mode HiMA-NoC.
//!
//! Sweeps PT counts for DNC mapped onto the five fabrics (all with the
//! best partitions and two-stage sort, so topology is the only variable)
//! plus DNC-D on HiMA, printing normalized speedups. The paper's
//! qualitative result: the fixed fabrics saturate beyond ~8 tiles, HiMA
//! keeps scaling, and DNC-D is near-ideal.

use hima::engine::report::scalability_sweep;
use hima::prelude::*;
use hima_bench::header;

fn main() {
    header("Fig. 5(d): speedup vs PT count (normalized to 1 tile per design)");

    let tiles = [1usize, 2, 4, 8, 16, 32, 48, 64];
    print!("{:<12}", "fabric");
    for nt in tiles {
        print!(" {:>7}", nt);
    }
    println!();

    for topo in Topology::ALL {
        let series =
            scalability_sweep(&tiles, move |nt| EngineConfig::hima_dnc(nt).with_topology(topo));
        print!("{:<12}", format!("{}, DNC", topo.label()));
        for p in &series {
            print!(" {:>6.1}x", p.speedup);
        }
        println!();
    }

    let dncd = scalability_sweep(&tiles, EngineConfig::hima_dncd);
    print!("{:<12}", "HiMA, DNC-D");
    for p in &dncd {
        print!(" {:>6.1}x", p.speedup);
    }
    println!();

    print!("{:<12}", "Ideal");
    for nt in tiles {
        print!(" {:>6.1}x", nt as f64);
    }
    println!();

    println!("\nPaper: H-tree and binary-tree saturate beyond 8 tiles; mesh and star");
    println!("saturate slightly later; HiMA-NoC scales further, and DNC-D tracks the");
    println!("ideal curve closely (Fig. 5(d)).");

    header("Worst-case inter-tile hops (the Fig. 5(a)-(c) labels)");
    for (pts, label) in [(16usize, "16 PTs"), (24, "24 PTs (5x5 grid)")] {
        print!("{label:<22}");
        for topo in Topology::ALL {
            let g = TopologyGraph::build(topo, pts);
            print!(" {}={}", topo.label(), g.worst_case_hops());
        }
        println!();
    }
    println!("Paper: H-tree 8 hops, binary tree 8 hops, HiMA 4 hops on the 5x5 fabric.");
}
