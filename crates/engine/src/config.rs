//! Engine configuration: geometry, feature flags and datapath constants.

use hima_dnc::allocation::SkimRate;
use hima_noc::topology::Topology;
use serde::{Deserialize, Serialize};

/// The ablation ladder of Fig. 11(a), from the H-tree baseline to the fully
/// optimized DNC-D with approximations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureLevel {
    /// H-tree NoC, centralized sort, row-wise partitions.
    Baseline,
    /// Baseline + local-global two-stage usage sort.
    TwoStageSort,
    /// Two-stage sort + multi-mode HiMA-NoC.
    HimaNoc,
    /// HiMA-NoC + submatrix-wise linkage partition (the full HiMA-DNC).
    Submatrix,
    /// Distributed DNC-D model (no inter-PT traffic, no global sort).
    DncD,
    /// DNC-D + 20% usage skimming + softmax approximation.
    DncDApprox,
}

impl FeatureLevel {
    /// All levels in ablation order.
    pub const ALL: [FeatureLevel; 6] = [
        FeatureLevel::Baseline,
        FeatureLevel::TwoStageSort,
        FeatureLevel::HimaNoc,
        FeatureLevel::Submatrix,
        FeatureLevel::DncD,
        FeatureLevel::DncDApprox,
    ];

    /// Label matching the paper's Fig. 11(a) y-axis.
    pub fn label(self) -> &'static str {
        match self {
            FeatureLevel::Baseline => "HiMA-baseline",
            FeatureLevel::TwoStageSort => "2-stage sort",
            FeatureLevel::HimaNoc => "HiMA-NoC",
            FeatureLevel::Submatrix => "Submat",
            FeatureLevel::DncD => "DNC-D Nt=16",
            FeatureLevel::DncDApprox => "K=20%",
        }
    }
}

/// Full engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Memory slots `N`.
    pub memory_size: usize,
    /// Word width `W`.
    pub word_size: usize,
    /// Read heads `R`.
    pub read_heads: usize,
    /// Processing tiles `N_t`.
    pub tiles: usize,
    /// LSTM controller hidden width (the CT's NN).
    pub hidden_size: usize,
    /// NoC fabric.
    pub topology: Topology,
    /// Two-stage usage sort (vs centralized merge sort at the CT).
    pub two_stage_sort: bool,
    /// Submatrix-wise linkage partition (vs row-wise).
    pub submatrix_linkage: bool,
    /// Distributed DNC-D execution.
    pub dncd: bool,
    /// Usage skimming rate.
    pub skim: SkimRate,
    /// PLA+LUT softmax approximation.
    pub approx_softmax: bool,
    /// M-M engine width: MACs per cycle per PT.
    pub pe_parallelism: usize,
    /// CT LSTM engine width: MACs per cycle.
    pub lstm_parallelism: usize,
    /// Elements per cycle of the CT's centralized merge sorter.
    pub sorter_parallelism: usize,
    /// Special-function units per tile (iterative exp/sqrt evaluators).
    pub sfu_parallelism: usize,
    /// Exponential-function cost in cycles per element on an SFU. With the
    /// PLA+LUT approximation the exponential becomes one multiply + one
    /// add and runs on the PE array instead.
    pub exp_cycles: u64,
    /// Clock frequency in GHz (the paper synthesizes at 500 MHz).
    pub clock_ghz: f64,
}

impl EngineConfig {
    /// The paper's prototype geometry: `N × W = 1024 × 64`, `R = 4`,
    /// 256-wide LSTM, 500 MHz.
    fn paper_geometry(tiles: usize) -> Self {
        Self {
            memory_size: 1024,
            word_size: 64,
            read_heads: 4,
            tiles,
            hidden_size: 256,
            topology: Topology::HTree,
            two_stage_sort: false,
            submatrix_linkage: false,
            dncd: false,
            skim: SkimRate::NONE,
            approx_softmax: false,
            pe_parallelism: 512,
            lstm_parallelism: 4096,
            // 4-wide hardware merge sorter at the CT (the 1-element/cycle
            // N·log N figure of §4.3 is the sort-subsystem microbenchmark,
            // reproduced in `hima-sort`).
            sorter_parallelism: 4,
            sfu_parallelism: 8,
            exp_cycles: 4,
            clock_ghz: 0.5,
        }
    }

    /// HiMA-baseline: H-tree NoC, centralized sort, row-wise partitions
    /// (the MANNA-like starting point of Fig. 11(a)).
    pub fn baseline(tiles: usize) -> Self {
        Self::paper_geometry(tiles)
    }

    /// The fully architecturally optimized HiMA-DNC: two-stage sort,
    /// HiMA-NoC, submatrix linkage partition.
    pub fn hima_dnc(tiles: usize) -> Self {
        Self::paper_geometry(tiles)
            .with_topology(Topology::Hima)
            .with_two_stage_sort(true)
            .with_submatrix_linkage(true)
    }

    /// HiMA-DNC-D: the distributed model (plus all architectural
    /// features).
    pub fn hima_dncd(tiles: usize) -> Self {
        Self::hima_dnc(tiles).with_dncd(true)
    }

    /// HiMA-DNC-D with the §5.2 approximations (`K = 20%` skimming,
    /// PLA+LUT softmax).
    pub fn hima_dncd_approx(tiles: usize) -> Self {
        Self::hima_dncd(tiles)
            .with_skim(SkimRate::new(0.2))
            .with_approx_softmax(true)
    }

    /// Configuration for a rung of the Fig. 11(a) ablation ladder.
    pub fn at_level(level: FeatureLevel, tiles: usize) -> Self {
        match level {
            FeatureLevel::Baseline => Self::baseline(tiles),
            FeatureLevel::TwoStageSort => Self::baseline(tiles).with_two_stage_sort(true),
            FeatureLevel::HimaNoc => Self::baseline(tiles)
                .with_two_stage_sort(true)
                .with_topology(Topology::Hima),
            FeatureLevel::Submatrix => Self::hima_dnc(tiles),
            FeatureLevel::DncD => Self::hima_dncd(tiles),
            FeatureLevel::DncDApprox => Self::hima_dncd_approx(tiles),
        }
    }

    /// Overrides the memory geometry.
    pub fn with_geometry(mut self, n: usize, w: usize, r: usize) -> Self {
        self.memory_size = n;
        self.word_size = w;
        self.read_heads = r;
        self
    }

    /// Overrides the NoC fabric.
    pub fn with_topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Enables/disables the two-stage sort.
    pub fn with_two_stage_sort(mut self, on: bool) -> Self {
        self.two_stage_sort = on;
        self
    }

    /// Enables/disables the submatrix linkage partition.
    pub fn with_submatrix_linkage(mut self, on: bool) -> Self {
        self.submatrix_linkage = on;
        self
    }

    /// Enables/disables DNC-D execution.
    pub fn with_dncd(mut self, on: bool) -> Self {
        self.dncd = on;
        self
    }

    /// Sets the usage skimming rate.
    pub fn with_skim(mut self, k: SkimRate) -> Self {
        self.skim = k;
        self
    }

    /// Enables the PLA+LUT softmax (the exponential then runs as one MAC
    /// on the PE array).
    pub fn with_approx_softmax(mut self, on: bool) -> Self {
        self.approx_softmax = on;
        self
    }

    /// Cycles to evaluate `count` exponentials: iterative SFUs when exact,
    /// one MAC per element on the PE array with the PLA+LUT approximation.
    pub fn exp_eval_cycles(&self, count: u64) -> u64 {
        if self.approx_softmax {
            count.div_ceil(self.pe_parallelism as u64)
        } else {
            (count * self.exp_cycles).div_ceil(self.sfu_parallelism as u64)
        }
    }

    /// Matrix-buffer load overhead charged to every kernel invocation: the
    /// PT's matrix buffer loader streams one row per cycle, `N/N_t` rows
    /// (Fig. 9's "Matrix Buffer Loader").
    pub fn kernel_overhead_cycles(&self) -> u64 {
        self.rows_per_tile() as u64
    }

    /// Rows per tile `n = ⌈N / N_t⌉`.
    pub fn rows_per_tile(&self) -> usize {
        self.memory_size.div_ceil(self.tiles)
    }

    /// LSTM input width: external input (word-sized) + `R·W` read vector.
    pub fn lstm_input(&self) -> usize {
        self.word_size + self.read_heads * self.word_size
    }

    /// Converts cycles to microseconds at the configured clock.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1000.0)
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions or `tiles > memory_size`.
    pub fn validate(&self) {
        assert!(self.memory_size > 0, "memory_size must be positive");
        assert!(self.word_size > 0, "word_size must be positive");
        assert!(self.read_heads > 0, "read_heads must be positive");
        assert!(self.tiles > 0, "tiles must be positive");
        assert!(self.tiles <= self.memory_size, "more tiles than memory rows");
        assert!(self.pe_parallelism > 0, "pe_parallelism must be positive");
        assert!(self.clock_ghz > 0.0, "clock must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_encode_the_ablation_ladder() {
        let base = EngineConfig::baseline(16);
        assert_eq!(base.topology, Topology::HTree);
        assert!(!base.two_stage_sort && !base.submatrix_linkage && !base.dncd);

        let dnc = EngineConfig::hima_dnc(16);
        assert_eq!(dnc.topology, Topology::Hima);
        assert!(dnc.two_stage_sort && dnc.submatrix_linkage && !dnc.dncd);

        let dncd = EngineConfig::hima_dncd_approx(16);
        assert!(dncd.dncd && dncd.approx_softmax);
        assert!(dncd.skim.fraction() > 0.0);
        // PLA softmax: exponentials cost one MAC each on the PE array.
        assert!(dncd.exp_eval_cycles(512) <= 1);
    }

    #[test]
    fn at_level_is_monotone_in_features() {
        let levels: Vec<EngineConfig> =
            FeatureLevel::ALL.iter().map(|&l| EngineConfig::at_level(l, 16)).collect();
        assert!(!levels[0].two_stage_sort);
        assert!(levels[1].two_stage_sort);
        assert_eq!(levels[2].topology, Topology::Hima);
        assert!(levels[3].submatrix_linkage);
        assert!(levels[4].dncd);
        assert!(levels[5].approx_softmax);
    }

    #[test]
    fn paper_geometry_matches() {
        let c = EngineConfig::baseline(16);
        assert_eq!((c.memory_size, c.word_size, c.read_heads), (1024, 64, 4));
        assert_eq!(c.rows_per_tile(), 64);
        assert_eq!(c.clock_ghz, 0.5);
    }

    #[test]
    fn cycles_to_us_at_500mhz() {
        let c = EngineConfig::baseline(16);
        assert!((c.cycles_to_us(500) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "more tiles than memory rows")]
    fn validate_rejects_oversharding() {
        EngineConfig::baseline(16).with_geometry(8, 4, 1).validate();
    }
}
