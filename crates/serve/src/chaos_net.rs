//! Fault-injecting stream wrapper: torn frames, stalls, and resets.
//!
//! [`ChaosStream`] wraps any `Read + Write` transport and consults a
//! shared [`FaultPlan`] before every I/O call:
//!
//! * [`FaultSite::NetRead`] — a `Latency` fault sleeps before the read,
//!   a `Reset` shuts the underlying socket down and returns
//!   `ConnectionReset`, an `IoError` fails the read outright.
//! * [`FaultSite::NetWrite`] — a `PartialWrite { keep }` writes only the
//!   first `keep` bytes and then reports `ConnectionReset` (the peer
//!   sees a torn frame), plus the same latency/reset/error kinds.
//!
//! Decisions are a pure function of `(seed, site, op_index)` — see
//! `hima-chaos` — so a failing run replays exactly from its seed. With
//! no plan attached the wrapper is two pointer-sized fields of overhead
//! and a `None` branch per call.

use hima_chaos::{io_error_for, FaultKind, FaultPlan, FaultSite};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// A `Read + Write` transport with seeded fault injection on every call.
pub struct ChaosStream<S> {
    inner: S,
    plan: Option<Arc<FaultPlan>>,
}

impl<S> ChaosStream<S> {
    /// Wraps `inner`; `plan = None` means pass-through.
    pub fn new(inner: S, plan: Option<Arc<FaultPlan>>) -> Self {
        ChaosStream { inner, plan }
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// The wrapped transport, mutably.
    pub fn get_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwraps back to the raw transport.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Checks the plan at `site`; returns the fault to apply, if any.
    fn consult(&self, site: FaultSite) -> Option<FaultKind> {
        self.plan.as_deref().and_then(|p| p.check(site))
    }
}

/// Hook for kinds that must touch the transport itself (socket resets).
/// The default does nothing; `TcpStream` shuts both directions down so
/// the peer observes the reset too, not just this side's error return.
pub trait Resettable {
    /// Tears the transport down in-place (best effort).
    fn reset(&mut self) {}
}

impl Resettable for TcpStream {
    fn reset(&mut self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

impl Resettable for &TcpStream {
    fn reset(&mut self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

impl<S: Read + Resettable> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.consult(FaultSite::NetRead) {
            None => {}
            Some(FaultKind::Reset) => {
                self.inner.reset();
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected connection reset",
                ));
            }
            Some(kind) => {
                // Latency sleeps inside io_error_for and returns None;
                // IoError/Enospc return the error to surface.
                if let Some(e) = io_error_for(kind) {
                    return Err(e);
                }
            }
        }
        self.inner.read(buf)
    }
}

impl<S: Write + Resettable> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.consult(FaultSite::NetWrite) {
            None => {}
            Some(FaultKind::Reset) => {
                self.inner.reset();
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected connection reset",
                ));
            }
            Some(FaultKind::PartialWrite { keep }) => {
                // Push the torn prefix through, then kill the stream so
                // the peer sees a frame cut mid-body.
                let keep = keep.min(buf.len());
                if keep > 0 {
                    self.inner.write_all(&buf[..keep])?;
                    let _ = self.inner.flush();
                }
                self.inner.reset();
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected torn write",
                ));
            }
            Some(kind) => {
                if let Some(e) = io_error_for(kind) {
                    return Err(e);
                }
            }
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hima_chaos::FaultRule;

    /// In-memory transport for exercising the wrapper without sockets.
    struct Pipe {
        data: Vec<u8>,
        pos: usize,
        dead: bool,
    }

    impl Pipe {
        fn new(data: &[u8]) -> Self {
            Pipe { data: data.to_vec(), pos: 0, dead: false }
        }
    }

    impl Read for Pipe {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = buf.len().min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    impl Write for Pipe {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.data.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl Resettable for Pipe {
        fn reset(&mut self) {
            self.dead = true;
        }
    }

    #[test]
    fn no_plan_is_pass_through() {
        let mut s = ChaosStream::new(Pipe::new(b"abc"), None);
        let mut buf = [0u8; 3];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abc");
        s.write_all(b"xy").unwrap();
        assert!(!s.get_ref().dead);
    }

    #[test]
    fn injected_reset_kills_the_transport() {
        let plan = Arc::new(
            FaultPlan::new(3)
                .with_rule(FaultRule::at(FaultSite::NetRead, FaultKind::Reset, vec![1])),
        );
        let mut s = ChaosStream::new(Pipe::new(b"abcdef"), Some(plan));
        let mut buf = [0u8; 2];
        s.read_exact(&mut buf).unwrap(); // op 0: clean
        let err = s.read(&mut buf).unwrap_err(); // op 1: reset
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert!(s.get_ref().dead);
    }

    #[test]
    fn torn_write_keeps_only_the_prefix() {
        let plan = Arc::new(FaultPlan::new(9).with_rule(FaultRule::at(
            FaultSite::NetWrite,
            FaultKind::PartialWrite { keep: 3 },
            vec![0],
        )));
        let mut s = ChaosStream::new(Pipe::new(b""), Some(plan));
        let err = s.write(b"hello world").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(s.get_ref().data, b"hel");
        assert!(s.get_ref().dead);
    }

    #[test]
    fn disarmed_plan_is_inert_but_counts_ops() {
        let plan = Arc::new(FaultPlan::new(1).with_rule(FaultRule::probabilistic(
            FaultSite::NetRead,
            FaultKind::IoError,
            1000,
        )));
        plan.clear();
        let mut s = ChaosStream::new(Pipe::new(b"abcd"), Some(plan.clone()));
        let mut buf = [0u8; 4];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(plan.ops(FaultSite::NetRead), 1);
        assert_eq!(plan.injected(FaultSite::NetRead), 0);
    }
}
