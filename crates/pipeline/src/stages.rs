//! The staged pipeline: generation workers → batcher → engine workers →
//! reduction, over bounded channels.
//!
//! See the [crate docs](crate) for the stage diagram and the determinism
//! argument.

use crate::spec::PipelineSpec;
use hima_dnc::{BoxedEngine, EngineBuilder};
use hima_tasks::episode::masked_step_block;
use hima_tensor::Matrix;
use hima_tasks::{Episode, TaskSpec};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SendError, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread;

/// Which steps' read vectors the engine stage materializes for the
/// per-episode map.
///
/// The engine always *steps* every time step (the recurrent state needs
/// them); this only controls which steps' read vectors are copied out
/// into [`EpisodeCtx::features`]. A reduction that consumes only
/// query-step features (all three pipelined harness entry points do)
/// can skip the copy for the store/distractor steps — an optimization
/// the synchronous [`episode_features`](hima_tasks::episode_features)
/// path cannot offer, since its contract returns every step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FeatureSteps {
    /// Materialize every step's read vector (the general contract).
    #[default]
    All,
    /// Materialize read vectors only at the episode's query steps; the
    /// other entries of `features[builder]` are present but empty.
    Queries,
}

/// One unit of pipeline work: `episodes` episodes of `task`, generated
/// from per-episode RNG streams rooted at `seed`
/// ([`TaskSpec::episode_at`]), each stepped through an engine per entry
/// of `builders`.
///
/// A pipeline run processes a slice of jobs concurrently — e.g. the
/// pipelined Fig. 10 harness submits one job per task, each carrying the
/// reference builder and the calibrated engine-under-test builder.
#[derive(Debug, Clone)]
pub struct EpisodeJob {
    /// The episode generator.
    pub task: TaskSpec,
    /// How many episodes to run (indices `0..episodes`).
    pub episodes: usize,
    /// Base seed of the per-episode RNG streams.
    pub seed: u64,
    /// One engine per builder steps every episode of the job; the
    /// per-episode map sees the read-vector features of all of them
    /// (may be empty for generation-only pipelines).
    pub builders: Vec<EngineBuilder>,
    /// Which steps' features to materialize for the map.
    pub feature_steps: FeatureSteps,
}

impl EpisodeJob {
    /// A job materializing every step's features (the general default).
    pub fn new(task: TaskSpec, episodes: usize, seed: u64, builders: Vec<EngineBuilder>) -> Self {
        Self { task, episodes, seed, builders, feature_steps: FeatureSteps::All }
    }

    /// Restricts materialized features to the query steps.
    pub fn queries_only(mut self) -> Self {
        self.feature_steps = FeatureSteps::Queries;
        self
    }
}

/// The per-episode view handed to the reduction map: which episode this
/// is, its inputs, and its read-vector features under every builder.
#[derive(Debug)]
pub struct EpisodeCtx<'a> {
    /// Index of the episode's [`EpisodeJob`] in the submitted slice.
    pub job: usize,
    /// Episode index within the job (`0..job.episodes`).
    pub index: usize,
    /// The generated episode.
    pub episode: &'a Episode,
    /// `features[builder][step]` is the flattened read vector the
    /// engine built from `builders[builder]` produced at `step` — the
    /// same quantity the synchronous
    /// [`episode_features`](hima_tasks::episode_features) collects.
    pub features: &'a [Vec<Vec<f32>>],
}

/// An episode travelling from the generation stage to the batcher.
struct GenItem {
    job: usize,
    index: usize,
    episode: Episode,
}

/// A batch unit travelling from the batcher to the engine stage. All
/// episodes share one job (hence one builder list) and one *length
/// bucket* — lengths within the unit differ by at most the spec's
/// `length_spread` — so the engine steps them as one padded, masked
/// lane grid (a spread of 0 recovers uniform lock-step units).
struct BatchUnit {
    job: usize,
    indices: Vec<usize>,
    episodes: Vec<Episode>,
}

/// Runs the staged pipeline over `jobs` and returns `map`'s per-episode
/// results, grouped by job and ordered by episode index —
/// `result[job][index]` — regardless of which workers produced them.
///
/// Stages (each connected by a bounded channel, so memory stays flat at
/// any episode count):
///
/// 1. **generation** — `spec.gen_workers` threads claim episode indices
///    from a shared counter and synthesize them via
///    [`TaskSpec::episode_at`] (per-episode RNG streams: the episode is
///    bit-identical whoever generates it),
/// 2. **batcher** — groups arriving episodes into per-job **length
///    buckets** of bounded spread (`spec.length_spread`; `0` = exact
///    length) and emits [`EpisodeBatch`](hima_tasks::EpisodeBatch)-sized
///    units of `spec.batch_size` (remainders flush at end of input) —
///    ragged bAbI-style traffic fills lanes instead of fragmenting into
///    per-length puddles,
/// 3. **engine** — `spec.engine_workers` threads step each unit through
///    one engine per job builder (engines are cached per
///    `(job, builder, lanes)` and [`reset`](hima_dnc::MemoryEngine::reset)
///    between units — no per-batch rebuild) as a padded lane grid with a
///    per-step [`LaneMask`](hima_dnc::LaneMask) (shorter episodes drop
///    out as they end;
///    [`step_batch_masked`](hima_dnc::MemoryEngine::step_batch_masked)
///    freezes their lanes), collecting per-step read vectors, then apply
///    `map` to every episode,
/// 4. **reduction** — the calling thread collects `(job, index, P)`
///    triples into the index-ordered result.
///
/// Results are **bit-identical across specs**: per-lane state makes an
/// episode's features independent of its batch-mates (the PR 1
/// conformance property), and the index-ordered result lets callers
/// fold partials in a fixed order.
///
/// # Panics
///
/// Panics if the spec fails [`PipelineSpec::validate`], or if a worker
/// panics (e.g. an engine rejects an episode's width).
pub fn run_pipeline<P, F>(spec: &PipelineSpec, jobs: &[EpisodeJob], map: F) -> Vec<Vec<P>>
where
    P: Send,
    F: Fn(EpisodeCtx<'_>) -> P + Sync,
{
    if let Err(e) = spec.validate() {
        panic!("invalid pipeline spec: {e}");
    }
    let requests: Vec<(usize, usize)> = jobs
        .iter()
        .enumerate()
        .flat_map(|(job, j)| (0..j.episodes).map(move |index| (job, index)))
        .collect();
    let mut slots: Vec<Vec<Option<P>>> =
        jobs.iter().map(|j| (0..j.episodes).map(|_| None).collect()).collect();

    if !requests.is_empty() {
        let next = AtomicUsize::new(0);
        let (gen_tx, gen_rx) = sync_channel::<GenItem>(spec.episode_channel_bound());
        let (unit_tx, unit_rx) = sync_channel::<BatchUnit>(spec.channel_depth);
        let (result_tx, result_rx) = sync_channel::<(usize, usize, P)>(spec.episode_channel_bound());
        let unit_rx = Arc::new(Mutex::new(unit_rx));

        thread::scope(|s| {
            for _ in 0..spec.gen_workers {
                let gen_tx = gen_tx.clone();
                let (next, requests) = (&next, &requests);
                s.spawn(move || generation_worker(jobs, requests, next, &gen_tx));
            }
            drop(gen_tx);

            {
                let unit_tx = unit_tx.clone();
                s.spawn(move || batcher(gen_rx, spec, &unit_tx));
            }
            drop(unit_tx);

            for _ in 0..spec.engine_workers {
                let unit_rx = Arc::clone(&unit_rx);
                let result_tx = result_tx.clone();
                let (map, engine_threads) = (&map, spec.engine_threads);
                s.spawn(move || engine_worker(jobs, &unit_rx, engine_threads, map, &result_tx));
            }
            drop(result_tx);

            // Reduction: place results by index; any arrival order yields
            // the same output.
            for (job, index, value) in result_rx {
                slots[job][index] = Some(value);
            }
        });
    }

    slots
        .into_iter()
        .map(|job| {
            job.into_iter()
                .map(|p| p.expect("pipeline delivered every requested episode"))
                .collect()
        })
        .collect()
}

/// Generation stage: claims request indices from the shared counter and
/// synthesizes each episode from its own RNG stream.
fn generation_worker(
    jobs: &[EpisodeJob],
    requests: &[(usize, usize)],
    next: &AtomicUsize,
    gen_tx: &SyncSender<GenItem>,
) {
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(&(job, index)) = requests.get(i) else { break };
        let episode = jobs[job].task.episode_at(jobs[job].seed, index);
        if gen_tx.send(GenItem { job, index, episode }).is_err() {
            break; // downstream gone (a worker panicked); unwind quietly
        }
    }
}

/// Batcher stage: groups episodes by `(job, length bucket)` — buckets
/// bound the length spread within a unit to `spec.length_spread`, which
/// the engine stage's padded masked stepping absorbs — and emits
/// `batch_size`-episode units, flushing remainders when generation ends.
fn batcher(gen_rx: Receiver<GenItem>, spec: &PipelineSpec, unit_tx: &SyncSender<BatchUnit>) {
    let mut groups: HashMap<(usize, usize), (Vec<usize>, Vec<Episode>)> = HashMap::new();
    for item in gen_rx {
        let key = (item.job, spec.length_bucket(item.episode.len()));
        let (indices, episodes) = groups.entry(key).or_default();
        indices.push(item.index);
        episodes.push(item.episode);
        if indices.len() == spec.batch_size {
            let (indices, episodes) = groups.remove(&key).expect("group just filled");
            if unit_tx.send(BatchUnit { job: key.0, indices, episodes }).is_err() {
                return;
            }
        }
    }
    let mut rest: Vec<_> = groups.into_iter().collect();
    rest.sort_by_key(|(key, _)| *key);
    for ((job, _bucket), (indices, episodes)) in rest {
        if unit_tx.send(BatchUnit { job, indices, episodes }).is_err() {
            return;
        }
    }
}

/// Engine stage: steps each unit through one cached engine per job
/// builder and maps every episode to its partial result.
fn engine_worker<P, F>(
    jobs: &[EpisodeJob],
    unit_rx: &Mutex<Receiver<BatchUnit>>,
    engine_threads: usize,
    map: &F,
    result_tx: &SyncSender<(usize, usize, P)>,
) where
    P: Send,
    F: Fn(EpisodeCtx<'_>) -> P + Sync,
{
    // Scope the worker's intra-step parallelism: lane × shard fan-out
    // inside `step_batch` uses `engine_threads` rayon workers, so batch-
    // level parallelism across engine workers composes predictably.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(engine_threads)
        .build()
        .expect("rayon pool");
    pool.install(|| {
        let mut engines: HashMap<(usize, usize, usize), BoxedEngine> = HashMap::new();
        loop {
            let unit = { unit_rx.lock().expect("unit channel lock").recv() };
            let Ok(unit) = unit else { break };
            if process_unit(jobs, &mut engines, &unit, map, result_tx).is_err() {
                break; // reduction gone; unwind quietly
            }
        }
    });
}

/// Steps one (possibly ragged) unit through every builder's engine as a
/// padded, masked lane grid and emits the mapped per-episode results.
fn process_unit<P, F>(
    jobs: &[EpisodeJob],
    engines: &mut HashMap<(usize, usize, usize), BoxedEngine>,
    unit: &BatchUnit,
    map: &F,
    result_tx: &SyncSender<(usize, usize, P)>,
) -> Result<(), SendError<(usize, usize, P)>>
where
    F: Fn(EpisodeCtx<'_>) -> P + Sync,
{
    let job = &jobs[unit.job];
    let lanes = unit.episodes.len();
    // The grid runs to the unit's longest episode; shorter lanes drop
    // out of the mask as their episodes end (state frozen, rows skipped).
    let steps = unit.episodes.iter().map(Episode::len).max().expect("non-empty unit");
    // features[lane][builder][step] — each lane collects exactly its own
    // episode's step count, ragged or not.
    let mut per_lane: Vec<Vec<Vec<Vec<f32>>>> =
        (0..lanes).map(|_| Vec::with_capacity(job.builders.len())).collect();
    for (builder_idx, builder) in job.builders.iter().enumerate() {
        let engine = engines
            .entry((unit.job, builder_idx, lanes))
            .or_insert_with(|| builder.clone().lanes(lanes).build());
        engine.reset();
        let mut by_lane: Vec<Vec<Vec<f32>>> =
            unit.episodes.iter().map(|e| Vec::with_capacity(e.len())).collect();
        // Engines are cached across units and own their step workspace;
        // reusing the output block keeps the stepping loop allocation-free
        // apart from the collected feature rows.
        let mut y = Matrix::zeros(lanes, job.builders[builder_idx].params().output_size);
        for t in 0..steps {
            let (block, mask) = masked_step_block(&unit.episodes, t);
            engine.step_batch_masked_into(&block, &mask, &mut y);
            for lane in mask.active_lanes() {
                let wanted = match job.feature_steps {
                    FeatureSteps::All => true,
                    FeatureSteps::Queries => unit.episodes[lane].query_steps.contains(&t),
                };
                by_lane[lane]
                    .push(if wanted { engine.last_read_row(lane).to_vec() } else { Vec::new() });
            }
        }
        for (lane, lane_features) in by_lane.into_iter().enumerate() {
            per_lane[lane].push(lane_features);
        }
    }
    for (lane, features) in per_lane.into_iter().enumerate() {
        let value = map(EpisodeCtx {
            job: unit.job,
            index: unit.indices[lane],
            episode: &unit.episodes[lane],
            features: &features,
        });
        result_tx.send((unit.job, unit.indices[lane], value))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hima_dnc::DncParams;
    use hima_tasks::tasks::{TASKS, TOKEN_WIDTH};

    fn builder() -> EngineBuilder {
        let params =
            DncParams::new(16, 4, 1).with_hidden(16).with_io(TOKEN_WIDTH, TOKEN_WIDTH);
        EngineBuilder::new(params).seed(5)
    }

    #[test]
    fn empty_job_list_yields_empty_results() {
        let out: Vec<Vec<usize>> = run_pipeline(&PipelineSpec::serial(), &[], |_| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_episode_jobs_yield_empty_slots() {
        let jobs = [EpisodeJob::new(TASKS[0], 0, 1, vec![])];
        let out: Vec<Vec<usize>> = run_pipeline(&PipelineSpec::serial(), &jobs, |_| 0);
        assert_eq!(out, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn generation_only_pipeline_sees_no_features() {
        // No builders: the engine stage degenerates to a pass-through and
        // the map sees the generated episodes alone.
        let jobs = [EpisodeJob::new(TASKS[0], 5, 9, vec![])];
        let out = run_pipeline(&PipelineSpec::default().with_batch_size(2), &jobs, |ctx| {
            assert!(ctx.features.is_empty());
            (ctx.index, ctx.episode.len())
        });
        let want: Vec<(usize, usize)> =
            (0..5).map(|i| (i, TASKS[0].episode_len())).collect();
        assert_eq!(out[0], want);
    }

    #[test]
    fn results_are_index_ordered_for_any_batch_size() {
        let jobs = [EpisodeJob::new(TASKS[1], 7, 3, vec![builder()])];
        for batch_size in [1, 2, 3, 7, 16] {
            let spec = PipelineSpec::default().with_batch_size(batch_size);
            let out = run_pipeline(&spec, &jobs, |ctx| {
                assert_eq!(ctx.features.len(), 1, "one builder");
                assert_eq!(ctx.features[0].len(), ctx.episode.len(), "one read per step");
                ctx.index
            });
            assert_eq!(out[0], (0..7).collect::<Vec<_>>(), "batch_size {batch_size}");
        }
    }

    #[test]
    fn queries_only_materializes_query_steps_alone() {
        let jobs_all = [EpisodeJob::new(TASKS[0], 3, 9, vec![builder()])];
        let jobs_q = [jobs_all[0].clone().queries_only()];
        let spec = PipelineSpec::default().with_batch_size(2);
        let all = run_pipeline(&spec, &jobs_all, |ctx| ctx.features[0].clone());
        let only = run_pipeline(&spec, &jobs_q, |ctx| ctx.features[0].clone());
        let episodes = TASKS[0].generate(3, 9).episodes;
        for (i, episode) in episodes.iter().enumerate() {
            assert_eq!(all[0][i].len(), only[0][i].len(), "same step count");
            for t in 0..episode.len() {
                if episode.query_steps.contains(&t) {
                    assert_eq!(all[0][i][t], only[0][i][t], "query step {t} identical");
                } else {
                    assert!(only[0][i][t].is_empty(), "non-query step {t} skipped");
                    assert!(!all[0][i][t].is_empty(), "All materializes step {t}");
                }
            }
        }
    }

    #[test]
    fn ragged_jobs_batch_into_buckets_and_keep_per_episode_feature_counts() {
        // A jittered task produces ragged episodes; with a nonzero
        // spread they share units, padded and masked — every episode
        // still sees exactly its own step count of features.
        let task = TASKS[0].with_jitter(5);
        let jobs = [EpisodeJob::new(task, 9, 3, vec![builder()])];
        let want: Vec<usize> =
            (0..9).map(|i| task.episode_at(3, i).len()).collect();
        for spread in [0usize, 2, 8] {
            let spec =
                PipelineSpec::default().with_batch_size(4).with_length_spread(spread);
            let out = run_pipeline(&spec, &jobs, |ctx| {
                assert_eq!(ctx.features[0].len(), ctx.episode.len(), "one read per real step");
                ctx.episode.len()
            });
            assert_eq!(out[0], want, "spread {spread}");
        }
    }

    #[test]
    fn length_spread_does_not_change_results() {
        // The spread knob trades occupancy only: any value yields
        // bit-identical features (masked stepping freezes tail lanes).
        let task = TASKS[4].with_jitter(4);
        let jobs = [EpisodeJob::new(task, 7, 11, vec![builder()])];
        let run = |spread: usize| {
            let spec =
                PipelineSpec::default().with_batch_size(3).with_length_spread(spread);
            run_pipeline(&spec, &jobs, |ctx| ctx.features[0].clone())
        };
        let exact = run(0);
        for spread in [1usize, 3, 16] {
            assert_eq!(exact, run(spread), "spread {spread}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid pipeline spec")]
    fn invalid_spec_is_rejected() {
        let jobs = [EpisodeJob::new(TASKS[0], 1, 1, vec![])];
        let _: Vec<Vec<usize>> =
            run_pipeline(&PipelineSpec::serial().with_batch_size(0), &jobs, |_| 0);
    }
}
