//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The hermetic build environment has no crates.io access, so this crate
//! provides the exact surface the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over float and
//! integer ranges — backed by a deterministic xoshiro256** generator
//! seeded through splitmix64. Determinism is the only contract the
//! workspace relies on (procedural weight init and episode generation);
//! the streams differ from upstream `rand`, which is fine because no test
//! pins cross-implementation values.

use std::ops::Range;

/// Core generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Modulo bias is ≤ span/2^64 — irrelevant for the tiny
                // spans (vocab sizes, slot counts) sampled here.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 24 mantissa bits of uniform in [0, 1).
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `rand`'s
    /// `StdRng`; same role — a fast, seedable, non-cryptographic PRNG).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
        let mut c = StdRng::seed_from_u64(8);
        let run: Vec<usize> = (0..16).map(|_| a.gen_range(0..1000)).collect();
        let other: Vec<usize> = (0..16).map(|_| c.gen_range(0..1000)).collect();
        assert_ne!(run, other);
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0f32;
        for _ in 0..10_000 {
            let x = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0).abs() < 0.02, "mean {sum} not near 0");
    }

    #[test]
    fn int_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 12];
        for _ in 0..1000 {
            seen[rng.gen_range(0..12usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 12 values should appear");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        StdRng::seed_from_u64(0).gen_range(5..5usize);
    }
}
