//! Async producer/consumer episode pipeline for the HiMA harnesses.
//!
//! HiMA's throughput story is about keeping the memory-access engine
//! saturated. After the batched execution path (PR 1) and the unified
//! [`MemoryEngine`](hima_dnc::MemoryEngine) API (PR 2), the engine's
//! step rate far exceeds what the strictly sequential harnesses feed it:
//! they generate episodes, step the model, and reduce metrics one phase
//! after another. This crate overlaps those phases in a staged
//! producer/consumer pipeline:
//!
//! ```text
//!  generation (G threads)      batcher (1)           engine (E threads)       reduction
//!  ┌───────────────────┐   ┌────────────────┐   ┌─────────────────────┐   ┌─────────────┐
//!  │ TaskSpec::episode_at │→│ group by (job, │→│ EngineBuilder-built │→│ fold per-    │
//!  │ per-episode RNG    │   │ length bucket) │   │ engines, cached &   │   │ episode      │
//!  │ streams            │   │ into batch_size│   │ reset; pad + mask:  │   │ partials in  │
//!  │ (ragged lengths    │   │ units, spread ≤ │   │ step_batch_masked,  │   │ episode-index│
//!  │  welcome)          │   │ length_spread  │   │ collect read vecs   │   │ order        │
//!  └───────────────────┘   └────────────────┘   └─────────────────────┘   └─────────────┘
//!        └──────── bounded channels: backpressure keeps memory flat ────────┘
//! ```
//!
//! The shape of the pipeline — worker counts, batch size, channel depths
//! — is a serializable [`PipelineSpec`]; **no spec field changes
//! results**. Three properties make the pipeline bit-identical to the
//! synchronous harnesses at any parallelism:
//!
//! 1. **per-episode RNG streams** — episode `i` is the same bits no
//!    matter which generation worker produces it
//!    ([`TaskSpec::episode_at`](hima_tasks::TaskSpec::episode_at)),
//! 2. **per-lane independence** — an episode's read vectors don't depend
//!    on its batch-mates (the batched-equals-sequential conformance
//!    property of every engine), so any grouping the batcher picks is
//!    equivalent,
//! 3. **index-ordered reduction** — per-episode partials fold in episode
//!    order, fixing the floating-point summation order.
//!
//! [`run_pipeline`] is the general engine; [`harness`] wraps it in
//! pipelined counterparts of the `hima-tasks` entry points
//! ([`relative_error_pipelined`], [`collect_query_samples_pipelined`],
//! [`readout_accuracy_pipelined`]).
//!
//! # Quickstart
//!
//! ```
//! use hima_dnc::{DncParams, EngineBuilder};
//! use hima_pipeline::{run_pipeline, EpisodeJob, PipelineSpec};
//! use hima_tasks::tasks::{TASKS, TOKEN_WIDTH};
//!
//! let params = DncParams::new(32, 8, 1).with_hidden(16).with_io(TOKEN_WIDTH, TOKEN_WIDTH);
//! let job = EpisodeJob::new(TASKS[0], 6, 7, vec![EngineBuilder::new(params).seed(7)]);
//! // Count query steps per episode, overlapping generation and stepping.
//! let spec = PipelineSpec::default().with_batch_size(2);
//! let queries = run_pipeline(&spec, &[job], |ctx| ctx.episode.query_steps.len());
//! assert_eq!(queries[0].len(), 6);
//! ```

pub mod harness;
pub mod spec;
pub mod stages;

pub use harness::{
    collect_query_samples_pipelined, readout_accuracy_pipelined, relative_error_pipelined,
};
pub use spec::PipelineSpec;
pub use stages::{run_pipeline, EpisodeCtx, EpisodeJob, FeatureSteps};
