//! [`EngineBuilder`]: one constructor over every engine variant.
//!
//! The repo used to expose five parallel model types with near-duplicate
//! but incompatible constructors (`Dnc::new`, `DncD::new`, `BatchDnc::new`,
//! `BatchDncD::new`, `QuantizedMemoryUnit::new`), hard-wiring every harness
//! to one variant. The builder instead composes **orthogonal axes** —
//! mirroring how the HiMA hardware itself is one engine with configuration
//! knobs:
//!
//! * **topology** — [`Topology::Monolithic`] (centralized DNC) or
//!   [`Topology::Sharded`] (`N_t`-tile DNC-D with a [`ReadMerge`] policy),
//! * **lanes** — how many independent sequences run through the shared
//!   weights ([`EngineBuilder::lanes`]),
//! * **datapath** — [`Datapath::F32`] or a fixed-point
//!   [`Datapath::Quantized`] format,
//! * plus the memory-unit feature knobs (skimming, PLA softmax, sorter)
//!   and the weight seed.
//!
//! [`EngineBuilder::build`] returns a boxed [`MemoryEngine`], so harnesses
//! sweep every axis from one code path.
//!
//! # Example
//!
//! ```
//! use hima_dnc::{DncParams, EngineBuilder, MemoryEngine};
//! use hima_tensor::{Matrix, QFormat};
//!
//! let params = DncParams::new(64, 8, 2).with_io(4, 4);
//! let mut engine = EngineBuilder::new(params)
//!     .sharded(4)
//!     .lanes(32)
//!     .quantized(QFormat::q16_16())
//!     .seed(7)
//!     .build();
//! let y = engine.step_batch(&Matrix::zeros(32, 4));
//! assert_eq!(y.shape(), (32, 4));
//! ```

use crate::allocation::SkimRate;
use crate::distributed::{DncD, ReadMerge};
use crate::dnc::Dnc;
use crate::engine::MemoryEngine;
use crate::memory::{MemoryConfig, SorterKind};
use crate::DncParams;
use hima_tensor::{Backend, QFormat};
use serde::{Deserialize, Serialize};

/// A built engine, stepped through the [`MemoryEngine`] trait.
pub type BoxedEngine = Box<dyn MemoryEngine + Send>;

/// Typed validation error for engine geometry and spec axes.
///
/// The panicking constructors ([`DncParams::new`],
/// [`EngineBuilder::sharded`], [`QFormat::new`], …) are the right
/// contract for in-process callers — a zero-row memory is a programming
/// bug. A *server* boundary receives these numbers from untrusted
/// clients, so [`DncParams::check`], [`EngineSpec::check`] and
/// [`EngineBuilder::try_build`] report the same invariants as values
/// instead of panics, and `hima-serve` turns them into structured error
/// replies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SpecError {
    /// A geometry dimension (`memory_size`, `word_size`, `read_heads`,
    /// `hidden_size`, `input_size`, `output_size`) is zero.
    ZeroDimension(&'static str),
    /// The engine was asked for zero batch lanes.
    ZeroLanes,
    /// The sharded topology was asked for zero tiles.
    ZeroTiles,
    /// More shards than memory rows — at least one shard would own no
    /// rows.
    TilesExceedMemoryRows {
        /// Requested shard count `N_t`.
        tiles: usize,
        /// Available memory rows `N`.
        rows: usize,
    },
    /// A fixed-point format violating the ≤32-bit datapath invariants
    /// (sign bit required, at least one fractional bit).
    InvalidQFormat {
        /// Integer bits, sign included.
        int_bits: u32,
        /// Fractional bits.
        frac_bits: u32,
    },
    /// A usage-skimming rate outside `[0, 1)`.
    InvalidSkimRate(f32),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::ZeroDimension(dim) => write!(f, "{dim} must be positive"),
            SpecError::ZeroLanes => write!(f, "need at least one batch lane"),
            SpecError::ZeroTiles => write!(f, "need at least one tile"),
            SpecError::TilesExceedMemoryRows { tiles, rows } => {
                write!(f, "more tiles than memory rows ({tiles} tiles over {rows} rows)")
            }
            SpecError::InvalidQFormat { int_bits, frac_bits } => write!(
                f,
                "invalid Q{int_bits}.{frac_bits}: need a sign bit, a fractional bit and at most 32 bits total"
            ),
            SpecError::InvalidSkimRate(k) => {
                write!(f, "skim rate must be in [0,1), got {k}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Memory-engine topology: one memory, or `N_t` independent shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Centralized DNC: one memory unit with global usage sort and
    /// linkage.
    Monolithic,
    /// Distributed DNC-D (paper §5.1): `tiles` row-wise shards, each
    /// running the full soft write + soft read locally, with shard reads
    /// merged by a [`ReadMerge`] weighting (Eq. 4).
    Sharded {
        /// Number of distributed shards `N_t`.
        tiles: usize,
    },
}

/// Numeric datapath of the engine's memory units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Datapath {
    /// IEEE-754 single precision (the functional reference).
    F32,
    /// Fixed-point: every interface-vector field is rounded on arrival
    /// and all stored state after each step, as in a hardware datapath.
    Quantized(QFormat),
}

impl Datapath {
    /// Human-readable label, e.g. `"f32"` or `"Q16.16"`.
    pub fn label(&self) -> String {
        match self {
            Datapath::F32 => "f32".to_string(),
            Datapath::Quantized(q) => q.label(),
        }
    }
}

/// The serializable axes of an [`EngineBuilder`]: everything that defines
/// a model variant except the hyper-parameters, lane count and seed
/// (which are runtime concerns of a particular run).
///
/// Configuration types such as
/// [`EvalConfig`](../hima_tasks/eval/struct.EvalConfig.html) carry an
/// `EngineSpec` instead of a bare tile count, so a harness config can name
/// *any* engine variant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineSpec {
    /// Memory topology.
    pub topology: Topology,
    /// Numeric datapath.
    pub datapath: Datapath,
    /// Usage-skimming rate `K` applied inside every memory unit.
    pub skim: SkimRate,
    /// Whether the PLA+LUT softmax approximation is enabled.
    pub approx_softmax: bool,
    /// Kernel execution tier: the scalar reference kernels or the
    /// blocked + vectorized fast tier. Defaults to [`Backend::Scalar`],
    /// and specs serialized before this axis existed deserialize to it.
    #[serde(default)]
    pub backend: Backend,
}

impl Default for EngineSpec {
    fn default() -> Self {
        Self::monolithic()
    }
}

impl EngineSpec {
    /// Exact centralized configuration: monolithic, f32, no
    /// approximations.
    pub fn monolithic() -> Self {
        Self {
            topology: Topology::Monolithic,
            datapath: Datapath::F32,
            skim: SkimRate::NONE,
            approx_softmax: false,
            backend: Backend::Scalar,
        }
    }

    /// `tiles`-shard DNC-D configuration, f32, no approximations.
    pub fn sharded(tiles: usize) -> Self {
        Self { topology: Topology::Sharded { tiles }, ..Self::monolithic() }
    }

    /// Overrides the datapath.
    pub fn with_datapath(mut self, datapath: Datapath) -> Self {
        self.datapath = datapath;
        self
    }

    /// Overrides the skimming rate.
    pub fn with_skim(mut self, skim: SkimRate) -> Self {
        self.skim = skim;
        self
    }

    /// Overrides the kernel execution tier.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Validates the spec against a model geometry without panicking —
    /// the server-boundary twin of the asserting builder methods. Checks
    /// the shard count against the memory rows, the fixed-point format's
    /// bit widths and the skimming rate. `params` itself is validated by
    /// [`DncParams::check`].
    pub fn check(&self, params: &DncParams) -> Result<(), SpecError> {
        match self.topology {
            Topology::Monolithic => {}
            Topology::Sharded { tiles } => {
                if tiles == 0 {
                    return Err(SpecError::ZeroTiles);
                }
                if tiles > params.memory_size {
                    return Err(SpecError::TilesExceedMemoryRows {
                        tiles,
                        rows: params.memory_size,
                    });
                }
            }
        }
        if let Datapath::Quantized(q) = self.datapath {
            if QFormat::checked(q.int_bits, q.frac_bits).is_none() {
                return Err(SpecError::InvalidQFormat {
                    int_bits: q.int_bits,
                    frac_bits: q.frac_bits,
                });
            }
        }
        let k = self.skim.fraction();
        if SkimRate::checked(k).is_none() {
            return Err(SpecError::InvalidSkimRate(k));
        }
        Ok(())
    }

    /// The shard count: 1 for monolithic, `N_t` for sharded.
    pub fn tiles(&self) -> usize {
        match self.topology {
            Topology::Monolithic => 1,
            Topology::Sharded { tiles } => tiles,
        }
    }

    /// Human-readable label, e.g. `"monolithic/f32"` or
    /// `"sharded(4)/Q16.16"`; the non-default blocked tier is suffixed as
    /// `"monolithic/f32+blocked"` so scalar labels stay unchanged.
    pub fn label(&self) -> String {
        let topo = match self.topology {
            Topology::Monolithic => "monolithic".to_string(),
            Topology::Sharded { tiles } => format!("sharded({tiles})"),
        };
        match self.backend {
            Backend::Scalar => format!("{topo}/{}", self.datapath.label()),
            Backend::Blocked => format!("{topo}/{}+blocked", self.datapath.label()),
        }
    }
}

/// Composable constructor for every [`MemoryEngine`] variant.
///
/// See the [module docs](self) for the axis overview and an example.
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    params: DncParams,
    spec: EngineSpec,
    sorter: SorterKind,
    lanes: usize,
    merge: Option<ReadMerge>,
    seed: u64,
    profiling: bool,
}

impl EngineBuilder {
    /// Starts from the exact centralized configuration: monolithic
    /// topology, one lane, f32 datapath, centralized sorter, seed 0.
    pub fn new(params: DncParams) -> Self {
        Self {
            params,
            spec: EngineSpec::monolithic(),
            sorter: SorterKind::Centralized,
            lanes: 1,
            merge: None,
            seed: 0,
            profiling: false,
        }
    }

    /// Selects the centralized (single-memory) topology.
    pub fn monolithic(mut self) -> Self {
        self.spec.topology = Topology::Monolithic;
        self
    }

    /// Selects the `tiles`-shard DNC-D topology.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is zero or exceeds the memory rows.
    pub fn sharded(mut self, tiles: usize) -> Self {
        assert!(tiles > 0, "need at least one tile");
        assert!(tiles <= self.params.memory_size, "more tiles than memory rows");
        self.spec.topology = Topology::Sharded { tiles };
        self
    }

    /// Sets the number of batch lanes `B`.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn lanes(mut self, batch: usize) -> Self {
        assert!(batch > 0, "need at least one batch lane");
        self.lanes = batch;
        self
    }

    /// Selects the numeric datapath.
    pub fn datapath(mut self, datapath: Datapath) -> Self {
        self.spec.datapath = datapath;
        self
    }

    /// Shorthand for a fixed-point datapath in the given format.
    pub fn quantized(self, format: QFormat) -> Self {
        self.datapath(Datapath::Quantized(format))
    }

    /// Enables usage skimming at rate `K` inside every memory unit.
    pub fn skim(mut self, skim: SkimRate) -> Self {
        self.spec.skim = skim;
        self
    }

    /// Enables the PLA+LUT softmax approximation.
    pub fn approx_softmax(mut self, on: bool) -> Self {
        self.spec.approx_softmax = on;
        self
    }

    /// Selects the kernel execution tier (defaults to
    /// [`Backend::Scalar`], the bit-exact reference).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.spec.backend = backend;
        self
    }

    /// Selects the usage-sorter model (monolithic topology only; DNC-D
    /// shards always sort locally — the sharding *is* the hardware's
    /// distributed sort).
    pub fn sorter(mut self, sorter: SorterKind) -> Self {
        self.sorter = sorter;
        self
    }

    /// Sets the read-merge weights for a sharded engine (defaults to the
    /// uniform merge). Ignored by monolithic topologies.
    pub fn merge(mut self, merge: ReadMerge) -> Self {
        self.merge = Some(merge);
        self
    }

    /// Sets the weight seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Switches wall-clock [`KernelProfile`](crate::KernelProfile)
    /// sampling on for the built engine. Defaults to **off**: an
    /// unprofiled engine's steps never call `Instant::now()`, so the
    /// serving hot path pays nothing for instrumentation it isn't using.
    /// (The legacy direct constructors — [`Dnc::new`], [`DncD::new`] —
    /// keep sampling on, preserving the offline figure-reproduction
    /// workflow.)
    pub fn profiling(mut self, on: bool) -> Self {
        self.profiling = on;
        self
    }

    /// Applies a serialized [`EngineSpec`] (topology, datapath, skim,
    /// approximation), keeping the params, lanes, sorter and seed.
    pub fn with_spec(mut self, spec: EngineSpec) -> Self {
        self.spec = spec;
        self
    }

    /// The builder's current serializable spec.
    pub fn spec(&self) -> EngineSpec {
        self.spec
    }

    /// The model hyper-parameters.
    pub fn params(&self) -> &DncParams {
        &self.params
    }

    /// Fits DNC-D read-merge weights `α` against a monolithic f32
    /// reference with the same weights (least squares over `inputs`; see
    /// [`ReadMerge::calibrate`]). Returns `None` for monolithic
    /// topologies or empty input.
    ///
    /// Calibration always runs on the f32 reference pair — it determines
    /// the merge *weights*, which a quantized engine then rounds through
    /// its own datapath at inference.
    pub fn calibrate_merge(&self, inputs: &[Vec<f32>]) -> Option<ReadMerge> {
        let Topology::Sharded { tiles } = self.spec.topology else {
            return None;
        };
        if inputs.is_empty() {
            return None;
        }
        let mut reference = Dnc::new(self.params, self.seed);
        let mut dncd = DncD::with_features(
            self.params,
            tiles,
            self.seed,
            self.spec.skim,
            self.spec.approx_softmax,
        );
        dncd.calibrate_against(&mut reference, inputs);
        Some(dncd.merge_weights().clone())
    }

    /// Returns a builder whose merge weights are calibrated on `inputs`
    /// (no-op for monolithic topologies or empty input).
    pub fn calibrated(self, inputs: &[Vec<f32>]) -> Self {
        match self.calibrate_merge(inputs) {
            Some(m) => self.merge(m),
            None => self,
        }
    }

    /// Builds the engine.
    ///
    /// Weights are derived from the seed exactly as the legacy
    /// constructors derived them, so a monolithic f32 build is
    /// bit-compatible with [`Dnc::new`] and a sharded build with
    /// [`DncD::new`] (conformance-tested in
    /// `crates/dnc/tests/conformance.rs`).
    ///
    /// # Panics
    ///
    /// Panics if the merge weights' shard count disagrees with the
    /// topology.
    pub fn build(&self) -> BoxedEngine {
        let mut engine: BoxedEngine = match self.spec.topology {
            Topology::Monolithic => {
                let mem_cfg = MemoryConfig::new(
                    self.params.memory_size,
                    self.params.word_size,
                    self.params.read_heads,
                )
                .with_sorter(self.sorter)
                .with_skim(self.spec.skim)
                .with_approx_softmax(self.spec.approx_softmax)
                .with_backend(self.spec.backend);
                let model = Dnc::with_memory_config(self.params, mem_cfg, self.seed);
                Box::new(model.batched_with(self.lanes, self.spec.datapath))
            }
            Topology::Sharded { tiles } => {
                let mut model = DncD::with_features_backend(
                    self.params,
                    tiles,
                    self.seed,
                    self.spec.skim,
                    self.spec.approx_softmax,
                    self.spec.backend,
                );
                if let Some(merge) = &self.merge {
                    model.set_merge(merge.clone());
                }
                Box::new(model.batched_with(self.lanes, self.spec.datapath))
            }
        };
        engine.set_profiling(self.profiling);
        engine
    }

    /// Non-panicking form of [`EngineBuilder::build`] for untrusted
    /// configurations (the `hima-serve` session boundary): validates the
    /// hyper-parameters ([`DncParams::check`]), the spec axes
    /// ([`EngineSpec::check`]) and the lane count, then builds. A spec
    /// that passes validation builds the identical engine
    /// [`EngineBuilder::build`] would.
    ///
    /// Note the builder's own setters still assert — they exist for
    /// in-process construction where a bad axis is a programming bug. To
    /// reach `try_build` with unvalidated numbers, assemble the
    /// [`DncParams`] struct and [`EngineSpec`] literally and apply them
    /// with [`EngineBuilder::with_spec`] / [`EngineBuilder::with_lanes_unchecked`].
    pub fn try_build(&self) -> Result<BoxedEngine, SpecError> {
        self.params.check()?;
        self.spec.check(&self.params)?;
        if self.lanes == 0 {
            return Err(SpecError::ZeroLanes);
        }
        Ok(self.build())
    }

    /// Sets the lane count without asserting, deferring validation to
    /// [`EngineBuilder::try_build`] (which rejects zero). The asserting
    /// [`EngineBuilder::lanes`] remains the right call for trusted
    /// in-process configuration.
    pub fn with_lanes_unchecked(mut self, batch: usize) -> Self {
        self.lanes = batch;
        self
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use hima_tensor::Matrix;

    fn params() -> DncParams {
        DncParams::new(16, 4, 1).with_hidden(16).with_io(4, 4)
    }

    #[test]
    fn spec_round_trips_through_builder() {
        let spec = EngineSpec::sharded(4)
            .with_datapath(Datapath::Quantized(QFormat::q8_8()))
            .with_skim(SkimRate::new(0.2));
        let b = EngineBuilder::new(params()).with_spec(spec);
        assert_eq!(b.spec(), spec);
        assert_eq!(spec.tiles(), 4);
        assert_eq!(spec.label(), "sharded(4)/Q8.8");
        assert_eq!(EngineSpec::default().label(), "monolithic/f32");
    }

    #[test]
    fn builds_every_axis_combination() {
        for spec in [
            EngineSpec::monolithic(),
            EngineSpec::sharded(2),
            EngineSpec::monolithic().with_datapath(Datapath::Quantized(QFormat::q16_16())),
            EngineSpec::sharded(4).with_datapath(Datapath::Quantized(QFormat::q16_16())),
        ] {
            let mut engine =
                EngineBuilder::new(params()).with_spec(spec).lanes(2).seed(3).build();
            let y = engine.step_batch(&Matrix::zeros(2, 4));
            assert_eq!(y.shape(), (2, 4), "{}", spec.label());
            assert_eq!(engine.batch(), 2);
        }
    }

    #[test]
    fn merge_weights_reach_the_sharded_engine() {
        let m = ReadMerge::from_weights(vec![1.0, 0.0]);
        let mut custom =
            EngineBuilder::new(params()).sharded(2).merge(m).seed(5).build();
        let mut uniform = EngineBuilder::new(params()).sharded(2).seed(5).build();
        let x = Matrix::filled(1, 4, 0.5);
        for _ in 0..3 {
            let a = custom.step_batch(&x);
            let b = uniform.step_batch(&x);
            assert_eq!(a.shape(), b.shape());
        }
        assert_ne!(
            custom.last_read_rows().row(0),
            uniform.last_read_rows().row(0),
            "merge policy must change the merged read"
        );
    }

    #[test]
    fn calibrated_builder_recovers_single_shard_identity() {
        // A 1-shard DNC-D is the centralized model; calibration must find
        // alpha ≈ 1 and make the sharded engine track the monolithic one.
        let inputs: Vec<Vec<f32>> =
            (0..24).map(|t| (0..4).map(|i| ((t * 3 + i) as f32 * 0.21).sin()).collect()).collect();
        let sharded = EngineBuilder::new(params()).sharded(1).seed(9);
        let merge = sharded.calibrate_merge(&inputs).expect("sharded + inputs");
        assert!((merge.alphas()[0] - 1.0).abs() < 1e-3, "{:?}", merge.alphas());
        assert!(EngineBuilder::new(params()).seed(9).calibrate_merge(&inputs).is_none());
        assert!(sharded.calibrate_merge(&[]).is_none());
    }

    #[test]
    fn backend_axis_reaches_every_topology() {
        use hima_tensor::Backend;
        assert_eq!(
            EngineSpec::monolithic().with_backend(Backend::Blocked).label(),
            "monolithic/f32+blocked"
        );
        assert_eq!(EngineSpec::monolithic().backend, Backend::Scalar, "scalar is the default");

        // A blocked engine steps and stays close to the scalar reference
        // (bit-level conformance lives in tests/backend_conformance.rs).
        let x = Matrix::from_fn(2, 4, |b, i| ((b * 4 + i) as f32 * 0.31).sin());
        for spec in [EngineSpec::monolithic(), EngineSpec::sharded(2)] {
            let mut scalar =
                EngineBuilder::new(params()).with_spec(spec).lanes(2).seed(5).build();
            let mut blocked = EngineBuilder::new(params())
                .with_spec(spec.with_backend(Backend::Blocked))
                .lanes(2)
                .seed(5)
                .build();
            for t in 0..4 {
                let ys = scalar.step_batch(&x);
                let yb = blocked.step_batch(&x);
                hima_tensor::assert_close(ys.as_slice(), yb.as_slice(), 1e-4);
                assert!(yb.as_slice().iter().all(|v| v.is_finite()), "t={t}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "more tiles than memory rows")]
    fn rejects_oversharding_early() {
        let _ = EngineBuilder::new(params()).sharded(64);
    }

    #[test]
    #[should_panic(expected = "need at least one batch lane")]
    fn rejects_zero_lanes() {
        let _ = EngineBuilder::new(params()).lanes(0);
    }

    /// The non-panicking validation twin: every malformed geometry a
    /// server boundary can receive comes back as the matching typed
    /// [`SpecError`] instead of a panic, and a well-formed spec builds.
    #[test]
    fn try_build_reports_typed_spec_errors() {
        let p = params();

        // Malformed hyper-parameters (fields are public, so a wire
        // decoder can assemble them literally).
        let mut zero_mem = p;
        zero_mem.memory_size = 0;
        assert_eq!(
            EngineBuilder::new(zero_mem).try_build().err().unwrap(),
            SpecError::ZeroDimension("memory_size")
        );

        // Topology errors.
        let mut spec = EngineSpec::sharded(0);
        assert_eq!(spec.check(&p), Err(SpecError::ZeroTiles));
        spec = EngineSpec::sharded(p.memory_size + 1);
        assert_eq!(
            spec.check(&p),
            Err(SpecError::TilesExceedMemoryRows { tiles: p.memory_size + 1, rows: p.memory_size })
        );
        assert_eq!(
            EngineBuilder::new(p).with_spec(spec).try_build().err().unwrap(),
            SpecError::TilesExceedMemoryRows { tiles: p.memory_size + 1, rows: p.memory_size }
        );

        // Datapath errors (QFormat fields are public for wire decoding).
        let bad = QFormat { int_bits: 0, frac_bits: 8 };
        let spec = EngineSpec::monolithic().with_datapath(Datapath::Quantized(bad));
        assert_eq!(
            spec.check(&p),
            Err(SpecError::InvalidQFormat { int_bits: 0, frac_bits: 8 })
        );
        let wide = QFormat { int_bits: 20, frac_bits: 20 };
        assert!(EngineSpec::monolithic()
            .with_datapath(Datapath::Quantized(wide))
            .check(&p)
            .is_err());

        // Lane errors.
        assert_eq!(
            EngineBuilder::new(p).with_lanes_unchecked(0).try_build().err().unwrap(),
            SpecError::ZeroLanes
        );

        // A valid composite spec builds and steps.
        let mut engine = EngineBuilder::new(p)
            .sharded(4)
            .lanes(2)
            .quantized(QFormat::new(16, 16))
            .seed(3)
            .try_build()
            .expect("valid spec");
        assert_eq!(engine.step_batch(&Matrix::zeros(2, 4)).shape(), (2, 4));
    }

    #[test]
    fn spec_errors_render_actionable_messages() {
        assert_eq!(
            SpecError::ZeroDimension("word_size").to_string(),
            "word_size must be positive"
        );
        assert_eq!(
            SpecError::TilesExceedMemoryRows { tiles: 64, rows: 16 }.to_string(),
            "more tiles than memory rows (64 tiles over 16 rows)"
        );
        assert!(SpecError::InvalidQFormat { int_bits: 0, frac_bits: 33 }
            .to_string()
            .contains("Q0.33"));
        assert!(SpecError::InvalidSkimRate(1.5).to_string().contains("1.5"));
    }
}
