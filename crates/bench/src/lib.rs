//! Shared helpers for the experiment binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper and prints the paper's reported values next to the measured ones.
//! See EXPERIMENTS.md at the workspace root for the collected results.

/// Prints a section header in the common format.
pub fn header(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// Formats a ratio as `x.xx×`.
pub fn times(x: f64) -> String {
    format!("{x:.2}x")
}

/// Renders a percentage bar for terminal plots.
pub fn bar(fraction: f64, width: usize) -> String {
    let n = (fraction.clamp(0.0, 1.0) * width as f64).round() as usize;
    "#".repeat(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_clamps() {
        assert_eq!(bar(0.5, 10).len(), 5);
        assert_eq!(bar(2.0, 10).len(), 10);
        assert_eq!(bar(-1.0, 10).len(), 0);
    }

    #[test]
    fn times_formats() {
        assert_eq!(times(1.234), "1.23x");
    }
}
