//! The DNC memory unit: the complete soft-write / soft-read dataflow of
//! Fig. 2, with per-kernel instrumentation.
//!
//! One [`MemoryUnit::step`] consumes an [`InterfaceVector`] and runs, in
//! order: content write weighting → retention → usage (+ sort) → allocation
//! → write merge → memory write → linkage + precedence → forward/backward →
//! content read weighting → read merge → memory read. Every stage is timed
//! into a [`KernelProfile`] so runtime-breakdown figures can be regenerated.

use crate::allocation::{merge_write_weighting_into, SkimRate};
use crate::content::content_weighting_into_with;
use crate::interface::InterfaceVector;
use crate::linkage::{merge_read_weighting_into, TemporalLinkage};
use crate::profile::{KernelId, KernelProfile};
use hima_sort::{CentralizedMergeSorter, SortEngine, TwoStageSorter};
use hima_tensor::softmax::PlaSoftmax;
use hima_tensor::{Backend, Matrix};
use serde::{Deserialize, Serialize};

/// Which usage sorter the memory unit models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SorterKind {
    /// Centralized merge sort (Farm-style baseline).
    Centralized,
    /// HiMA's local-global two-stage sort over `N_t` tiles.
    TwoStage {
        /// Number of processing tiles.
        tiles: usize,
    },
}

/// Memory-unit configuration: geometry plus the approximation features of
/// §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Memory slots `N`.
    pub memory_size: usize,
    /// Word width `W`.
    pub word_size: usize,
    /// Read heads `R`.
    pub read_heads: usize,
    /// Usage sorter model.
    pub sorter: SorterKind,
    /// Usage skimming rate `K`.
    pub skim: SkimRate,
    /// Whether to use the PLA+LUT softmax approximation.
    pub approx_softmax: bool,
    /// Kernel execution tier (scalar reference or blocked SIMD). Defaults
    /// to [`Backend::Scalar`], so configs serialized before this axis
    /// existed deserialize to the bit-exact tier.
    #[serde(default)]
    pub backend: Backend,
}

impl MemoryConfig {
    /// Exact DNC memory unit with a centralized sorter.
    pub fn new(memory_size: usize, word_size: usize, read_heads: usize) -> Self {
        Self {
            memory_size,
            word_size,
            read_heads,
            sorter: SorterKind::Centralized,
            skim: SkimRate::NONE,
            approx_softmax: false,
            backend: Backend::Scalar,
        }
    }

    /// Selects the usage sorter.
    pub fn with_sorter(mut self, sorter: SorterKind) -> Self {
        self.sorter = sorter;
        self
    }

    /// Enables usage skimming at rate `k`.
    pub fn with_skim(mut self, k: SkimRate) -> Self {
        self.skim = k;
        self
    }

    /// Enables the PLA+LUT softmax.
    pub fn with_approx_softmax(mut self, on: bool) -> Self {
        self.approx_softmax = on;
        self
    }

    /// Selects the kernel execution tier.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }
}

/// Read outputs of one memory-unit step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadResult {
    /// One read vector per head (`R × W`).
    pub read_vectors: Vec<Vec<f32>>,
}

impl ReadResult {
    /// Flattens the per-head read vectors into one `R·W` vector, the layout
    /// the controller consumes.
    pub fn flattened(&self) -> Vec<f32> {
        self.read_vectors.iter().flatten().copied().collect()
    }
}

/// Per-step scratch buffers of one memory unit — every transient `N`-sized
/// vector [`MemoryUnit::step_into`] needs, pre-sized at construction and
/// reused across steps so the steady state performs **zero** heap
/// allocations. Each unit owns its scratch (lanes and shards step in
/// parallel on worker threads, so the scratch cannot be shared).
#[derive(Debug, Clone, Default)]
struct StepScratch {
    /// Content write weighting (CW output for the write head).
    content_w: Vec<f32>,
    /// Retention vector `ψ`.
    psi: Vec<f32>,
    /// Sorted free list `φ` (reused argsort index buffer).
    free_list: Vec<usize>,
    /// Allocation weighting `w_a`.
    w_a: Vec<f32>,
    /// Merged write weighting `w_w`.
    w_w: Vec<f32>,
    /// Forward weighting `f` of the current read head.
    fwd: Vec<f32>,
    /// Backward weighting `b` of the current read head.
    bwd: Vec<f32>,
    /// Content read weighting `c` of the current read head.
    content_r: Vec<f32>,
    /// Merged read weighting `w_r` of the current read head.
    w_r: Vec<f32>,
}

impl StepScratch {
    fn sized(n: usize) -> Self {
        Self {
            content_w: vec![0.0; n],
            psi: vec![0.0; n],
            free_list: Vec::with_capacity(n),
            w_a: vec![0.0; n],
            w_w: vec![0.0; n],
            fwd: vec![0.0; n],
            bwd: vec![0.0; n],
            content_r: vec![0.0; n],
            w_r: vec![0.0; n],
        }
    }
}

/// Concrete usage-sorter dispatcher (keeps [`MemoryUnit`] `Clone`/`Debug`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum UsageSorter {
    Centralized(CentralizedMergeSorter),
    TwoStage(TwoStageSorter),
}

impl UsageSorter {
    fn as_engine(&self) -> &dyn SortEngine {
        match self {
            UsageSorter::Centralized(s) => s,
            UsageSorter::TwoStage(s) => s,
        }
    }
}

/// The DNC external memory plus all state memories (usage, precedence,
/// linkage, read/write weightings).
#[derive(Debug, Clone)]
pub struct MemoryUnit {
    config: MemoryConfig,
    memory: Matrix,
    usage: Vec<f32>,
    linkage: TemporalLinkage,
    write_weighting: Vec<f32>,
    read_weightings: Vec<Vec<f32>>,
    sorter: UsageSorter,
    pla: PlaSoftmax,
    profile: KernelProfile,
    /// Per-row L2 norms of `memory`, cached once per step: memory changes
    /// only at the MW stage, so the `R + 1` content lookups share one
    /// norm pass each side of the write instead of recomputing `N · W`
    /// norms per lookup. Invalidated whenever memory mutates.
    row_norms: Vec<f32>,
    norms_valid: bool,
    scratch: StepScratch,
}

impl MemoryUnit {
    /// Creates a zero-initialized memory unit.
    ///
    /// # Panics
    ///
    /// Panics if any geometry parameter is zero or the two-stage sorter has
    /// zero tiles.
    pub fn new(config: MemoryConfig) -> Self {
        assert!(config.memory_size > 0, "memory_size must be positive");
        assert!(config.word_size > 0, "word_size must be positive");
        assert!(config.read_heads > 0, "read_heads must be positive");
        let sorter = match config.sorter {
            SorterKind::Centralized => UsageSorter::Centralized(CentralizedMergeSorter),
            SorterKind::TwoStage { tiles } => {
                UsageSorter::TwoStage(TwoStageSorter::new(tiles, config.memory_size))
            }
        };
        Self {
            config,
            memory: Matrix::zeros(config.memory_size, config.word_size),
            usage: vec![0.0; config.memory_size],
            linkage: TemporalLinkage::new(config.memory_size),
            write_weighting: vec![0.0; config.memory_size],
            read_weightings: vec![vec![0.0; config.memory_size]; config.read_heads],
            sorter,
            pla: PlaSoftmax::default(),
            profile: KernelProfile::new(),
            row_norms: vec![0.0; config.memory_size],
            norms_valid: false,
            scratch: StepScratch::sized(config.memory_size),
        }
    }

    /// The configuration this unit was built with.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// The external memory matrix `M`.
    pub fn memory(&self) -> &Matrix {
        &self.memory
    }

    /// Current usage vector.
    pub fn usage(&self) -> &[f32] {
        &self.usage
    }

    /// Current linkage state.
    pub fn linkage(&self) -> &TemporalLinkage {
        &self.linkage
    }

    /// Last write weighting.
    pub fn write_weighting(&self) -> &[f32] {
        &self.write_weighting
    }

    /// Last read weightings (one per head).
    pub fn read_weightings(&self) -> &[Vec<f32>] {
        &self.read_weightings
    }

    /// Accumulated kernel profile.
    pub fn profile(&self) -> &KernelProfile {
        &self.profile
    }

    /// Switches wall-clock kernel sampling on or off (see
    /// [`KernelProfile::set_enabled`]).
    pub fn set_profiling(&mut self, on: bool) {
        self.profile.set_enabled(on);
    }

    /// Clears the kernel profile.
    pub fn reset_profile(&mut self) {
        self.profile.reset();
    }

    /// Applies `f` to every stored state value — external memory, usage,
    /// linkage, precedence and the carried read/write weightings — in
    /// place. Used by the quantized datapath model to round state to the
    /// hardware number format between time steps.
    pub fn map_state(&mut self, mut f: impl FnMut(f32) -> f32) {
        self.memory.map_inplace(&mut f);
        for u in &mut self.usage {
            *u = f(*u);
        }
        self.linkage.map_state(&mut f);
        for w in &mut self.write_weighting {
            *w = f(*w);
        }
        for head in &mut self.read_weightings {
            for w in head {
                *w = f(*w);
            }
        }
        // Memory contents changed (e.g. datapath rounding): the cached row
        // norms no longer describe them.
        self.norms_valid = false;
    }

    /// Overwrites every persistent state memory from a decoded snapshot
    /// (the [`LaneState`](crate::LaneState) codec's restore path). The
    /// transient machinery — sorter, PLA tables, scratch, kernel profile
    /// and the row-norm cache — is reconstructible from the configuration
    /// and is left alone, except that the norm cache is invalidated
    /// because the memory contents just changed.
    ///
    /// # Panics
    ///
    /// Panics if any buffer disagrees with the configured geometry (the
    /// codec validates shapes before calling this).
    pub(crate) fn restore_state(
        &mut self,
        memory: Matrix,
        usage: Vec<f32>,
        linkage: Matrix,
        precedence: Vec<f32>,
        write_weighting: Vec<f32>,
        read_weightings: Vec<Vec<f32>>,
    ) {
        let n = self.config.memory_size;
        assert_eq!((memory.rows(), memory.cols()), (n, self.config.word_size), "memory shape");
        assert_eq!(usage.len(), n, "usage length");
        assert_eq!(precedence.len(), n, "precedence length");
        assert_eq!(write_weighting.len(), n, "write weighting length");
        assert_eq!(read_weightings.len(), self.config.read_heads, "read head count");
        assert!(read_weightings.iter().all(|w| w.len() == n), "read weighting length");
        self.memory = memory;
        self.usage = usage;
        self.linkage.restore(linkage, precedence);
        self.write_weighting = write_weighting;
        self.read_weightings = read_weightings;
        self.norms_valid = false;
    }

    /// Resets all memory and state (weights/config unchanged) in place —
    /// no buffer is reallocated, so engine reuse across episodes stays
    /// allocation-free.
    pub fn reset(&mut self) {
        self.memory.as_mut_slice().fill(0.0);
        self.usage.fill(0.0);
        self.linkage.clear();
        self.write_weighting.fill(0.0);
        for head in &mut self.read_weightings {
            head.fill(0.0);
        }
        self.norms_valid = false;
    }

    /// Runs one full soft-write + soft-read step.
    ///
    /// Allocating convenience over [`MemoryUnit::step_into`] — the two are
    /// bit-identical; hot loops should pass a reused output buffer to
    /// `step_into` instead.
    ///
    /// # Panics
    ///
    /// Panics if the interface vector's geometry disagrees with the
    /// configuration.
    pub fn step(&mut self, iv: &InterfaceVector) -> ReadResult {
        let (w, r) = (self.config.word_size, self.config.read_heads);
        let mut flat = vec![0.0; w * r];
        self.step_into(iv, &mut flat);
        ReadResult { read_vectors: flat.chunks(w).map(<[f32]>::to_vec).collect() }
    }

    /// Runs one full soft-write + soft-read step, writing the flattened
    /// read vectors (head-major, `R·W` wide — the layout
    /// [`ReadResult::flattened`] produces) into `out`.
    ///
    /// This is the allocation-free steady-state kernel: every transient
    /// lives in the unit's pre-sized step scratch, the usage argsort
    /// reuses its index buffer, and content addressing reads the
    /// once-per-step row-norm cache — after the first step the call
    /// performs **zero** heap allocations.
    ///
    /// # Panics
    ///
    /// Panics if the interface vector's geometry disagrees with the
    /// configuration or `out.len() != R·W`.
    pub fn step_into(&mut self, iv: &InterfaceVector, out: &mut [f32]) {
        assert_eq!(iv.word_size(), self.config.word_size, "interface word size mismatch");
        assert_eq!(iv.read_heads(), self.config.read_heads, "interface read heads mismatch");
        assert_eq!(
            out.len(),
            self.config.read_heads * self.config.word_size,
            "read output length mismatch"
        );

        // --- Soft write -------------------------------------------------
        // CW.(1)+(2): content-based write weighting (norms cached from the
        // previous step's read phase when memory is unchanged).
        let pla_on = self.config.approx_softmax;
        let be = self.config.backend;
        {
            let (memory, pla) = (&self.memory, &self.pla);
            let (norms, valid) = (&mut self.row_norms, &mut self.norms_valid);
            let content_w = &mut self.scratch.content_w;
            self.profile.time(KernelId::Similarity, || {
                if !*valid {
                    be.row_norms_into(memory, norms);
                    *valid = true;
                }
                content_weighting_into_with(
                    memory,
                    &iv.write_key,
                    iv.write_strength,
                    if pla_on { Some(pla) } else { None },
                    norms,
                    content_w,
                    be,
                );
            });
        }

        // HW.(1): retention.
        {
            let (free_gates, read_ws) = (&iv.free_gates, &self.read_weightings);
            let psi = &mut self.scratch.psi;
            self.profile
                .time(KernelId::Retention, || crate::usage::retention_into(free_gates, read_ws, psi));
        }

        // HW.(2): usage update (each slot reads only itself: in place).
        {
            let (usage, write_w, psi) = (&mut self.usage, &self.write_weighting, &self.scratch.psi);
            self.profile
                .time(KernelId::Usage, || crate::usage::update_usage_inplace(usage, write_w, psi));
        }

        // HW.(2b): usage sort (free-list construction, reused buffer).
        {
            let (usage, sorter) = (&self.usage, self.sorter.as_engine());
            let free_list = &mut self.scratch.free_list;
            self.profile.time(KernelId::UsageSort, || sorter.argsort_into(usage, free_list));
        }

        // HW.(3): allocation from the sorted free list.
        {
            let (usage, skim) = (&self.usage, self.config.skim);
            let (free_list, w_a) = (&self.scratch.free_list, &mut self.scratch.w_a);
            self.profile.time(KernelId::Allocation, || {
                crate::allocation::allocation_from_free_list_into(usage, free_list, skim, w_a)
            });
        }

        // WM: write weight merge.
        {
            let (w_a, content_w, w_w) =
                (&self.scratch.w_a, &self.scratch.content_w, &mut self.scratch.w_w);
            self.profile.time(KernelId::WriteMerge, || {
                merge_write_weighting_into(w_a, content_w, iv.write_gate, iv.allocation_gate, w_w)
            });
        }

        // MW: memory write  M ← M ∘ (E − w_w eᵀ) + w_w vᵀ.
        {
            let memory = &mut self.memory;
            let w_w = &self.scratch.w_w;
            let (erase, write) = (&iv.erase, &iv.write);
            let wrote = self.profile.time(KernelId::MemoryWrite, || {
                let mut wrote = false;
                for (i, &w) in w_w.iter().enumerate() {
                    if w == 0.0 {
                        continue;
                    }
                    wrote = true;
                    let row = memory.row_mut(i);
                    for ((m, &e), &v) in row.iter_mut().zip(erase).zip(write) {
                        *m = *m * (1.0 - w * e) + w * v;
                    }
                }
                wrote
            });
            if wrote {
                self.norms_valid = false;
            }
        }

        // HR.(1): linkage (uses the previous precedence).
        {
            let (linkage, w_w) = (&mut self.linkage, &self.scratch.w_w);
            self.profile.time(KernelId::Linkage, || linkage.update_linkage_with(w_w, be));
        }
        // HR.(2): precedence.
        {
            let (linkage, w_w) = (&mut self.linkage, &self.scratch.w_w);
            self.profile.time(KernelId::Precedence, || linkage.update_precedence(w_w));
        }
        self.write_weighting.copy_from_slice(&self.scratch.w_w);

        // --- Soft read ---------------------------------------------------
        let word = self.config.word_size;
        for head in 0..self.config.read_heads {
            // HR.(3): forward/backward through the linkage.
            {
                let (linkage, prev_w) = (&self.linkage, &self.read_weightings[head]);
                let (fwd, bwd) = (&mut self.scratch.fwd, &mut self.scratch.bwd);
                self.profile.time(KernelId::ForwardBackward, || {
                    linkage.forward_into_with(prev_w, fwd, be);
                    linkage.backward_into_with(prev_w, bwd, be);
                });
            }

            // CR.(1)+(2): content-based read weighting — all R heads share
            // the post-write norm pass.
            {
                let (memory, key, beta, pla) =
                    (&self.memory, &iv.read_keys[head], iv.read_strengths[head], &self.pla);
                let (norms, valid) = (&mut self.row_norms, &mut self.norms_valid);
                let content_r = &mut self.scratch.content_r;
                self.profile.time(KernelId::Normalize, || {
                    if !*valid {
                        be.row_norms_into(memory, norms);
                        *valid = true;
                    }
                    content_weighting_into_with(
                        memory,
                        key,
                        beta,
                        if pla_on { Some(pla) } else { None },
                        norms,
                        content_r,
                        be,
                    );
                });
            }

            // RM: read weight merge.
            {
                let (bwd, content_r, fwd) =
                    (&self.scratch.bwd, &self.scratch.content_r, &self.scratch.fwd);
                let w_r = &mut self.scratch.w_r;
                let modes = iv.read_modes[head];
                self.profile.time(KernelId::ReadMerge, || {
                    merge_read_weighting_into(bwd, content_r, fwd, modes, w_r)
                });
            }

            // MR: memory read  v_r = Mᵀ w_r.
            {
                let (memory, w_r) = (&self.memory, &self.scratch.w_r);
                let v_r = &mut out[head * word..(head + 1) * word];
                self.profile.time(KernelId::MemoryRead, || be.matvec_t_into(memory, w_r, v_r));
            }
            self.read_weightings[head].copy_from_slice(&self.scratch.w_r);
        }
    }

    /// Checks all state invariants: usage in `[0,1]`, weightings
    /// sub-normalized, linkage invariants.
    pub fn check_invariants(&self, tol: f32) -> bool {
        let usage_ok = self.usage.iter().all(|&u| u >= -tol && u <= 1.0 + tol);
        let ww_ok = hima_tensor::vector::is_weighting(&self.write_weighting, tol);
        let wr_ok = self
            .read_weightings
            .iter()
            .all(|w| hima_tensor::vector::is_weighting(w, tol));
        usage_ok && ww_ok && wr_ok && self.linkage.check_invariants(tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::KernelCategory;

    fn iface(w: usize, r: usize, f: impl Fn(usize) -> f32) -> InterfaceVector {
        let len = w * r + 3 * w + 5 * r + 3;
        let raw: Vec<f32> = (0..len).map(f).collect();
        InterfaceVector::parse(&raw, w, r)
    }

    fn unit(n: usize, w: usize, r: usize) -> MemoryUnit {
        MemoryUnit::new(MemoryConfig::new(n, w, r))
    }

    #[test]
    fn step_produces_read_vectors() {
        let mut mu = unit(16, 4, 2);
        let iv = iface(4, 2, |i| (i as f32 * 0.31).sin());
        let out = mu.step(&iv);
        assert_eq!(out.read_vectors.len(), 2);
        assert_eq!(out.read_vectors[0].len(), 4);
        assert_eq!(out.flattened().len(), 8);
    }

    #[test]
    fn invariants_hold_over_many_steps() {
        let mut mu = unit(12, 4, 2);
        for t in 0..50 {
            let iv = iface(4, 2, |i| ((t * 31 + i * 17) as f32 * 0.13).sin());
            mu.step(&iv);
            assert!(mu.check_invariants(1e-3), "invariants failed at t={t}");
        }
    }

    /// Interface-vector offsets for `W = 4`, `R = 1`: read key [0,4), read
    /// strength [4,5), write key [5,9), write strength [9,10), erase
    /// [10,14), write vec [14,18), free gate [18,19), alloc gate [19,20),
    /// write gate [20,21), read modes [21,24).
    fn write_iface(key: &[f32; 4]) -> InterfaceVector {
        let mut raw = vec![0.0f32; 24];
        raw[5..9].copy_from_slice(key); // write key
        raw[9] = 30.0; // very strong write strength
        raw[14..18].copy_from_slice(key); // write the key itself as content
        raw[19] = 10.0; // allocation gate ~ 1: write to free slot
        raw[20] = 10.0; // write gate ~ 1
        InterfaceVector::parse(&raw, 4, 1)
    }

    fn read_iface(key: &[f32; 4]) -> InterfaceVector {
        let mut raw = vec![0.0f32; 24];
        raw[0..4].copy_from_slice(key); // read key
        raw[4] = 30.0; // very strong read strength
        raw[20] = -10.0; // write gate ~ 0: pure read
        raw[21] = -10.0; // mode: backward off
        raw[22] = 10.0; // mode: content on
        raw[23] = -10.0; // mode: forward off
        InterfaceVector::parse(&raw, 4, 1)
    }

    #[test]
    fn write_then_read_recovers_content() {
        // Write two orthogonal items, then content-read each back. (A
        // single-item test would be degenerate: the tiny `1 − g_a` leak
        // writes leave every row parallel to the key, and cosine similarity
        // is scale-invariant, so all slots would tie.)
        let key_a = [3.0, -2.0, 1.0, 0.5];
        let key_b = [-0.5, 1.0, 2.0, 3.0]; // orthogonal to key_a
        let mut mu = unit(8, 4, 1);
        mu.step(&write_iface(&key_a));
        mu.step(&write_iface(&key_b));

        let out_a = mu.step(&read_iface(&key_a));
        for (got, want) in out_a.read_vectors[0].iter().zip(&key_a) {
            assert!((got - want).abs() < 0.2, "read A {:?} vs {key_a:?}", out_a.read_vectors[0]);
        }
        let out_b = mu.step(&read_iface(&key_b));
        for (got, want) in out_b.read_vectors[0].iter().zip(&key_b) {
            assert!((got - want).abs() < 0.2, "read B {:?} vs {key_b:?}", out_b.read_vectors[0]);
        }
    }

    #[test]
    fn temporal_read_follows_write_order() {
        // Write A then B; content-read A, then a forward-mode read should
        // retrieve B (the slot written right after A's slot).
        let key_a = [3.0, -2.0, 1.0, 0.5];
        let key_b = [-0.5, 1.0, 2.0, 3.0];
        let mut mu = unit(8, 4, 1);
        mu.step(&write_iface(&key_a));
        mu.step(&write_iface(&key_b));
        mu.step(&read_iface(&key_a));

        // Forward read: modes = (backward, content, forward) -> forward.
        let mut raw = vec![0.0f32; 24];
        raw[20] = -10.0;
        raw[21] = -10.0;
        raw[22] = -10.0;
        raw[23] = 10.0; // forward mode
        let out = mu.step(&InterfaceVector::parse(&raw, 4, 1));
        for (got, want) in out.read_vectors[0].iter().zip(&key_b) {
            assert!((got - want).abs() < 0.25, "forward read {:?} vs {key_b:?}", out.read_vectors[0]);
        }
    }

    #[test]
    fn profile_covers_all_memory_categories() {
        let mut mu = unit(16, 4, 2);
        let iv = iface(4, 2, |i| (i as f32 * 0.7).cos());
        mu.step(&iv);
        let p = mu.profile();
        assert!(p.calls(KernelId::Similarity) > 0);
        assert!(p.calls(KernelId::Allocation) > 0);
        assert!(p.calls(KernelId::Linkage) > 0);
        assert!(p.calls(KernelId::MemoryRead) > 0);
        for cat in [
            KernelCategory::ContentWeighting,
            KernelCategory::HistoryWriteWeighting,
            KernelCategory::HistoryReadWeighting,
            KernelCategory::MemoryAccess,
        ] {
            assert!(p.category_nanos(cat) > 0, "{cat:?} missing from profile");
        }
    }

    #[test]
    fn two_stage_sorter_gives_same_results_as_centralized() {
        let mk = |sorter| {
            let mut mu = MemoryUnit::new(MemoryConfig::new(16, 4, 1).with_sorter(sorter));
            let mut outs = Vec::new();
            for t in 0..10 {
                let iv = iface(4, 1, |i| ((t * 7 + i * 3) as f32 * 0.29).sin());
                outs.push(mu.step(&iv).flattened());
            }
            outs
        };
        let a = mk(SorterKind::Centralized);
        let b = mk(SorterKind::TwoStage { tiles: 4 });
        for (x, y) in a.iter().zip(&b) {
            hima_tensor::assert_close(x, y, 1e-5);
        }
    }

    #[test]
    fn skimming_changes_results_only_slightly() {
        let run = |skim| {
            let mut mu = MemoryUnit::new(MemoryConfig::new(32, 4, 1).with_skim(skim));
            let mut last = Vec::new();
            for t in 0..20 {
                let iv = iface(4, 1, |i| ((t * 11 + i * 5) as f32 * 0.17).sin());
                last = mu.step(&iv).flattened();
            }
            last
        };
        let exact = run(SkimRate::NONE);
        let skimmed = run(SkimRate::new(0.2));
        let err: f32 = exact
            .iter()
            .zip(&skimmed)
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / exact.len() as f32;
        assert!(err < 0.3, "20% skim should only mildly perturb reads, err={err}");
    }

    #[test]
    fn reset_restores_blank_state() {
        let mut mu = unit(8, 4, 1);
        let iv = iface(4, 1, |i| i as f32 * 0.2);
        mu.step(&iv);
        assert!(mu.memory().max_abs() > 0.0);
        mu.reset();
        assert_eq!(mu.memory().max_abs(), 0.0);
        assert!(mu.usage().iter().all(|&u| u == 0.0));
    }

    #[test]
    #[should_panic(expected = "interface word size mismatch")]
    fn rejects_mismatched_interface() {
        let mut mu = unit(8, 4, 1);
        let iv = iface(6, 1, |_| 0.0);
        mu.step(&iv);
    }

    #[test]
    fn step_into_is_bit_identical_to_step_across_features() {
        // The scratch-reusing kernel and the allocating wrapper must agree
        // bit-for-bit across every approximation feature, including the
        // norm cache surviving (and being invalidated) across steps.
        let configs = [
            MemoryConfig::new(16, 4, 2),
            MemoryConfig::new(16, 4, 2).with_skim(SkimRate::new(0.25)),
            MemoryConfig::new(16, 4, 2).with_approx_softmax(true),
            MemoryConfig::new(16, 4, 2).with_sorter(SorterKind::TwoStage { tiles: 4 }),
        ];
        for cfg in configs {
            let mut a = MemoryUnit::new(cfg);
            let mut b = MemoryUnit::new(cfg);
            let mut flat = vec![0.0; 2 * 4];
            for t in 0..12 {
                let iv = iface(4, 2, |i| ((t * 31 + i * 17) as f32 * 0.13).sin());
                let want = a.step(&iv).flattened();
                b.step_into(&iv, &mut flat);
                assert_eq!(flat, want, "t={t} cfg={cfg:?}");
                assert_eq!(a.memory(), b.memory(), "t={t} cfg={cfg:?}");
                assert_eq!(a.usage(), b.usage());
                assert_eq!(a.read_weightings(), b.read_weightings());
            }
        }
    }

    #[test]
    fn row_norm_cache_tracks_memory_mutations() {
        // After a step the cache holds the post-write norms; map_state
        // (datapath rounding) and reset must invalidate it so the next
        // content lookup sees fresh values.
        let mut mu = unit(8, 4, 1);
        let write = write_iface(&[3.0, -2.0, 1.0, 0.5]);
        mu.step(&write);
        let direct = mu.memory().row_norms();
        assert_eq!(mu.row_norms, direct, "cache equals a fresh norm pass");
        assert!(mu.norms_valid);

        mu.map_state(|x| x * 0.5);
        assert!(!mu.norms_valid, "map_state must invalidate the cache");
        mu.reset();
        assert!(!mu.norms_valid, "reset must invalidate the cache");
        // Any step's read phase leaves a valid post-write cache behind.
        mu.step(&read_iface(&[1.0, 0.0, 0.0, 0.0]));
        assert!(mu.norms_valid);
        assert_eq!(mu.row_norms, mu.memory().row_norms());
    }

    #[test]
    fn in_place_reset_is_a_fresh_unit() {
        let cfg = MemoryConfig::new(12, 4, 2).with_skim(SkimRate::new(0.2));
        let mut used = MemoryUnit::new(cfg);
        for t in 0..5 {
            used.step(&iface(4, 2, |i| ((t * 7 + i) as f32 * 0.19).sin()));
        }
        used.reset();
        let mut fresh = MemoryUnit::new(cfg);
        let iv = iface(4, 2, |i| (i as f32 * 0.3).cos());
        assert_eq!(used.step(&iv), fresh.step(&iv));
    }
}
