//! Property-based tests for NoC routing and simulation.

use hima_noc::routing::{Mode, RoutingTable};
use hima_noc::sim::NocSim;
use hima_noc::topology::{NodeId, Topology, TopologyGraph};
use hima_noc::traffic::{Message, TrafficPattern};
use proptest::prelude::*;

fn topo_strategy() -> impl Strategy<Value = Topology> {
    prop::sample::select(Topology::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn full_mode_paths_are_shortest(topo in topo_strategy(), n in 1usize..20) {
        let g = TopologyGraph::build(topo, n);
        let table = RoutingTable::build(&g, Mode::Full);
        // Cross-check path length against independent BFS distances.
        let dist = g.distances_from(g.ct(), |_| true);
        for &pt in g.pts() {
            let hops = table.hops(g.ct(), pt).expect("connected");
            prop_assert_eq!(hops, dist[pt.0]);
        }
    }

    #[test]
    fn paths_are_simple(topo in topo_strategy(), n in 2usize..20, i in 0usize..20, j in 0usize..20) {
        let g = TopologyGraph::build(topo, n);
        let table = RoutingTable::build(&g, Mode::Full);
        let a = g.pts()[i % n];
        let b = g.pts()[j % n];
        let path = table.path(a, b).expect("connected in full mode");
        let mut seen = std::collections::BTreeSet::new();
        for node in &path {
            prop_assert!(seen.insert(node.0), "path revisits node {}", node.0);
        }
    }

    #[test]
    fn completion_bounded_below_by_ideal(topo in topo_strategy(), n in 1usize..16, flits in 1u64..32) {
        let sim = NocSim::new(TopologyGraph::build(topo, n));
        let rep = sim.run_pattern(TrafficPattern::Broadcast, flits);
        // Completion can never beat one message's serialization latency.
        prop_assert!(rep.completion_cycles > flits);
        // And never beats injecting all messages at the CT.
        prop_assert!(rep.completion_cycles >= flits * n as u64);
    }

    #[test]
    fn more_messages_never_finish_sooner(n in 2usize..12, flits in 1u64..16) {
        let sim = NocSim::new(TopologyGraph::build(Topology::Hima, n));
        let g = sim.graph();
        let all: Vec<Message> = g.pts().iter().map(|&pt| Message::new(g.ct(), pt, flits)).collect();
        let some = &all[..all.len() / 2];
        let full = sim.run(Mode::Full, &all);
        let half = sim.run(Mode::Full, some);
        prop_assert!(full.completion_cycles >= half.completion_cycles);
    }

    #[test]
    fn flit_hops_accounting_consistent(topo in topo_strategy(), n in 1usize..12, flits in 1u64..8) {
        let sim = NocSim::new(TopologyGraph::build(topo, n));
        let msgs = TrafficPattern::Collect.messages(sim.graph(), flits);
        let rep = sim.run(Mode::Full, &msgs);
        prop_assert_eq!(rep.total_flit_hops, rep.total_hops * flits);
        prop_assert_eq!(rep.messages, msgs.len());
    }

    #[test]
    fn hima_worst_hops_beat_mesh(n in 2usize..40) {
        let hima = TopologyGraph::build(Topology::Hima, n).worst_case_hops();
        let mesh = TopologyGraph::build(Topology::Mesh, n).worst_case_hops();
        prop_assert!(hima <= mesh, "hima {} > mesh {}", hima, mesh);
    }

    #[test]
    fn transpose_pattern_routable_in_diagonal_mode(n in 1usize..30) {
        let g = TopologyGraph::build(Topology::Hima, n);
        let sim = NocSim::new(g);
        // Must not panic: transpose partners always share diagonal parity.
        let rep = sim.run_pattern(TrafficPattern::Transpose, 4);
        let _ = rep.completion_cycles;
    }

    #[test]
    fn node_ids_in_paths_are_valid(topo in topo_strategy(), n in 1usize..16) {
        let g = TopologyGraph::build(topo, n);
        let table = RoutingTable::build(&g, Mode::Full);
        for &pt in g.pts() {
            for node in table.path(NodeId(g.ct().0), pt).unwrap() {
                prop_assert!(node.0 < g.node_count());
            }
        }
    }
}
