//! Length-prefixed binary wire protocol of the session server.
//!
//! A frame is a little-endian `u32` payload length followed by the
//! payload; the payload is a tag byte followed by the variant's fields in
//! a fixed order. The codec is hand-rolled (the vendored `serde` is a
//! no-op stand-in, so derived serialization cannot cross a socket) and
//! deliberately boring: fixed-width integers little-endian, `f32` as its
//! IEEE-754 bit pattern, vectors as a `u32` count plus elements, strings
//! as UTF-8 bytes. Every decoder is total — malformed bytes come back as
//! a [`WireError`], never a panic.

use hima_dnc::allocation::SkimRate;
use hima_dnc::{Datapath, DncParams, EngineSpec, SpecError, Topology};
use hima_telemetry::{HistogramSnapshot, MetricsSnapshot, TraceEvent, TraceKind};
use hima_tensor::{Backend, QFormat};
use std::io::{Read, Write};

/// Upper bound on a frame payload (64 MiB): a malicious or corrupt length
/// prefix must not drive an allocation.
pub const MAX_FRAME: u32 = 64 << 20;

/// Decoding error: the payload did not parse as a protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the field being read.
    Truncated,
    /// An unknown tag byte for the expected enum.
    BadTag(u8),
    /// A length field exceeded [`MAX_FRAME`] or the remaining payload.
    BadLength(u32),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// Decoding finished with unread bytes left over.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::BadLength(n) => write!(f, "length field {n} out of bounds"),
            WireError::BadUtf8 => write!(f, "string field is not UTF-8"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

/// Sequential reader over a received payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a payload for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool encoded as a `0`/`1` byte.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f32` from its bit pattern.
    pub fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads a `u32`-counted `f32` vector.
    pub fn vec_f32(&mut self) -> Result<Vec<f32>, WireError> {
        let n = self.u32()?;
        // Bound by division, never `n * 4`: on a 32-bit target the
        // multiplication can wrap for counts near `u32::MAX` and admit a
        // length the payload cannot actually satisfy.
        if n > MAX_FRAME / 4 || n as usize > self.remaining() / 4 {
            return Err(WireError::BadLength(n));
        }
        (0..n).map(|_| self.f32()).collect()
    }

    /// Reads a `u32`-counted UTF-8 string.
    pub fn string(&mut self) -> Result<String, WireError> {
        let n = self.u32()?;
        if n as usize > self.remaining() {
            return Err(WireError::BadLength(n));
        }
        String::from_utf8(self.take(n as usize)?.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// Asserts the payload is fully consumed.
    pub fn finish(self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::TrailingBytes(n)),
        }
    }
}

/// Append-only payload writer (helpers over a byte vector).
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Starts an empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as a `0`/`1` byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` as its bit pattern.
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// Appends a `u32`-counted `f32` vector.
    pub fn vec_f32(&mut self, v: &[f32]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.f32(x);
        }
    }

    /// Appends a `u32`-counted UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame; `Ok(None)` on a clean EOF at a frame
/// boundary (the peer hung up).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// A client-supplied engine configuration in raw numbers, exactly as
/// decoded from the wire — **unvalidated**. [`RawSessionSpec::validate`]
/// turns it into the panic-free typed configuration (or a typed
/// [`SpecError`]); the server never feeds raw numbers to the asserting
/// constructors.
#[derive(Debug, Clone, PartialEq)]
pub struct RawSessionSpec {
    /// Memory rows `N`.
    pub memory_size: u32,
    /// Word width `W`.
    pub word_size: u32,
    /// Read heads `R`.
    pub read_heads: u32,
    /// Controller hidden width.
    pub hidden_size: u32,
    /// Model input width.
    pub input_size: u32,
    /// Model output width.
    pub output_size: u32,
    /// `false` = monolithic topology; `true` = `tiles`-shard DNC-D.
    pub sharded: bool,
    /// Shard count (meaningful when `sharded`).
    pub tiles: u32,
    /// `false` = f32 datapath; `true` = fixed-point `Q int.frac`.
    pub quantized: bool,
    /// Integer bits of the fixed-point format (sign included).
    pub int_bits: u32,
    /// Fractional bits of the fixed-point format.
    pub frac_bits: u32,
    /// Usage-skimming rate `K ∈ [0, 1)`.
    pub skim: f32,
    /// Whether the PLA+LUT softmax approximation is enabled.
    pub approx_softmax: bool,
    /// `false` = scalar kernel tier; `true` = blocked + vectorized tier.
    pub blocked: bool,
    /// Weight seed; sessions with equal specs and seeds share an engine.
    pub seed: u64,
}

/// A validated session configuration: what an engine group is keyed by.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Model hyper-parameters.
    pub params: DncParams,
    /// Engine axes (topology × datapath × skim × softmax × backend).
    pub spec: EngineSpec,
    /// Weight seed.
    pub seed: u64,
}

impl SessionSpec {
    /// Canonical byte key of this configuration — equal keys ⇔ sessions
    /// may share one lane grid (weights are a function of the seed alone,
    /// so lane slots of one group are interchangeable).
    pub fn group_key(&self) -> Vec<u8> {
        let mut w = Writer::new();
        RawSessionSpec::from_parts(&self.params, &self.spec, self.seed).encode(&mut w);
        w.into_bytes()
    }
}

impl RawSessionSpec {
    /// A small default geometry, handy for CLI demos and smoke tests.
    pub fn demo() -> Self {
        let params = DncParams::new(32, 8, 2).with_hidden(32).with_io(6, 6);
        Self::from_parts(&params, &EngineSpec::monolithic(), 7)
    }

    /// Encodes a *typed* (already-valid) configuration in canonical form.
    pub fn from_parts(params: &DncParams, spec: &EngineSpec, seed: u64) -> Self {
        let (sharded, tiles) = match spec.topology {
            Topology::Monolithic => (false, 0),
            Topology::Sharded { tiles } => (true, tiles as u32),
        };
        let (quantized, int_bits, frac_bits) = match spec.datapath {
            Datapath::F32 => (false, 0, 0),
            Datapath::Quantized(q) => (true, q.int_bits, q.frac_bits),
        };
        Self {
            memory_size: params.memory_size as u32,
            word_size: params.word_size as u32,
            read_heads: params.read_heads as u32,
            hidden_size: params.hidden_size as u32,
            input_size: params.input_size as u32,
            output_size: params.output_size as u32,
            sharded,
            tiles,
            quantized,
            int_bits,
            frac_bits,
            skim: spec.skim.fraction(),
            approx_softmax: spec.approx_softmax,
            blocked: spec.backend == Backend::Blocked,
            seed,
        }
    }

    /// Validates the raw numbers into a typed configuration, reporting
    /// the first violated invariant as the [`SpecError`] the asserting
    /// constructors would have panicked with.
    pub fn validate(&self) -> Result<SessionSpec, SpecError> {
        let params = DncParams {
            memory_size: self.memory_size as usize,
            word_size: self.word_size as usize,
            read_heads: self.read_heads as usize,
            hidden_size: self.hidden_size as usize,
            input_size: self.input_size as usize,
            output_size: self.output_size as usize,
        };
        params.check()?;
        let mut spec = EngineSpec::monolithic();
        if self.sharded {
            spec.topology = Topology::Sharded { tiles: self.tiles as usize };
        }
        if self.quantized {
            let q = QFormat::checked(self.int_bits, self.frac_bits).ok_or(
                SpecError::InvalidQFormat { int_bits: self.int_bits, frac_bits: self.frac_bits },
            )?;
            spec.datapath = Datapath::Quantized(q);
        }
        spec.skim = SkimRate::checked(self.skim).ok_or(SpecError::InvalidSkimRate(self.skim))?;
        spec.approx_softmax = self.approx_softmax;
        spec.backend = if self.blocked { Backend::Blocked } else { Backend::Scalar };
        spec.check(&params)?;
        Ok(SessionSpec { params, spec, seed: self.seed })
    }

    /// Canonical field-order encoding — also the byte layout of
    /// [`SessionSpec::group_key`], which the session store persists to
    /// route stored sessions back to their engine group on restart.
    pub(crate) fn encode(&self, w: &mut Writer) {
        w.u32(self.memory_size);
        w.u32(self.word_size);
        w.u32(self.read_heads);
        w.u32(self.hidden_size);
        w.u32(self.input_size);
        w.u32(self.output_size);
        w.bool(self.sharded);
        w.u32(self.tiles);
        w.bool(self.quantized);
        w.u32(self.int_bits);
        w.u32(self.frac_bits);
        w.f32(self.skim);
        w.bool(self.approx_softmax);
        w.bool(self.blocked);
        w.u64(self.seed);
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            memory_size: r.u32()?,
            word_size: r.u32()?,
            read_heads: r.u32()?,
            hidden_size: r.u32()?,
            input_size: r.u32()?,
            output_size: r.u32()?,
            sharded: r.bool()?,
            tiles: r.u32()?,
            quantized: r.bool()?,
            int_bits: r.u32()?,
            frac_bits: r.u32()?,
            skim: r.f32()?,
            approx_softmax: r.bool()?,
            blocked: r.bool()?,
            seed: r.u64()?,
        })
    }
}

/// A client → server command.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Creates a session from a client-supplied configuration; replies
    /// [`Response::Opened`] with the session id.
    Open {
        /// The requested engine configuration (validated server-side).
        spec: RawSessionSpec,
    },
    /// Advances one session by one step; replies [`Response::Stepped`]
    /// with a single output row.
    Step {
        /// Target session id.
        session: u64,
        /// One `input_size`-wide input row.
        input: Vec<f32>,
        /// Per-request deadline in milliseconds; 0 uses the server's
        /// configured default. Queued work still unserved when the
        /// deadline passes is shed with
        /// [`ServeError::DeadlineExceeded`].
        deadline_ms: u32,
    },
    /// Advances one session by `inputs.len()` steps; the steps are queued
    /// on the session's lane and interleave tick-by-tick with co-tenant
    /// sessions; one [`Response::Stepped`] carries all output rows.
    StepStream {
        /// Target session id.
        session: u64,
        /// The input rows, in step order.
        inputs: Vec<Vec<f32>>,
        /// Per-request deadline in milliseconds for the whole stream;
        /// 0 uses the server default.
        deadline_ms: u32,
    },
    /// Queries the session's current read-vector row (what its next step
    /// feeds the controller); replies [`Response::Rows`].
    ReadRows {
        /// Target session id.
        session: u64,
    },
    /// Resets the session to blank state (same weights); replies
    /// [`Response::Done`].
    Reset {
        /// Target session id.
        session: u64,
    },
    /// Closes the session and frees its lane; replies
    /// [`Response::Done`].
    Close {
        /// Target session id.
        session: u64,
    },
    /// Asks the server process to shut down cleanly (drain and exit);
    /// replies [`Response::ShuttingDown`].
    Shutdown,
    /// Fetches a point-in-time snapshot of every registered server
    /// metric; replies [`Response::Metrics`].
    Metrics,
    /// Fetches the retained session-lifecycle trace events, oldest first;
    /// replies [`Response::Trace`].
    TraceDump,
}

impl Request {
    /// Encodes the request as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Request::Open { spec } => {
                w.u8(1);
                spec.encode(&mut w);
            }
            Request::Step { session, input, deadline_ms } => {
                w.u8(2);
                w.u64(*session);
                w.u32(*deadline_ms);
                w.vec_f32(input);
            }
            Request::StepStream { session, inputs, deadline_ms } => {
                w.u8(3);
                w.u64(*session);
                w.u32(*deadline_ms);
                w.u32(inputs.len() as u32);
                for row in inputs {
                    w.vec_f32(row);
                }
            }
            Request::ReadRows { session } => {
                w.u8(4);
                w.u64(*session);
            }
            Request::Reset { session } => {
                w.u8(5);
                w.u64(*session);
            }
            Request::Close { session } => {
                w.u8(6);
                w.u64(*session);
            }
            Request::Shutdown => w.u8(7),
            Request::Metrics => w.u8(8),
            Request::TraceDump => w.u8(9),
        }
        w.into_bytes()
    }

    /// Decodes a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let req = match r.u8()? {
            1 => Request::Open { spec: RawSessionSpec::decode(&mut r)? },
            2 => Request::Step {
                session: r.u64()?,
                deadline_ms: r.u32()?,
                input: r.vec_f32()?,
            },
            3 => {
                let session = r.u64()?;
                let deadline_ms = r.u32()?;
                let n = r.u32()?;
                if n > MAX_FRAME / 4 {
                    return Err(WireError::BadLength(n));
                }
                let inputs =
                    (0..n).map(|_| r.vec_f32()).collect::<Result<Vec<_>, WireError>>()?;
                Request::StepStream { session, inputs, deadline_ms }
            }
            4 => Request::ReadRows { session: r.u64()? },
            5 => Request::Reset { session: r.u64()? },
            6 => Request::Close { session: r.u64()? },
            7 => Request::Shutdown,
            8 => Request::Metrics,
            9 => Request::TraceDump,
            t => return Err(WireError::BadTag(t)),
        };
        r.finish()?;
        Ok(req)
    }
}

/// A structured server-side failure, carried inside
/// [`Response::Error`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The `Open` spec failed validation; the message is the
    /// [`SpecError`] rendering.
    BadSpec(String),
    /// No session with this id (never existed, closed, or idle-reaped).
    UnknownSession(u64),
    /// The session already has a command in flight on another connection.
    SessionBusy(u64),
    /// A step input had the wrong width.
    BadInput(String),
    /// The peer sent bytes that did not parse as a request.
    Protocol(String),
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// The session store failed (I/O, corruption, or a stored state that
    /// no longer matches its configuration).
    Store(String),
    /// The request was shed by admission control: a per-session or
    /// global queue budget was full. Retry after the hinted delay.
    Overloaded {
        /// Server's estimate of when queue capacity frees up.
        retry_after_ms: u64,
    },
    /// Queued work was shed because its deadline passed before the
    /// scheduler could serve it.
    DeadlineExceeded {
        /// The session whose queued steps were shed.
        session: u64,
    },
    /// The session's scheduler group panicked and the session could not
    /// be resurrected from the store (`0` when no specific session).
    GroupFailed(u64),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadSpec(m) => write!(f, "invalid session spec: {m}"),
            ServeError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServeError::SessionBusy(id) => write!(f, "session {id} has a command in flight"),
            ServeError::BadInput(m) => write!(f, "bad step input: {m}"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Store(m) => write!(f, "session store error: {m}"),
            ServeError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded; retry after {retry_after_ms}ms")
            }
            ServeError::DeadlineExceeded { session } => {
                write!(f, "deadline exceeded for queued work on session {session}")
            }
            ServeError::GroupFailed(id) => {
                write!(f, "scheduler group failed; session {id} could not be recovered")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl ServeError {
    /// Stable wire subtag, 1-based — also the index (minus one) into the
    /// per-kind error counters in `ServeMetrics`.
    pub fn subtag(&self) -> u8 {
        match self {
            ServeError::BadSpec(_) => 1,
            ServeError::UnknownSession(_) => 2,
            ServeError::SessionBusy(_) => 3,
            ServeError::BadInput(_) => 4,
            ServeError::Protocol(_) => 5,
            ServeError::ShuttingDown => 6,
            ServeError::Store(_) => 7,
            ServeError::Overloaded { .. } => 8,
            ServeError::DeadlineExceeded { .. } => 9,
            ServeError::GroupFailed(_) => 10,
        }
    }

    /// Number of distinct error kinds (sizes per-kind counter arrays).
    pub const KINDS: usize = 10;
}

impl Request {
    /// Whether the command is safe to resend after an ambiguous
    /// connection failure. Steps are excluded: a lost reply leaves the
    /// client unsure whether the step was applied.
    pub fn is_idempotent(&self) -> bool {
        matches!(
            self,
            Request::Open { .. }
                | Request::ReadRows { .. }
                | Request::Metrics
                | Request::TraceDump
        )
    }
}

/// A server → client reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Session created.
    Opened {
        /// The new session's id.
        session: u64,
    },
    /// Step(s) complete: one `output_size`-wide row per requested step.
    Stepped {
        /// Output rows, in step order.
        outputs: Vec<Vec<f32>>,
    },
    /// Reply to [`Request::ReadRows`].
    Rows {
        /// The session's current `R·W` read-vector row.
        read: Vec<f32>,
    },
    /// Command acknowledged (reset / close).
    Done,
    /// The command failed.
    Error(ServeError),
    /// Reply to [`Request::Shutdown`].
    ShuttingDown,
    /// Reply to [`Request::Metrics`]: every registered metric's current
    /// value.
    Metrics {
        /// The server-wide snapshot.
        snapshot: MetricsSnapshot,
    },
    /// Reply to [`Request::TraceDump`]: the retained lifecycle events,
    /// oldest first.
    Trace {
        /// Retained events with strictly increasing sequence numbers.
        events: Vec<TraceEvent>,
    },
}

impl Response {
    /// Encodes the response as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Response::Opened { session } => {
                w.u8(1);
                w.u64(*session);
            }
            Response::Stepped { outputs } => {
                w.u8(2);
                w.u32(outputs.len() as u32);
                for row in outputs {
                    w.vec_f32(row);
                }
            }
            Response::Rows { read } => {
                w.u8(3);
                w.vec_f32(read);
            }
            Response::Done => w.u8(4),
            Response::Error(e) => {
                w.u8(5);
                match e {
                    ServeError::BadSpec(m) => {
                        w.u8(1);
                        w.string(m);
                    }
                    ServeError::UnknownSession(id) => {
                        w.u8(2);
                        w.u64(*id);
                    }
                    ServeError::SessionBusy(id) => {
                        w.u8(3);
                        w.u64(*id);
                    }
                    ServeError::BadInput(m) => {
                        w.u8(4);
                        w.string(m);
                    }
                    ServeError::Protocol(m) => {
                        w.u8(5);
                        w.string(m);
                    }
                    ServeError::ShuttingDown => w.u8(6),
                    ServeError::Store(m) => {
                        w.u8(7);
                        w.string(m);
                    }
                    ServeError::Overloaded { retry_after_ms } => {
                        w.u8(8);
                        w.u64(*retry_after_ms);
                    }
                    ServeError::DeadlineExceeded { session } => {
                        w.u8(9);
                        w.u64(*session);
                    }
                    ServeError::GroupFailed(id) => {
                        w.u8(10);
                        w.u64(*id);
                    }
                }
            }
            Response::ShuttingDown => w.u8(6),
            Response::Metrics { snapshot } => {
                w.u8(7);
                encode_metrics_snapshot(snapshot, &mut w);
            }
            Response::Trace { events } => {
                w.u8(8);
                w.u32(events.len() as u32);
                for ev in events {
                    w.u64(ev.seq);
                    w.u64(ev.at_us);
                    w.u8(ev.kind.code());
                    w.u64(ev.session);
                    w.u64(ev.detail);
                }
            }
        }
        w.into_bytes()
    }

    /// Decodes a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let resp = match r.u8()? {
            1 => Response::Opened { session: r.u64()? },
            2 => {
                let n = r.u32()?;
                if n > MAX_FRAME / 4 {
                    return Err(WireError::BadLength(n));
                }
                let outputs =
                    (0..n).map(|_| r.vec_f32()).collect::<Result<Vec<_>, WireError>>()?;
                Response::Stepped { outputs }
            }
            3 => Response::Rows { read: r.vec_f32()? },
            4 => Response::Done,
            5 => Response::Error(match r.u8()? {
                1 => ServeError::BadSpec(r.string()?),
                2 => ServeError::UnknownSession(r.u64()?),
                3 => ServeError::SessionBusy(r.u64()?),
                4 => ServeError::BadInput(r.string()?),
                5 => ServeError::Protocol(r.string()?),
                6 => ServeError::ShuttingDown,
                7 => ServeError::Store(r.string()?),
                8 => ServeError::Overloaded { retry_after_ms: r.u64()? },
                9 => ServeError::DeadlineExceeded { session: r.u64()? },
                10 => ServeError::GroupFailed(r.u64()?),
                t => return Err(WireError::BadTag(t)),
            }),
            6 => Response::ShuttingDown,
            7 => Response::Metrics { snapshot: decode_metrics_snapshot(&mut r)? },
            8 => {
                let n = r.u32()?;
                // Each event is a fixed 33 bytes; an honest count fits
                // the remaining payload.
                if n as usize > r.remaining() / 33 {
                    return Err(WireError::BadLength(n));
                }
                let events = (0..n)
                    .map(|_| {
                        Ok(TraceEvent {
                            seq: r.u64()?,
                            at_us: r.u64()?,
                            kind: {
                                let code = r.u8()?;
                                TraceKind::from_code(code).ok_or(WireError::BadTag(code))?
                            },
                            session: r.u64()?,
                            detail: r.u64()?,
                        })
                    })
                    .collect::<Result<Vec<_>, WireError>>()?;
                Response::Trace { events }
            }
            t => return Err(WireError::BadTag(t)),
        };
        r.finish()?;
        Ok(resp)
    }
}

/// Appends a [`MetricsSnapshot`] in canonical wire form: three
/// `u32`-counted sections (counters, gauges, histograms), entries as a
/// string name followed by the fixed-order values. Gauges carry their
/// `i64` as a two's-complement bit pattern.
fn encode_metrics_snapshot(snapshot: &MetricsSnapshot, w: &mut Writer) {
    w.u32(snapshot.counters.len() as u32);
    for (name, v) in &snapshot.counters {
        w.string(name);
        w.u64(*v);
    }
    w.u32(snapshot.gauges.len() as u32);
    for (name, v) in &snapshot.gauges {
        w.string(name);
        w.u64(*v as u64);
    }
    w.u32(snapshot.histograms.len() as u32);
    for (name, h) in &snapshot.histograms {
        w.string(name);
        w.u64(h.count);
        w.u64(h.sum);
        w.u32(h.buckets.len() as u32);
        for &b in &h.buckets {
            w.u64(b);
        }
    }
}

/// Total decoder for [`encode_metrics_snapshot`]'s format. Every count
/// field is bounds-checked against the smallest possible entry size
/// before any allocation.
fn decode_metrics_snapshot(r: &mut Reader<'_>) -> Result<MetricsSnapshot, WireError> {
    let n = r.u32()?;
    if n as usize > r.remaining() / 12 {
        return Err(WireError::BadLength(n));
    }
    let counters = (0..n)
        .map(|_| Ok((r.string()?, r.u64()?)))
        .collect::<Result<Vec<_>, WireError>>()?;
    let n = r.u32()?;
    if n as usize > r.remaining() / 12 {
        return Err(WireError::BadLength(n));
    }
    let gauges = (0..n)
        .map(|_| Ok((r.string()?, r.u64()? as i64)))
        .collect::<Result<Vec<_>, WireError>>()?;
    let n = r.u32()?;
    if n as usize > r.remaining() / 24 {
        return Err(WireError::BadLength(n));
    }
    let histograms = (0..n)
        .map(|_| {
            let name = r.string()?;
            let count = r.u64()?;
            let sum = r.u64()?;
            let nb = r.u32()?;
            if nb as usize > r.remaining() / 8 {
                return Err(WireError::BadLength(nb));
            }
            let buckets = (0..nb).map(|_| r.u64()).collect::<Result<Vec<_>, WireError>>()?;
            Ok((name, HistogramSnapshot { count, sum, buckets }))
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    Ok(MetricsSnapshot { counters, gauges, histograms })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Open { spec: RawSessionSpec::demo() },
            Request::Step {
                session: 9,
                input: vec![0.5, -1.5, f32::MIN_POSITIVE],
                deadline_ms: 0,
            },
            Request::StepStream {
                session: 1,
                inputs: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
                deadline_ms: 1500,
            },
            Request::ReadRows { session: 3 },
            Request::Reset { session: u64::MAX },
            Request::Close { session: 0 },
            Request::Shutdown,
            Request::Metrics,
            Request::TraceDump,
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Opened { session: 12 },
            Response::Stepped { outputs: vec![vec![0.25; 4], vec![-0.5; 4]] },
            Response::Rows { read: vec![1.0, -2.0] },
            Response::Done,
            Response::Error(ServeError::BadSpec("word_size must be positive".into())),
            Response::Error(ServeError::UnknownSession(44)),
            Response::Error(ServeError::SessionBusy(44)),
            Response::Error(ServeError::BadInput("want 4 got 3".into())),
            Response::Error(ServeError::Protocol("unknown message tag 99".into())),
            Response::Error(ServeError::ShuttingDown),
            Response::Error(ServeError::Store("snapshot checksum mismatch".into())),
            Response::Error(ServeError::Overloaded { retry_after_ms: 250 }),
            Response::Error(ServeError::DeadlineExceeded { session: 7 }),
            Response::Error(ServeError::GroupFailed(44)),
            Response::ShuttingDown,
            Response::Metrics { snapshot: MetricsSnapshot::default() },
            Response::Trace { events: Vec::new() },
        ];
        for resp in resps {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn metrics_snapshot_round_trips() {
        let mut hist = HistogramSnapshot::empty();
        hist.count = 3;
        hist.sum = 77;
        hist.buckets[0] = 1;
        hist.buckets[7] = 2;
        let snapshot = MetricsSnapshot {
            counters: vec![("serve.scheduler.ticks".into(), u64::MAX), ("net.frames_in".into(), 0)],
            gauges: vec![("serve.sessions.live".into(), -3), ("queue".into(), i64::MIN)],
            histograms: vec![("serve.scheduler.tick_ns".into(), hist)],
        };
        let resp = Response::Metrics { snapshot };
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn trace_events_round_trip_and_reject_bad_kinds() {
        let events = vec![
            TraceEvent { seq: 0, at_us: 10, kind: TraceKind::Open, session: 1, detail: 0 },
            TraceEvent { seq: 1, at_us: 25, kind: TraceKind::Park, session: 1, detail: 4 },
            TraceEvent { seq: 2, at_us: 99, kind: TraceKind::Error, session: 1, detail: 3 },
        ];
        let resp = Response::Trace { events };
        let bytes = resp.encode();
        assert_eq!(Response::decode(&bytes).unwrap(), resp);
        // Corrupt the first event's kind byte (offset: tag 1 + count 4 +
        // seq 8 + at_us 8).
        let mut bad = bytes.clone();
        bad[1 + 4 + 16] = 250;
        assert_eq!(Response::decode(&bad), Err(WireError::BadTag(250)));
        // An implausible event count is rejected before allocation.
        let mut w = Writer::new();
        w.u8(8);
        w.u32(u32::MAX);
        assert!(matches!(Response::decode(&w.into_bytes()), Err(WireError::BadLength(_))));
    }

    #[test]
    fn float_payloads_are_bit_exact() {
        // The wire carries f32 bit patterns, not decimal renderings: NaN
        // payloads and signed zeros survive.
        let row = vec![f32::NAN, -0.0, f32::INFINITY, 1.0e-42];
        let req = Request::Step { session: 0, input: row.clone(), deadline_ms: 0 };
        match Request::decode(&req.encode()).unwrap() {
            Request::Step { input, .. } => {
                for (a, b) in input.iter().zip(&row) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert_eq!(Request::decode(&[]), Err(WireError::Truncated));
        assert_eq!(Request::decode(&[200]), Err(WireError::BadTag(200)));
        // Truncated session id.
        assert_eq!(Request::decode(&[4, 1, 2]), Err(WireError::Truncated));
        // Trailing garbage after a well-formed message.
        let mut bytes = Request::Shutdown.encode();
        bytes.push(0);
        assert_eq!(Request::decode(&bytes), Err(WireError::TrailingBytes(1)));
        // Oversized vector length field.
        let mut w = Writer::new();
        w.u8(2);
        w.u64(1);
        w.u32(0); // deadline_ms
        w.u32(u32::MAX);
        assert!(matches!(Request::decode(&w.into_bytes()), Err(WireError::BadLength(_))));
    }

    #[test]
    fn vec_f32_length_guard_holds_at_the_frame_boundary() {
        // Counts just past what the payload holds are rejected without
        // wrapping: on a 32-bit usize, `n * 4` overflows for counts of
        // 2^30 and above, so the guard must divide, never multiply.
        for n in [1u32 << 30, (1 << 30) + 1, u32::MAX / 4, u32::MAX] {
            let mut w = Writer::new();
            w.u32(n);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.vec_f32(), Err(WireError::BadLength(n)), "count {n} accepted");
        }
        // The largest count a maximal frame can carry decodes; the
        // boundary is exact (one element fewer than claimed → rejected).
        let n = 4u32;
        let mut w = Writer::new();
        w.vec_f32(&vec![1.5f32; n as usize]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.vec_f32().unwrap().len(), n as usize);
        let mut w = Writer::new();
        w.u32(n);
        for _ in 0..n - 1 {
            w.f32(0.0);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.vec_f32(), Err(WireError::BadLength(n)));
        // MAX_FRAME / 4 itself passes the cap check (payload-size check
        // then applies); MAX_FRAME / 4 + 1 is categorically rejected.
        let mut w = Writer::new();
        w.u32(MAX_FRAME / 4 + 1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.vec_f32(), Err(WireError::BadLength(MAX_FRAME / 4 + 1)));
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let payload = Request::ReadRows { session: 5 }.encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some(&payload[..]));
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some(&payload[..]));
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF between frames");
    }

    #[test]
    fn raw_spec_validation_reports_typed_errors() {
        let mut raw = RawSessionSpec::demo();
        assert!(raw.validate().is_ok());
        raw.word_size = 0;
        assert_eq!(raw.validate().unwrap_err().to_string(), "word_size must be positive");

        let mut raw = RawSessionSpec::demo();
        raw.sharded = true;
        raw.tiles = 0;
        assert!(raw.validate().is_err());
        raw.tiles = raw.memory_size + 1;
        assert!(raw.validate().is_err());

        let mut raw = RawSessionSpec::demo();
        raw.quantized = true;
        raw.int_bits = 0;
        raw.frac_bits = 8;
        assert!(raw.validate().is_err());

        let mut raw = RawSessionSpec::demo();
        raw.skim = 1.25;
        assert!(raw.validate().is_err());
    }

    #[test]
    fn group_key_is_canonical() {
        // Junk in fields the variant does not use must not split groups:
        // a non-quantized spec with stray q-format bits keys identically
        // to the canonical form.
        let mut raw = RawSessionSpec::demo();
        raw.int_bits = 31;
        raw.frac_bits = 1;
        raw.tiles = 17;
        let canonical = RawSessionSpec::demo().validate().unwrap().group_key();
        assert_eq!(raw.validate().unwrap().group_key(), canonical);
    }
}
