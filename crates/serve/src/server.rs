//! The std-only threaded TCP front end.
//!
//! One accept thread plus one thread per connection; each connection
//! reads length-prefixed frames, decodes a [`Request`], dispatches it to
//! the [`SessionHub`] and writes the [`Response`] frame back. All
//! serving semantics live in the hub — this layer only does framing,
//! connection bookkeeping, socket-level fault tolerance and clean
//! shutdown.
//!
//! Connection bookkeeping is self-cleaning: each connection has an id,
//! its thread removes its tracked stream on exit, and the accept loop
//! joins finished connection threads before spawning the next one — a
//! long-lived server no longer accumulates one handle per connection it
//! ever served.
//!
//! [`ServeConfig::io_timeout`] bounds how long a *stalled* peer can pin
//! a connection thread: reads time out, and a timeout that strikes
//! mid-frame (a peer that sent half a header and wandered off) drops the
//! connection. A timeout at a frame boundary is just idleness — the
//! connection stays open indefinitely.
//!
//! Shutdown ordering (deadlock-free): mark stopping → unblock the accept
//! loop with a self-connection → `shutdown(Read)` every tracked stream
//! (in-flight replies still write) → join connection threads → stop the
//! hub (group threads drain their queues, answer, exit) → join groups.

use crate::chaos_net::ChaosStream;
use crate::protocol::{write_frame, Request, Response, ServeError, MAX_FRAME};
use crate::session::{SessionHub, StoreConfig};
use hima_chaos::FaultPlan;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Lane slots per engine grid — how many sessions of one
    /// configuration can be *resident* at once (more sessions than lanes
    /// swap through detached lane states).
    pub grid_lanes: usize,
    /// Scheduler tick: how long an idle group waits for commands before
    /// re-checking. Under load the loop runs command-driven and this is
    /// only the idle wake-up period.
    pub tick: Duration,
    /// Reap sessions idle for longer than this (`None` = never). A
    /// session with an in-flight step request is never reaped.
    pub idle_timeout: Option<Duration>,
    /// Queued step inputs allowed per session before new step requests
    /// are rejected with [`ServeError::Overloaded`].
    pub session_queue_limit: usize,
    /// Queued step inputs allowed across *all* sessions before new step
    /// requests are rejected with [`ServeError::Overloaded`].
    pub global_queue_limit: usize,
    /// Deadline applied to step requests that don't carry their own
    /// (`deadline_ms == 0` on the wire). `None` = no default deadline.
    pub default_deadline: Option<Duration>,
    /// Read timeout for connection sockets (`None` = block forever).
    /// Only guards against peers stalled *mid-frame*; idle connections
    /// at a frame boundary are unaffected.
    pub io_timeout: Option<Duration>,
    /// Optional fault-injection plan. Wraps every connection's socket in
    /// a [`ChaosStream`] (net sites) and is consulted by the scheduler
    /// and store (sched/store sites). `None` = zero injection overhead.
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            grid_lanes: 8,
            tick: Duration::from_micros(500),
            idle_timeout: None,
            session_queue_limit: 4096,
            global_queue_limit: 65_536,
            default_deadline: None,
            io_timeout: Some(Duration::from_secs(30)),
            faults: None,
        }
    }
}

/// A running session server.
pub struct Server {
    addr: SocketAddr,
    hub: Arc<SessionHub>,
    stopping: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    conn_handles: Arc<Mutex<HashMap<u64, JoinHandle<()>>>>,
}

impl Server {
    /// Binds and starts serving; `addr` may use port 0 for an ephemeral
    /// port (read it back with [`Server::addr`]).
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServeConfig) -> std::io::Result<Server> {
        Self::bind_with_store(addr, cfg, None)
    }

    /// Like [`Server::bind`], with an optional durable session store:
    /// sessions evict to `store`'s directory instead of being discarded
    /// by the idle sweep, and sessions found there (from a previous
    /// process, even one that was killed) are adopted before the first
    /// connection is accepted.
    pub fn bind_with_store(
        addr: impl ToSocketAddrs,
        cfg: ServeConfig,
        store: Option<StoreConfig>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let io_timeout = cfg.io_timeout;
        let faults = cfg.faults.clone();
        let hub = Arc::new(SessionHub::with_store(cfg, store)?);
        let stopping = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let conn_handles: Arc<Mutex<HashMap<u64, JoinHandle<()>>>> =
            Arc::new(Mutex::new(HashMap::new()));

        let accept_handle = {
            let hub = Arc::clone(&hub);
            let stopping = Arc::clone(&stopping);
            let conns = Arc::clone(&conns);
            let conn_handles = Arc::clone(&conn_handles);
            let next_conn = AtomicU64::new(1);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Sweep finished connection threads so bookkeeping is
                    // bounded by *live* connections, not total served.
                    let finished: Vec<JoinHandle<()>> = {
                        let mut handles = conn_handles.lock().unwrap();
                        let done: Vec<u64> = handles
                            .iter()
                            .filter(|(_, h)| h.is_finished())
                            .map(|(&id, _)| id)
                            .collect();
                        done.iter().filter_map(|id| handles.remove(id)).collect()
                    };
                    for handle in finished {
                        let _ = handle.join();
                    }
                    let conn_id = next_conn.fetch_add(1, Ordering::Relaxed);
                    if let Some(t) = io_timeout {
                        let _ = stream.set_read_timeout(Some(t));
                        let _ = stream.set_write_timeout(Some(t));
                    }
                    if let Ok(tracked) = stream.try_clone() {
                        conns.lock().unwrap().insert(conn_id, tracked);
                    }
                    let hub = Arc::clone(&hub);
                    let stopping = Arc::clone(&stopping);
                    let conns = Arc::clone(&conns);
                    let faults = faults.clone();
                    let handle = std::thread::spawn(move || {
                        serve_connection(stream, hub, stopping, faults);
                        conns.lock().unwrap().remove(&conn_id);
                    });
                    conn_handles.lock().unwrap().insert(conn_id, handle);
                }
            })
        };

        Ok(Server { addr, hub, stopping, accept_handle: Some(accept_handle), conns, conn_handles })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hub, for in-process inspection (live-session counts in tests).
    pub fn hub(&self) -> &SessionHub {
        &self.hub
    }

    /// Streams currently tracked for shutdown (== live connections, give
    /// or take threads that are mid-exit). Exposed so tests can pin that
    /// bookkeeping doesn't grow with *total* connections ever served.
    pub fn tracked_connections(&self) -> usize {
        self.conns.lock().unwrap().len()
    }

    /// Connection threads whose handles are still held (finished ones
    /// are joined and dropped on the next accept).
    pub fn tracked_handles(&self) -> usize {
        self.conn_handles.lock().unwrap().len()
    }

    /// Whether a client has requested process shutdown.
    pub fn shutdown_requested(&self) -> bool {
        self.stopping.load(Ordering::SeqCst)
    }

    /// Blocks until a client sends [`Request::Shutdown`], then returns
    /// (the caller then drops the server, which drains and stops). The
    /// CLI `serve` subcommand is this in a loop.
    pub fn wait_for_shutdown(&self) {
        while !self.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Stops accepting, closes connections, drains in-flight work and
    /// joins every thread. Also runs on drop; call it explicitly when
    /// you want completion before proceeding.
    pub fn stop(&mut self) {
        if self.accept_handle.is_none() {
            return;
        }
        self.stopping.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // Stop reading new requests; in-flight replies still write.
        for (_, stream) in self.conns.lock().unwrap().drain() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        let handles: Vec<_> =
            self.conn_handles.lock().unwrap().drain().map(|(_, h)| h).collect();
        for handle in handles {
            let _ = handle.join();
        }
        self.hub.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// What one attempt to read a frame produced.
enum FrameRead {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The read timed out *at a frame boundary* — the peer is idle, not
    /// stalled. Keep waiting.
    Idle,
    /// Clean EOF at a frame boundary, a timeout mid-frame, or any socket
    /// error: the conversation is over.
    Closed,
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Like `protocol::read_frame`, but timeout-aware: distinguishes an idle
/// peer (timeout with zero header bytes read) from a stalled one
/// (timeout mid-header or mid-payload).
fn read_frame_idle_aware(r: &mut impl Read) -> FrameRead {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len[filled..]) {
            Ok(0) => return FrameRead::Closed,
            Ok(n) => filled += n,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(ref e) if is_timeout(e) && filled == 0 => return FrameRead::Idle,
            Err(_) => return FrameRead::Closed,
        }
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return FrameRead::Closed;
    }
    let mut payload = vec![0u8; len as usize];
    let mut got = 0;
    while got < payload.len() {
        match r.read(&mut payload[got..]) {
            Ok(0) => return FrameRead::Closed,
            Ok(n) => got += n,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // Mid-frame timeout: the peer stalled inside a frame — drop
            // it rather than pin this thread forever.
            Err(_) => return FrameRead::Closed,
        }
    }
    FrameRead::Frame(payload)
}

/// One connection's request/reply loop.
fn serve_connection(
    stream: TcpStream,
    hub: Arc<SessionHub>,
    stopping: Arc<AtomicBool>,
    faults: Option<Arc<FaultPlan>>,
) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(ChaosStream::new(read_half, faults.clone()));
    let mut writer = BufWriter::new(ChaosStream::new(stream, faults));
    let metrics = Arc::clone(hub.metrics());
    loop {
        let payload = match read_frame_idle_aware(&mut reader) {
            FrameRead::Frame(payload) => payload,
            FrameRead::Idle => {
                if stopping.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            FrameRead::Closed => return,
        };
        metrics.frames_in.inc();
        metrics.bytes_in.add(payload.len() as u64 + 4);
        let resp = match Request::decode(&payload) {
            Ok(Request::Shutdown) => {
                metrics.record_request(&Request::Shutdown);
                stopping.store(true, Ordering::SeqCst);
                Response::ShuttingDown
            }
            Ok(req) if stopping.load(Ordering::SeqCst) => {
                metrics.record_request(&req);
                let err = ServeError::ShuttingDown;
                metrics.record_error(&err);
                Response::Error(err)
            }
            Ok(req) => hub.dispatch(req),
            Err(e) => {
                let err = ServeError::Protocol(e.to_string());
                metrics.record_error(&err);
                Response::Error(err)
            }
        };
        let encoded = resp.encode();
        metrics.frames_out.inc();
        metrics.bytes_out.add(encoded.len() as u64 + 4);
        if write_frame(&mut writer, &encoded).is_err() {
            return;
        }
    }
}
