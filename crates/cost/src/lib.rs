//! Area, power and energy models for the HiMA prototypes.
//!
//! The paper synthesizes RTL at 500 MHz in 40 nm CMOS and measures power
//! with Ansys PowerArtist. Neither tool exists here, so this crate provides
//! the standard architectural substitute:
//!
//! * [`area`] — a component-level area model (SRAM banks with
//!   fixed-periphery + per-KB terms, M-M engine, routers, sorters, CT
//!   logic) whose constants are calibrated once against the paper's
//!   Fig. 11(e) table and then *predict* the other configurations,
//! * [`power`] — an activity-based energy model (`pJ` per MAC, SRAM word,
//!   flit-hop, sort op, SFU op) calibrated once against the HiMA-DNC
//!   module-power breakdown of Fig. 11(f); every other configuration's
//!   power is predicted from the engine's activity counters and step time.
//!
//! Because the paper's own comparisons are ratios between configurations
//! of the same RTL, a calibrated activity model preserves exactly the
//! quantities the evaluation reports (power reductions, area savings,
//! efficiency ratios).

pub mod area;
pub mod power;

pub use area::{AreaModel, AreaReport};
pub use power::{EnergyCoefficients, PowerModel, PowerReport};
