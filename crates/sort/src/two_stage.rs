//! The local-global two-stage usage sort (paper §4.3, Fig. 7).
//!
//! Stage 1: every PT sorts its local `n = N/N_t` usage slice with an
//! [`MdsaSorter`] — all PTs run in parallel, so stage-1 latency is a single
//! MDSA sort. Stage 2: the CT merges the `N_t` sorted runs with an
//! [`ParallelMergeSorter`], adding `n + D_PMS` cycles (local runs stream out
//! of the PT buffers one element per cycle per bank).
//!
//! For the paper's example (`N = 1024`, `N_t = 4`, `P = 16`):
//! `6×(16+5) + 256 + 7 = 389` cycles, vs `N log₂ N = 10 240` for the
//! centralized baseline — a 26× latency reduction.

use crate::mdsa::MdsaSorter;
use crate::pms::ParallelMergeSorter;
use crate::{Keyed, SortEngine};
use serde::{Deserialize, Serialize};

/// Two-stage distributed usage sorter over `N_t` tiles.
///
/// # Example
///
/// ```
/// use hima_sort::{SortEngine, TwoStageSorter};
///
/// let sorter = TwoStageSorter::new(4, 1024);
/// assert_eq!(sorter.latency_cycles(1024), 389); // paper §4.3
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TwoStageSorter {
    tiles: usize,
    total_len: usize,
}

impl TwoStageSorter {
    /// Creates a sorter for a length-`total_len` vector distributed over
    /// `tiles` PTs.
    ///
    /// # Panics
    ///
    /// Panics if `tiles == 0` or `total_len == 0`.
    pub fn new(tiles: usize, total_len: usize) -> Self {
        assert!(tiles > 0, "need at least one tile");
        assert!(total_len > 0, "need a non-empty vector");
        Self { tiles, total_len }
    }

    /// Number of PTs holding usage slices.
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// Local slice length `n = ⌈N / N_t⌉`.
    pub fn local_len(&self) -> usize {
        self.total_len.div_ceil(self.tiles)
    }

    /// The per-tile stage-1 sorter.
    pub fn local_sorter(&self) -> MdsaSorter {
        MdsaSorter::for_len(self.local_len())
    }

    /// The CT stage-2 merger.
    pub fn global_merger(&self) -> ParallelMergeSorter {
        ParallelMergeSorter::new(self.tiles)
    }

    /// Stage-1 latency: one MDSA sort (PTs run in parallel).
    pub fn stage1_cycles(&self) -> u64 {
        self.local_sorter().latency_cycles(self.local_len())
    }

    /// Stage-2 latency: `n + D_PMS`.
    pub fn stage2_cycles(&self) -> u64 {
        self.local_len() as u64 + self.global_merger().pipeline_depth()
    }

    /// Splits `input` into `N_t` contiguous slices, as the row-wise usage
    /// partition stores them.
    fn shard<'a>(&self, input: &'a [Keyed]) -> Vec<&'a [Keyed]> {
        let n = self.local_len();
        (0..self.tiles)
            .map(|t| {
                let lo = (t * n).min(input.len());
                let hi = ((t + 1) * n).min(input.len());
                &input[lo..hi]
            })
            .collect()
    }
}

impl SortEngine for TwoStageSorter {
    fn name(&self) -> &'static str {
        "two-stage"
    }

    fn sort_pairs(&self, input: &[Keyed]) -> Vec<Keyed> {
        assert_eq!(
            input.len(),
            self.total_len,
            "two-stage sorter configured for {} elements, got {}",
            self.total_len,
            input.len()
        );
        let local = self.local_sorter();
        let runs: Vec<Vec<Keyed>> = self.shard(input).into_iter().map(|s| local.sort_pairs(s)).collect();
        let (merged, _) = self.global_merger().merge(&runs);
        merged
    }

    /// `6(P + D_DPBS) + n + D_PMS` — 389 cycles for the paper's example.
    fn latency_cycles(&self, _n: usize) -> u64 {
        self.stage1_cycles() + self.stage2_cycles()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::CentralizedMergeSorter;

    fn pairs(keys: &[f32]) -> Vec<Keyed> {
        keys.iter().copied().zip(0..).collect()
    }

    #[test]
    fn paper_example_389_cycles() {
        let s = TwoStageSorter::new(4, 1024);
        assert_eq!(s.local_len(), 256);
        assert_eq!(s.stage1_cycles(), 126);
        assert_eq!(s.stage2_cycles(), 263);
        assert_eq!(s.latency_cycles(1024), 389);
    }

    #[test]
    fn speedup_over_centralized_exceeds_20x() {
        let s = TwoStageSorter::new(4, 1024);
        let base = CentralizedMergeSorter.latency_cycles(1024);
        let ours = s.latency_cycles(1024);
        assert!(base / ours >= 20, "{base} / {ours}");
    }

    #[test]
    fn matches_reference_sort() {
        let keys: Vec<f32> = (0..1024).map(|i| ((i * 167 + 13) % 1024) as f32).collect();
        let s = TwoStageSorter::new(4, 1024);
        let got = s.sort_pairs(&pairs(&keys));
        let want = CentralizedMergeSorter.sort_pairs(&pairs(&keys));
        assert_eq!(got, want);
    }

    #[test]
    fn works_with_uneven_shards() {
        let keys: Vec<f32> = (0..100).map(|i| ((i * 37 + 5) % 100) as f32).collect();
        let s = TwoStageSorter::new(3, 100);
        let got = s.sort_pairs(&pairs(&keys));
        assert!(crate::is_sorted(&got));
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn single_tile_degenerates_to_local_sort() {
        let keys: Vec<f32> = (0..64).map(|i| ((i * 23) % 64) as f32).collect();
        let s = TwoStageSorter::new(1, 64);
        let got = s.sort_pairs(&pairs(&keys));
        assert!(crate::is_sorted(&got));
    }

    #[test]
    fn more_tiles_reduce_latency() {
        let l4 = TwoStageSorter::new(4, 1024).latency_cycles(1024);
        let l16 = TwoStageSorter::new(16, 1024).latency_cycles(1024);
        assert!(l16 < l4, "{l16} !< {l4}");
    }

    #[test]
    #[should_panic(expected = "configured for")]
    fn rejects_wrong_length() {
        TwoStageSorter::new(2, 16).sort_pairs(&pairs(&[1.0, 2.0]));
    }

    #[test]
    fn argsort_yields_usage_free_list() {
        // The DNC free list: indices of the least-used slots first.
        let usage = [0.9f32, 0.1, 0.5, 0.0];
        let s = TwoStageSorter::new(2, 4);
        assert_eq!(s.argsort(&usage), vec![3, 1, 2, 0]);
    }
}
