//! Cross-crate **ragged conformance suite**: masked-batched execution of
//! unequal-length episodes must be **bit-identical** to stepping each
//! episode alone, everywhere ragged traffic now flows.
//!
//! This is the workspace-level contract behind the ragged-batching
//! subsystem (the masked counterpart of the uniform trait-level suite in
//! `crates/dnc/tests/conformance.rs`):
//!
//! * **engine grid** — a `lanes(B)` engine stepping a padded ragged
//!   batch under per-step [`LaneMask`]s reproduces `B` independent
//!   `lanes(1)` engines bit for bit, across topology (monolithic |
//!   sharded) × datapath (f32 | Q16.16) × skim × B ∈ {1, 3, 8}, on
//!   proptest-generated ragged episode sets,
//! * **harness routing** — `episode_features` / `collect_query_samples`
//!   / `readout_accuracy` drive ragged lists through the masked batched
//!   grid (no single-lane fallback) and equal the sequential
//!   `FeatureModel` reference,
//! * **pipeline** — length-bucketed, padded-and-masked pipeline units
//!   reproduce the synchronous harness for ragged generated workloads,
//! * **determinism** — masked lane/shard fan-out never perturbs results
//!   across rayon thread counts.
//!
//! Inputs come from the shared strategy module
//! (`hima_tasks::strategies`), so this suite, the dnc suite and the
//! pipeline suite sample the same ragged distribution.

use hima::dnc::allocation::SkimRate;
use hima::dnc::{Datapath, DncParams, EngineBuilder, EngineSpec};
use hima::pipeline::PipelineSpec;
use hima::tasks::episode::{masked_step_block, max_len, uniform_len};
use hima::tasks::strategies::{ragged_episodes, task_choice};
use hima::tasks::tasks::TOKEN_WIDTH;
use hima::tasks::train::{episode_features, sequential_episode_features};
use hima::tasks::{collect_query_samples, Episode};
use hima::tensor::{LaneMask, Matrix, QFormat};
use proptest::prelude::*;

const BATCHES: [usize; 3] = [1, 3, 8];
const SEED: u64 = 41;

fn params() -> DncParams {
    DncParams::new(16, 4, 2).with_hidden(16).with_io(TOKEN_WIDTH, TOKEN_WIDTH)
}

fn builder(spec: EngineSpec) -> EngineBuilder {
    EngineBuilder::new(params()).with_spec(spec).seed(SEED)
}

/// Topology × datapath × skim grid under test.
fn specs() -> Vec<EngineSpec> {
    let q = Datapath::Quantized(QFormat::q16_16());
    vec![
        EngineSpec::monolithic(),
        EngineSpec::sharded(2),
        EngineSpec::sharded(4),
        EngineSpec::monolithic().with_datapath(q),
        EngineSpec::sharded(4).with_datapath(q),
        EngineSpec::monolithic().with_skim(SkimRate::new(0.2)),
        EngineSpec::sharded(2).with_skim(SkimRate::new(0.2)).with_datapath(q),
    ]
}

/// The engine-level contract: one masked `B`-lane grid ≡ `B` solo
/// engines, at every step, for outputs, read rows and feature rows.
fn assert_grid_matches_solo(spec: EngineSpec, episodes: &[Episode]) {
    let lanes = episodes.len();
    let steps = max_len(episodes).expect("non-empty set");
    let mut grid = builder(spec).lanes(lanes).build();
    let mut solo: Vec<_> = (0..lanes).map(|_| builder(spec).lanes(1).build()).collect();
    for t in 0..steps {
        let (block, mask) = masked_step_block(episodes, t);
        let y = grid.step_batch_masked(&block, &mask);
        let reads = grid.last_read_rows();
        let features = grid.last_features_rows();
        for (b, lane) in solo.iter_mut().enumerate() {
            if mask.is_active(b) {
                let want = lane.step(&episodes[b].inputs[t]);
                assert_eq!(
                    y.row(b),
                    &want[..],
                    "{} B={lanes} lane {b} t {t}: outputs diverged",
                    spec.label()
                );
            } else {
                assert!(
                    y.row(b).iter().all(|&v| v == 0.0),
                    "{} lane {b} t {t}: ended lane must output zeros",
                    spec.label()
                );
            }
            // Frozen or live, lane state mirrors the solo engine at its
            // last real step.
            assert_eq!(
                reads.row(b),
                lane.last_read_rows().row(0),
                "{} B={lanes} lane {b} t {t}: read rows diverged",
                spec.label()
            );
            assert_eq!(
                features.row(b),
                lane.last_features_rows().row(0),
                "{} B={lanes} lane {b} t {t}: feature rows diverged",
                spec.label()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn masked_grid_is_bit_identical_to_solo_engines_across_the_axis_grid(
        episodes_b3 in ragged_episodes(3..=3, 2..=8),
        episodes_b8 in ragged_episodes(8..=8, 2..=9),
        episodes_b1 in ragged_episodes(1..=1, 2..=8),
    ) {
        for episodes in [&episodes_b1, &episodes_b3, &episodes_b8] {
            prop_assert!(BATCHES.contains(&episodes.len()));
            for spec in specs() {
                assert_grid_matches_solo(spec, episodes);
            }
        }
    }

    #[test]
    fn harness_features_route_ragged_lists_through_the_masked_grid(
        episodes in ragged_episodes(3..=8, 2..=9),
    ) {
        // eval/train share this path (`collect_reads` == episode_features);
        // there is no single-lane fallback left to fall into.
        for spec in [EngineSpec::monolithic(), EngineSpec::sharded(4)] {
            let b = builder(spec);
            let batched = episode_features(&b, &episodes);
            for (lane, e) in episodes.iter().enumerate() {
                prop_assert_eq!(batched[lane].len(), e.len(), "one row per real step");
            }
            let mut single = b.clone().lanes(1).build();
            let sequential = sequential_episode_features(&mut *single, &episodes);
            prop_assert_eq!(&batched, &sequential, "{}", spec.label());
        }
    }

    #[test]
    fn masked_grid_is_deterministic_across_thread_counts(
        episodes in ragged_episodes(6..=6, 2..=8),
    ) {
        let run = |threads: usize| -> Vec<Matrix> {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| {
                    let steps = max_len(&episodes).unwrap();
                    let mut grid = builder(EngineSpec::sharded(4)).lanes(6).build();
                    (0..steps)
                        .map(|t| {
                            let (block, mask) = masked_step_block(&episodes, t);
                            grid.step_batch_masked(&block, &mask)
                        })
                        .collect()
                })
        };
        prop_assert_eq!(run(1), run(4));
    }

    #[test]
    fn pipelined_ragged_workloads_match_the_synchronous_harness(
        task in task_choice(),
        jitter in 2usize..=5,
        length_spread in 0usize..=6,
        batch_size in 1usize..=6,
    ) {
        use hima::pipeline::collect_query_samples_pipelined;
        let task = task.with_jitter(jitter);
        let episodes = task.generate(6, 17).episodes;
        let b = EngineBuilder::new(params()).seed(SEED);
        let sync = collect_query_samples(&b, &episodes);
        let spec = PipelineSpec::default()
            .with_batch_size(batch_size)
            .with_length_spread(length_spread)
            .with_workers(2, 2);
        let pipelined = collect_query_samples_pipelined(&b, &task, 6, 17, &spec);
        prop_assert_eq!(&sync, &pipelined, "spec {}", spec.label());
    }
}

#[test]
fn jittered_generation_is_genuinely_ragged() {
    // Sanity anchor for the suite's inputs: the jittered tasks the
    // pipeline property feeds on really produce unequal lengths.
    let task = hima::tasks::TASKS[0].with_jitter(5);
    let episodes = task.generate(8, 17).episodes;
    assert_eq!(uniform_len(&episodes), None, "jittered batch must be ragged");
}

#[test]
fn uniform_sets_still_take_the_historical_lock_step_path() {
    // A degenerate ragged set (all lengths equal) must behave exactly
    // like the uniform fast path always did: fully-active masks, and
    // step_batch_masked ≡ step_batch.
    let episodes = {
        use proptest::strategy::Strategy as _;
        ragged_episodes(4..=4, 6..=6).generate(&mut proptest::test_runner::rng_for("uniform"))
    };
    assert_eq!(uniform_len(&episodes), Some(6));
    let spec = EngineSpec::sharded(2);
    let mut masked = builder(spec).lanes(4).build();
    let mut plain = builder(spec).lanes(4).build();
    for t in 0..6 {
        let (block, mask) = masked_step_block(&episodes, t);
        assert!(mask.is_full());
        assert_eq!(
            masked.step_batch_masked(&block, &mask),
            plain.step_batch(&block),
            "t {t}"
        );
    }
}

#[test]
fn frozen_lanes_resume_exactly_after_interleaved_masks() {
    // Masks generalize beyond suffix raggedness: freeze a lane mid-run,
    // resume it, and the lane's trajectory equals an uninterrupted solo
    // engine fed the same inputs back to back.
    let width = params().input_size;
    let x = |t: usize| {
        Matrix::from_fn(2, width, |b, i| (((b * 19 + t * 5 + i) as f32) * 0.17).sin())
    };
    let mut grid = builder(EngineSpec::monolithic()).lanes(2).build();
    let mut solo = builder(EngineSpec::monolithic()).lanes(1).build();
    let lane1_schedule = [true, false, false, true, true];
    for (t, &active) in lane1_schedule.iter().enumerate() {
        let mask = LaneMask::from(vec![true, active]);
        let y = grid.step_batch_masked(&x(t), &mask);
        if active {
            let want = solo.step(x(t).row(1));
            assert_eq!(y.row(1), &want[..], "t {t}");
        }
    }
}
