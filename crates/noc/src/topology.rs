//! NoC topology graphs: the five fabrics compared in Fig. 5.
//!
//! Every graph contains one controller tile (CT) and `n_pts` processing
//! tiles (PTs); tree topologies add internal router nodes. Mesh-family
//! fabrics place tiles on a square grid with the CT at the center cell
//! (paper Fig. 9) and PTs filling the remaining cells row-major.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Index of a node (tile or internal router) within a [`TopologyGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// The NoC fabrics evaluated by the paper (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topology {
    /// MANNA's H-tree: PTs at the leaves of a binary tree, CT at the root.
    HTree,
    /// MAERI/HERALD-style binary tree with extra links between adjacent
    /// sub-trees at each level.
    BinaryTree,
    /// 2-D mesh (4-neighbour grid).
    Mesh,
    /// Star: every PT connects directly to the CT.
    Star,
    /// HiMA-NoC: mesh plus diagonal links (8-neighbour grid).
    Hima,
}

impl Topology {
    /// All topologies in the paper's comparison order.
    pub const ALL: [Topology; 5] =
        [Topology::HTree, Topology::BinaryTree, Topology::Mesh, Topology::Star, Topology::Hima];

    /// Display name matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Topology::HTree => "H-Tree",
            Topology::BinaryTree => "Bi-Tree",
            Topology::Mesh => "Mesh",
            Topology::Star => "Star",
            Topology::Hima => "HiMA",
        }
    }
}

/// Kind of a node in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// Controller tile (LSTM + global kernels).
    Controller,
    /// Processing tile (memory shard + compute).
    Processing,
    /// Internal tree router (no compute).
    Router,
}

/// Classification of an edge, used by the HiMA mode masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Horizontal/vertical mesh link.
    Mesh,
    /// Diagonal link (HiMA only).
    Diagonal,
    /// Tree link (parent-child) or star spoke.
    Trunk,
    /// Sibling link between adjacent sub-trees (binary tree only).
    Sibling,
}

/// An undirected link between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Link classification.
    pub kind: EdgeKind,
}

/// A built NoC graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyGraph {
    topology: Topology,
    kinds: Vec<NodeKind>,
    edges: Vec<Edge>,
    adjacency: Vec<Vec<(NodeId, usize)>>,
    ct: NodeId,
    pts: Vec<NodeId>,
    /// Grid coordinates for mesh-family nodes (`None` for tree routers).
    positions: Vec<Option<(usize, usize)>>,
    grid_side: usize,
}

impl TopologyGraph {
    /// Builds a fabric with `n_pts` processing tiles plus one controller
    /// tile.
    ///
    /// # Panics
    ///
    /// Panics if `n_pts == 0`.
    pub fn build(topology: Topology, n_pts: usize) -> Self {
        assert!(n_pts > 0, "need at least one processing tile");
        match topology {
            Topology::HTree => Self::build_tree(topology, n_pts, false),
            Topology::BinaryTree => Self::build_tree(topology, n_pts, true),
            Topology::Star => Self::build_star(n_pts),
            Topology::Mesh => Self::build_grid(topology, n_pts, false),
            Topology::Hima => Self::build_grid(topology, n_pts, true),
        }
    }

    fn build_star(n_pts: usize) -> Self {
        let mut g = GraphBuilder::new(Topology::Star);
        let ct = g.add_node(NodeKind::Controller, None);
        for _ in 0..n_pts {
            let pt = g.add_node(NodeKind::Processing, None);
            g.add_edge(ct, pt, EdgeKind::Trunk);
        }
        g.finish(ct, 0)
    }

    /// Binary tree with PTs at the leaves. The CT sits at the root (MANNA's
    /// arrangement). `sibling_links` adds the MAERI-style interconnects
    /// between adjacent nodes at each tree level.
    fn build_tree(topology: Topology, n_pts: usize, sibling_links: bool) -> Self {
        let leaves = n_pts.next_power_of_two().max(2);
        let mut g = GraphBuilder::new(topology);

        // Level-order complete binary tree; level 0 is the root.
        let depth = leaves.trailing_zeros() as usize;
        let mut levels: Vec<Vec<NodeId>> = Vec::with_capacity(depth + 1);
        let root = g.add_node(NodeKind::Controller, None);
        levels.push(vec![root]);
        for level in 1..=depth {
            let width = 1 << level;
            let is_leaf_level = level == depth;
            let mut nodes = Vec::with_capacity(width);
            for i in 0..width {
                let kind = if is_leaf_level && i < n_pts {
                    NodeKind::Processing
                } else {
                    // Interior router, or a padded (unused) leaf slot.
                    NodeKind::Router
                };
                let node = g.add_node(kind, None);
                g.add_edge(levels[level - 1][i / 2], node, EdgeKind::Trunk);
                nodes.push(node);
            }
            if sibling_links {
                for w in nodes.windows(2) {
                    g.add_edge(w[0], w[1], EdgeKind::Sibling);
                }
            }
            levels.push(nodes);
        }
        g.finish(root, 0)
    }

    /// Square grid with the CT at the center cell and PTs filling the other
    /// cells row-major. `diagonals` adds the HiMA 8-neighbour links.
    fn build_grid(topology: Topology, n_pts: usize, diagonals: bool) -> Self {
        let side = ((n_pts + 1) as f64).sqrt().ceil() as usize;
        let center = (side / 2, side / 2);
        let mut g = GraphBuilder::new(topology);

        // Instantiate CT at the center and PTs at the n_pts cells closest
        // to it (keeps the fabric compact when the grid is not full).
        let mut cells: Vec<(usize, usize)> = (0..side)
            .flat_map(|r| (0..side).map(move |c| (r, c)))
            .collect();
        cells.sort_by_key(|&(r, c)| {
            let dr = r.abs_diff(center.0);
            let dc = c.abs_diff(center.1);
            (dr.max(dc), dr + dc, r, c)
        });

        let mut grid: Vec<Vec<Option<NodeId>>> = vec![vec![None; side]; side];
        let ct = g.add_node(NodeKind::Controller, Some(center));
        grid[center.0][center.1] = Some(ct);
        for &(r, c) in cells.iter().filter(|&&p| p != center).take(n_pts) {
            let pt = g.add_node(NodeKind::Processing, Some((r, c)));
            grid[r][c] = Some(pt);
        }

        for r in 0..side {
            for c in 0..side {
                let Some(node) = grid[r][c] else { continue };
                // East and south mesh links.
                if c + 1 < side {
                    if let Some(east) = grid[r][c + 1] {
                        g.add_edge(node, east, EdgeKind::Mesh);
                    }
                }
                if r + 1 < side {
                    if let Some(south) = grid[r + 1][c] {
                        g.add_edge(node, south, EdgeKind::Mesh);
                    }
                }
                if diagonals {
                    if r + 1 < side && c + 1 < side {
                        if let Some(se) = grid[r + 1][c + 1] {
                            g.add_edge(node, se, EdgeKind::Diagonal);
                        }
                    }
                    if r + 1 < side && c > 0 {
                        if let Some(sw) = grid[r + 1][c - 1] {
                            g.add_edge(node, sw, EdgeKind::Diagonal);
                        }
                    }
                }
            }
        }
        g.finish(ct, side)
    }

    /// Which topology this graph realizes.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Total node count (tiles + internal routers).
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// The controller tile.
    pub fn ct(&self) -> NodeId {
        self.ct
    }

    /// The processing tiles, in placement order.
    pub fn pts(&self) -> &[NodeId] {
        &self.pts
    }

    /// All undirected edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Neighbours of `node` with the connecting edge index.
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, usize)] {
        &self.adjacency[node.0]
    }

    /// Node kind.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node.0]
    }

    /// Grid coordinates for mesh-family nodes.
    pub fn position(&self, node: NodeId) -> Option<(usize, usize)> {
        self.positions[node.0]
    }

    /// Grid side length (0 for non-grid topologies).
    pub fn grid_side(&self) -> usize {
        self.grid_side
    }

    /// BFS hop distances from `src` over edges accepted by `mask`
    /// (`usize::MAX` marks unreachable nodes).
    pub fn distances_from(&self, src: NodeId, mask: impl Fn(&Edge) -> bool) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.node_count()];
        dist[src.0] = 0;
        let mut queue = VecDeque::from([src]);
        while let Some(n) = queue.pop_front() {
            for &(next, edge_idx) in &self.adjacency[n.0] {
                if !mask(&self.edges[edge_idx]) {
                    continue;
                }
                if dist[next.0] == usize::MAX {
                    dist[next.0] = dist[n.0] + 1;
                    queue.push_back(next);
                }
            }
        }
        dist
    }

    /// Worst-case hop count between any two tiles (CT or PT), with all
    /// edges enabled.
    pub fn worst_case_hops(&self) -> usize {
        let mut tiles = vec![self.ct];
        tiles.extend_from_slice(&self.pts);
        let mut worst = 0;
        for &src in &tiles {
            let dist = self.distances_from(src, |_| true);
            for &dst in &tiles {
                if dist[dst.0] != usize::MAX {
                    worst = worst.max(dist[dst.0]);
                }
            }
        }
        worst
    }
}

struct GraphBuilder {
    topology: Topology,
    kinds: Vec<NodeKind>,
    positions: Vec<Option<(usize, usize)>>,
    edges: Vec<Edge>,
    adjacency: Vec<Vec<(NodeId, usize)>>,
}

impl GraphBuilder {
    fn new(topology: Topology) -> Self {
        Self { topology, kinds: Vec::new(), positions: Vec::new(), edges: Vec::new(), adjacency: Vec::new() }
    }

    fn add_node(&mut self, kind: NodeKind, pos: Option<(usize, usize)>) -> NodeId {
        let id = NodeId(self.kinds.len());
        self.kinds.push(kind);
        self.positions.push(pos);
        self.adjacency.push(Vec::new());
        id
    }

    fn add_edge(&mut self, a: NodeId, b: NodeId, kind: EdgeKind) {
        let idx = self.edges.len();
        self.edges.push(Edge { a, b, kind });
        self.adjacency[a.0].push((b, idx));
        self.adjacency[b.0].push((a, idx));
    }

    fn finish(self, ct: NodeId, grid_side: usize) -> TopologyGraph {
        let pts = self
            .kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| **k == NodeKind::Processing)
            .map(|(i, _)| NodeId(i))
            .collect();
        TopologyGraph {
            topology: self.topology,
            kinds: self.kinds,
            edges: self.edges,
            adjacency: self.adjacency,
            ct,
            pts,
            positions: self.positions,
            grid_side,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_has_direct_spokes() {
        let g = TopologyGraph::build(Topology::Star, 8);
        assert_eq!(g.pts().len(), 8);
        assert_eq!(g.edges().len(), 8);
        assert_eq!(g.worst_case_hops(), 2, "PT -> CT -> PT");
    }

    #[test]
    fn htree_16pts_worst_case_is_8_hops() {
        // Paper Fig. 5(b): leaf -> root -> leaf through 4 tree levels.
        let g = TopologyGraph::build(Topology::HTree, 16);
        assert_eq!(g.pts().len(), 16);
        assert_eq!(g.worst_case_hops(), 8);
    }

    #[test]
    fn binary_tree_sibling_links_help_neighbors() {
        let bt = TopologyGraph::build(Topology::BinaryTree, 16);
        let ht = TopologyGraph::build(Topology::HTree, 16);
        // Adjacent leaves are 1 hop in the bi-tree (sibling link) vs 2+ in
        // the H-tree.
        let d_bt = bt.distances_from(bt.pts()[0], |_| true)[bt.pts()[1].0];
        let d_ht = ht.distances_from(ht.pts()[0], |_| true)[ht.pts()[1].0];
        assert_eq!(d_bt, 1);
        assert!(d_ht >= 2);
        assert!(bt.worst_case_hops() <= ht.worst_case_hops());
    }

    #[test]
    fn hima_5x5_worst_case_is_4_hops() {
        // Paper Fig. 5(c): 24 PTs + CT on a 5x5 grid, diagonals keep the
        // worst-case inter-tile distance at 4 hops.
        let g = TopologyGraph::build(Topology::Hima, 24);
        assert_eq!(g.grid_side(), 5);
        assert_eq!(g.worst_case_hops(), 4);
    }

    #[test]
    fn mesh_5x5_worst_case_is_8_hops() {
        let g = TopologyGraph::build(Topology::Mesh, 24);
        assert_eq!(g.worst_case_hops(), 8, "corner-to-corner Manhattan distance");
    }

    #[test]
    fn hima_halves_mesh_distance() {
        for n in [8, 16, 24, 48] {
            let mesh = TopologyGraph::build(Topology::Mesh, n);
            let hima = TopologyGraph::build(Topology::Hima, n);
            assert!(
                hima.worst_case_hops() <= mesh.worst_case_hops().div_ceil(2) + 1,
                "n={n}: hima {} vs mesh {}",
                hima.worst_case_hops(),
                mesh.worst_case_hops()
            );
        }
    }

    #[test]
    fn ct_is_at_grid_center() {
        let g = TopologyGraph::build(Topology::Hima, 16);
        let (r, c) = g.position(g.ct()).unwrap();
        let mid = g.grid_side() / 2;
        assert_eq!((r, c), (mid, mid));
    }

    #[test]
    fn all_topologies_have_requested_pts_and_are_connected() {
        for topo in Topology::ALL {
            for n in [1usize, 3, 8, 16, 33] {
                let g = TopologyGraph::build(topo, n);
                assert_eq!(g.pts().len(), n, "{topo:?} n={n}");
                let dist = g.distances_from(g.ct(), |_| true);
                for &pt in g.pts() {
                    assert_ne!(dist[pt.0], usize::MAX, "{topo:?}: PT unreachable from CT");
                }
            }
        }
    }

    #[test]
    fn tree_pads_to_power_of_two_leaves() {
        let g = TopologyGraph::build(Topology::HTree, 5);
        assert_eq!(g.pts().len(), 5);
        // 8-leaf tree: 1 root + 2 + 4 + 8 = 15 nodes.
        assert_eq!(g.node_count(), 15);
    }

    #[test]
    fn grid_adjacency_is_symmetric() {
        let g = TopologyGraph::build(Topology::Hima, 16);
        for (i, adj) in (0..g.node_count()).map(|i| (i, g.neighbors(NodeId(i)))) {
            for &(n, _) in adj {
                assert!(
                    g.neighbors(n).iter().any(|&(back, _)| back.0 == i),
                    "asymmetric adjacency {i} <-> {}",
                    n.0
                );
            }
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Topology::HTree.label(), "H-Tree");
        assert_eq!(Topology::Hima.label(), "HiMA");
    }

    #[test]
    #[should_panic(expected = "at least one processing tile")]
    fn rejects_zero_pts() {
        TopologyGraph::build(Topology::Mesh, 0);
    }
}
