//! Dense matrix/vector math and hardware-oriented arithmetic for the HiMA
//! reproduction.
//!
//! This crate is the numerics substrate shared by the functional DNC model
//! ([`hima-dnc`]), the architectural simulator ([`hima-engine`]) and the
//! experiment harnesses. It provides:
//!
//! * [`Matrix`] — a small row-major `f32` matrix with the exact set of
//!   operations the DNC dataflow needs (transpose, mat-vec, outer product,
//!   element-wise ops, row normalization),
//! * vector helpers in [`vector`] (dot products, norms, cosine similarity),
//! * activation functions in [`activation`] (`sigmoid`, `oneplus`, `tanh`),
//! * exact and hardware-approximated softmax in [`mod@softmax`] — the
//!   piece-wise-linear + LUT approximation of Section 5.2 of the paper,
//! * Q-format fixed-point arithmetic in [`fixed`] used to model HiMA's
//!   32-bit datapath,
//! * [`LaneMask`] and the masked row-block kernels (`matmul_nt_masked`,
//!   the `*_block_masked` activations, [`softmax_rows_masked`]) that let
//!   ragged batches skip — not zero-and-recompute — the rows of lanes
//!   whose sequences have ended,
//! * [`Backend`] — the kernel execution tier: the scalar reference
//!   kernels or the cache-blocked [`F32x8`]-vectorized fast tier in
//!   [`mod@backend`], dispatching the hot kernels behind one axis.
//!
//! # Example
//!
//! ```
//! use hima_tensor::Matrix;
//!
//! let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]][..]);
//! let v = m.matvec(&[1.0, 1.0]);
//! assert_eq!(v, vec![3.0, 7.0]);
//! ```
//!
//! [`hima-dnc`]: https://docs.rs/hima-dnc
//! [`hima-engine`]: https://docs.rs/hima-engine

pub mod activation;
pub mod backend;
pub mod fixed;
pub mod lane_mask;
pub mod linalg;
pub mod matrix;
pub mod simd;
pub mod softmax;
pub mod vector;

pub use backend::Backend;
pub use fixed::{Fixed, QFormat};
pub use lane_mask::LaneMask;
pub use matrix::Matrix;
pub use simd::F32x8;
pub use softmax::{softmax, softmax_approx, softmax_rows, softmax_rows_masked, PlaSoftmax};

/// Numerical tolerance used across the workspace when comparing floats
/// produced by mathematically equivalent but differently ordered
/// computations.
pub const EPSILON: f32 = 1e-5;

/// Asserts that two slices are element-wise close within `tol`.
///
/// # Panics
///
/// Panics with a descriptive message if lengths differ or any element pair
/// differs by more than `tol`.
pub fn assert_close(a: &[f32], b: &[f32], tol: f32) {
    assert_eq!(a.len(), b.len(), "length mismatch: {} vs {}", a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            (x - y).abs() <= tol,
            "element {i} differs: {x} vs {y} (tol {tol})"
        );
    }
}

/// Returns `true` when every element pair of `a` and `b` is within `tol`.
pub fn all_close(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_close_detects_mismatch() {
        assert!(all_close(&[1.0, 2.0], &[1.0, 2.0 + 1e-7], 1e-5));
        assert!(!all_close(&[1.0], &[1.1], 1e-5));
        assert!(!all_close(&[1.0], &[1.0, 2.0], 1e-5));
    }

    #[test]
    #[should_panic(expected = "element 1 differs")]
    fn assert_close_panics_on_mismatch() {
        assert_close(&[1.0, 2.0], &[1.0, 3.0], 1e-5);
    }
}
