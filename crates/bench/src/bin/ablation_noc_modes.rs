//! Ablation: HiMA-NoC mode × traffic pattern.
//!
//! The multi-mode router's value proposition (§4.1) is that each DNC
//! primitive gets the mode that suits its traffic. This ablation runs
//! every pattern under every mode (where routable) on the analytic model
//! *and* cross-checks the recommended pairing on the cycle-driven VCT
//! simulator.

use hima::noc::cycle_sim::CycleAccurateSim;
use hima::prelude::*;
use hima_bench::header;

fn main() {
    let graph = TopologyGraph::build(Topology::Hima, 24); // full 5x5 fabric
    let sim = NocSim::new(graph.clone());

    header("HiMA-NoC (5x5): completion cycles per (pattern, mode), 16-flit messages");
    print!("{:<16}", "pattern \\ mode");
    for mode in Mode::ALL {
        print!(" {:>10}", format!("{mode:?}"));
    }
    println!("   recommended");
    for pattern in TrafficPattern::ALL {
        let msgs = pattern.messages(sim.graph(), 16);
        print!("{:<16}", format!("{pattern:?}"));
        for mode in Mode::ALL {
            // Some (pattern, mode) pairs are unroutable (e.g. all-to-all
            // in diagonal mode crosses parity classes).
            let routable = msgs.iter().all(|m| sim.table(mode).path(m.src, m.dst).is_some());
            if routable {
                print!(" {:>10}", sim.run(mode, &msgs).completion_cycles);
            } else {
                print!(" {:>10}", "-");
            }
        }
        println!("   {:?}", pattern.recommended_mode());
    }

    header("Recommended-mode check: paper pairing vs best routable mode");
    for pattern in TrafficPattern::ALL {
        let msgs = pattern.messages(sim.graph(), 16);
        let best = Mode::ALL
            .iter()
            .filter(|&&mode| msgs.iter().all(|m| sim.table(mode).path(m.src, m.dst).is_some()))
            .map(|&mode| (mode, sim.run(mode, &msgs).completion_cycles))
            .min_by_key(|&(_, c)| c)
            .expect("full mode always routes");
        let rec = pattern.recommended_mode();
        let rec_cycles = sim.run(rec, &msgs).completion_cycles;
        let verdict = if rec_cycles <= (best.1 as f64 * 1.05) as u64 { "ok" } else { "suboptimal" };
        println!(
            "{:<16} recommended {:?} = {} cycles; best {:?} = {} cycles  [{verdict}]",
            format!("{pattern:?}"),
            rec,
            rec_cycles,
            best.0,
            best.1
        );
    }

    header("Cross-check on the cycle-driven VCT simulator (transpose)");
    let cycle = CycleAccurateSim::new(graph);
    let msgs = TrafficPattern::Transpose.messages(cycle.graph(), 16);
    let diag = cycle.run(Mode::Diagonal, &msgs).completion_cycles;
    let full = cycle.run(Mode::Full, &msgs).completion_cycles;
    println!("transpose: diagonal mode {diag} cycles, full mode {full} cycles");
    println!("(diagonal links carry transpose pairs directly; full mode competes with");
    println!("mesh traffic — the Fig. 5(c) motivation)");
}
