//! Telemetry conformance: the metrics substrate's edge cases plus the
//! whole observability loop driven end-to-end.
//!
//! The unit-ish half pins the corners that bite in production but never
//! show up in happy-path use: empty/single/all-equal percentile inputs,
//! log₂ histogram bucket boundaries at exact powers of two, snapshot
//! merges that must saturate instead of wrapping, and trace-ring
//! wraparound keeping sequence order. The integration half boots a real
//! TCP server, drives concurrent sessions on an undersized grid (so
//! parks and splices actually happen), and asserts the `Metrics` /
//! `TraceDump` commands return a populated, internally consistent view
//! while the load is still live.

use hima::prelude::*;
use hima::telemetry::{bucket_bound, bucket_index, TraceRing, HIST_BUCKETS};
use hima_serve::loadgen::{percentile, synth_input};
use hima_serve::{RawSessionSpec, TraceKind};
use std::time::Duration;

// ---------------------------------------------------------------- loadgen

#[test]
fn percentile_of_empty_is_zero() {
    assert_eq!(percentile(&[], 0.0), Duration::ZERO);
    assert_eq!(percentile(&[], 0.5), Duration::ZERO);
    assert_eq!(percentile(&[], 1.0), Duration::ZERO);
}

#[test]
fn percentile_of_single_sample_is_that_sample() {
    for p in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(percentile(&[1234], p), Duration::from_nanos(1234));
    }
}

#[test]
fn percentile_of_all_equal_samples_is_that_value() {
    let ns = [777u64; 50];
    for p in [0.0, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(percentile(&ns, p), Duration::from_nanos(777));
    }
}

#[test]
fn percentile_endpoints_and_clamping() {
    let ns = [10, 20, 30, 40, 50];
    assert_eq!(percentile(&ns, 0.0), Duration::from_nanos(10));
    assert_eq!(percentile(&ns, 1.0), Duration::from_nanos(50));
    // Out-of-range quantiles clamp instead of indexing out of bounds.
    assert_eq!(percentile(&ns, -3.0), Duration::from_nanos(10));
    assert_eq!(percentile(&ns, 7.0), Duration::from_nanos(50));
    assert_eq!(percentile(&ns, 0.5), Duration::from_nanos(30));
}

// ------------------------------------------------------------- histograms

#[test]
fn bucket_boundaries_at_powers_of_two() {
    // Bucket 0 is the exact-zero bucket; bucket i >= 1 holds
    // [2^(i-1), 2^i).
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    for i in 1..64 {
        let lo = 1u64 << (i - 1);
        assert_eq!(bucket_index(lo), i, "lower edge of bucket {i}");
        assert_eq!(bucket_index((lo << 1) - 1), i, "upper edge of bucket {i}");
    }
    assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    // Upper bounds are inclusive: value == bound lands in that bucket.
    for i in 0..HIST_BUCKETS {
        assert_eq!(bucket_index(bucket_bound(i)), i, "bound of bucket {i}");
    }
}

#[test]
fn histogram_quantiles_respect_bucket_bounds() {
    let r = MetricsRegistry::new();
    let h = r.histogram("t");
    for v in [0, 1, 2, 3, 4, 1000, 1_000_000] {
        h.observe(v);
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, 7);
    assert_eq!(snap.sum, 1_001_010);
    // Quantiles report the upper bound of the covering bucket, so they
    // never understate a latency.
    assert!(snap.quantile(0.99) >= 1_000_000);
    assert!(snap.max_bound() >= 1_000_000);
    assert_eq!(snap.quantile(0.0), 0);
}

#[test]
fn snapshot_merge_saturates_instead_of_wrapping() {
    let a_reg = MetricsRegistry::new();
    a_reg.counter("c").add(u64::MAX - 5);
    a_reg.gauge("g").set(3);
    let mut a = a_reg.snapshot();

    let b_reg = MetricsRegistry::new();
    b_reg.counter("c").add(100);
    b_reg.counter("only_b").add(7);
    b_reg.gauge("g").set(-9);
    let b = b_reg.snapshot();

    a.merge(&b);
    // Counter sum would wrap; the merge must pin at the ceiling.
    assert_eq!(a.counter("c"), Some(u64::MAX));
    // Names only on the other side are appended, not dropped.
    assert_eq!(a.counter("only_b"), Some(7));
    // Gauges are levels: the merged-in side wins outright.
    assert_eq!(a.gauge("g"), Some(-9));
}

#[test]
fn histogram_merge_saturates_bucket_counts() {
    let a_reg = MetricsRegistry::new();
    let ha = a_reg.histogram("h");
    ha.observe(5);
    let mut a = a_reg.snapshot();
    let mut b = a.clone();
    // Force the same bucket to the ceiling on one side.
    let hist = &mut b.histograms[0].1;
    hist.buckets[bucket_index(5)] = u64::MAX;
    hist.count = u64::MAX;
    hist.sum = u64::MAX;
    a.merge(&b);
    let merged = a.histogram("h").unwrap();
    assert_eq!(merged.buckets[bucket_index(5)], u64::MAX);
    assert_eq!(merged.count, u64::MAX);
    assert_eq!(merged.sum, u64::MAX);
}

// ------------------------------------------------------------- trace ring

#[test]
fn trace_ring_wraparound_keeps_sequence_order() {
    let ring = TraceRing::new(8);
    for i in 0..27u64 {
        ring.record(TraceKind::Open, i, i * 2);
    }
    assert_eq!(ring.recorded(), 27);
    let events = ring.dump();
    assert_eq!(events.len(), 8);
    // Oldest-first, contiguous, ending at the last recorded seq.
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, (19..27).collect::<Vec<u64>>());
    for e in &events {
        assert_eq!(e.session, e.seq);
        assert_eq!(e.detail, e.seq * 2);
    }
}

// ---------------------------------------------------- end-to-end over TCP

/// Boots a real server on an undersized grid, drives more concurrent
/// sessions than lanes (forcing parks and splices), then reads the
/// telemetry back over the wire and checks it describes the run.
#[test]
fn live_server_metrics_describe_the_load() {
    let p = DncParams::new(24, 6, 2).with_hidden(20).with_io(5, 5);
    let cfg = ServeConfig {
        grid_lanes: 2,
        tick: Duration::from_micros(200),
        idle_timeout: None,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.addr();
    let raw = RawSessionSpec::from_parts(&p, &EngineSpec::monolithic(), 42);

    let sessions = 5;
    let steps = 12;
    let handles: Vec<_> = (0..sessions)
        .map(|i| {
            let raw = raw.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let session = client.open(&raw).unwrap();
                for t in 0..steps {
                    client.step(session, &synth_input(i, t, p.input_size)).unwrap();
                }
                session
            })
        })
        .collect();
    let ids: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Sessions are still open: the snapshot must see them live, with
    // per-session step-latency histograms populated.
    let mut observer = Client::connect(addr).unwrap();
    let snap = observer.metrics().unwrap();
    let total_steps = (sessions * steps) as u64;
    assert_eq!(snap.counter("serve.sessions.opened"), Some(sessions as u64));
    assert_eq!(snap.gauge("serve.sessions.live"), Some(sessions as i64));
    assert_eq!(snap.gauge("serve.groups.live"), Some(1));
    assert_eq!(snap.counter("serve.scheduler.steps"), Some(total_steps));
    let ticks = snap.counter("serve.scheduler.ticks").unwrap();
    assert!(ticks > 0 && ticks <= total_steps, "ticks = {ticks}");
    // 5 sessions on 2 lanes: the grid had to park and splice.
    assert!(snap.counter("serve.scheduler.parks").unwrap() > 0);
    assert!(snap.counter("serve.scheduler.splices").unwrap() > 0);
    // Queue fully drained once every step was answered.
    assert_eq!(snap.gauge("serve.scheduler.queue_depth"), Some(0));

    let occupancy = snap.histogram("serve.scheduler.occupancy_pct").unwrap();
    assert_eq!(occupancy.count, ticks);
    assert!(occupancy.max_bound() >= 50, "at most one lane ever active?");
    let tick_ns = snap.histogram("serve.scheduler.tick_ns").unwrap();
    assert_eq!(tick_ns.count, ticks);
    assert!(tick_ns.sum > 0);
    let pooled = snap.histogram("serve.session.step_latency_us").unwrap();
    assert_eq!(pooled.count, total_steps);
    for id in &ids {
        let per = snap
            .histogram(&format!("serve.session.{id}.step_latency_us"))
            .unwrap_or_else(|| panic!("no histogram for session {id}"));
        assert_eq!(per.count, steps as u64);
    }
    // Wire accounting saw every request of this connection too.
    assert!(snap.counter("rpc.metrics").unwrap() >= 1);
    assert!(snap.counter("net.frames_in").unwrap() > total_steps);

    // The trace is clean (no errors/busy), in seq order, and holds the
    // session lifecycle: all opens, plus the forced parks and splices.
    let events = observer.trace_dump().unwrap();
    assert!(!events.is_empty());
    for w in events.windows(2) {
        assert!(w[0].seq < w[1].seq, "trace out of order: {w:?}");
    }
    assert!(events.iter().all(|e| e.kind != TraceKind::Error));
    assert!(events.iter().all(|e| e.kind != TraceKind::Busy));
    let opens = events.iter().filter(|e| e.kind == TraceKind::Open).count();
    assert_eq!(opens, sessions);
    assert!(events.iter().any(|e| e.kind == TraceKind::Park));
    assert!(events.iter().any(|e| e.kind == TraceKind::Splice));

    // Close everything; the close-side counters must balance.
    for id in ids {
        observer.close_session(id).unwrap();
    }
    let snap = observer.metrics().unwrap();
    assert_eq!(snap.counter("serve.sessions.closed"), Some(sessions as u64));
    assert_eq!(snap.gauge("serve.sessions.live"), Some(0));
    assert_eq!(snap.gauge("serve.sessions.parked"), Some(0));
    // Per-session histograms are dropped with their sessions: the
    // registry stays bounded by live sessions.
    assert!(snap
        .histograms
        .iter()
        .all(|(name, _)| !name.starts_with("serve.session.") || name == "serve.session.step_latency_us"));
}

/// Server-reported errors land in the err.* counters and the trace ring.
#[test]
fn errors_are_counted_and_traced() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).unwrap();
    // Step a session that does not exist.
    assert!(client.step(999, &[0.0; 5]).is_err());
    let snap = client.metrics().unwrap();
    assert_eq!(snap.counter("err.unknown_session"), Some(1));
    let events = client.trace_dump().unwrap();
    assert!(events.iter().any(|e| e.kind == TraceKind::Error && e.session == 999));
}
