//! Platform baselines for the cross-design comparison (Fig. 12(b)–(d)).
//!
//! Farm, MANNA, the Nvidia 3080Ti and the i7-9700K are closed systems, so
//! their absolute numbers are encoded from the paper's own measurements
//! (§7.4 and Fig. 4) as documented calibration constants; the HiMA rows of
//! the comparison come from our cycle model. This mirrors how the paper
//! itself compares: against *published* numbers of the other designs.

use serde::{Deserialize, Serialize};

/// One comparison platform with its published characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Display name.
    pub name: &'static str,
    /// Inference time per bAbI test in microseconds.
    pub inference_us: f64,
    /// Silicon area in mm² (`None` for general-purpose platforms, which
    /// the paper excludes from area/power comparisons).
    pub area_mm2: Option<f64>,
    /// Power in watts (`None` for general-purpose platforms).
    pub power_w: Option<f64>,
    /// Process node in nm (for area normalization).
    pub process_nm: Option<f64>,
    /// Largest supported external memory rows `N`.
    pub max_memory_rows: usize,
    /// Whether the platform can run full DNC (vs NTM only).
    pub supports_dnc: bool,
}

/// Nvidia 3080Ti running DNC on bAbI: 5.16 ms/test (§3.2).
pub const GPU: Platform = Platform {
    name: "GPU (3080Ti)",
    inference_us: 5160.0,
    area_mm2: None,
    power_w: None,
    process_nm: None,
    max_memory_rows: 1024,
    supports_dnc: true,
};

/// Intel i7-9700K: 10.94 ms/test, 2.12× slower than the GPU (§3.2).
pub const CPU: Platform = Platform {
    name: "CPU (i7-9700K)",
    inference_us: 10940.0,
    area_mm2: None,
    power_w: None,
    process_nm: None,
    max_memory_rows: 1024,
    supports_dnc: true,
};

/// Farm (Challapalle et al. 2020): 68.5× faster than the GPU, small
/// centralized memory (N ≤ 256), mixed-signal. Area/power are the paper's
/// normalization reference (1×).
pub const FARM: Platform = Platform {
    name: "Farm",
    inference_us: 5160.0 / 68.5,
    area_mm2: Some(1.0),
    power_w: Some(1.0),
    process_nm: Some(40.0),
    max_memory_rows: 256,
    supports_dnc: true,
};

/// MANNA (Stevens et al. 2019): similar speed to Farm, 11× Farm's area and
/// 32× its power for 20× larger memory, 15 nm, NTM only (§7.4).
pub const MANNA: Platform = Platform {
    name: "MANNA",
    inference_us: 5160.0 / 68.5,
    area_mm2: Some(11.0),
    power_w: Some(32.0),
    process_nm: Some(15.0),
    max_memory_rows: 5120,
    supports_dnc: false,
};

/// All fixed comparison platforms.
pub const PLATFORMS: [Platform; 4] = [GPU, CPU, FARM, MANNA];

impl Platform {
    /// Speedup of this platform over the GPU reference.
    pub fn speedup_vs_gpu(&self) -> f64 {
        GPU.inference_us / self.inference_us
    }

    /// Area normalized to Farm and scaled to a common process node
    /// (area scales ~quadratically with feature size).
    pub fn normalized_area(&self, target_nm: f64) -> Option<f64> {
        let area = self.area_mm2?;
        let nm = self.process_nm?;
        Some(area * (target_nm / nm).powi(2))
    }
}

/// Steps (tokens) per bAbI test, calibrated once so that HiMA-DNC's modeled
/// per-test time anchors to the paper's 11.8 µs (§7.2). All *ratios* in the
/// comparison then come from the cycle model.
pub fn steps_per_test(hima_dnc_step_us: f64) -> f64 {
    11.8 / hima_dnc_step_us
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_cpu_ratio_matches_paper() {
        // 2.12x faster GPU (§3.2).
        let ratio = CPU.inference_us / GPU.inference_us;
        assert!((ratio - 2.12).abs() < 0.01);
    }

    #[test]
    fn farm_speedup_matches_paper() {
        assert!((FARM.speedup_vs_gpu() - 68.5).abs() < 1e-9);
    }

    #[test]
    fn manna_cannot_run_dnc() {
        // Compile-time facts about the baseline table; const blocks keep
        // clippy happy about constant assertions.
        const { assert!(!MANNA.supports_dnc) };
        const { assert!(FARM.supports_dnc) };
    }

    #[test]
    fn area_normalization_penalizes_smaller_nodes() {
        // MANNA at 15 nm normalized to 40 nm grows by (40/15)^2 ≈ 7.1x.
        let norm = MANNA.normalized_area(40.0).unwrap();
        assert!((norm / 11.0 - (40.0f64 / 15.0).powi(2)).abs() < 1e-9);
        assert_eq!(GPU.normalized_area(40.0), None);
    }

    #[test]
    fn steps_per_test_anchors_correctly() {
        let t = steps_per_test(2.0);
        assert!((t - 5.9).abs() < 1e-9);
    }
}
