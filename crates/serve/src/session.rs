//! The session registry: ids, routing, and engine-group lifecycle.
//!
//! The [`SessionHub`] owns the two maps behind the serving API: a
//! *routing* table from live session id to the command channel of the
//! group thread serving it, and a *group* table from canonical
//! configuration key to that channel. Session ids are allocated from one
//! global counter, so an id never repeats for the lifetime of a server —
//! a closed or reaped id stays permanently unknown rather than aliasing
//! a newer session.
//!
//! The hub also owns the server-wide [`ServeMetrics`]: every dispatch is
//! counted under its `rpc.<command>` counter, every error reply under its
//! `err.<kind>` counter, and the `Metrics` / `TraceDump` requests are
//! answered here from the registry without touching any group thread.
//!
//! With a [`StoreConfig`], the hub additionally owns the durable session
//! tier: at construction it scans the store directory, re-spawns an
//! engine group for every stored configuration and **adopts** each
//! stored session — the id routes again immediately and the state
//! rehydrates lazily on its first command. The id counter resumes past
//! the largest adopted id, so recovered ids never alias new ones.
//!
//! # Supervision
//!
//! Each group thread runs its scheduler loop under `catch_unwind`. A
//! panic (a bug — or an injected [`FaultKind::Panic`](hima_chaos::FaultKind)
//! at the `SchedTick` site) does not take the server down: the
//! supervisor repairs the gauges the dying incarnation left dangling,
//! counts a `supervisor.restarts`, and re-enters the loop with
//! `resume = true`. The fresh incarnation resurrects store-backed
//! sessions from their snapshot + delta log; sessions with no durable
//! state answer their next command with a typed
//! [`ServeError::GroupFailed`] instead of vanishing silently.

use crate::metrics::ServeMetrics;
use crate::protocol::{RawSessionSpec, Reader, Request, Response, ServeError, SessionSpec};
use crate::scheduler::{lock_clean, run_group, GroupCmd, GroupShared, GroupStore};
use crate::server::ServeConfig;
use hima_chaos::FaultPlan;
use hima_store::SessionStore;
use hima_telemetry::TraceKind;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of the durable session tier.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the per-session snapshot and delta-log files
    /// (created if absent).
    pub dir: PathBuf,
    /// Snapshot + compact a session's delta log every this many logged
    /// steps (clamped to ≥ 1).
    pub snapshot_every: u64,
    /// Per group, spill least-recently-active parked sessions to disk
    /// once more than this many detached states sit in RAM.
    pub max_parked: usize,
    /// Optional seeded fault plan injected into every store I/O path
    /// (snapshot writes, fsyncs, renames, log appends). `None` — the
    /// default — is a plain pass-through.
    pub faults: Option<Arc<FaultPlan>>,
}

impl StoreConfig {
    /// Durability rooted at `dir` with default policy: snapshot every
    /// 256 steps, at most 64 parked states in RAM per group, no fault
    /// injection.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), snapshot_every: 256, max_parked: 64, faults: None }
    }
}

/// Registry of live sessions and the engine groups serving them.
pub struct SessionHub {
    cfg: ServeConfig,
    next_id: AtomicU64,
    /// session id → serving group's command channel.
    index: Arc<Mutex<HashMap<u64, Sender<GroupCmd>>>>,
    /// canonical spec key → group command channel.
    groups: Mutex<HashMap<Vec<u8>, Sender<GroupCmd>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    metrics: Arc<ServeMetrics>,
    /// Steps queued across every group — the global admission budget
    /// shared by all group threads.
    global_queued: Arc<AtomicI64>,
    /// Set once `shutdown` begins: lets `call` distinguish a clean
    /// shutdown (`ShuttingDown`) from a dead group (`GroupFailed`).
    stopping: AtomicBool,
    /// The durable tier (`None` = RAM only).
    store: Option<(Arc<SessionStore>, StoreConfig)>,
}

impl SessionHub {
    /// Creates an empty hub; group threads spawn lazily on the first
    /// `Open` of each distinct configuration.
    pub fn new(cfg: ServeConfig) -> Self {
        Self::with_store(cfg, None).expect("hub without a store performs no I/O")
    }

    /// Creates a hub with an optional durable session tier. With a
    /// [`StoreConfig`], opens (creating if needed) the store directory
    /// and adopts every stored session before accepting traffic;
    /// sessions whose store files are corrupt or no longer validate are
    /// skipped (counted under `store.errors`) rather than wedging boot.
    pub fn with_store(cfg: ServeConfig, store: Option<StoreConfig>) -> std::io::Result<Self> {
        let mut hub = Self {
            cfg,
            next_id: AtomicU64::new(1),
            index: Arc::new(Mutex::new(HashMap::new())),
            groups: Mutex::new(HashMap::new()),
            handles: Mutex::new(Vec::new()),
            metrics: Arc::new(ServeMetrics::new()),
            global_queued: Arc::new(AtomicI64::new(0)),
            stopping: AtomicBool::new(false),
            store: None,
        };
        let Some(store_cfg) = store else { return Ok(hub) };
        let store = Arc::new(SessionStore::open_with(&store_cfg.dir, store_cfg.faults.clone())?);
        hub.store = Some((Arc::clone(&store), store_cfg));

        // Adoption: every stored session becomes routable again. The
        // heavy work (snapshot decode, log replay) is deferred to the
        // session's first command.
        let mut max_id = 0u64;
        for id in store.sessions()? {
            let spec = match store.spec_key(id) {
                Ok(Some(key)) => {
                    let mut r = Reader::new(&key);
                    match RawSessionSpec::decode(&mut r)
                        .ok()
                        .filter(|_| r.finish().is_ok())
                        .and_then(|raw| raw.validate().ok())
                    {
                        Some(spec) => spec,
                        None => {
                            hub.metrics.store_errors.inc();
                            continue;
                        }
                    }
                }
                _ => {
                    hub.metrics.store_errors.inc();
                    continue;
                }
            };
            let sender = hub.group_sender(spec);
            let _ = sender.send(GroupCmd::Adopt { session: id });
            lock_clean(&hub.index).insert(id, sender);
            hub.metrics.sessions_live.add(1);
            hub.metrics.store_recovered.inc();
            max_id = max_id.max(id);
        }
        hub.next_id.store(max_id + 1, Ordering::Relaxed);
        Ok(hub)
    }

    /// The group command channel for `spec`, spawning the group's
    /// supervisor thread on first use of each distinct configuration.
    fn group_sender(&self, spec: SessionSpec) -> Sender<GroupCmd> {
        let key = spec.group_key();
        let mut groups = lock_clean(&self.groups);
        if let Some(sender) = groups.get(&key) {
            return sender.clone();
        }
        let (tx, rx) = channel();
        let cfg = self.cfg.clone();
        let shared = GroupShared {
            index: Arc::clone(&self.index),
            metrics: Arc::clone(&self.metrics),
            global_queued: Arc::clone(&self.global_queued),
            roster: Arc::new(Mutex::new(HashSet::new())),
            queued: Arc::new(AtomicI64::new(0)),
            parked: Arc::new(AtomicI64::new(0)),
        };
        let group_store = self.store.as_ref().map(|(store, sc)| GroupStore {
            store: Arc::clone(store),
            snapshot_every: sc.snapshot_every.max(1),
            max_parked: sc.max_parked,
        });
        // The supervisor: run the group loop, and if it panics, repair
        // the gauges its contribution counters still hold, then restart
        // it in resume mode (resurrect from the store, fail the rest).
        let handle = std::thread::spawn(move || {
            let mut resume = false;
            loop {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_group(
                        cfg.clone(),
                        spec.clone(),
                        &rx,
                        shared.clone(),
                        group_store.clone(),
                        resume,
                    )
                }));
                match result {
                    Ok(()) => break,
                    Err(_) => {
                        shared.metrics.trace(TraceKind::GroupPanic, 0, 0);
                        shared.metrics.supervisor_restarts.inc();
                        let q = shared.queued.swap(0, Ordering::SeqCst);
                        if q != 0 {
                            shared.metrics.queue_depth.sub(q);
                            shared.global_queued.fetch_sub(q, Ordering::SeqCst);
                        }
                        let p = shared.parked.swap(0, Ordering::SeqCst);
                        if p != 0 {
                            shared.metrics.sessions_parked.sub(p);
                        }
                        resume = true;
                    }
                }
            }
        });
        lock_clean(&self.handles).push(handle);
        self.metrics.groups_live.add(1);
        groups.insert(key, tx.clone());
        tx
    }

    /// Number of currently live sessions (registered and not yet closed
    /// or reaped).
    pub fn live_sessions(&self) -> usize {
        lock_clean(&self.index).len()
    }

    /// The server-wide metric catalog and lifecycle trace.
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// Executes one request synchronously and returns its reply. This is
    /// the whole serving semantics; the TCP layer is a dumb pipe around
    /// it (and in-process callers — tests, the load generator harness —
    /// can drive a hub directly).
    pub fn dispatch(&self, req: Request) -> Response {
        self.metrics.record_request(&req);
        let resp = self.dispatch_inner(req);
        self.metrics.record_response(&resp);
        resp
    }

    /// The effective deadline of a step command: the request's own
    /// `deadline_ms` if nonzero, else the server default (if any).
    fn deadline_from(&self, deadline_ms: u32) -> Option<Instant> {
        if deadline_ms > 0 {
            Some(Instant::now() + Duration::from_millis(deadline_ms as u64))
        } else {
            self.cfg.default_deadline.map(|d| Instant::now() + d)
        }
    }

    fn dispatch_inner(&self, req: Request) -> Response {
        match req {
            Request::Open { spec } => {
                let spec = match spec.validate() {
                    Ok(spec) => spec,
                    Err(e) => return Response::Error(ServeError::BadSpec(e.to_string())),
                };
                let sender = self.group_sender(spec);
                let session = self.next_id.fetch_add(1, Ordering::Relaxed);
                lock_clean(&self.index).insert(session, sender.clone());
                self.call(&sender, session, |reply| GroupCmd::Open { session, reply })
            }
            Request::Step { session, input, deadline_ms } => {
                let deadline = self.deadline_from(deadline_ms);
                self.route(session, |reply| GroupCmd::Step {
                    session,
                    inputs: vec![input],
                    deadline,
                    reply,
                })
            }
            Request::StepStream { session, inputs, deadline_ms } => {
                let deadline = self.deadline_from(deadline_ms);
                self.route(session, |reply| GroupCmd::Step { session, inputs, deadline, reply })
            }
            Request::ReadRows { session } => {
                self.route(session, |reply| GroupCmd::ReadRows { session, reply })
            }
            Request::Reset { session } => {
                self.route(session, |reply| GroupCmd::Reset { session, reply })
            }
            Request::Close { session } => {
                self.route(session, |reply| GroupCmd::Close { session, reply })
            }
            // Answered from the hub's own registry — never blocks on a
            // group thread, so a snapshot is cheap even under full load.
            Request::Metrics => {
                // Fold the fault plan's live injection counters into
                // their gauges so the snapshot reflects them.
                if let Some(plan) = self
                    .cfg
                    .faults
                    .as_deref()
                    .or_else(|| self.store.as_ref().and_then(|(s, _)| s.faults().map(Arc::as_ref)))
                {
                    self.metrics.sync_fault_gauges(plan);
                }
                Response::Metrics { snapshot: self.metrics.snapshot() }
            }
            Request::TraceDump => Response::Trace { events: self.metrics.trace_dump() },
            // The process-level stop is the server's call to make; a bare
            // hub just acknowledges.
            Request::Shutdown => Response::ShuttingDown,
        }
    }

    fn route(&self, session: u64, make: impl FnOnce(Sender<Response>) -> GroupCmd) -> Response {
        let sender = match lock_clean(&self.index).get(&session) {
            Some(sender) => sender.clone(),
            None => return Response::Error(ServeError::UnknownSession(session)),
        };
        self.call(&sender, session, make)
    }

    /// What a dead command channel means: a clean shutdown if one is in
    /// progress, otherwise the session's group is gone for good.
    fn channel_failure(&self, session: u64) -> Response {
        if self.stopping.load(Ordering::Relaxed) {
            Response::Error(ServeError::ShuttingDown)
        } else {
            lock_clean(&self.index).remove(&session);
            Response::Error(ServeError::GroupFailed(session))
        }
    }

    fn call(
        &self,
        sender: &Sender<GroupCmd>,
        session: u64,
        make: impl FnOnce(Sender<Response>) -> GroupCmd,
    ) -> Response {
        let (reply_tx, reply_rx) = channel();
        if sender.send(make(reply_tx)).is_err() {
            return self.channel_failure(session);
        }
        match reply_rx.recv() {
            Ok(resp) => resp,
            Err(_) => self.channel_failure(session),
        }
    }

    /// Stops every group thread: drops the command channels (each group
    /// drains its queued steps, answers them, then exits) and joins.
    pub fn shutdown(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        lock_clean(&self.groups).clear();
        lock_clean(&self.index).clear();
        let handles: Vec<_> = lock_clean(&self.handles).drain(..).collect();
        let stopped = handles.len() as i64;
        for handle in handles {
            let _ = handle.join();
        }
        self.metrics.groups_live.sub(stopped);
    }
}

impl Drop for SessionHub {
    fn drop(&mut self) {
        self.shutdown();
    }
}
