//! Deterministic NoC contention model.
//!
//! Messages traverse their shortest-path route hop by hop under three
//! resource constraints:
//!
//! 1. **Link serialization** — each directed link carries one message's
//!    flits at a time.
//! 2. **Injection serialization** — a tile has one injection port, so a
//!    source emits messages back-to-back.
//! 3. **Router relay capacity** — an intermediate router can relay at most
//!    `min(degree, MAX_ROUTER_RADIX)` messages concurrently (a practical
//!    crossbar radix). This is what makes the star hub and the H-tree root
//!    the congestion points the paper describes: the star CT physically has
//!    `N_t` spokes but its router cannot switch unboundedly many transfers
//!    at once, and a tree router has radix 3.
//!
//! Uncongested hops cost one extra feed-through cycle (§6's "feed-through
//! single-cycle transfer").
//!
//! The model is message-granular rather than flit-granular: it reproduces
//! the *ordering* effects Fig. 5(d) depends on (tree-root saturation,
//! star-hub serialization, HiMA load spreading) while staying fast enough
//! to sweep topologies × tile counts × patterns.

use crate::routing::{Mode, RoutingTable};
use crate::topology::{NodeId, TopologyGraph};
use crate::traffic::{Message, TrafficPattern};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Result of simulating one traffic pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Cycle at which the last message arrived.
    pub completion_cycles: u64,
    /// Number of messages delivered.
    pub messages: usize,
    /// Sum of hop counts over all messages.
    pub total_hops: u64,
    /// Sum of `flits × hops` (the paper's "traffic amount").
    pub total_flit_hops: u64,
    /// Busy cycles of the most-loaded directed link.
    pub max_link_busy: u64,
}

impl SimReport {
    /// Mean hops per message (0 for an empty pattern).
    pub fn mean_hops(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.messages as f64
        }
    }
}

/// Largest practical crossbar radix: routers relay at most this many
/// messages concurrently regardless of their physical degree. Matches the
/// 8-way multi-mode HiMA router of §6.
pub const MAX_ROUTER_RADIX: usize = 8;

/// NoC simulator bound to one topology instance.
#[derive(Debug, Clone)]
pub struct NocSim {
    graph: TopologyGraph,
    tables: HashMap<Mode, RoutingTable>,
}

impl NocSim {
    /// Creates a simulator and precomputes routing for all modes.
    pub fn new(graph: TopologyGraph) -> Self {
        let tables = Mode::ALL
            .iter()
            .map(|&m| (m, RoutingTable::build(&graph, m)))
            .collect();
        Self { graph, tables }
    }

    /// The underlying fabric.
    pub fn graph(&self) -> &TopologyGraph {
        &self.graph
    }

    /// Routing table for `mode`.
    pub fn table(&self, mode: Mode) -> &RoutingTable {
        &self.tables[&mode]
    }

    /// Simulates `messages` under `mode`, starting at cycle 0.
    ///
    /// # Panics
    ///
    /// Panics if a message is unroutable in this mode (the caller picked a
    /// mode whose edge mask disconnects the pair — a programming error in
    /// the kernel-to-mode mapping) or a dependency index is out of range.
    pub fn run(&self, mode: Mode, messages: &[Message]) -> SimReport {
        let table = &self.tables[&mode];
        let mut edge_free: HashMap<(NodeId, NodeId), u64> = HashMap::new();
        let mut source_free: HashMap<NodeId, u64> = HashMap::new();
        // Relay channels per node: min(degree, radix cap) parallel slots.
        let mut relay_free: HashMap<NodeId, Vec<u64>> = HashMap::new();
        let mut arrival = vec![0u64; messages.len()];

        let mut total_hops = 0u64;
        let mut total_flit_hops = 0u64;
        let mut edge_busy: HashMap<(NodeId, NodeId), u64> = HashMap::new();
        let mut completion = 0u64;

        for (idx, msg) in messages.iter().enumerate() {
            let ready = match msg.depends_on {
                Some(dep) => {
                    assert!(dep < idx, "dependency {dep} of message {idx} must precede it");
                    arrival[dep]
                }
                None => 0,
            };
            let path = table
                .path(msg.src, msg.dst)
                .unwrap_or_else(|| panic!("{:?} -> {:?} unroutable in {mode:?}", msg.src, msg.dst));
            let hops = (path.len() - 1) as u64;
            total_hops += hops;
            total_flit_hops += hops * msg.flits;

            if hops == 0 {
                arrival[idx] = ready;
                completion = completion.max(ready);
                continue;
            }

            // Injection port serialization at the source.
            let inject_at = ready.max(*source_free.get(&msg.src).unwrap_or(&0));
            let mut t = inject_at;
            for (h, w) in path.windows(2).enumerate() {
                let link = (w[0], w[1]);
                let mut start = t.max(*edge_free.get(&link).unwrap_or(&0));
                // Relay-capacity constraint at intermediate routers.
                if h > 0 {
                    let node = w[0];
                    let channels = relay_free.entry(node).or_insert_with(|| {
                        let slots = self.graph.neighbors(node).len().clamp(1, MAX_ROUTER_RADIX);
                        vec![0; slots]
                    });
                    let best = channels
                        .iter_mut()
                        .min_by_key(|c| **c)
                        .expect("at least one relay channel");
                    start = start.max(*best);
                    *best = start + msg.flits;
                }
                edge_free.insert(link, start + msg.flits);
                *edge_busy.entry(link).or_insert(0) += msg.flits;
                // Serialization + one feed-through cycle per hop.
                t = start + msg.flits + 1;
            }
            source_free.insert(msg.src, inject_at + msg.flits);
            arrival[idx] = t;
            completion = completion.max(t);
        }

        SimReport {
            completion_cycles: completion,
            messages: messages.len(),
            total_hops,
            total_flit_hops,
            max_link_busy: edge_busy.values().copied().max().unwrap_or(0),
        }
    }

    /// Simulates a named DNC pattern with `flits` per message, using the
    /// recommended mode on HiMA fabrics and full routing elsewhere.
    pub fn run_pattern(&self, pattern: TrafficPattern, flits: u64) -> SimReport {
        let mode = if self.graph.topology() == crate::topology::Topology::Hima {
            pattern.recommended_mode()
        } else {
            Mode::Full
        };
        let messages = pattern.messages(&self.graph, flits);
        self.run(mode, &messages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    fn sim(topo: Topology, pts: usize) -> NocSim {
        NocSim::new(TopologyGraph::build(topo, pts))
    }

    #[test]
    fn single_message_latency_is_serialization_plus_hops() {
        let s = sim(Topology::Star, 4);
        let g = s.graph();
        let msgs = [Message::new(g.ct(), g.pts()[0], 8)];
        let rep = s.run(Mode::Full, &msgs);
        // 1 hop: 8 flits serialization + 1 feed-through.
        assert_eq!(rep.completion_cycles, 9);
        assert_eq!(rep.total_hops, 1);
        assert_eq!(rep.total_flit_hops, 8);
    }

    #[test]
    fn broadcast_serializes_at_the_source() {
        let s = sim(Topology::Star, 8);
        let rep = s.run_pattern(TrafficPattern::Broadcast, 4);
        // 8 messages of 4 flits leave one injection port: ≥ 8*4 cycles.
        assert!(rep.completion_cycles >= 32, "{rep:?}");
    }

    #[test]
    fn htree_transpose_congests_root() {
        // Distant-pair traffic funnels through the tree root; HiMA's
        // diagonals carry it directly (the Fig. 5 argument).
        let ht = sim(Topology::HTree, 16).run_pattern(TrafficPattern::Transpose, 16);
        let hm = sim(Topology::Hima, 16).run_pattern(TrafficPattern::Transpose, 16);
        assert!(
            hm.completion_cycles < ht.completion_cycles,
            "HiMA {} !< H-tree {}",
            hm.completion_cycles,
            ht.completion_cycles
        );
        assert!(hm.max_link_busy <= ht.max_link_busy);
    }

    #[test]
    fn all_to_all_scales_worse_on_star_than_hima() {
        let star = sim(Topology::Star, 16).run_pattern(TrafficPattern::AllToAll, 4);
        let hima = sim(Topology::Hima, 16).run_pattern(TrafficPattern::AllToAll, 4);
        assert!(
            hima.completion_cycles < star.completion_cycles,
            "hima {} !< star {}",
            hima.completion_cycles,
            star.completion_cycles
        );
    }

    #[test]
    fn ring_chain_time_accumulates_sequentially() {
        let s = sim(Topology::Hima, 8);
        let rep = s.run_pattern(TrafficPattern::RingAccumulate, 4);
        // 8 chained messages, each ≥ flits+1 cycles.
        assert!(rep.completion_cycles >= 8 * 5, "{rep:?}");
    }

    #[test]
    fn dependencies_delay_injection() {
        let s = sim(Topology::Star, 2);
        let g = s.graph();
        let msgs = [
            Message::new(g.pts()[0], g.ct(), 10),
            Message::after(g.ct(), g.pts()[1], 10, 0),
        ];
        let rep = s.run(Mode::Full, &msgs);
        // Second message cannot start before cycle 11.
        assert!(rep.completion_cycles >= 22, "{rep:?}");
    }

    #[test]
    fn contention_on_shared_link_serializes() {
        let s = sim(Topology::Star, 3);
        let g = s.graph();
        // Two PTs send to the same PT: both final hops share the CT->PT
        // link.
        let msgs = [
            Message::new(g.pts()[0], g.pts()[2], 8),
            Message::new(g.pts()[1], g.pts()[2], 8),
        ];
        let rep = s.run(Mode::Full, &msgs);
        let solo = s.run(Mode::Full, &msgs[..1]);
        assert!(rep.completion_cycles >= solo.completion_cycles + 8);
    }

    #[test]
    fn empty_pattern_is_zero_cycles() {
        let s = sim(Topology::Mesh, 4);
        let rep = s.run(Mode::Full, &[]);
        assert_eq!(rep.completion_cycles, 0);
        assert_eq!(rep.mean_hops(), 0.0);
    }

    #[test]
    fn self_message_costs_nothing() {
        let s = sim(Topology::Mesh, 4);
        let g = s.graph();
        let rep = s.run(Mode::Full, &[Message::new(g.pts()[0], g.pts()[0], 100)]);
        assert_eq!(rep.completion_cycles, 0);
    }

    #[test]
    fn more_flits_take_longer() {
        let s = sim(Topology::Hima, 16);
        let small = s.run_pattern(TrafficPattern::AllToAll, 2);
        let large = s.run_pattern(TrafficPattern::AllToAll, 16);
        assert!(large.completion_cycles > small.completion_cycles);
    }

    #[test]
    fn report_mean_hops() {
        let s = sim(Topology::Star, 4);
        let rep = s.run_pattern(TrafficPattern::Broadcast, 1);
        assert!((rep.mean_hops() - 1.0).abs() < 1e-9, "CT->PT is one hop on a star");
    }

    #[test]
    #[should_panic(expected = "unroutable")]
    fn wrong_mode_for_pattern_panics() {
        let s = sim(Topology::Hima, 24);
        let g = s.graph();
        // Diagonal mode cannot route between opposite-parity tiles.
        let even = g.pts().iter().copied().find(|&p| {
            let (r, c) = g.position(p).unwrap();
            (r + c) % 2 == 0
        }).unwrap();
        let odd = g.pts().iter().copied().find(|&p| {
            let (r, c) = g.position(p).unwrap();
            (r + c) % 2 == 1
        }).unwrap();
        s.run(Mode::Diagonal, &[Message::new(even, odd, 1)]);
    }
}
