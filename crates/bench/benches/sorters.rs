//! Criterion microbenchmarks for the hardware sorter models (the Fig. 7
//! subsystem): functional throughput of each sorter implementation plus
//! the modeled cycle counts as reported metrics.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hima::prelude::*;

fn usage_vector(n: usize) -> Vec<f32> {
    (0..n).map(|i| ((i * 193 + 71) % n.max(1)) as f32 / n as f32).collect()
}

fn bench_sorters(c: &mut Criterion) {
    let mut group = c.benchmark_group("usage_sort");
    for n in [256usize, 1024, 4096] {
        let usage = usage_vector(n);
        group.bench_with_input(BenchmarkId::new("centralized_merge", n), &usage, |b, u| {
            b.iter(|| CentralizedMergeSorter.argsort(black_box(u)))
        });
        group.bench_with_input(BenchmarkId::new("two_stage_nt4", n), &usage, |b, u| {
            let s = TwoStageSorter::new(4, n);
            b.iter(|| s.argsort(black_box(u)))
        });
        group.bench_with_input(BenchmarkId::new("two_stage_nt16", n), &usage, |b, u| {
            let s = TwoStageSorter::new(16, n);
            b.iter(|| s.argsort(black_box(u)))
        });
        group.bench_with_input(BenchmarkId::new("mdsa", n), &usage, |b, u| {
            let s = MdsaSorter::for_len(n);
            b.iter(|| s.argsort(black_box(u)))
        });
    }
    group.finish();

    // Report the modeled hardware cycle counts (the quantities Fig. 7 is
    // about) so `cargo bench` output carries them.
    println!("\nmodeled hardware latencies (cycles):");
    for n in [256usize, 1024, 4096] {
        println!(
            "  N={n:>5}: centralized {:>7}  two-stage(4) {:>5}  two-stage(16) {:>5}",
            CentralizedMergeSorter.latency_cycles(n),
            TwoStageSorter::new(4, n).latency_cycles(n),
            TwoStageSorter::new(16, n).latency_cycles(n),
        );
    }
}

fn bench_bitonic(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitonic_network");
    for width in [16usize, 64, 256] {
        let input: Vec<(f32, usize)> =
            (0..width).map(|i| (((i * 37) % width) as f32, i)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(width), &input, |b, inp| {
            let net = hima::sort::BitonicNetwork::new(width);
            b.iter(|| net.sort_pairs(black_box(inp)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sorters, bench_bitonic);
criterion_main!(benches);
