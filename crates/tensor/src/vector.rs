//! Vector helpers shared by the DNC kernels.
//!
//! These free functions mirror the vector primitives listed in Table 1 of the
//! paper (inner products, element-wise arithmetic, accumulated products) and
//! are deliberately allocation-light so the functional model is cheap enough
//! to sweep over many configurations.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn norm(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Cosine similarity with an `epsilon` guard against zero vectors, as used by
/// DNC content addressing (`D(u, v) = u·v / (‖u‖‖v‖ + ε)`).
pub fn cosine_similarity(a: &[f32], b: &[f32], epsilon: f32) -> f32 {
    dot(a, b) / (norm(a) * norm(b) + epsilon)
}

/// Element-wise sum `a + b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Element-wise difference `a - b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Element-wise (Hadamard) product `a ∘ b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "mul length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).collect()
}

/// Scales every element by `k`.
pub fn scale(a: &[f32], k: f32) -> Vec<f32> {
    a.iter().map(|x| x * k).collect()
}

/// Sum of all elements.
pub fn sum(a: &[f32]) -> f32 {
    a.iter().sum()
}

/// Running product prefix: `out[i] = Π_{j < i} a[j]`, with `out[0] = 1`.
///
/// This is the accumulated product (`vec acc-prod` in Table 1) used by the
/// allocation weighting `w_a[φ_j] = (1 − u[φ_j]) Π_{k<j} u[φ_k]`.
pub fn exclusive_prefix_product(a: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(a.len());
    let mut acc = 1.0;
    for &x in a {
        out.push(acc);
        acc *= x;
    }
    out
}

/// Argsort returning indices that would sort `a` ascending.
///
/// Ties are broken by index so the result is a deterministic permutation.
pub fn argsort_ascending(a: &[f32]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..a.len()).collect();
    idx.sort_by(|&i, &j| a[i].partial_cmp(&a[j]).unwrap_or(std::cmp::Ordering::Equal).then(i.cmp(&j)));
    idx
}

/// Returns `true` when all elements lie in `[0, 1]`.
pub fn in_unit_interval(a: &[f32]) -> bool {
    a.iter().all(|&x| (0.0..=1.0).contains(&x))
}

/// Returns `true` when the vector is a sub-probability distribution:
/// elements in `[0, 1 + tol]` and total ≤ `1 + tol`.
pub fn is_weighting(a: &[f32], tol: f32) -> bool {
    a.iter().all(|&x| x >= -tol && x <= 1.0 + tol) && sum(a) <= 1.0 + tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn dot_orthogonal_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn norm_pythagorean() {
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_similarity_parallel_and_antiparallel() {
        let s = cosine_similarity(&[1.0, 2.0], &[2.0, 4.0], 1e-6);
        assert!((s - 1.0).abs() < 1e-4);
        let s = cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0], 1e-6);
        assert!((s + 1.0).abs() < 1e-4);
    }

    #[test]
    fn cosine_similarity_zero_vector_is_finite() {
        let s = cosine_similarity(&[0.0, 0.0], &[1.0, 1.0], 1e-6);
        assert!(s.is_finite());
        assert_eq!(s, 0.0);
    }

    #[test]
    fn elementwise_ops() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]), vec![-2.0, -2.0]);
        assert_eq!(mul(&[1.0, 2.0], &[3.0, 4.0]), vec![3.0, 8.0]);
        assert_eq!(scale(&[1.0, 2.0], 2.0), vec![2.0, 4.0]);
    }

    #[test]
    fn prefix_product_matches_manual() {
        assert_close(
            &exclusive_prefix_product(&[2.0, 3.0, 4.0]),
            &[1.0, 2.0, 6.0],
            1e-6,
        );
        assert_eq!(exclusive_prefix_product(&[]), Vec::<f32>::new());
    }

    #[test]
    fn argsort_sorts_and_breaks_ties_by_index() {
        assert_eq!(argsort_ascending(&[0.3, 0.1, 0.2]), vec![1, 2, 0]);
        assert_eq!(argsort_ascending(&[0.5, 0.5, 0.1]), vec![2, 0, 1]);
    }

    #[test]
    fn weighting_predicates() {
        assert!(in_unit_interval(&[0.0, 0.5, 1.0]));
        assert!(!in_unit_interval(&[1.1]));
        assert!(is_weighting(&[0.2, 0.3], 1e-6));
        assert!(!is_weighting(&[0.9, 0.9], 1e-6));
    }
}
