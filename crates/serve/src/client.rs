//! Typed blocking client for the session server.
//!
//! One [`Client`] is one TCP connection issuing synchronous
//! request/reply calls. Sessions are plain `u64` ids, so several
//! connections can drive (or observe) the same session — the server
//! serializes them, answering `SessionBusy` when two commands race.
//!
//! # Resilience
//!
//! [`ClientOptions`] turns on the fault-tolerant client behaviors:
//!
//! * `rpc_deadline` — applied as the socket read/write timeout *and*
//!   carried in every step request as its server-side deadline, so a
//!   stuck call fails typed instead of hanging forever,
//! * `retry` — a seeded [`RetryPolicy`]: on a transport error the client
//!   reconnects under jittered capped exponential backoff, and
//!   **idempotent** requests (`Open`, `ReadRows`, `Metrics`,
//!   `TraceDump`; see [`Request::is_idempotent`]) are transparently
//!   resent. Non-idempotent requests (steps, resets, closes) still
//!   surface the original transport error — the reconnected socket is
//!   simply ready for the caller's own retry, and because session ids
//!   are server-side state, the same session resumes over the new
//!   connection.

use crate::protocol::{
    read_frame, write_frame, RawSessionSpec, Request, Response, ServeError,
};
use crate::retry::RetryPolicy;
use hima_telemetry::{MetricsSnapshot, TraceEvent};
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failure: transport, server-reported, or a reply that
/// doesn't fit the request.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server answered with a structured error.
    Server(ServeError),
    /// The reply did not decode, or was the wrong variant for the
    /// request.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Resilience knobs for a [`Client`]. The default is the bare client:
/// no deadlines, no reconnection.
#[derive(Debug, Clone, Default)]
pub struct ClientOptions {
    /// Per-call deadline: set as the socket read/write timeout and sent
    /// as the server-side deadline of every step request.
    pub rpc_deadline: Option<Duration>,
    /// Reconnect-with-backoff policy for transport errors; idempotent
    /// requests are resent automatically after a reconnect.
    pub retry: Option<RetryPolicy>,
}

/// A blocking connection to a session server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    addr: SocketAddr,
    opts: ClientOptions,
}

impl Client {
    /// Connects to a server with default (bare) options.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with(addr, ClientOptions::default())
    }

    /// Connects to a server with explicit resilience options.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        opts: ClientOptions,
    ) -> Result<Self, ClientError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| {
                ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "address resolved to nothing",
                ))
            })?;
        let (reader, writer) = open_stream(addr, &opts)?;
        Ok(Self { reader, writer, addr, opts })
    }

    /// The step deadline carried on the wire: the configured rpc
    /// deadline in whole milliseconds (0 = server default).
    fn wire_deadline_ms(&self) -> u32 {
        self.opts
            .rpc_deadline
            .map(|d| d.as_millis().min(u32::MAX as u128) as u32)
            .unwrap_or(0)
    }

    /// One write + read exchange over the current connection.
    fn exchange(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &req.encode())?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server hung up",
            ))
        })?;
        Response::decode(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// One synchronous request/reply exchange. With a retry policy
    /// configured, transport errors trigger reconnection under jittered
    /// backoff; idempotent requests are then resent, non-idempotent
    /// ones surface the original error over a freshly usable connection.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let first = match self.exchange(req) {
            Ok(Response::Error(e)) => return Err(ClientError::Server(e)),
            Ok(resp) => return Ok(resp),
            Err(ClientError::Io(e)) => e,
            Err(other) => return Err(other),
        };
        let Some(policy) = self.opts.retry else {
            return Err(ClientError::Io(first));
        };
        let mut last = first;
        for attempt in 0..policy.max_attempts {
            std::thread::sleep(policy.backoff(attempt));
            match open_stream(self.addr, &self.opts) {
                Ok((reader, writer)) => {
                    self.reader = reader;
                    self.writer = writer;
                }
                Err(ClientError::Io(e)) => {
                    last = e;
                    continue;
                }
                Err(other) => return Err(other),
            }
            if !req.is_idempotent() {
                // Reconnected, but resending could double-apply the
                // command; the caller decides. Session ids live on the
                // server, so its next call resumes the same session
                // over this connection.
                return Err(ClientError::Io(last));
            }
            match self.exchange(req) {
                Ok(Response::Error(e)) => return Err(ClientError::Server(e)),
                Ok(resp) => return Ok(resp),
                Err(ClientError::Io(e)) => last = e,
                Err(other) => return Err(other),
            }
        }
        Err(ClientError::Io(last))
    }

    /// Opens a session with the given configuration; returns its id.
    pub fn open(&mut self, spec: &RawSessionSpec) -> Result<u64, ClientError> {
        match self.call(&Request::Open { spec: spec.clone() })? {
            Response::Opened { session } => Ok(session),
            other => Err(unexpected("Opened", &other)),
        }
    }

    /// Advances a session by one step; returns the output row.
    pub fn step(&mut self, session: u64, input: &[f32]) -> Result<Vec<f32>, ClientError> {
        let deadline_ms = self.wire_deadline_ms();
        match self.call(&Request::Step { session, input: input.to_vec(), deadline_ms })? {
            Response::Stepped { mut outputs } if outputs.len() == 1 => Ok(outputs.remove(0)),
            other => Err(unexpected("Stepped{1}", &other)),
        }
    }

    /// Advances a session by `inputs.len()` steps (queued server-side,
    /// interleaving tick-by-tick with co-tenant sessions); returns all
    /// output rows.
    pub fn step_stream(
        &mut self,
        session: u64,
        inputs: &[Vec<f32>],
    ) -> Result<Vec<Vec<f32>>, ClientError> {
        let deadline_ms = self.wire_deadline_ms();
        match self.call(&Request::StepStream { session, inputs: inputs.to_vec(), deadline_ms })? {
            Response::Stepped { outputs } => Ok(outputs),
            other => Err(unexpected("Stepped", &other)),
        }
    }

    /// Queries the session's current read-vector row.
    pub fn read_rows(&mut self, session: u64) -> Result<Vec<f32>, ClientError> {
        match self.call(&Request::ReadRows { session })? {
            Response::Rows { read } => Ok(read),
            other => Err(unexpected("Rows", &other)),
        }
    }

    /// Resets a session to blank state (same weights).
    pub fn reset(&mut self, session: u64) -> Result<(), ClientError> {
        match self.call(&Request::Reset { session })? {
            Response::Done => Ok(()),
            other => Err(unexpected("Done", &other)),
        }
    }

    /// Closes a session.
    pub fn close_session(&mut self, session: u64) -> Result<(), ClientError> {
        match self.call(&Request::Close { session })? {
            Response::Done => Ok(()),
            other => Err(unexpected("Done", &other)),
        }
    }

    /// Fetches the server-wide metrics snapshot (counters, gauges and
    /// latency histograms; see [`crate::metrics`] for the catalog).
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { snapshot } => Ok(snapshot),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Fetches the session-lifecycle trace ring (oldest event first).
    pub fn trace_dump(&mut self) -> Result<Vec<TraceEvent>, ClientError> {
        match self.call(&Request::TraceDump)? {
            Response::Trace { events: e } => Ok(e),
            other => Err(unexpected("Trace", &other)),
        }
    }

    /// Asks the server process to shut down cleanly.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

/// Dials `addr` and applies the socket-level options.
fn open_stream(
    addr: SocketAddr,
    opts: &ClientOptions,
) -> Result<(BufReader<TcpStream>, BufWriter<TcpStream>), ClientError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    if let Some(deadline) = opts.rpc_deadline {
        stream.set_read_timeout(Some(deadline))?;
        stream.set_write_timeout(Some(deadline))?;
    }
    let read_half = stream.try_clone()?;
    Ok((BufReader::new(read_half), BufWriter::new(stream)))
}

fn unexpected(want: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {want}, got {got:?}"))
}
