//! Property-based tests: every hardware sorter model must agree with an
//! independently written reference sort on arbitrary inputs.

use hima_sort::{
    BitonicNetwork, CentralizedMergeSorter, Keyed, MdsaSorter, ParallelMergeSorter, SortEngine,
    TwoStageSorter,
};
use proptest::prelude::*;

fn reference_sort(input: &[Keyed]) -> Vec<Keyed> {
    let mut v = input.to_vec();
    v.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    v
}

fn keyed_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Keyed>> {
    prop::collection::vec(-1000.0f32..1000.0, len)
        .prop_map(|keys| keys.into_iter().zip(0..).collect())
}

proptest! {
    #[test]
    fn centralized_merge_matches_reference(input in keyed_vec(0..200)) {
        prop_assert_eq!(CentralizedMergeSorter.sort_pairs(&input), reference_sort(&input));
    }

    #[test]
    fn bitonic_matches_reference(input in keyed_vec(1..64)) {
        let net = BitonicNetwork::new(input.len());
        prop_assert_eq!(net.sort_pairs(&input), reference_sort(&input));
    }

    #[test]
    fn mdsa_matches_reference(input in keyed_vec(1..200)) {
        let mdsa = MdsaSorter::for_len(input.len());
        prop_assert_eq!(mdsa.sort_pairs(&input), reference_sort(&input));
    }

    #[test]
    fn pms_merge_matches_reference(
        a in keyed_vec(0..50),
        b in keyed_vec(0..50),
        c in keyed_vec(0..50),
    ) {
        let runs = vec![reference_sort(&a), reference_sort(&b), reference_sort(&c)];
        let all: Vec<Keyed> = runs.iter().flatten().copied().collect();
        let (merged, _) = ParallelMergeSorter::new(3).merge(&runs);
        prop_assert_eq!(merged, reference_sort(&all));
    }

    #[test]
    fn two_stage_matches_reference(keys in prop::collection::vec(-100.0f32..100.0, 1..256), tiles in 1usize..8) {
        let input: Vec<Keyed> = keys.into_iter().zip(0..).collect();
        let sorter = TwoStageSorter::new(tiles, input.len());
        prop_assert_eq!(sorter.sort_pairs(&input), reference_sort(&input));
    }

    #[test]
    fn two_stage_argsort_is_permutation(keys in prop::collection::vec(0.0f32..1.0, 1..128)) {
        let sorter = TwoStageSorter::new(4.min(keys.len()), keys.len());
        let idx = sorter.argsort(&keys);
        let mut seen = vec![false; keys.len()];
        for &i in &idx {
            prop_assert!(!seen[i], "duplicate index {}", i);
            seen[i] = true;
        }
        for w in idx.windows(2) {
            prop_assert!(keys[w[0]] <= keys[w[1]]);
        }
    }

    #[test]
    fn two_stage_never_slower_than_centralized_at_scale(
        tiles in 2usize..32,
        log_n in 8u32..12,
    ) {
        let n = 1usize << log_n;
        let two = TwoStageSorter::new(tiles, n).latency_cycles(n);
        let central = CentralizedMergeSorter.latency_cycles(n);
        prop_assert!(two < central, "two-stage {} !< centralized {}", two, central);
    }

    #[test]
    fn bitonic_latency_is_stage_count(width in 1usize..64) {
        let net = BitonicNetwork::new(width);
        prop_assert_eq!(net.latency_cycles(width), net.stages() as u64);
    }
}
