//! Synthetic bAbI-style task suite and the DNC-vs-DNC-D accuracy harness.
//!
//! The paper evaluates DNC-D's accuracy degradation on the 20 bAbI QA
//! tasks (Fig. 10). The dataset and the authors' trained weights are not
//! available, so this crate substitutes a *synthetic episodic suite*: 20
//! parameterized QA-style tasks ([`tasks::TASKS`]) whose episodes exercise
//! the same memory-access patterns (store facts, recall by key, chain
//! supporting facts, count, order, path-find). DESIGN.md documents why the
//! substitution preserves the measured quantity: Fig. 10 reports the error
//! of DNC-D *relative to DNC* with shared weights and inputs, which is a
//! property of the distributed approximation, not of the trained weights.
//!
//! [`eval`] runs the engine under test and the reference on the same
//! episodes and reports the relative error (fraction of query steps where
//! the engine's retrieved content diverges from the reference's), after
//! fitting the DNC-D read-merge weights `α` on a calibration split — the
//! inference-time analogue of the paper's trainable merge.
//!
//! Both harnesses drive models exclusively through the unified
//! [`hima_dnc::MemoryEngine`] API: an [`eval::EvalConfig`] names the
//! variant under test with a full [`hima_dnc::EngineSpec`] (topology ×
//! datapath × approximations), and [`train`] takes an
//! [`hima_dnc::EngineBuilder`], so every sweep — shards, lanes,
//! fixed-point — runs through one code path.

pub mod babi_format;
pub mod episode;
pub mod eval;
pub mod strategies;
pub mod tasks;
pub mod train;

pub use babi_format::{encode_story, parse_stories, EncodedStory, Story, Vocabulary};
pub use episode::{
    masked_step_block, step_block, try_masked_step_block, try_step_block, Episode,
    EpisodeBatch, StepBlockError,
};
pub use eval::{
    episode_query_stats, relative_error, task_error_from_stats, EvalConfig, QueryStats,
    TaskError,
};
pub use tasks::{TaskSpec, TASKS};
pub use train::{
    collect_query_samples, episode_features, episode_query_rows, episode_readout_counts,
    readout_accuracy, sequential_episode_features, trained_accuracy, TaskAccuracy,
    TrainedReadout,
};
