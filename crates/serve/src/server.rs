//! The std-only threaded TCP front end.
//!
//! One accept thread plus one thread per connection; each connection
//! reads length-prefixed frames, decodes a [`Request`], dispatches it to
//! the [`SessionHub`] and writes the [`Response`] frame back. All
//! serving semantics live in the hub — this layer only does framing,
//! connection bookkeeping and clean shutdown.
//!
//! Shutdown ordering (deadlock-free): mark stopping → unblock the accept
//! loop with a self-connection → `shutdown(Read)` every tracked stream
//! (in-flight replies still write) → join connection threads → stop the
//! hub (group threads drain their queues, answer, exit) → join groups.

use crate::protocol::{read_frame, write_frame, Request, Response, ServeError};
use crate::session::{SessionHub, StoreConfig};
use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Lane slots per engine grid — how many sessions of one
    /// configuration can be *resident* at once (more sessions than lanes
    /// swap through detached lane states).
    pub grid_lanes: usize,
    /// Scheduler tick: how long an idle group waits for commands before
    /// re-checking. Under load the loop runs command-driven and this is
    /// only the idle wake-up period.
    pub tick: Duration,
    /// Reap sessions idle for longer than this (`None` = never). A
    /// session with an in-flight step request is never reaped.
    pub idle_timeout: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { grid_lanes: 8, tick: Duration::from_micros(500), idle_timeout: None }
    }
}

/// A running session server.
pub struct Server {
    addr: SocketAddr,
    hub: Arc<SessionHub>,
    stopping: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds and starts serving; `addr` may use port 0 for an ephemeral
    /// port (read it back with [`Server::addr`]).
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServeConfig) -> std::io::Result<Server> {
        Self::bind_with_store(addr, cfg, None)
    }

    /// Like [`Server::bind`], with an optional durable session store:
    /// sessions evict to `store`'s directory instead of being discarded
    /// by the idle sweep, and sessions found there (from a previous
    /// process, even one that was killed) are adopted before the first
    /// connection is accepted.
    pub fn bind_with_store(
        addr: impl ToSocketAddrs,
        cfg: ServeConfig,
        store: Option<StoreConfig>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let hub = Arc::new(SessionHub::with_store(cfg, store)?);
        let stopping = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Mutex::new(Vec::new()));
        let conn_handles = Arc::new(Mutex::new(Vec::new()));

        let accept_handle = {
            let hub = Arc::clone(&hub);
            let stopping = Arc::clone(&stopping);
            let conns = Arc::clone(&conns);
            let conn_handles = Arc::clone(&conn_handles);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if let Ok(tracked) = stream.try_clone() {
                        conns.lock().unwrap().push(tracked);
                    }
                    let hub = Arc::clone(&hub);
                    let stopping = Arc::clone(&stopping);
                    let handle = std::thread::spawn(move || serve_connection(stream, hub, stopping));
                    conn_handles.lock().unwrap().push(handle);
                }
            })
        };

        Ok(Server { addr, hub, stopping, accept_handle: Some(accept_handle), conns, conn_handles })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hub, for in-process inspection (live-session counts in tests).
    pub fn hub(&self) -> &SessionHub {
        &self.hub
    }

    /// Whether a client has requested process shutdown.
    pub fn shutdown_requested(&self) -> bool {
        self.stopping.load(Ordering::SeqCst)
    }

    /// Blocks until a client sends [`Request::Shutdown`], then returns
    /// (the caller then drops the server, which drains and stops). The
    /// CLI `serve` subcommand is this in a loop.
    pub fn wait_for_shutdown(&self) {
        while !self.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Stops accepting, closes connections, drains in-flight work and
    /// joins every thread. Also runs on drop; call it explicitly when
    /// you want completion before proceeding.
    pub fn stop(&mut self) {
        if self.accept_handle.is_none() {
            return;
        }
        self.stopping.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // Stop reading new requests; in-flight replies still write.
        for stream in self.conns.lock().unwrap().drain(..) {
            let _ = stream.shutdown(Shutdown::Read);
        }
        let handles: Vec<_> = self.conn_handles.lock().unwrap().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        self.hub.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One connection's request/reply loop.
fn serve_connection(stream: TcpStream, hub: Arc<SessionHub>, stopping: Arc<AtomicBool>) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let metrics = Arc::clone(hub.metrics());
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            // Clean EOF or a dead socket either way: the conversation is
            // over.
            Ok(None) | Err(_) => return,
        };
        metrics.frames_in.inc();
        metrics.bytes_in.add(payload.len() as u64 + 4);
        let resp = match Request::decode(&payload) {
            Ok(Request::Shutdown) => {
                metrics.record_request(&Request::Shutdown);
                stopping.store(true, Ordering::SeqCst);
                Response::ShuttingDown
            }
            Ok(req) if stopping.load(Ordering::SeqCst) => {
                metrics.record_request(&req);
                let err = ServeError::ShuttingDown;
                metrics.record_error(&err);
                Response::Error(err)
            }
            Ok(req) => hub.dispatch(req),
            Err(e) => {
                let err = ServeError::Protocol(e.to_string());
                metrics.record_error(&err);
                Response::Error(err)
            }
        };
        let encoded = resp.encode();
        metrics.frames_out.inc();
        metrics.bytes_out.add(encoded.len() as u64 + 4);
        if write_frame(&mut writer, &encoded).is_err() {
            return;
        }
    }
}
