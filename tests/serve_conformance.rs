//! Serve conformance: the server's correctness contract, pinned.
//!
//! A session stepped through the server's continuously-batched lane grid
//! must be **bit-identical** to a solo single-lane engine stepped with
//! the same inputs — regardless of which sessions share the grid, when
//! they join or leave, and how often the session is swapped out to a
//! detached lane state and back in. The suite sweeps topology ×
//! datapath, forces swaps by running more concurrent sessions than the
//! grid has lanes, and interleaves the sessions from racing client
//! threads so tick co-tenancy is real and adversarial (the outputs must
//! not depend on which steps happened to share a tick).

use hima::prelude::*;
use hima_serve::loadgen::synth_input;
use hima_serve::RawSessionSpec;
use std::time::Duration;

fn params() -> DncParams {
    DncParams::new(24, 6, 2).with_hidden(20).with_io(5, 5)
}

fn spec_grid() -> Vec<(&'static str, EngineSpec)> {
    vec![
        ("monolithic/f32", EngineSpec::monolithic()),
        ("sharded(3)/f32", EngineSpec::sharded(3)),
        (
            "monolithic/Q16.16",
            EngineSpec::monolithic().with_datapath(Datapath::Quantized(QFormat::q16_16())),
        ),
        (
            "sharded(3)/Q16.16",
            EngineSpec::sharded(3).with_datapath(Datapath::Quantized(QFormat::q16_16())),
        ),
    ]
}

/// Solo reference: one single-lane engine per session, stepped
/// sequentially with the session's stream.
fn solo_outputs(spec: &EngineSpec, session: usize, steps: usize) -> Vec<Vec<f32>> {
    let p = params();
    let mut engine = EngineBuilder::new(p).with_spec(*spec).lanes(1).seed(42).build();
    (0..steps)
        .map(|t| {
            let input = synth_input(session, t, p.input_size);
            let y = engine.step_batch(&Matrix::from_rows(&[input.as_slice()]));
            y.row(0).to_vec()
        })
        .collect()
}

fn serve_cfg(grid_lanes: usize) -> ServeConfig {
    ServeConfig {
        grid_lanes,
        tick: Duration::from_micros(200),
        idle_timeout: None,
        ..ServeConfig::default()
    }
}

/// The headline contract: 5 concurrent sessions on a 2-lane grid (every
/// session repeatedly parked, swapped out and swapped back in), outputs
/// and read rows bit-identical to solo replay, across every topology ×
/// datapath combination.
#[test]
fn grid_sessions_match_solo_replay_bit_exactly() {
    let p = params();
    for (label, spec) in spec_grid() {
        let server = Server::bind("127.0.0.1:0", serve_cfg(2)).expect("bind");
        let addr = server.addr();
        let raw = RawSessionSpec::from_parts(&p, &spec, 42);
        let steps = 12;
        let handles: Vec<_> = (0..5)
            .map(|i| {
                let raw = raw.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let session = client.open(&raw).unwrap();
                    // Mix single steps and bursts so lane residency spans
                    // several requests for some steps and one for others.
                    let mut got: Vec<Vec<f32>> = Vec::new();
                    let mut t = 0;
                    while t < steps {
                        let burst = if (t + i) % 3 == 0 { 3.min(steps - t) } else { 1 };
                        let inputs: Vec<Vec<f32>> =
                            (t..t + burst).map(|s| synth_input(i, s, p.input_size)).collect();
                        got.extend(client.step_stream(session, &inputs).unwrap());
                        t += burst;
                    }
                    let read = client.read_rows(session).unwrap();
                    client.close_session(session).unwrap();
                    (i, got, read)
                })
            })
            .collect();
        for handle in handles {
            let (i, got, read) = handle.join().unwrap();
            let want = solo_outputs(&spec, i, steps);
            assert_eq!(got.len(), want.len(), "{label} session {i}");
            for (t, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(g, w, "{label}: session {i} step {t} diverged from solo replay");
            }
            // The queried read row equals the solo engine's carried read
            // vector after the same stream.
            let mut solo = EngineBuilder::new(p).with_spec(spec).lanes(1).seed(42).build();
            for t in 0..steps {
                let input = synth_input(i, t, p.input_size);
                solo.step_batch(&Matrix::from_rows(&[input.as_slice()]));
            }
            assert_eq!(read, solo.last_read_row(0), "{label}: session {i} read row");
        }
    }
}

/// Reset through the server equals a fresh solo engine: the session's
/// post-reset stream replays the solo outputs from scratch.
#[test]
fn server_reset_matches_fresh_engine_bit_exactly() {
    let p = params();
    let spec = EngineSpec::sharded(3);
    let server = Server::bind("127.0.0.1:0", serve_cfg(2)).expect("bind");
    let mut client = Client::connect(server.addr()).unwrap();
    let raw = RawSessionSpec::from_parts(&p, &spec, 42);
    let session = client.open(&raw).unwrap();
    for t in 0..6 {
        client.step(session, &synth_input(0, t, p.input_size)).unwrap();
    }
    client.reset(session).unwrap();
    let want = solo_outputs(&spec, 0, 6);
    for (t, w) in want.iter().enumerate() {
        let y = client.step(session, &synth_input(0, t, p.input_size)).unwrap();
        assert_eq!(&y, w, "post-reset step {t}");
    }
    client.close_session(session).unwrap();
}

/// The blocked kernel tier serves and stays in lockstep with *its own*
/// solo replay (the serve layer adds no numeric differences on any
/// backend; scalar-vs-blocked deltas are the backend conformance suite's
/// business, not this one's).
#[test]
fn blocked_backend_sessions_match_blocked_solo_replay() {
    let p = params();
    let spec = EngineSpec::monolithic().with_backend(hima::tensor::Backend::Blocked);
    let server = Server::bind("127.0.0.1:0", serve_cfg(2)).expect("bind");
    let addr = server.addr();
    let raw = RawSessionSpec::from_parts(&p, &spec, 42);
    let handles: Vec<_> = (0..3)
        .map(|i| {
            let raw = raw.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let session = client.open(&raw).unwrap();
                let inputs: Vec<Vec<f32>> =
                    (0..10).map(|t| synth_input(i, t, p.input_size)).collect();
                let got = client.step_stream(session, &inputs).unwrap();
                client.close_session(session).unwrap();
                (i, got)
            })
        })
        .collect();
    for handle in handles {
        let (i, got) = handle.join().unwrap();
        let want = solo_outputs(&spec, i, 10);
        for (t, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g, w, "blocked session {i} step {t}");
        }
    }
}

/// Sessions of *different* configurations coexist on one server (one
/// grid per configuration) without contaminating each other.
#[test]
fn mixed_config_sessions_stay_isolated() {
    let p = params();
    let server = Server::bind("127.0.0.1:0", serve_cfg(2)).expect("bind");
    let addr = server.addr();
    let handles: Vec<_> = spec_grid()
        .into_iter()
        .enumerate()
        .map(|(i, (label, spec))| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let raw = RawSessionSpec::from_parts(&p, &spec, 42);
                let session = client.open(&raw).unwrap();
                let inputs: Vec<Vec<f32>> =
                    (0..8).map(|t| synth_input(i, t, p.input_size)).collect();
                let got = client.step_stream(session, &inputs).unwrap();
                client.close_session(session).unwrap();
                let want = solo_outputs(&spec, i, 8);
                for (t, (g, w)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(g, w, "{label}: step {t} diverged with mixed co-tenants");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
}
