//! [`LaneMask`]: which batch lanes are active at a time step.
//!
//! Ragged batching runs unequal-length sequences through one `B`-lane
//! grid: once a lane's sequence ends, the lane goes *inactive* — its
//! state is frozen and the row-block kernels **skip** its rows instead
//! of zeroing and recomputing them. The mask is the single source of
//! truth threaded through the masked kernel variants
//! ([`Matrix::matmul_nt_masked`](crate::Matrix::matmul_nt_masked),
//! [`activation::sigmoid_block_masked`](crate::activation::sigmoid_block_masked),
//! [`softmax_rows_masked`](crate::softmax_rows_masked), …) up to the
//! batched DNC engines' `step_batch_masked`.
//!
//! # Example
//!
//! ```
//! use hima_tensor::LaneMask;
//!
//! // Three sequences of lengths 4, 2 and 3 at time step 2: lane 1 ended.
//! let mask = LaneMask::for_step(&[4, 2, 3], 2);
//! assert!(mask.is_active(0) && !mask.is_active(1) && mask.is_active(2));
//! assert_eq!(mask.active_count(), 2);
//! assert!(!mask.is_full());
//! ```

use serde::{Deserialize, Serialize};

/// Per-lane activity flags for one time step of a `B`-lane row block.
///
/// Row `b` of a masked kernel is computed iff `is_active(b)`; inactive
/// rows are left untouched (outputs zero, state frozen) — never zeroed
/// and recomputed.
// `Default` (zero lanes) exists so engines can `mem::take` a cached full
// mask around a `&mut self` call without allocating a replacement.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneMask {
    // The flags are the single source of truth; counts are derived on
    // demand (B is small and callers are per-step), so no cached field
    // can ever disagree with them — not even through deserialization.
    active: Vec<bool>,
}

impl LaneMask {
    /// A fully-active mask over `lanes` lanes (the uniform-length case).
    pub fn full(lanes: usize) -> Self {
        Self { active: vec![true; lanes] }
    }

    /// Builds a mask from a predicate over lane indices.
    pub fn from_fn(lanes: usize, f: impl FnMut(usize) -> bool) -> Self {
        Self { active: (0..lanes).map(f).collect() }
    }

    /// The mask of lanes still running at time step `t` when lane `b`
    /// carries a sequence of `lens[b]` steps: lane `b` is active iff
    /// `t < lens[b]`. This is the canonical mask of padded ragged
    /// batching — the lane grid steps to the longest sequence and
    /// shorter lanes drop out as their sequences end.
    pub fn for_step(lens: &[usize], t: usize) -> Self {
        Self::from_fn(lens.len(), |b| t < lens[b])
    }

    /// Number of lanes `B` the mask covers.
    pub fn lanes(&self) -> usize {
        self.active.len()
    }

    /// Whether lane `b` is active.
    ///
    /// # Panics
    ///
    /// Panics if `b >= lanes()`.
    pub fn is_active(&self, b: usize) -> bool {
        self.active[b]
    }

    /// Number of active lanes.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|a| **a).count()
    }

    /// Whether every lane is active (the uniform fast path: masked
    /// kernels with a full mask are bit-identical to their unmasked
    /// forms).
    pub fn is_full(&self) -> bool {
        self.active.iter().all(|a| *a)
    }

    /// Whether at least one lane is active.
    pub fn any_active(&self) -> bool {
        self.active.iter().any(|a| *a)
    }

    /// Iterator over the active lane indices, ascending.
    pub fn active_lanes(&self) -> impl Iterator<Item = usize> + '_ {
        self.active.iter().enumerate().filter_map(|(b, a)| a.then_some(b))
    }

    /// The raw per-lane flags.
    pub fn as_bools(&self) -> &[bool] {
        &self.active
    }
}

impl From<Vec<bool>> for LaneMask {
    fn from(active: Vec<bool>) -> Self {
        Self { active }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mask_is_full() {
        let m = LaneMask::full(3);
        assert_eq!(m.lanes(), 3);
        assert_eq!(m.active_count(), 3);
        assert!(m.is_full() && m.any_active());
        assert_eq!(m.active_lanes().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn for_step_tracks_sequence_ends() {
        let lens = [3usize, 1, 2];
        assert!(LaneMask::for_step(&lens, 0).is_full());
        let t1 = LaneMask::for_step(&lens, 1);
        assert_eq!(t1.as_bools(), &[true, false, true]);
        assert_eq!(t1.active_count(), 2);
        let t2 = LaneMask::for_step(&lens, 2);
        assert_eq!(t2.active_lanes().collect::<Vec<_>>(), vec![0]);
        let t3 = LaneMask::for_step(&lens, 3);
        assert!(!t3.any_active());
        assert_eq!(t3.active_count(), 0);
    }

    #[test]
    fn from_fn_and_from_bools_agree() {
        let a = LaneMask::from_fn(4, |b| b % 2 == 0);
        let b = LaneMask::from(vec![true, false, true, false]);
        assert_eq!(a, b);
        assert_eq!(a.active_count(), 2);
    }

    #[test]
    fn zero_lane_mask_is_degenerate_but_valid() {
        let m = LaneMask::full(0);
        assert_eq!(m.lanes(), 0);
        assert!(m.is_full(), "vacuously full");
        assert!(!m.any_active());
    }

    #[test]
    #[should_panic]
    fn is_active_bounds_checked() {
        LaneMask::full(2).is_active(2);
    }
}
