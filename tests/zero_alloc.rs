//! Steady-state **zero-allocation** gate for the batched stepping paths.
//!
//! The perf claim of the `StepWorkspace` work is structural, not
//! wall-clock (CI boxes are noisy): after the first step has sized every
//! scratch buffer, `step_batch_into` / `step_batch_masked_into` must
//! perform **zero heap allocations**, for every engine variant — topology
//! × datapath × masked/uniform × batch size. The allocating entry points
//! (`step_batch`, `step_batch_masked`) are thin wrappers whose only
//! allocation is the returned output block, which is pinned here too
//! (exactly one allocation per step).
//!
//! The gate is enforced with a counting global allocator (the
//! `counting_alloc` module below). Rayon is pinned to one worker thread:
//! the vendored rayon spawns scoped threads per call above one worker,
//! and thread spawning allocates — intra-step parallelism is exercised by
//! the conformance suites, while this suite isolates the kernels' own
//! allocation behavior.

use hima::dnc::{DncParams, EngineBuilder, EngineSpec};
use hima::tensor::{LaneMask, Matrix, QFormat};
use hima_dnc::Datapath;

/// A global allocator that counts every allocation (alloc, zeroed alloc
/// and realloc) **per thread** before delegating to the system allocator
/// — the tiny test-support "counting-alloc" harness.
///
/// The counter is thread-local (const-initialized native TLS, so the
/// counting itself never allocates) because the measured property is
/// "the stepping thread performs no allocation": other threads in the
/// process allocate at scheduler-dependent times — e.g. libtest's main
/// thread lazily initializes its channel-parking context the first time
/// its event `recv()` actually blocks — and a process-global counter
/// would pick those up as spurious in-window allocations.
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    pub struct CountingAlloc;

    thread_local! {
        static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    }

    /// Number of heap allocations made by the calling thread.
    pub fn allocations() -> u64 {
        ALLOCATIONS.with(Cell::get)
    }

    fn count() {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
    }

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            count();
            unsafe { System.alloc(layout) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            count();
            unsafe { System.alloc_zeroed(layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            count();
            unsafe { System.realloc(ptr, layout, new_size) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
    }
}

#[global_allocator]
static COUNTER: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc;

fn params() -> DncParams {
    DncParams::new(32, 8, 2).with_hidden(24).with_io(6, 6)
}

/// Every engine-variant axis the gate covers: topology × datapath.
fn specs() -> Vec<(EngineSpec, &'static str)> {
    let q = QFormat::q16_16();
    vec![
        (EngineSpec::monolithic(), "monolithic/f32"),
        (EngineSpec::sharded(4), "sharded(4)/f32"),
        (EngineSpec::monolithic().with_datapath(Datapath::Quantized(q)), "monolithic/Q16.16"),
        (EngineSpec::sharded(4).with_datapath(Datapath::Quantized(q)), "sharded(4)/Q16.16"),
    ]
}

/// Pre-built per-step input blocks (built *outside* the measured window).
fn input_blocks(batch: usize, steps: usize) -> Vec<Matrix> {
    (0..steps)
        .map(|t| {
            Matrix::from_fn(batch, params().input_size, |b, i| {
                (((b * 131 + t * 17 + i * 7) as f32) * 0.13).sin()
            })
        })
        .collect()
}

/// A partial mask: the first ⌈B/2⌉ lanes active (full for B = 1).
fn partial_mask(batch: usize) -> LaneMask {
    let active = batch.div_ceil(2);
    LaneMask::from_fn(batch, |b| b < active)
}

/// Asserts the measured window of `steps` calls performs exactly
/// `expected` heap allocations.
fn assert_allocs(label: &str, expected: u64, run: impl FnOnce()) {
    let before = counting_alloc::allocations();
    run();
    let got = counting_alloc::allocations() - before;
    assert_eq!(got, expected, "{label}: {got} heap allocations, expected {expected}");
}

/// The gate proper: warm one engine up, then prove the steady state.
fn check_variant(spec: EngineSpec, label: &str, batch: usize) {
    let blocks = input_blocks(batch, 6);
    let mask = partial_mask(batch);
    let full = LaneMask::full(batch);
    let mut engine = EngineBuilder::new(params()).with_spec(spec).lanes(batch).seed(7).build();
    let mut y = Matrix::zeros(batch, params().output_size);

    // Warm-up: the first steps size the workspace, the per-lane scratch
    // and the profile map; the masked branch is warmed with both masks.
    engine.step_batch_into(&blocks[0], &mut y);
    engine.step_batch_masked_into(&blocks[1], &mask, &mut y);

    // Steady state, uniform path: zero allocations.
    assert_allocs(&format!("{label} B={batch} uniform"), 0, || {
        for block in &blocks[2..4] {
            engine.step_batch_into(block, &mut y);
        }
    });

    // Steady state, masked path (partial and full masks): zero.
    assert_allocs(&format!("{label} B={batch} masked"), 0, || {
        engine.step_batch_masked_into(&blocks[4], &mask, &mut y);
        engine.step_batch_masked_into(&blocks[5], &full, &mut y);
    });

    // Reset is in place, and the first post-reset step is still
    // allocation-free: engines reused across episodes (harnesses,
    // pipeline workers) never re-pay the warm-up.
    assert_allocs(&format!("{label} B={batch} reset+step"), 0, || {
        engine.reset();
        engine.step_batch_into(&blocks[0], &mut y);
    });

    // The allocating entry point is a thin wrapper: exactly one
    // allocation per step — the returned output block.
    assert_allocs(&format!("{label} B={batch} step_batch wrapper"), 2, || {
        for block in &blocks[2..4] {
            let out = engine.step_batch(block);
            std::hint::black_box(&out);
        }
    });
}

// One #[test] for the whole binary (both phases run sequentially): the
// windows measure the calling thread's allocations, and keeping a single
// test keeps the binary immune to libtest's own threading however the
// harness is invoked.
#[test]
fn steady_state_stepping_performs_zero_heap_allocations() {
    // One rayon worker: see the module docs.
    let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().expect("rayon pool");
    pool.install(|| {
        for batch in [1usize, 8] {
            for (spec, label) in specs() {
                check_variant(spec, label, batch);
            }
        }
    });
    workspace_and_allocating_paths_are_bit_identical();
}

/// Second phase: the zero-alloc path must not buy speed with drift —
/// every variant's `_into` step reproduces the allocating step
/// bit-for-bit, including interleaved masked/uniform stepping against a
/// reused output block.
fn workspace_and_allocating_paths_are_bit_identical() {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().expect("rayon pool");
    pool.install(|| {
        for batch in [1usize, 3] {
            for (spec, label) in specs() {
                let blocks = input_blocks(batch, 5);
                let mask = partial_mask(batch);
                let mut a =
                    EngineBuilder::new(params()).with_spec(spec).lanes(batch).seed(11).build();
                let mut b =
                    EngineBuilder::new(params()).with_spec(spec).lanes(batch).seed(11).build();
                let mut y = Matrix::filled(batch, params().output_size, f32::NAN);
                for (t, block) in blocks.iter().enumerate() {
                    let want = if t % 2 == 0 {
                        a.step_batch(block)
                    } else {
                        a.step_batch_masked(block, &mask)
                    };
                    if t % 2 == 0 {
                        b.step_batch_into(block, &mut y);
                    } else {
                        b.step_batch_masked_into(block, &mask, &mut y);
                    }
                    assert_eq!(y, want, "{label} B={batch} t={t}");
                    assert_eq!(a.last_read_rows(), b.last_read_rows(), "{label} B={batch} t={t}");
                }
            }
        }
    });
}
