//! Trained readout: reservoir-style ridge regression on the DNC features.
//!
//! Training a full DNC end-to-end needs BPTT through every memory
//! operation — out of scope for a hardware reproduction (and unnecessary:
//! see DESIGN.md). What *can* be trained cheaply and principally is the
//! output readout: treat the DNC (controller + memory) as a fixed
//! recurrent reservoir and fit a linear map from its feature vector
//! `[h_t ; v_r]` to one-hot answer targets by ridge regression, exactly as
//! in echo-state networks. The readout sees the *read vectors* only — see
//! [`FeatureModel`] for why — yielding absolute retrieval accuracy for any
//! engine variant: if a sharded or quantized engine retrieves worse
//! content, its trained readout answers fewer queries correctly.
//!
//! The harness is generic over the unified [`MemoryEngine`] API: callers
//! pass an [`EngineBuilder`] naming the variant, and the episode runner
//! builds one batch lane per episode.

use crate::episode::{masked_step_block, max_len, Episode};
use crate::tasks::{TaskSpec, TASKS, VOCAB};
use hima_dnc::{DncParams, EngineBuilder, MemoryEngine};
use hima_tensor::linalg::ridge_regression;
use hima_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A linear readout `y = W f` trained by ridge regression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedReadout {
    weights: Matrix,
}

impl TrainedReadout {
    /// Fits the readout on `(feature, one-hot target)` rows.
    ///
    /// Falls back to a zero readout if the (regularized) normal equations
    /// are singular — only possible with `lambda <= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `features` and `targets` disagree on row count or either
    /// is empty.
    pub fn fit(features: &Matrix, targets: &Matrix, lambda: f32) -> Self {
        let weights = ridge_regression(features, targets, lambda)
            .unwrap_or_else(|| Matrix::zeros(targets.cols(), features.cols()));
        Self { weights }
    }

    /// The fitted weights (`classes × feature_dim`).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Predicted class scores for one feature vector.
    pub fn predict(&self, features: &[f32]) -> Vec<f32> {
        self.weights.matvec(features)
    }

    /// Predicted class (argmax of the scores).
    pub fn predict_class(&self, features: &[f32]) -> usize {
        let scores = self.predict(features);
        let mut best = 0;
        for (i, &s) in scores.iter().enumerate().skip(1) {
            if s > scores[best] {
                best = i;
            }
        }
        best
    }
}

/// A model that can provide query-step features.
///
/// The features are the **read vectors only** (not the controller hidden
/// state): at a query step the controller trivially echoes the probed
/// token, so a readout over `[h ; v_r]` would answer without touching the
/// memory and mask the retrieval-quality difference between engine
/// variants. Restricting the readout to `v_r` makes the trained accuracy
/// measure exactly what the memory returned.
///
/// Every single-lane [`MemoryEngine`] implements this via the blanket
/// impl, so the sequential feature path works for any variant the
/// [`EngineBuilder`] can produce; [`episode_features`] adds the batched
/// fast path on top.
pub trait FeatureModel {
    /// Resets recurrent and memory state.
    fn reset_state(&mut self);
    /// Steps on one input and returns the memory-read feature vector.
    fn step_features(&mut self, input: &[f32]) -> Vec<f32>;
}

impl<E: MemoryEngine + ?Sized> FeatureModel for E {
    fn reset_state(&mut self) {
        self.reset();
    }

    fn step_features(&mut self, input: &[f32]) -> Vec<f32> {
        self.step(input);
        self.last_read_row(0).to_vec()
    }
}

/// The one-episode-at-a-time feature runner: resets the model before each
/// episode and collects the feature vector at every step. This is the
/// sequential *reference* the batched [`episode_features`] is
/// conformance-tested against (workspace `tests/ragged_conformance.rs`),
/// and is available for any custom [`FeatureModel`].
pub fn sequential_episode_features<M: FeatureModel + ?Sized>(
    model: &mut M,
    episodes: &[Episode],
) -> Vec<Vec<Vec<f32>>> {
    episodes
        .iter()
        .map(|ep| {
            model.reset_state();
            ep.inputs.iter().map(|x| model.step_features(x)).collect()
        })
        .collect()
}

/// Runs every episode from blank state through an engine built from
/// `builder` and returns the read-vector features at every step of every
/// episode: `result[episode][step]` (so `result[b].len() ==
/// episodes[b].len()` even for ragged lists).
///
/// Every episode list — uniform or ragged — runs **batched**, one lane
/// per episode through shared weights: the lane grid steps to the
/// longest episode, shorter lanes dropping out of the per-step
/// [`LaneMask`](hima_dnc::LaneMask) as their episodes end
/// ([`masked_step_block`]), their state frozen by
/// [`step_batch_masked`](MemoryEngine::step_batch_masked). Bit-identical
/// to [`sequential_episode_features`] on a single-lane engine
/// (workspace ragged conformance suite); a uniform list degenerates to
/// fully-active masks, i.e. exactly the old lock-step fast path. The
/// previous single-lane ragged fallback is gone.
pub fn episode_features(builder: &EngineBuilder, episodes: &[Episode]) -> Vec<Vec<Vec<f32>>> {
    if episodes.is_empty() {
        return Vec::new();
    }
    let steps = max_len(episodes).expect("non-empty list");
    let mut engine = builder.clone().lanes(episodes.len()).build();
    let mut features: Vec<Vec<Vec<f32>>> =
        episodes.iter().map(|e| Vec::with_capacity(e.len())).collect();
    // One reused output block: the engine's workspace makes the step
    // itself allocation-free, and `_into` keeps the discarded outputs
    // from allocating either.
    let mut y = Matrix::zeros(episodes.len(), builder.params().output_size);
    for t in 0..steps {
        let (block, mask) = masked_step_block(episodes, t);
        engine.step_batch_masked_into(&block, &mask, &mut y);
        for lane in mask.active_lanes() {
            features[lane].push(engine.last_read_row(lane).to_vec());
        }
    }
    features
}

/// Collects `(features, one-hot targets)` at the query steps of episodes
/// whose answers are the probed fact tokens. In the synthetic suite the
/// expected answer at a query step is the token one-hot in the query input
/// itself (a recognition target: did the memory retrieve the probed key?).
pub fn collect_query_samples(
    builder: &EngineBuilder,
    episodes: &[Episode],
) -> (Matrix, Matrix) {
    let all_features = episode_features(builder, episodes);
    let mut feats: Vec<Vec<f32>> = Vec::new();
    let mut targets: Vec<Vec<f32>> = Vec::new();
    for (ep, ep_features) in episodes.iter().zip(&all_features) {
        let (f, y) = episode_query_rows(ep, ep_features);
        feats.extend(f);
        targets.extend(y);
    }
    assert!(!feats.is_empty(), "episodes contained no query steps");
    (
        Matrix::from_rows(&feats),
        Matrix::from_rows(&targets),
    )
}

/// The `(feature, one-hot target)` rows one episode contributes to the
/// readout regression, given its per-step features (`features[step]`) —
/// the per-episode unit of [`collect_query_samples`]. The pipelined
/// harness (`hima-pipeline`) computes these rows on its engine workers
/// and assembles them in episode-index order, reproducing the
/// synchronous sample matrices bit for bit.
pub fn episode_query_rows(
    episode: &Episode,
    features: &[Vec<f32>],
) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
    let mut feats: Vec<Vec<f32>> = Vec::with_capacity(episode.query_steps.len());
    let mut targets: Vec<Vec<f32>> = Vec::with_capacity(episode.query_steps.len());
    for (t, f) in features.iter().enumerate() {
        if episode.query_steps.contains(&t) {
            let mut y = vec![0.0f32; VOCAB];
            y[query_token(&episode.inputs[t])] = 1.0;
            feats.push(f.clone());
            targets.push(y);
        }
    }
    (feats, targets)
}

/// The `(correct, total)` query counts a trained readout scores on one
/// episode, given its per-step features — the per-episode unit of
/// [`readout_accuracy`], shared with the pipelined harness.
pub fn episode_readout_counts(
    readout: &TrainedReadout,
    episode: &Episode,
    features: &[Vec<f32>],
) -> (usize, usize) {
    let mut correct = 0usize;
    let mut total = 0usize;
    for &t in &episode.query_steps {
        total += 1;
        if readout.predict_class(&features[t]) == query_token(&episode.inputs[t]) {
            correct += 1;
        }
    }
    (correct, total)
}

/// The token probed by a query-step input (argmax of the one-hot block).
pub fn query_token(input: &[f32]) -> usize {
    input
        .iter()
        .take(VOCAB)
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Accuracy of a trained readout on held-out episodes.
pub fn readout_accuracy(
    builder: &EngineBuilder,
    readout: &TrainedReadout,
    episodes: &[Episode],
) -> f64 {
    let all_features = episode_features(builder, episodes);
    let mut correct = 0usize;
    let mut total = 0usize;
    for (ep, ep_features) in episodes.iter().zip(&all_features) {
        let (c, n) = episode_readout_counts(readout, ep, ep_features);
        correct += c;
        total += n;
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

/// Per-task trained accuracy of DNC vs DNC-D.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskAccuracy {
    /// Task id (1-20).
    pub task_id: usize,
    /// Task name.
    pub name: &'static str,
    /// Centralized DNC accuracy in `[0,1]`.
    pub dnc: f64,
    /// DNC-D accuracy in `[0,1]`.
    pub dncd: f64,
}

/// Trains per-task readouts for the monolithic DNC and a `tiles`-shard
/// DNC-D (shared weights) and evaluates both on held-out episodes.
pub fn trained_accuracy(
    params: DncParams,
    tiles: usize,
    seed: u64,
    train_episodes: usize,
    eval_episodes: usize,
    lambda: f32,
) -> Vec<TaskAccuracy> {
    let dnc = EngineBuilder::new(params).seed(seed);
    let dncd = EngineBuilder::new(params).sharded(tiles).seed(seed);
    TASKS
        .iter()
        .map(|task| trained_task_accuracy(task, &dnc, &dncd, seed, train_episodes, eval_episodes, lambda))
        .collect()
}

fn trained_task_accuracy(
    task: &TaskSpec,
    dnc: &EngineBuilder,
    dncd: &EngineBuilder,
    seed: u64,
    train_episodes: usize,
    eval_episodes: usize,
    lambda: f32,
) -> TaskAccuracy {
    let train = task.generate(train_episodes, seed ^ 0x7EA1).episodes;
    let eval = task.generate(eval_episodes, seed ^ 0x0E7A).episodes;

    let (xf, yf) = collect_query_samples(dnc, &train);
    let dnc_readout = TrainedReadout::fit(&xf, &yf, lambda);
    let dnc_acc = readout_accuracy(dnc, &dnc_readout, &eval);

    let (xd, yd) = collect_query_samples(dncd, &train);
    let dncd_readout = TrainedReadout::fit(&xd, &yd, lambda);
    let dncd_acc = readout_accuracy(dncd, &dncd_readout, &eval);

    TaskAccuracy { task_id: task.id, name: task.name, dnc: dnc_acc, dncd: dncd_acc }
}

/// Mean accuracies `(dnc, dncd)` across tasks.
pub fn mean_accuracy(rows: &[TaskAccuracy]) -> (f64, f64) {
    if rows.is_empty() {
        return (0.0, 0.0);
    }
    let n = rows.len() as f64;
    (
        rows.iter().map(|r| r.dnc).sum::<f64>() / n,
        rows.iter().map(|r| r.dncd).sum::<f64>() / n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::TOKEN_WIDTH;

    fn params() -> DncParams {
        DncParams::new(64, 16, 2).with_hidden(32).with_io(TOKEN_WIDTH, TOKEN_WIDTH)
    }

    #[test]
    fn readout_fits_and_predicts() {
        // Learn the identity on a toy feature set.
        let x = Matrix::from_fn(30, 4, |i, j| if i % 4 == j { 1.0 } else { 0.0 });
        let y = x.clone();
        let r = TrainedReadout::fit(&x, &y, 1e-4);
        for c in 0..4 {
            let mut f = vec![0.0; 4];
            f[c] = 1.0;
            assert_eq!(r.predict_class(&f), c);
        }
    }

    #[test]
    fn collect_samples_shapes() {
        let task = &TASKS[0];
        let episodes = task.generate(3, 5).episodes;
        let builder = EngineBuilder::new(params()).seed(9);
        let (x, y) = collect_query_samples(&builder, &episodes);
        assert_eq!(x.rows(), 3 * task.queries);
        assert_eq!(y.rows(), x.rows());
        assert_eq!(y.cols(), VOCAB);
        assert_eq!(x.cols(), 2 * 16, "read-vector features only");
    }

    #[test]
    fn batched_features_match_sequential_featuremodel_path() {
        // The batched fast path of `episode_features` must agree with the
        // generic single-lane FeatureModel loop for any engine spec.
        let task = &TASKS[2];
        let episodes = task.generate(3, 7).episodes;
        for builder in [
            EngineBuilder::new(params()).seed(5),
            EngineBuilder::new(params()).sharded(4).seed(5),
        ] {
            let batched = episode_features(&builder, &episodes);
            let mut single = builder.clone().lanes(1).build();
            let sequential = sequential_episode_features(&mut *single, &episodes);
            assert_eq!(batched, sequential);
        }
    }

    #[test]
    fn ragged_features_match_sequential_featuremodel_path() {
        // Ragged lists no longer fall back to a single lane — they pad
        // to the longest episode and mask the tail, still bit-identical
        // to the one-episode-at-a-time reference.
        let task = TASKS[2].with_jitter(5);
        let episodes = task.generate(5, 13).episodes;
        assert!(crate::episode::uniform_len(&episodes).is_none(), "workload must be ragged");
        for builder in [
            EngineBuilder::new(params()).seed(5),
            EngineBuilder::new(params()).sharded(4).seed(5),
        ] {
            let batched = episode_features(&builder, &episodes);
            for (b, e) in episodes.iter().enumerate() {
                assert_eq!(batched[b].len(), e.len(), "one feature row per real step");
            }
            let mut single = builder.clone().lanes(1).build();
            let sequential = sequential_episode_features(&mut *single, &episodes);
            assert_eq!(batched, sequential);
        }
    }

    #[test]
    fn ragged_query_samples_and_readout_accuracy_match_sequential() {
        // The full train harness path over a ragged workload: samples
        // collected through the masked batched grid equal samples built
        // from the sequential per-episode features.
        let task = TASKS[0].with_jitter(4);
        let train = task.generate(8, 3).episodes;
        let eval = task.generate(4, 4).episodes;
        let builder = EngineBuilder::new(params()).seed(17);
        let (x, y) = collect_query_samples(&builder, &train);
        let mut single = builder.clone().lanes(1).build();
        let seq_features = sequential_episode_features(&mut *single, &train);
        let (mut xs, mut ys) = (Vec::new(), Vec::new());
        for (e, f) in train.iter().zip(&seq_features) {
            let (fr, yr) = episode_query_rows(e, f);
            xs.extend(fr);
            ys.extend(yr);
        }
        assert_eq!(x, Matrix::from_rows(&xs));
        assert_eq!(y, Matrix::from_rows(&ys));

        let readout = TrainedReadout::fit(&x, &y, 1e-2);
        let batched_acc = readout_accuracy(&builder, &readout, &eval);
        let mut single = builder.clone().lanes(1).build();
        let eval_features = sequential_episode_features(&mut *single, &eval);
        let (mut correct, mut total) = (0usize, 0usize);
        for (e, f) in eval.iter().zip(&eval_features) {
            let (c, n) = episode_readout_counts(&readout, e, f);
            correct += c;
            total += n;
        }
        assert_eq!(batched_acc, correct as f64 / total as f64);
    }

    #[test]
    fn trained_readout_beats_chance_on_recall() {
        // Task 1 (single supporting fact, recall style): a trained readout
        // over the reservoir features must beat the 1/12 chance rate. A
        // single episode draw is noisy (untrained reservoir keys retrieve
        // weakly), so the property is pinned on the mean over three
        // generation seeds: held-out accuracy clearly above chance and
        // in-sample accuracy well above it.
        let task = &TASKS[0];
        let chance = 1.0 / VOCAB as f64;
        let mut held_out = 0.0;
        let mut in_sample = 0.0;
        for seed in [11u64, 21, 31] {
            let train = task.generate(60, seed).episodes;
            let eval = task.generate(20, seed ^ 1).episodes;
            let dnc = EngineBuilder::new(params()).seed(21);
            let (x, y) = collect_query_samples(&dnc, &train);
            let readout = TrainedReadout::fit(&x, &y, 1e-2);
            held_out += readout_accuracy(&dnc, &readout, &eval) / 3.0;
            in_sample += readout_accuracy(&dnc, &readout, &train) / 3.0;
        }
        assert!(held_out > 1.5 * chance, "held-out {held_out:.3} vs chance {chance:.3}");
        assert!(in_sample > 2.0 * chance, "in-sample {in_sample:.3} vs chance {chance:.3}");
    }

    #[test]
    fn trained_accuracy_exceeds_chance_for_both_models() {
        // With untrained (reservoir) keys, retrieval accuracy is weak and
        // the DNC-vs-DNC-D ordering is seed noise, so this pins only the
        // sanity properties: full task coverage, valid probabilities, and
        // both models extracting at least chance-level signal from their
        // read vectors. The Fig. 10 ordering claim is carried by the
        // relative-divergence metric in `eval` (which compares the two
        // models on identical inputs rather than separately trained
        // readouts).
        let rows = trained_accuracy(params(), 8, 31, 12, 6, 1e-2);
        assert_eq!(rows.len(), 20);
        let (dnc, dncd) = mean_accuracy(&rows);
        let chance = 1.0 / VOCAB as f64;
        assert!(dnc >= chance * 0.8, "DNC below chance: {dnc:.3}");
        assert!(dncd >= chance * 0.8, "DNC-D below chance: {dncd:.3}");
        assert!(dnc <= 1.0 && dncd <= 1.0);
    }

    #[test]
    fn accuracies_are_probabilities() {
        let rows = trained_accuracy(params(), 4, 3, 6, 3, 1e-2);
        for r in rows {
            assert!((0.0..=1.0).contains(&r.dnc), "{r:?}");
            assert!((0.0..=1.0).contains(&r.dncd), "{r:?}");
        }
    }

    #[test]
    fn mean_accuracy_empty_is_zero() {
        assert_eq!(mean_accuracy(&[]), (0.0, 0.0));
    }
}
