//! Offline stand-in for `proptest` (API subset).
//!
//! The hermetic build environment has no crates.io access, so this crate
//! re-implements the slice of proptest the workspace's property tests
//! use: the `proptest!` macro (with optional `#![proptest_config(..)]`),
//! range and `prop_map` strategies, `prop::collection::vec`,
//! `prop::sample::select`, and the `prop_assert*` macros. Inputs are
//! sampled deterministically (seeded per test from the test's path), and
//! failures panic with the offending values in the message instead of
//! shrinking — simpler, but the counterexample is still printed.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of test inputs.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Samples one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Post-processes generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The `prop_map` combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    if lo == hi { lo } else { rng.gen_range(lo..hi) }
                }
            }
        )*};
    }
    range_strategy!(usize, u32, u64, i32, i64, f32, f64);
}

/// Sub-modules reachable as `prop::…` from the prelude.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a `vec` length specification.
    pub trait SizeRange {
        /// Samples a length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(*self.start()..*self.end() + 1)
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `len`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirror of `proptest::sample`.
pub mod sample {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy picking one element of a fixed set.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Mirror of `proptest::sample::select`.
    ///
    /// # Panics
    ///
    /// Panics (at generation time) if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            assert!(!self.options.is_empty(), "select from empty set");
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Mirror of `proptest::test_runner::Config` (the `cases` knob only).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the suite fast
            // while still exercising each property broadly.
            Self { cases: 64 }
        }
    }

    /// Deterministic per-test generator, seeded from the test's path so
    /// every run samples the same inputs.
    pub fn rng_for(test_path: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` sampling its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::rng_for(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..cfg.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let run = || -> () { $body };
                    // A plain call keeps panics (incl. prop_assert!)
                    // attributed to this case; the case index and inputs
                    // are printed by prop_assert's message when it fires.
                    let _ = case;
                    run();
                }
            }
        )*
    };
}

/// Mirror of `proptest::prop_assert!` (panics instead of shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Mirror of `proptest::prop_assert_eq!` (panics instead of shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Mirror of `proptest::prop_assert_ne!` (panics instead of shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pow2(lo: u32, hi: u32) -> impl Strategy<Value = usize> {
        (lo..=hi).prop_map(|e| 1usize << e)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_strategy_obeys_len(xs in prop::collection::vec(0.0f32..1.0, 2..9)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 9);
            prop_assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        }

        #[test]
        fn fixed_len_vec(xs in prop::collection::vec(0u64..5, 24)) {
            prop_assert_eq!(xs.len(), 24);
        }

        #[test]
        fn map_and_select_compose(n in pow2(1, 6), pick in prop::sample::select(vec![1, 2, 3])) {
            prop_assert!(n.is_power_of_two());
            prop_assert!((1..=3).contains(&pick));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0.0f32..1.0, 8usize);
        let a: Vec<f32> = strat.generate(&mut crate::test_runner::rng_for("t"));
        let b: Vec<f32> = strat.generate(&mut crate::test_runner::rng_for("t"));
        assert_eq!(a, b);
    }
}
